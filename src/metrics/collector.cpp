#include "metrics/collector.hpp"

#include <algorithm>

namespace bgpsim::metrics {

void Collector::note_update_sent(sim::SimTime when, bool is_withdrawal) {
  update_times_.push_back(when);
  if (is_withdrawal) ++withdrawals_;
}

void Collector::note_packet_sent(sim::SimTime when) {
  send_times_.push_back(when);
}

void Collector::note_fate(const fwd::Packet& packet, fwd::PacketFate fate,
                          net::NodeId, sim::SimTime when) {
  switch (fate) {
    case fwd::PacketFate::kDelivered:
      ++delivered_;
      break;
    case fwd::PacketFate::kTtlExhausted:
      exhaustion_times_.push_back(when);
      break;
    case fwd::PacketFate::kNoRoute:
      ++no_route_;
      break;
    case fwd::PacketFate::kLinkDown:
      ++link_down_;
      break;
  }
  if (!lanes_.empty() && packet.prefix < lanes_.size()) {
    PrefixCounters& lane = lanes_[packet.prefix];
    if (fate == fwd::PacketFate::kDelivered) ++lane.delivered;
    if (fate == fwd::PacketFate::kTtlExhausted) ++lane.ttl_exhausted;
  }
}

void Collector::enable_prefix_lanes(std::size_t prefix_count) {
  lanes_.assign(prefix_count, PrefixCounters{});
}

void Collector::note_packet_sent_for(net::Prefix prefix) {
  if (prefix < lanes_.size()) ++lanes_[prefix].sent;
}

std::optional<sim::SimTime> Collector::last_update_at(sim::SimTime from) const {
  if (update_times_.empty() || update_times_.back() < from) return std::nullopt;
  return update_times_.back();
}

std::uint64_t Collector::updates_sent_since(sim::SimTime from) const {
  const auto lo = std::ranges::lower_bound(update_times_, from);
  return static_cast<std::uint64_t>(update_times_.end() - lo);
}

std::uint64_t Collector::packets_sent_in(sim::SimTime from,
                                         sim::SimTime to) const {
  const auto lo = std::ranges::lower_bound(send_times_, from);
  const auto hi = std::ranges::upper_bound(send_times_, to);
  return static_cast<std::uint64_t>(hi - lo);
}

std::uint64_t Collector::exhaustions_since(sim::SimTime from) const {
  const auto lo = std::ranges::lower_bound(exhaustion_times_, from);
  return static_cast<std::uint64_t>(exhaustion_times_.end() - lo);
}

namespace {

std::vector<std::uint64_t> bucketize(const std::vector<sim::SimTime>& times,
                                     sim::SimTime from, sim::SimTime to,
                                     sim::SimTime bin_width) {
  if (to <= from || bin_width <= sim::SimTime::zero()) return {};
  const auto span = (to - from).as_micros();
  const auto width = bin_width.as_micros();
  const auto bins = static_cast<std::size_t>((span + width - 1) / width);
  std::vector<std::uint64_t> out(bins, 0);
  auto it = std::ranges::lower_bound(times, from);
  for (; it != times.end() && *it < to; ++it) {
    const auto idx = static_cast<std::size_t>((*it - from).as_micros() / width);
    ++out[idx];
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> Collector::update_activity(
    sim::SimTime from, sim::SimTime to, sim::SimTime bin_width) const {
  return bucketize(update_times_, from, to, bin_width);
}

std::vector<std::uint64_t> Collector::exhaustion_activity(
    sim::SimTime from, sim::SimTime to, sim::SimTime bin_width) const {
  return bucketize(exhaustion_times_, from, to, bin_width);
}

std::optional<sim::SimTime> Collector::first_exhaustion(
    sim::SimTime from) const {
  const auto lo = std::ranges::lower_bound(exhaustion_times_, from);
  if (lo == exhaustion_times_.end()) return std::nullopt;
  return *lo;
}

std::optional<sim::SimTime> Collector::last_exhaustion(sim::SimTime from) const {
  if (exhaustion_times_.empty() || exhaustion_times_.back() < from) {
    return std::nullopt;
  }
  return exhaustion_times_.back();
}

namespace {

void save_series(snap::Writer& w, const std::vector<sim::SimTime>& series) {
  w.u64(series.size());
  for (const sim::SimTime t : series) w.time(t);
}

void restore_series(snap::Reader& r, std::vector<sim::SimTime>& series) {
  series.clear();
  const std::uint64_t n = r.u64();
  series.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) series.push_back(r.time());
}

}  // namespace

void Collector::save_state(snap::Writer& w) const {
  save_series(w, update_times_);
  save_series(w, send_times_);
  save_series(w, exhaustion_times_);
  w.u64(withdrawals_);
  w.u64(delivered_);
  w.u64(no_route_);
  w.u64(link_down_);
  // Lane section only when lanes are on: single-prefix checkpoint bytes
  // are unchanged, and lane enablement is a construction-time property
  // shared by saver and restorer (both sides ran the same scenario).
  if (!lanes_.empty()) {
    w.u64(lanes_.size());
    for (const PrefixCounters& lane : lanes_) {
      w.u64(lane.sent);
      w.u64(lane.delivered);
      w.u64(lane.ttl_exhausted);
    }
  }
}

void Collector::restore_state(snap::Reader& r) {
  restore_series(r, update_times_);
  restore_series(r, send_times_);
  restore_series(r, exhaustion_times_);
  withdrawals_ = r.u64();
  delivered_ = r.u64();
  no_route_ = r.u64();
  link_down_ = r.u64();
  if (!lanes_.empty()) {
    const std::uint64_t n = r.u64();
    lanes_.assign(static_cast<std::size_t>(n), PrefixCounters{});
    for (PrefixCounters& lane : lanes_) {
      lane.sent = r.u64();
      lane.delivered = r.u64();
      lane.ttl_exhausted = r.u64();
    }
  }
}

}  // namespace bgpsim::metrics
