#include "metrics/trace.hpp"

#include <ostream>

namespace bgpsim::metrics {
namespace {

/// Escape for a double-quoted CSV/JSON string cell.
std::string escaped(const std::string& raw, bool json) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    if (json && c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += json ? "\\\"" : "\"\"";
    } else {
      out += c;
    }
  }
  return out;
}

void write_id(std::ostream& out, net::NodeId id) {
  if (id == net::kInvalidNode) {
    out << "";
  } else {
    out << id;
  }
}

}  // namespace

std::vector<TraceEvent> TraceRecorder::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::map<TraceEventKind, std::size_t> TraceRecorder::counts() const {
  std::map<TraceEventKind, std::size_t> out;
  for (const auto& e : events_) ++out[e.kind];
  return out;
}

void TraceRecorder::write_csv(std::ostream& out) const {
  out << "time_s,kind,node,peer,prefix,detail\n";
  for (const auto& e : events_) {
    out << e.at.as_seconds() << ',' << to_string(e.kind) << ',';
    write_id(out, e.node);
    out << ',';
    write_id(out, e.peer);
    out << ',' << e.prefix << ",\"" << escaped(e.detail, false) << "\"\n";
  }
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const auto& e : events_) {
    out << "{\"t\":" << e.at.as_seconds() << ",\"kind\":\""
        << to_string(e.kind) << "\"";
    if (e.node != net::kInvalidNode) out << ",\"node\":" << e.node;
    if (e.peer != net::kInvalidNode) out << ",\"peer\":" << e.peer;
    out << ",\"prefix\":" << e.prefix << ",\"detail\":\""
        << escaped(e.detail, true) << "\"}\n";
  }
}

}  // namespace bgpsim::metrics
