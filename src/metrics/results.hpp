// Per-run results: the paper's four metrics plus supporting detail.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/speaker.hpp"
#include "metrics/loop_detector.hpp"
#include "metrics/loop_stats.hpp"
#include "sim/time.hpp"

namespace bgpsim::metrics {

/// Everything measured from one scenario run. The first four fields are the
/// paper's metrics (§4.2); the rest support the analysis and the extension
/// experiments.
struct RunMetrics {
  // ---- the paper's metrics ----
  /// Event injection -> last BGP update sent (s). 0 if no update was sent.
  double convergence_time_s = 0;
  /// First TTL exhaustion -> last TTL exhaustion (s). 0 if none occurred.
  double looping_duration_s = 0;
  /// TTL exhaustions observed after the event.
  std::uint64_t ttl_exhaustions = 0;
  /// ttl_exhaustions / packets sent during [event, last update]; the
  /// probability that a packet sent during convergence encounters looping.
  double looping_ratio = 0;

  // ---- supporting detail ----
  std::uint64_t packets_sent_during_convergence = 0;
  std::uint64_t packets_sent_total = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_no_route = 0;
  std::uint64_t packets_link_down = 0;

  std::uint64_t updates_sent = 0;  // after the event
  std::uint64_t updates_sent_total = 0;

  bgp::Speaker::Counters bgp;  // network-wide protocol counters

  // ---- per-prefix lanes (multi-prefix runs; empty when prefixes == 1) ----
  /// One lane per prefix id. Packet counters are whole-run totals (traffic
  /// only flows once the prelude has converged, so they are post-event up
  /// to the 2 s traffic lead); loop fields come from that prefix's own
  /// detector, post-event only.
  struct PrefixLane {
    std::uint64_t loops_formed = 0;
    double max_loop_duration_s = 0;
    std::uint64_t ttl_exhaustions = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
  };
  std::vector<PrefixLane> per_prefix;

  // ---- per-loop extension (paper's "next steps") ----
  std::uint64_t loops_formed = 0;
  double max_loop_duration_s = 0;
  double mean_loop_size = 0;
  std::size_t max_loop_size = 0;
  std::vector<LoopRecord> loops;
  LoopStats loop_stats;  // full per-size analysis of `loops`

  // ---- activity profiles (1 s bins over [event, last update]) ----
  std::vector<std::uint64_t> update_activity_1s;
  std::vector<std::uint64_t> exhaustion_activity_1s;

  // ---- timeline (absolute simulation times) ----
  sim::SimTime event_at;
  sim::SimTime last_update_at;
  sim::SimTime first_exhaustion_at;
  sim::SimTime last_exhaustion_at;
};

}  // namespace bgpsim::metrics
