// Forwarding-loop detection on the next-hop graph.
//
// The paper measures loops indirectly via TTL exhaustion; it names per-loop
// statistics (size, duration) as future work. This detector implements that
// extension exactly: it mirrors every node's FIB next hop for one prefix
// and maintains the cycles of the resulting functional graph.
//
// Each node has at most one out-edge, so cycles are node-disjoint, and a
// single next-hop change at node X can only (a) dissolve the one cycle
// containing X and (b) create one new cycle through X's new edge. Updates
// are therefore incremental — a bounded walk from X instead of a full
// O(n) rescan — which is what makes loop accounting affordable on
// Internet-scale (10k-75k node) topologies. The records produced are
// bit-identical to a full rescan per change (see matches_full_scan).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fwd/fib.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace bgpsim::metrics {

/// One transient forwarding loop, from formation to resolution.
struct LoopRecord {
  std::vector<net::NodeId> members;  // canonical: rotated to smallest first
  sim::SimTime formed_at;
  std::optional<sim::SimTime> resolved_at;  // nullopt: still active at finalize

  [[nodiscard]] std::size_t size() const { return members.size(); }
  [[nodiscard]] double duration_seconds(sim::SimTime fallback_end) const {
    return ((resolved_at ? *resolved_at : fallback_end) - formed_at)
        .as_seconds();
  }
};

class LoopDetector {
 public:
  /// Observer for live loop events; `formed` is true at formation, false
  /// at resolution (resolution passes the completed record).
  using Observer = std::function<void(const LoopRecord&, bool formed)>;

  explicit LoopDetector(std::size_t node_count);

  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Install FIB observers on every node's Fib, watching `prefix`.
  /// Replaces any observer previously installed on those FIBs.
  void attach(sim::Simulator& simulator, std::vector<fwd::Fib>& fibs,
              net::Prefix prefix);

  /// Like attach, but subscribes *alongside* the observers already
  /// installed — for multi-prefix runs, where one detector per prefix
  /// shares the same FIBs (the first detector attaches, the rest attach
  /// alongside it).
  void attach_alongside(sim::Simulator& simulator, std::vector<fwd::Fib>& fibs,
                        net::Prefix prefix);

  /// Manual feed (for tests / custom wiring): node's next hop changed.
  void on_next_hop_change(net::NodeId node, std::optional<net::NodeId> now,
                          sim::SimTime when);

  /// Close out loops still active at `end`.
  void finalize(sim::SimTime end);

  /// Drop accumulated records while keeping the mirrored next-hop state.
  /// Used at event injection so only post-event loops are reported.
  /// Requires no loop to be active (true at a converged state).
  void clear_history();

  [[nodiscard]] const std::vector<LoopRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::uint64_t loops_formed() const { return records_.size(); }

  /// Membership of all currently active loops.
  [[nodiscard]] std::vector<std::vector<net::NodeId>> active_loops() const;

  /// Test hook: rescan the whole next-hop graph and check that the cycles
  /// found match the incrementally tracked active set.
  [[nodiscard]] bool matches_full_scan() const;

 private:
  [[nodiscard]] std::vector<std::vector<net::NodeId>> find_cycles() const;

  static constexpr std::size_t kNoRecord = static_cast<std::size_t>(-1);

  Observer observer_;
  std::vector<std::optional<net::NodeId>> next_hop_;
  // canonical member list -> index into records_ (the active record)
  std::map<std::vector<net::NodeId>, std::size_t> active_;
  // node -> index of the active record it belongs to, or kNoRecord
  std::vector<std::size_t> active_idx_;
  // walk stamps for the incremental cycle search (epoch = one walk)
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::vector<LoopRecord> records_;
};

}  // namespace bgpsim::metrics
