#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bgpsim::metrics {

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  s.n = sample.size();
  if (s.n == 0) return s;

  double sum = 0;
  s.min = sample.front();
  s.max = sample.front();
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);

  if (s.n >= 2) {
    double ss = 0;
    for (double v : sample) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  s.median = percentile(sample, 50.0);
  return s;
}

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0;
  if (q < 0 || q > 100) throw std::invalid_argument{"percentile: q out of range"};
  std::ranges::sort(sample);
  const double pos = q / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1 - frac) + sample[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"fit_line: size mismatch"};
  }
  LinearFit f;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return f;

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double sst = syy - sy * sy / n;
  if (sst == 0) {
    f.r2 = 1.0;  // constant y: the fit is exact
  } else {
    double sse = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (f.intercept + f.slope * x[i]);
      sse += e * e;
    }
    f.r2 = 1.0 - sse / sst;
  }
  return f;
}

std::string mean_pm(const Summary& s, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ±%.*f", decimals, s.mean, decimals,
                s.stddev);
  return buf;
}

}  // namespace bgpsim::metrics
