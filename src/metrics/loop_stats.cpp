#include "metrics/loop_stats.hpp"

#include <algorithm>

namespace bgpsim::metrics {

LoopStats analyze_loops(const std::vector<LoopRecord>& loops,
                        sim::SimTime fallback_end) {
  LoopStats stats;
  stats.total_loops = loops.size();
  if (loops.empty()) return stats;

  std::map<std::size_t, std::vector<double>> durations_by_size;
  std::vector<double> all_durations;
  double size_sum = 0;
  std::size_t two_node = 0;

  // Interval sweep for union-of-activity and concurrency.
  std::vector<std::pair<sim::SimTime, int>> edges;  // (+1 open, -1 close)
  for (const auto& loop : loops) {
    const double d = loop.duration_seconds(fallback_end);
    durations_by_size[loop.size()].push_back(d);
    all_durations.push_back(d);
    size_sum += static_cast<double>(loop.size());
    stats.max_size = std::max(stats.max_size, loop.size());
    if (loop.size() == 2) ++two_node;
    edges.emplace_back(loop.formed_at, +1);
    edges.emplace_back(loop.resolved_at.value_or(fallback_end), -1);
  }

  stats.mean_size = size_sum / static_cast<double>(loops.size());
  stats.two_node_fraction =
      static_cast<double>(two_node) / static_cast<double>(loops.size());
  stats.duration_s = summarize(all_durations);
  stats.distinct_sizes = durations_by_size.size();

  for (const auto& [size, durations] : durations_by_size) {
    SizeBucket bucket;
    bucket.size = size;
    bucket.count = durations.size();
    bucket.duration_s = summarize(durations);
    bucket.worst_per_hop_s =
        bucket.duration_s.max / static_cast<double>(size - 1);
    stats.by_size.push_back(std::move(bucket));
  }

  // Sweep: closes before opens at the same instant keeps zero-length
  // intervals from inflating concurrency.
  std::ranges::sort(edges, [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  int depth = 0;
  sim::SimTime active_since;
  for (const auto& [at, delta] : edges) {
    if (delta > 0) {
      if (depth == 0) active_since = at;
      ++depth;
      stats.max_concurrent =
          std::max(stats.max_concurrent, static_cast<std::size_t>(depth));
    } else {
      --depth;
      if (depth == 0) stats.active_time_s += (at - active_since).as_seconds();
    }
  }
  return stats;
}

}  // namespace bgpsim::metrics
