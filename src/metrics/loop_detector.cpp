#include "metrics/loop_detector.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bgpsim::metrics {
namespace {

/// Rotate the cycle so its smallest node id leads; makes membership
/// comparable across detections.
std::vector<net::NodeId> canonicalize(std::vector<net::NodeId> cycle) {
  assert(!cycle.empty());
  const auto min_it = std::ranges::min_element(cycle);
  std::ranges::rotate(cycle, min_it);
  return cycle;
}

}  // namespace

LoopDetector::LoopDetector(std::size_t node_count)
    : next_hop_(node_count),
      active_idx_(node_count, kNoRecord),
      mark_(node_count, 0) {}

void LoopDetector::attach(sim::Simulator& simulator, std::vector<fwd::Fib>& fibs,
                          net::Prefix prefix) {
  for (net::NodeId node = 0; node < fibs.size(); ++node) {
    fibs[node].set_observer(
        [this, node, prefix, &simulator](net::Prefix p,
                                         std::optional<net::NodeId> /*old*/,
                                         std::optional<net::NodeId> now) {
          if (p != prefix) return;
          on_next_hop_change(node, now, simulator.now());
        });
  }
}

void LoopDetector::attach_alongside(sim::Simulator& simulator,
                                    std::vector<fwd::Fib>& fibs,
                                    net::Prefix prefix) {
  for (net::NodeId node = 0; node < fibs.size(); ++node) {
    fibs[node].add_observer(
        [this, node, prefix, &simulator](net::Prefix p,
                                         std::optional<net::NodeId> /*old*/,
                                         std::optional<net::NodeId> now) {
          if (p != prefix) return;
          on_next_hop_change(node, now, simulator.now());
        });
  }
}

void LoopDetector::on_next_hop_change(net::NodeId node,
                                      std::optional<net::NodeId> now,
                                      sim::SimTime when) {
  assert(node < next_hop_.size());
  if (next_hop_[node] == now) return;
  next_hop_[node] = now;

  // Only `node`'s out-edge changed, and cycles of a functional graph are
  // node-disjoint, so the one active cycle containing `node` (if any) is
  // the only cycle that can have dissolved.
  if (active_idx_[node] != kNoRecord) {
    LoopRecord& rec = records_[active_idx_[node]];
    rec.resolved_at = when;
    for (net::NodeId m : rec.members) active_idx_[m] = kNoRecord;
    active_.erase(rec.members);
    if (observer_) observer_(rec, /*formed=*/false);
  }

  // Any newly formed cycle must use the new edge, i.e. pass through `node`.
  // Walk the next-hop chain from `node`; it either dead-ends, merges into
  // an (unchanged, still tracked) active cycle, or returns to `node` — the
  // one case that forms a loop.
  const std::size_t n = next_hop_.size();
  if (++epoch_ == 0) {  // stamp wrap-around: reset and restart epochs
    std::ranges::fill(mark_, 0);
    epoch_ = 1;
  }
  std::vector<net::NodeId> walk;
  net::NodeId u = node;
  while (true) {
    mark_[u] = epoch_;
    walk.push_back(u);
    const auto& nh = next_hop_[u];
    if (!nh || *nh >= n) return;  // dead end: no route (or the destination)
    u = *nh;
    if (u == node) break;                      // cycle: the whole walk
    if (active_idx_[u] != kNoRecord) return;   // merged into another cycle
    if (mark_[u] == epoch_) {
      // A revisit below `node` would mean an untracked cycle — impossible
      // while the active set is maintained for every change (see header).
      assert(false && "untracked cycle in next-hop graph");
      return;
    }
  }

  records_.push_back(
      LoopRecord{canonicalize(std::move(walk)), when, std::nullopt});
  const std::size_t idx = records_.size() - 1;
  active_.emplace(records_.back().members, idx);
  for (net::NodeId m : records_.back().members) active_idx_[m] = idx;
  if (observer_) observer_(records_.back(), /*formed=*/true);
}

std::vector<std::vector<net::NodeId>> LoopDetector::find_cycles() const {
  const std::size_t n = next_hop_.size();
  // 0 = unvisited, 1 = on current walk, 2 = finished.
  std::vector<std::uint8_t> color(n, 0);
  std::vector<std::uint32_t> walk_pos(n, 0);
  std::vector<std::vector<net::NodeId>> cycles;

  std::vector<net::NodeId> walk;
  for (net::NodeId start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    walk.clear();
    net::NodeId u = start;
    while (true) {
      if (color[u] == 1) {
        // Found a cycle: the walk suffix starting at u.
        cycles.emplace_back(walk.begin() + walk_pos[u], walk.end());
        break;
      }
      if (color[u] == 2) break;  // merged into an already-explored region
      color[u] = 1;
      walk_pos[u] = static_cast<std::uint32_t>(walk.size());
      walk.push_back(u);
      const auto& nh = next_hop_[u];
      if (!nh || *nh >= n) break;  // dead end: no route (or the destination)
      u = *nh;
    }
    for (net::NodeId v : walk) color[v] = 2;
  }
  return cycles;
}

bool LoopDetector::matches_full_scan() const {
  std::map<std::vector<net::NodeId>, bool> rescanned;
  for (auto& cycle : find_cycles()) {
    rescanned.emplace(canonicalize(std::move(cycle)), true);
  }
  if (rescanned.size() != active_.size()) return false;
  for (const auto& [members, idx] : active_) {
    (void)idx;
    if (!rescanned.contains(members)) return false;
  }
  return true;
}

void LoopDetector::clear_history() {
  if (!active_.empty()) {
    throw std::logic_error{"LoopDetector::clear_history with active loops"};
  }
  records_.clear();
}

void LoopDetector::finalize(sim::SimTime end) {
  for (auto& [members, idx] : active_) {
    if (!records_[idx].resolved_at) records_[idx].resolved_at = end;
  }
  active_.clear();
  std::ranges::fill(active_idx_, kNoRecord);
}

std::vector<std::vector<net::NodeId>> LoopDetector::active_loops() const {
  std::vector<std::vector<net::NodeId>> out;
  out.reserve(active_.size());
  for (const auto& [members, idx] : active_) out.push_back(members);
  return out;
}

}  // namespace bgpsim::metrics
