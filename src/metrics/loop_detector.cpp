#include "metrics/loop_detector.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bgpsim::metrics {
namespace {

/// Rotate the cycle so its smallest node id leads; makes membership
/// comparable across detections.
std::vector<net::NodeId> canonicalize(std::vector<net::NodeId> cycle) {
  assert(!cycle.empty());
  const auto min_it = std::ranges::min_element(cycle);
  std::ranges::rotate(cycle, min_it);
  return cycle;
}

}  // namespace

LoopDetector::LoopDetector(std::size_t node_count) : next_hop_(node_count) {}

void LoopDetector::attach(sim::Simulator& simulator, std::vector<fwd::Fib>& fibs,
                          net::Prefix prefix) {
  for (net::NodeId node = 0; node < fibs.size(); ++node) {
    fibs[node].set_observer(
        [this, node, prefix, &simulator](net::Prefix p,
                                         std::optional<net::NodeId> /*old*/,
                                         std::optional<net::NodeId> now) {
          if (p != prefix) return;
          on_next_hop_change(node, now, simulator.now());
        });
  }
}

void LoopDetector::on_next_hop_change(net::NodeId node,
                                      std::optional<net::NodeId> now,
                                      sim::SimTime when) {
  assert(node < next_hop_.size());
  if (next_hop_[node] == now) return;
  next_hop_[node] = now;
  recompute(when);
}

void LoopDetector::recompute(sim::SimTime when) {
  std::map<std::vector<net::NodeId>, bool> seen;  // canonical -> (re)found
  for (auto& cycle : find_cycles()) {
    seen.emplace(canonicalize(std::move(cycle)), true);
  }

  // Resolve active loops that no longer exist.
  for (auto it = active_.begin(); it != active_.end();) {
    if (!seen.contains(it->first)) {
      records_[it->second].resolved_at = when;
      if (observer_) observer_(records_[it->second], /*formed=*/false);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  // Register newly formed loops.
  for (auto& [members, unused] : seen) {
    (void)unused;
    if (active_.contains(members)) continue;
    records_.push_back(LoopRecord{members, when, std::nullopt});
    active_.emplace(members, records_.size() - 1);
    if (observer_) observer_(records_.back(), /*formed=*/true);
  }
}

std::vector<std::vector<net::NodeId>> LoopDetector::find_cycles() const {
  const std::size_t n = next_hop_.size();
  // 0 = unvisited, 1 = on current walk, 2 = finished.
  std::vector<std::uint8_t> color(n, 0);
  std::vector<std::uint32_t> walk_pos(n, 0);
  std::vector<std::vector<net::NodeId>> cycles;

  std::vector<net::NodeId> walk;
  for (net::NodeId start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    walk.clear();
    net::NodeId u = start;
    while (true) {
      if (color[u] == 1) {
        // Found a cycle: the walk suffix starting at u.
        cycles.emplace_back(walk.begin() + walk_pos[u], walk.end());
        break;
      }
      if (color[u] == 2) break;  // merged into an already-explored region
      color[u] = 1;
      walk_pos[u] = static_cast<std::uint32_t>(walk.size());
      walk.push_back(u);
      const auto& nh = next_hop_[u];
      if (!nh || *nh >= n) break;  // dead end: no route (or the destination)
      u = *nh;
    }
    for (net::NodeId v : walk) color[v] = 2;
  }
  return cycles;
}

void LoopDetector::clear_history() {
  if (!active_.empty()) {
    throw std::logic_error{"LoopDetector::clear_history with active loops"};
  }
  records_.clear();
}

void LoopDetector::finalize(sim::SimTime end) {
  for (auto& [members, idx] : active_) {
    if (!records_[idx].resolved_at) records_[idx].resolved_at = end;
  }
  active_.clear();
}

std::vector<std::vector<net::NodeId>> LoopDetector::active_loops() const {
  std::vector<std::vector<net::NodeId>> out;
  out.reserve(active_.size());
  for (const auto& [members, idx] : active_) out.push_back(members);
  return out;
}

}  // namespace bgpsim::metrics
