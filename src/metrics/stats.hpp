// Summary statistics across trials.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bgpsim::metrics {

/// Moments and order statistics of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;  // sample standard deviation (n-1); 0 when n < 2
  double min = 0;
  double max = 0;
  double median = 0;
};

/// Compute a Summary. An empty sample yields all-zero fields.
[[nodiscard]] Summary summarize(const std::vector<double>& sample);

/// Linear interpolation percentile, q in [0, 100]. Empty sample -> 0.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// Least-squares fit y = a + b·x. Returns {a, b, r2}. Requires both vectors
/// the same length; fewer than 2 points yields {0, 0, 0}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& x,
                                 const std::vector<double>& y);

/// "12.3 ±4.5" convenience formatting.
[[nodiscard]] std::string mean_pm(const Summary& s, int decimals = 1);

}  // namespace bgpsim::metrics
