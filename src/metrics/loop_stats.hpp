// Aggregate statistics over per-loop records — the paper's "next steps"
// ("measure the statistics of individual loops such as the loop size and
// duration") as a reusable analysis.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "metrics/loop_detector.hpp"
#include "metrics/stats.hpp"
#include "sim/time.hpp"

namespace bgpsim::metrics {

/// Duration statistics for one loop size.
struct SizeBucket {
  std::size_t size = 0;        // m (member count)
  std::size_t count = 0;       // loops of this size
  Summary duration_s;          // per-loop durations
  double worst_per_hop_s = 0;  // max duration / (m-1): cf. the (m-1)·M bound
};

/// Whole-run loop statistics.
struct LoopStats {
  std::size_t total_loops = 0;
  std::size_t distinct_sizes = 0;
  std::size_t max_size = 0;
  double mean_size = 0;
  /// Fraction of loops with exactly two members (Hengartner et al., cited
  /// by the paper, observed >50% two-node loops in ISP traces).
  double two_node_fraction = 0;
  Summary duration_s;  // across all loops
  std::vector<SizeBucket> by_size;  // ascending size

  /// Aggregate time during which >=1 loop was active (union of intervals),
  /// comparable against the paper's "overall looping duration".
  double active_time_s = 0;
  /// Maximum number of simultaneously active loops.
  std::size_t max_concurrent = 0;
};

/// Compute statistics over `loops`. Unresolved records are closed at
/// `fallback_end` (pass the run's end time).
[[nodiscard]] LoopStats analyze_loops(const std::vector<LoopRecord>& loops,
                                      sim::SimTime fallback_end);

}  // namespace bgpsim::metrics
