// Route-change trace recording.
//
// The paper closes by planning to "examine route change traces to measure
// the statistics of individual loops". This recorder captures a structured
// event stream — updates on the wire, best-path changes, loop formation /
// resolution, session changes — and serializes it as CSV or JSON lines for
// offline analysis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::metrics {

enum class TraceEventKind : std::uint8_t {
  kEventInjected,  // the scenario's Tdown/Tlong/Tup trigger
  kUpdateSent,     // node -> peer UPDATE (detail: message text)
  kBestChanged,    // node's Loc-RIB best changed (detail: new path)
  kLoopFormed,     // detail: loop membership "{a b c}"
  kLoopResolved,   // detail: loop membership
  kSessionChange,  // node noticed session to peer up/down (detail)
};

[[nodiscard]] constexpr const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kEventInjected:
      return "event_injected";
    case TraceEventKind::kUpdateSent:
      return "update_sent";
    case TraceEventKind::kBestChanged:
      return "best_changed";
    case TraceEventKind::kLoopFormed:
      return "loop_formed";
    case TraceEventKind::kLoopResolved:
      return "loop_resolved";
    case TraceEventKind::kSessionChange:
      return "session_change";
  }
  return "?";
}

struct TraceEvent {
  sim::SimTime at;
  TraceEventKind kind = TraceEventKind::kEventInjected;
  net::NodeId node = net::kInvalidNode;  // subject (kInvalidNode if n/a)
  net::NodeId peer = net::kInvalidNode;  // counterpart (kInvalidNode if n/a)
  net::Prefix prefix = 0;
  std::string detail;
};

/// Append-only event log with serialization. Thread-unsafe by design (the
/// simulator is single-threaded).
class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events of one kind, preserving order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceEventKind kind) const;

  /// Histogram by kind.
  [[nodiscard]] std::map<TraceEventKind, std::size_t> counts() const;

  /// "time,kind,node,peer,prefix,detail" rows (detail quoted).
  void write_csv(std::ostream& out) const;

  /// One JSON object per line.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace bgpsim::metrics
