// Time-series collection of the study's raw observables.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "fwd/packet.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "snap/codec.hpp"

namespace bgpsim::metrics {

/// Records update transmissions, packet sends, and packet fates with
/// timestamps, and answers windowed queries afterwards. All recorded series
/// are appended in nondecreasing time order (simulation time is monotone),
/// so queries are binary searches.
///
/// The collector is a fwd::FateSink: hand it to DataPlane::set_fate_sink
/// and it absorbs one batch of terminal fates per drained tick.
class Collector : public fwd::FateSink {
 public:
  // ---- recording hooks (wire to Speaker::Hooks / DataPlane / Traffic) ----

  void note_update_sent(sim::SimTime when, bool is_withdrawal);
  void note_packet_sent(sim::SimTime when);
  void note_fate(const fwd::Packet& packet, fwd::PacketFate fate,
                 net::NodeId where, sim::SimTime when);

  /// FateSink: fold a whole tick's terminal fates into the series.
  void on_fates(std::span<const fwd::FateRecord> batch) override {
    for (const fwd::FateRecord& r : batch) {
      note_fate(r.packet, r.fate, r.where, r.when);
    }
  }

  // ---- per-prefix lanes (multi-prefix runs) ----

  /// Size the per-prefix counter lanes. Off (the single-prefix default)
  /// the lanes cost nothing and the checkpoint bytes are unchanged.
  void enable_prefix_lanes(std::size_t prefix_count);

  /// Count one injection against `prefix`'s lane (no-op when lanes are
  /// off; the time-stamped series still comes from note_packet_sent).
  void note_packet_sent_for(net::Prefix prefix);

  struct PrefixCounters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t ttl_exhausted = 0;
  };
  [[nodiscard]] const std::vector<PrefixCounters>& prefix_lanes() const {
    return lanes_;
  }

  // ---- queries ----

  [[nodiscard]] std::uint64_t updates_sent_total() const {
    return update_times_.size();
  }
  [[nodiscard]] std::uint64_t withdrawals_sent_total() const {
    return withdrawals_;
  }

  /// Latest update transmission at or after `from` (nullopt if none).
  [[nodiscard]] std::optional<sim::SimTime> last_update_at(
      sim::SimTime from) const;

  /// Count of updates sent at or after `from`.
  [[nodiscard]] std::uint64_t updates_sent_since(sim::SimTime from) const;

  /// Count of packets sent in [from, to].
  [[nodiscard]] std::uint64_t packets_sent_in(sim::SimTime from,
                                              sim::SimTime to) const;

  /// Count of TTL exhaustions at or after `from`.
  [[nodiscard]] std::uint64_t exhaustions_since(sim::SimTime from) const;

  /// First / last TTL exhaustion at or after `from`.
  [[nodiscard]] std::optional<sim::SimTime> first_exhaustion(
      sim::SimTime from) const;
  [[nodiscard]] std::optional<sim::SimTime> last_exhaustion(
      sim::SimTime from) const;

  /// Update transmissions bucketed into fixed-width time bins over
  /// [from, to): the convergence "activity profile" (MRAI rounds show up
  /// as periodic bursts). Bin i covers [from + i*width, from + (i+1)*width).
  [[nodiscard]] std::vector<std::uint64_t> update_activity(
      sim::SimTime from, sim::SimTime to, sim::SimTime bin_width) const;

  /// Same bucketing for TTL exhaustions.
  [[nodiscard]] std::vector<std::uint64_t> exhaustion_activity(
      sim::SimTime from, sim::SimTime to, sim::SimTime bin_width) const;

  [[nodiscard]] std::uint64_t delivered_total() const { return delivered_; }
  [[nodiscard]] std::uint64_t no_route_total() const { return no_route_; }
  [[nodiscard]] std::uint64_t link_down_total() const { return link_down_; }
  [[nodiscard]] std::uint64_t packets_sent_total() const {
    return send_times_.size();
  }

  /// Checkpoint every recorded series and counter: post-restore metrics
  /// queries must see the pre-checkpoint history (totals span the whole
  /// run, including the prelude).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::vector<sim::SimTime> update_times_;
  std::vector<sim::SimTime> send_times_;
  std::vector<sim::SimTime> exhaustion_times_;
  std::uint64_t withdrawals_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t no_route_ = 0;
  std::uint64_t link_down_ = 0;
  std::vector<PrefixCounters> lanes_;  // empty: lanes disabled
};

}  // namespace bgpsim::metrics
