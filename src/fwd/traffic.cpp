#include "fwd/traffic.hpp"

#include <algorithm>

namespace bgpsim::fwd {

void TrafficGenerator::start(const std::vector<net::NodeId>& sources,
                             sim::SimTime start) {
  running_ = true;
  if (config_.prefix_count > 1 && !sources.empty()) {
    // Round-robin cursors: source s starts at prefix s % P, so the first
    // tick of the whole network already spreads over the prefix set.
    net::NodeId max_src = 0;
    for (net::NodeId src : sources) max_src = std::max(max_src, src);
    cursor_.assign(max_src + 1, 0);
    for (net::NodeId src : sources) cursor_[src] = src % config_.prefix_count;
  }
  for (net::NodeId src : sources) {
    sim::SimTime first = start;
    if (config_.stagger) {
      first += rng_.uniform_time(sim::SimTime::zero(), config_.interval);
    }
    sim_.schedule_at(first, [this, src] { tick(src); });
  }
}

void TrafficGenerator::tick(net::NodeId source) {
  if (!running_) return;
  ++sent_;
  net::Prefix prefix = 0;
  if (config_.prefix_count > 1) {
    prefix = static_cast<net::Prefix>(cursor_[source] % config_.prefix_count);
    cursor_[source] = prefix + 1;
  }
  if (on_send_) on_send_(source, prefix, sim_.now());
  plane_.inject(Injection{.source = source, .prefix = prefix,
                          .ttl = config_.ttl});
  sim_.schedule_after(config_.interval, [this, source] { tick(source); });
}

}  // namespace bgpsim::fwd
