#include "fwd/traffic.hpp"

namespace bgpsim::fwd {

void TrafficGenerator::start(const std::vector<net::NodeId>& sources,
                             sim::SimTime start) {
  running_ = true;
  for (net::NodeId src : sources) {
    sim::SimTime first = start;
    if (config_.stagger) {
      first += rng_.uniform_time(sim::SimTime::zero(), config_.interval);
    }
    sim_.schedule_at(first, [this, src] { tick(src); });
  }
}

void TrafficGenerator::tick(net::NodeId source) {
  if (!running_) return;
  ++sent_;
  if (on_send_) on_send_(source, sim_.now());
  plane_.inject(source, config_.ttl);
  sim_.schedule_after(config_.interval, [this, source] { tick(source); });
}

}  // namespace bgpsim::fwd
