// Constant-rate traffic sources.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fwd/engine.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "snap/codec.hpp"

namespace bgpsim::fwd {

/// Per the study (§4.2): every non-destination AS hosts one source sending
/// a constant 10 packets/s stream toward the destination — slow enough that
/// queueing is negligible, fast enough that any loop outliving 256 ms
/// catches packets.
struct TrafficConfig {
  sim::SimTime interval = sim::SimTime::millis(100);  // 10 pkt/s
  int ttl = kDefaultTtl;
  /// Desynchronize sources: each source's first packet is offset by a
  /// uniform fraction of the interval (so all sources don't fire the same
  /// microsecond).
  bool stagger = true;
  /// Prefixes to spread traffic over (multi-prefix runs). Each source
  /// round-robins its packets over prefixes 0..prefix_count-1 starting at
  /// source % prefix_count — deterministic, no RNG draw. 1 (the default)
  /// injects every packet for the primary prefix, exactly as before.
  std::size_t prefix_count = 1;
};

/// Drives a set of CBR sources injecting into a DataPlane.
class TrafficGenerator {
 public:
  /// Reports every injection (time-stamped packet-sent record). The one
  /// prefix-aware hook: single-prefix runs always report prefix 0.
  using SendHook = std::function<void(net::NodeId source, net::Prefix prefix,
                                      sim::SimTime when)>;
  /// Legacy prefix-blind hook signature (see the deprecated overload).
  using LegacySendHook =
      std::function<void(net::NodeId source, sim::SimTime when)>;

  TrafficGenerator(sim::Simulator& simulator, DataPlane& plane,
                   TrafficConfig config, sim::Rng rng)
      : sim_{simulator}, plane_{plane}, config_{config}, rng_{std::move(rng)} {}

  void set_send_hook(SendHook h) { on_send_ = std::move(h); }

  [[deprecated("the send hook is prefix-aware now — take (source, prefix, "
               "when); single-prefix runs report prefix 0")]] void
  set_send_hook(LegacySendHook h) {
    on_send_ = [h = std::move(h)](net::NodeId source, net::Prefix,
                                  sim::SimTime when) { h(source, when); };
  }

  [[deprecated("use set_send_hook — the one hook carries the prefix "
               "now")]] void
  set_prefix_send_hook(SendHook h) {
    on_send_ = std::move(h);
  }

  /// Begin sending from every node in `sources` at time `start`.
  void start(const std::vector<net::NodeId>& sources, sim::SimTime start);

  /// Stop all sources (takes effect at the current simulation time; already
  /// scheduled next-injections are suppressed).
  void stop() { running_ = false; }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

  /// Checkpoint the stagger RNG and send counters. Per-source tick chains
  /// are scheduled closures: preserved in place by an in-run checkpoint,
  /// not yet started at a pre-traffic (quiescent) one. Prefix cursors are
  /// written only in multi-prefix mode, so single-prefix bytes are
  /// unchanged.
  void save_state(snap::Writer& w) const {
    snap::write_rng(w, rng_);
    w.b(running_);
    w.u64(sent_);
    if (config_.prefix_count > 1) {
      w.u64(cursor_.size());
      for (const std::uint64_t c : cursor_) w.u64(c);
    }
  }
  void restore_state(snap::Reader& r) {
    snap::read_rng(r, rng_);
    running_ = r.b();
    sent_ = r.u64();
    if (config_.prefix_count > 1) {
      cursor_.assign(static_cast<std::size_t>(r.u64()), 0);
      for (std::uint64_t& c : cursor_) c = r.u64();
    }
  }

 private:
  void tick(net::NodeId source);

  sim::Simulator& sim_;
  DataPlane& plane_;
  TrafficConfig config_;
  sim::Rng rng_;
  SendHook on_send_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  /// Per-source round-robin position over the prefix set (multi-prefix
  /// mode only; indexed by source id, sized at start()).
  std::vector<std::uint64_t> cursor_;
};

}  // namespace bgpsim::fwd
