// Constant-rate traffic sources.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fwd/engine.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "snap/codec.hpp"

namespace bgpsim::fwd {

/// Per the study (§4.2): every non-destination AS hosts one source sending
/// a constant 10 packets/s stream toward the destination — slow enough that
/// queueing is negligible, fast enough that any loop outliving 256 ms
/// catches packets.
struct TrafficConfig {
  sim::SimTime interval = sim::SimTime::millis(100);  // 10 pkt/s
  int ttl = kDefaultTtl;
  /// Desynchronize sources: each source's first packet is offset by a
  /// uniform fraction of the interval (so all sources don't fire the same
  /// microsecond).
  bool stagger = true;
};

/// Drives a set of CBR sources injecting into a DataPlane.
class TrafficGenerator {
 public:
  /// Reports every injection (time-stamped packet-sent record).
  using SendHook = std::function<void(net::NodeId source, sim::SimTime when)>;

  TrafficGenerator(sim::Simulator& simulator, DataPlane& plane,
                   TrafficConfig config, sim::Rng rng)
      : sim_{simulator}, plane_{plane}, config_{config}, rng_{std::move(rng)} {}

  void set_send_hook(SendHook h) { on_send_ = std::move(h); }

  /// Begin sending from every node in `sources` at time `start`.
  void start(const std::vector<net::NodeId>& sources, sim::SimTime start);

  /// Stop all sources (takes effect at the current simulation time; already
  /// scheduled next-injections are suppressed).
  void stop() { running_ = false; }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

  /// Checkpoint the stagger RNG and send counters. Per-source tick chains
  /// are scheduled closures: preserved in place by an in-run checkpoint,
  /// not yet started at a pre-traffic (quiescent) one.
  void save_state(snap::Writer& w) const {
    snap::write_rng(w, rng_);
    w.b(running_);
    w.u64(sent_);
  }
  void restore_state(snap::Reader& r) {
    snap::read_rng(r, rng_);
    running_ = r.b();
    sent_ = r.u64();
  }

 private:
  void tick(net::NodeId source);

  sim::Simulator& sim_;
  DataPlane& plane_;
  TrafficConfig config_;
  sim::Rng rng_;
  SendHook on_send_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace bgpsim::fwd
