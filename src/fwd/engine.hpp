// Hop-by-hop data-plane forwarding.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "fwd/fib.hpp"
#include "fwd/packet.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::fwd {

/// In-flight hop store backend. kRings (the default) keeps packets in
/// flat per-arrival-tick FIFO rings; kHeap is the (time, seq)
/// binary-heap reference. Pop order,
/// seq assignment, bridge arming, and trial digests are bit-identical
/// either way — the A/B lever behind BGPSIM_DATAPLANE_RINGS.
enum class PlaneBackend : std::uint8_t { kHeap = 0, kRings = 1 };

/// Resolve the backend for a new DataPlane: the process-wide override if
/// set, else the BGPSIM_DATAPLANE_RINGS environment knob (default rings).
[[nodiscard]] PlaneBackend default_plane_backend();

/// Process-wide backend override: 0 = heap, 1 = rings, -1 = clear (fall
/// back to the env knob). Mirrors sim::set_queue_backend_override — the
/// RunOptions engine drives it around a run via core::detail::
/// DataPlaneRingsGuard.
void set_plane_backend_override(int backend);
[[nodiscard]] int plane_backend_override();

/// Construction-time configuration of a DataPlane.
struct DataPlaneOptions {
  /// Dense prefix-indexed destination table: packets for prefix p
  /// terminate at destinations[p]. net::kInvalidNode marks a hole (no
  /// destination registered for that prefix).
  std::vector<net::NodeId> destinations;
  /// Hop-store backend; resolved from the override/env knob when the
  /// options object is built.
  PlaneBackend backend = default_plane_backend();

  /// The study's setting: one prefix (0), one destination.
  [[nodiscard]] static DataPlaneOptions single(net::NodeId destination) {
    DataPlaneOptions o;
    o.destinations.push_back(destination);
    return o;
  }
};

/// One packet origination request — the single inject() entry point.
struct Injection {
  net::NodeId source = net::kInvalidNode;
  net::Prefix prefix = 0;
  int ttl = kDefaultTtl;
};

/// Forwards packets hop by hop against the per-node FIBs.
///
/// Per the study: no nodal delay for data packets (slow packet rate keeps
/// queueing negligible), one TTL decrement per AS hop, 2 ms per link.
///
/// Because a scenario moves millions of packet hops, the engine keeps its
/// own store of in-flight hop events and surfaces only the earliest one
/// to the shared Simulator through its external event slot ("bridge").
/// The slot draws its FIFO tie-break seq from the simulator's counter, so
/// firing order against control-plane events is identical to scheduling a
/// real event. Two interchangeable stores exist (PlaneBackend): the ring
/// store appends each hop to the FIFO ring of its arrival tick (O(1), no
/// percolation) and drains whole tick cohorts in order; the heap store is
/// the per-event reference. Forwarding decisions are served from a
/// (node, prefix) cache stamp-validated against the FIB and topology
/// version counters, so the full FIB/link lookup runs once per routing
/// change instead of once per hop. Both stores reproduce the same
/// bridge-arming sequence (including the heap's re-arm-at-now while due
/// packets remain), so events_fired and every digest are bit-identical
/// across backends.
class DataPlane {
 public:
  /// Legacy per-packet fate callback (see set_fate_handler).
  using FateHandler = std::function<void(const Packet&, PacketFate,
                                         net::NodeId where, sim::SimTime when)>;

  DataPlane(sim::Simulator& simulator, const net::Topology& topology,
            std::vector<Fib>& fibs, DataPlaneOptions options);

  [[deprecated("use DataPlane(sim, topo, fibs, DataPlaneOptions) — "
               "DataPlaneOptions::single(destination) for the one-prefix "
               "case")]] DataPlane(sim::Simulator& simulator,
                                  const net::Topology& topology,
                                  std::vector<Fib>& fibs,
                                  net::NodeId destination, net::Prefix prefix);

  [[deprecated("pass every destination in DataPlaneOptions::destinations "
               "at construction")]] void
  add_destination(net::Prefix prefix, net::NodeId node) {
    register_destination(prefix, node);
  }

  /// Attach the (non-owning) terminal-fate consumer: one on_fates call
  /// per drained tick. Null detaches.
  void set_fate_sink(FateSink* sink) { sink_ = sink; }

  [[deprecated("implement FateSink and use set_fate_sink — fates now "
               "arrive batched per drained tick")]] void
  set_fate_handler(FateHandler h);

  /// Originate a fresh packet; returns its id. The injection's prefix
  /// must have a registered destination.
  std::uint64_t inject(const Injection& injection);

  [[deprecated("use inject(Injection{.source = ..., .ttl = ...})")]]
  std::uint64_t inject(net::NodeId source, int ttl = kDefaultTtl) {
    return inject_impl(legacy_primary_, source, ttl);
  }

  [[deprecated("use inject(Injection{.source = ..., .prefix = ..., "
               ".ttl = ...})")]]
  std::uint64_t inject_for(net::Prefix prefix, net::NodeId source,
                           int ttl = kDefaultTtl) {
    return inject_impl(prefix, source, ttl);
  }

  [[nodiscard]] PlaneBackend backend() const { return backend_; }

  /// Packets created but not yet terminated.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  struct Counters {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t ttl_exhausted = 0;
    std::uint64_t no_route = 0;
    std::uint64_t link_down = 0;
    std::uint64_t hops = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Checkpoint the hop store, id/seq counters, packet counters, and the
  /// bridge bookkeeping. Events are written in ascending (at, seq) order,
  /// so the bytes are identical under either backend (snapshots are
  /// backend-portable both ways).
  void save_state(snap::Writer& w) const;

  /// Inverse of save_state, replacing the hop-store contents. Valid in
  /// place (the bridge closure, if armed, is still scheduled and
  /// unchanged) or into a fresh plane restored at quiescence (empty
  /// store, bridge unarmed).
  void restore_state(snap::Reader& r);

 private:
  struct HopEvent {
    sim::SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    net::NodeId node;   // packet is arriving at this node
    Packet packet;
    friend bool operator>(const HopEvent& a, const HopEvent& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// All packets arriving at one exact timestamp, in push (= seq) order.
  /// head marks the next undelivered packet during a drain.
  struct TickRing {
    sim::SimTime at;
    std::size_t head = 0;
    std::vector<HopEvent> items;
  };

  /// One routing decision for a (node, prefix) pair.
  struct Decision {
    enum class Kind : std::uint8_t { kDeliver, kNoRoute, kLinkDown, kForward };
    Kind kind = Kind::kNoRoute;
    net::NodeId next_hop = net::kInvalidNode;
    sim::SimTime delay;
  };

  /// A memoized Decision, valid while the owning node's FIB version and
  /// the topology's state version both still match. Zero stamps (the
  /// fresh-cache state) can never validate — both counters start at 1.
  struct CachedDecision {
    std::uint64_t fib_stamp = 0;
    std::uint64_t topo_stamp = 0;
    Decision d;
  };

  void register_destination(net::Prefix prefix, net::NodeId node);
  std::uint64_t inject_impl(net::Prefix prefix, net::NodeId source, int ttl);
  void arrive(net::NodeId node, Packet packet);
  Decision decide(net::NodeId node, net::Prefix prefix) const;
  const Decision& cached_decide(net::NodeId node, net::Prefix prefix) const;
  void finish(const Packet& p, PacketFate fate, net::NodeId where);
  void flush_fates();
  void push_hop(sim::SimTime at, net::NodeId node, Packet packet);
  std::vector<HopEvent> pooled_items();
  void ring_insert(HopEvent ev);
  [[nodiscard]] const sim::SimTime* next_pending_at() const;
  void rearm();
  void drain_due();

  sim::Simulator& sim_;
  const net::Topology& topo_;
  std::vector<Fib>& fibs_;
  std::vector<net::NodeId> destinations_;  // prefix-indexed, dense
  net::Prefix legacy_primary_ = 0;         // deprecated inject()'s prefix
  FateSink* sink_ = nullptr;
  std::unique_ptr<FateSink> legacy_adapter_;  // owns set_fate_handler's shim
  std::vector<FateRecord> batch_;             // fates of the current tick

  PlaneBackend backend_;
  std::priority_queue<HopEvent, std::vector<HopEvent>, std::greater<>> heap_;
  std::deque<TickRing> rings_;
  /// Retired cohort storage, recycled so the steady-state ring insert
  /// never allocates (cohorts are frequently size 1 — every fresh vector
  /// would otherwise be a malloc per hop).
  std::vector<std::vector<HopEvent>> ring_pool_;
  /// (node × prefix) decision cache, stamp-validated against the FIB and
  /// topology version counters; rebuilt whenever the destination table
  /// grows. Shared by both backends, so it cannot skew the A/B.
  mutable std::vector<CachedDecision> cache_;
  mutable std::size_t cache_stride_ = 0;  // == destinations_.size()

  std::uint64_t next_seq_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::size_t in_flight_ = 0;
  Counters counters_;

  bool bridge_armed_ = false;
  sim::SimTime bridge_time_;
};

}  // namespace bgpsim::fwd
