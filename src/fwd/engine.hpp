// Hop-by-hop data-plane forwarding.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "fwd/fib.hpp"
#include "fwd/packet.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::fwd {

/// Forwards packets hop by hop against the per-node FIBs.
///
/// Per the study: no nodal delay for data packets (slow packet rate keeps
/// queueing negligible), one TTL decrement per AS hop, 2 ms per link.
///
/// Because a scenario moves millions of packet hops, the engine keeps its
/// own flat binary heap of packet events and surfaces only the earliest one
/// to the shared Simulator through its external event slot ("bridge").
/// A hop then costs one local heap push/pop; arming the bridge is a few
/// stores — no event-queue traffic, no allocation. The slot draws its
/// FIFO tie-break seq from the simulator's counter, so firing order
/// against control-plane events is identical to scheduling a real event.
class DataPlane {
 public:
  using FateHandler = std::function<void(const Packet&, PacketFate,
                                         net::NodeId where, sim::SimTime when)>;

  /// Single-destination plane (the study's setting): packets for `prefix`
  /// terminate at `destination`.
  DataPlane(sim::Simulator& simulator, const net::Topology& topology,
            std::vector<Fib>& fibs, net::NodeId destination,
            net::Prefix prefix);

  /// Register a further destination prefix (multi-destination scenarios).
  void add_destination(net::Prefix prefix, net::NodeId node);

  /// Invoked once per packet at its terminal event.
  void set_fate_handler(FateHandler h) { on_fate_ = std::move(h); }

  /// Originate a fresh packet at `source` for the primary prefix.
  std::uint64_t inject(net::NodeId source, int ttl = kDefaultTtl);

  /// Originate a fresh packet at `source` for an arbitrary registered
  /// prefix. Returns its id.
  std::uint64_t inject_for(net::Prefix prefix, net::NodeId source,
                           int ttl = kDefaultTtl);

  /// Packets created but not yet terminated.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  struct Counters {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t ttl_exhausted = 0;
    std::uint64_t no_route = 0;
    std::uint64_t link_down = 0;
    std::uint64_t hops = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Checkpoint packet-event heap, id/seq counters, packet counters, and
  /// the bridge bookkeeping (sorted heap order: deterministic bytes).
  void save_state(snap::Writer& w) const;

  /// Inverse of save_state, replacing the heap contents. Valid in place
  /// (the bridge closure, if armed, is still scheduled and unchanged) or
  /// into a fresh plane restored at quiescence (empty heap, bridge unarmed).
  void restore_state(snap::Reader& r);

 private:
  struct HopEvent {
    sim::SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    net::NodeId node;   // packet is arriving at this node
    Packet packet;
    friend bool operator>(const HopEvent& a, const HopEvent& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void arrive(net::NodeId node, Packet packet);
  void finish(const Packet& p, PacketFate fate, net::NodeId where);
  void push_hop(sim::SimTime at, net::NodeId node, Packet packet);
  void rearm();
  void drain_due();

  sim::Simulator& sim_;
  const net::Topology& topo_;
  std::vector<Fib>& fibs_;
  std::unordered_map<net::Prefix, net::NodeId> destinations_;
  net::Prefix primary_prefix_;
  FateHandler on_fate_;

  std::priority_queue<HopEvent, std::vector<HopEvent>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::size_t in_flight_ = 0;
  Counters counters_;

  net::NodeId primary_destination_ = net::kInvalidNode;
  bool bridge_armed_ = false;
  sim::SimTime bridge_time_;
};

}  // namespace bgpsim::fwd
