// Forwarding Information Base: per-node next-hop table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/types.hpp"
#include "snap/codec.hpp"

namespace bgpsim::fwd {

/// One node's next-hop table, written by the routing protocol and read by
/// the data plane on every packet hop.
///
/// An observer hook reports changes; the metrics loop detector uses it to
/// maintain the global next-hop graph.
class Fib {
 public:
  using Observer = std::function<void(net::Prefix prefix,
                                      std::optional<net::NodeId> previous,
                                      std::optional<net::NodeId> current)>;

  /// Install (or replace) the next hop for `prefix`. Returns true if the
  /// entry changed.
  bool set_next_hop(net::Prefix prefix, net::NodeId next_hop);

  /// Remove the route for `prefix`. Returns true if an entry was removed.
  bool clear_route(net::Prefix prefix);

  [[nodiscard]] std::optional<net::NodeId> next_hop(net::Prefix prefix) const;

  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

  /// Monotonic counter bumped by every route change (a no-op write keeps
  /// it still). Readers — the data plane's decision cache — compare
  /// stamps; the value is a process-local cache artifact and is never
  /// serialized.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Replace every observer with `obs` (the historical single-observer
  /// behaviour — metrics::LoopDetector::attach relies on it).
  void set_observer(Observer obs) {
    observers_.clear();
    observers_.push_back(std::move(obs));
  }

  /// Subscribe in addition to the observers already installed.
  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  /// Checkpoint the route table (sorted by prefix for determinism).
  void save_state(snap::Writer& w) const;

  /// Restore by *reconciling*: install every checkpointed entry and clear
  /// every entry absent from the checkpoint, all through the normal
  /// set_next_hop / clear_route paths so observers (loop detector, oracle)
  /// rebuild their mirrors. Restoring a state identical to the current one
  /// therefore notifies nobody — the property the in-place round-trip
  /// probes rely on.
  void restore_state(snap::Reader& r);

 private:
  void notify(net::Prefix prefix, std::optional<net::NodeId> previous,
              std::optional<net::NodeId> current) const;

  std::unordered_map<net::Prefix, net::NodeId> routes_;
  std::vector<Observer> observers_;
  /// Starts above 0 so a zero-initialized cache stamp can never validate.
  std::uint64_t version_ = 1;
  /// One-entry lookup cache. The data plane asks for the same (single)
  /// prefix on every packet hop; this skips the hash probe. Mutators keep
  /// it coherent, so it is invisible to observers and checkpoints.
  mutable net::Prefix hot_prefix_ = 0;
  mutable net::NodeId hot_next_hop_ = net::kInvalidNode;
  mutable bool hot_valid_ = false;
};

}  // namespace bgpsim::fwd
