// Forwarding Information Base: per-node next-hop table.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "net/types.hpp"

namespace bgpsim::fwd {

/// One node's next-hop table, written by the routing protocol and read by
/// the data plane on every packet hop.
///
/// An observer hook reports changes; the metrics loop detector uses it to
/// maintain the global next-hop graph.
class Fib {
 public:
  using Observer = std::function<void(net::Prefix prefix,
                                      std::optional<net::NodeId> previous,
                                      std::optional<net::NodeId> current)>;

  /// Install (or replace) the next hop for `prefix`. Returns true if the
  /// entry changed.
  bool set_next_hop(net::Prefix prefix, net::NodeId next_hop);

  /// Remove the route for `prefix`. Returns true if an entry was removed.
  bool clear_route(net::Prefix prefix);

  [[nodiscard]] std::optional<net::NodeId> next_hop(net::Prefix prefix) const;

  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  std::unordered_map<net::Prefix, net::NodeId> routes_;
  Observer observer_;
};

}  // namespace bgpsim::fwd
