#include "fwd/fib.hpp"

namespace bgpsim::fwd {

bool Fib::set_next_hop(net::Prefix prefix, net::NodeId next_hop) {
  auto [it, inserted] = routes_.try_emplace(prefix, next_hop);
  if (!inserted && it->second == next_hop) return false;
  const std::optional<net::NodeId> previous =
      inserted ? std::nullopt : std::optional{it->second};
  it->second = next_hop;
  notify(prefix, previous, next_hop);
  return true;
}

bool Fib::clear_route(net::Prefix prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  const net::NodeId previous = it->second;
  routes_.erase(it);
  notify(prefix, previous, std::nullopt);
  return true;
}

std::optional<net::NodeId> Fib::next_hop(net::Prefix prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

void Fib::notify(net::Prefix prefix, std::optional<net::NodeId> previous,
                 std::optional<net::NodeId> current) const {
  for (const auto& observer : observers_) {
    if (observer) observer(prefix, previous, current);
  }
}

}  // namespace bgpsim::fwd
