#include "fwd/fib.hpp"

namespace bgpsim::fwd {

bool Fib::set_next_hop(net::Prefix prefix, net::NodeId next_hop) {
  auto [it, inserted] = routes_.try_emplace(prefix, next_hop);
  if (!inserted && it->second == next_hop) return false;
  const std::optional<net::NodeId> previous =
      inserted ? std::nullopt : std::optional{it->second};
  it->second = next_hop;
  if (observer_) observer_(prefix, previous, next_hop);
  return true;
}

bool Fib::clear_route(net::Prefix prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  const net::NodeId previous = it->second;
  routes_.erase(it);
  if (observer_) observer_(prefix, previous, std::nullopt);
  return true;
}

std::optional<net::NodeId> Fib::next_hop(net::Prefix prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bgpsim::fwd
