#include "fwd/fib.hpp"

#include <algorithm>
#include <map>

namespace bgpsim::fwd {

bool Fib::set_next_hop(net::Prefix prefix, net::NodeId next_hop) {
  auto [it, inserted] = routes_.try_emplace(prefix, next_hop);
  if (!inserted && it->second == next_hop) return false;
  const std::optional<net::NodeId> previous =
      inserted ? std::nullopt : std::optional{it->second};
  it->second = next_hop;
  ++version_;
  if (hot_valid_ && hot_prefix_ == prefix) hot_next_hop_ = next_hop;
  notify(prefix, previous, next_hop);
  return true;
}

bool Fib::clear_route(net::Prefix prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  const net::NodeId previous = it->second;
  routes_.erase(it);
  ++version_;
  if (hot_valid_ && hot_prefix_ == prefix) hot_valid_ = false;
  notify(prefix, previous, std::nullopt);
  return true;
}

std::optional<net::NodeId> Fib::next_hop(net::Prefix prefix) const {
  if (hot_valid_ && hot_prefix_ == prefix) return hot_next_hop_;
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  hot_prefix_ = prefix;
  hot_next_hop_ = it->second;
  hot_valid_ = true;
  return it->second;
}

void Fib::save_state(snap::Writer& w) const {
  std::vector<std::pair<net::Prefix, net::NodeId>> entries{routes_.begin(),
                                                           routes_.end()};
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [prefix, hop] : entries) {
    w.u32(prefix);
    w.u32(hop);
  }
}

void Fib::restore_state(snap::Reader& r) {
  std::map<net::Prefix, net::NodeId> desired;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::Prefix prefix = r.u32();
    desired[prefix] = r.u32();
  }
  // Clear stale entries first (sorted, for a deterministic notify order),
  // then install the checkpointed ones.
  std::vector<net::Prefix> stale;
  for (const auto& [prefix, hop] : routes_) {
    if (!desired.contains(prefix)) stale.push_back(prefix);
  }
  std::sort(stale.begin(), stale.end());
  for (const net::Prefix prefix : stale) clear_route(prefix);
  for (const auto& [prefix, hop] : desired) set_next_hop(prefix, hop);
}

void Fib::notify(net::Prefix prefix, std::optional<net::NodeId> previous,
                 std::optional<net::NodeId> current) const {
  for (const auto& observer : observers_) {
    if (observer) observer(prefix, previous, current);
  }
}

}  // namespace bgpsim::fwd
