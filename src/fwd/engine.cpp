#include "fwd/engine.hpp"

#include <cassert>
#include <utility>

namespace bgpsim::fwd {

DataPlane::DataPlane(sim::Simulator& simulator, const net::Topology& topology,
                     std::vector<Fib>& fibs, net::NodeId destination,
                     net::Prefix prefix)
    : sim_{simulator},
      topo_{topology},
      fibs_{fibs},
      primary_prefix_{prefix},
      primary_destination_{destination} {
  assert(fibs_.size() == topo_.node_count());
  destinations_.emplace(prefix, destination);
  sim_.set_external_handler([this] {
    bridge_armed_ = false;
    drain_due();
    rearm();
  });
}

void DataPlane::add_destination(net::Prefix prefix, net::NodeId node) {
  destinations_[prefix] = node;
  if (prefix == primary_prefix_) primary_destination_ = node;
}

std::uint64_t DataPlane::inject(net::NodeId source, int ttl) {
  return inject_for(primary_prefix_, source, ttl);
}

std::uint64_t DataPlane::inject_for(net::Prefix prefix, net::NodeId source,
                                    int ttl) {
  assert(destinations_.contains(prefix));
  Packet p;
  p.id = next_packet_id_++;
  p.source = source;
  p.prefix = prefix;
  p.ttl = ttl;
  p.sent_at = sim_.now();
  ++counters_.injected;
  ++in_flight_;
  // The packet "arrives" at its own source with no delay.
  arrive(source, p);
  return p.id;
}

void DataPlane::arrive(net::NodeId node, Packet packet) {
  // Single-destination scenarios (the study's setting) never touch the
  // map: every packet is for the primary prefix.
  if (packet.prefix == primary_prefix_) {
    if (node == primary_destination_) {
      finish(packet, PacketFate::kDelivered, node);
      return;
    }
  } else {
    auto dest = destinations_.find(packet.prefix);
    if (dest != destinations_.end() && node == dest->second) {
      finish(packet, PacketFate::kDelivered, node);
      return;
    }
  }
  const std::optional<net::NodeId> nh = fibs_[node].next_hop(packet.prefix);
  if (!nh) {
    finish(packet, PacketFate::kNoRoute, node);
    return;
  }
  const auto link = topo_.link_between(node, *nh);
  if (!link || !topo_.link(*link).up) {
    finish(packet, PacketFate::kLinkDown, node);
    return;
  }
  // One TTL decrement per AS hop (the study's loop indicator).
  if (--packet.ttl <= 0) {
    finish(packet, PacketFate::kTtlExhausted, node);
    return;
  }
  ++packet.hops_taken;
  ++counters_.hops;
  push_hop(sim_.now() + topo_.link(*link).delay, *nh, std::move(packet));
}

void DataPlane::finish(const Packet& p, PacketFate fate, net::NodeId where) {
  assert(in_flight_ > 0);
  --in_flight_;
  switch (fate) {
    case PacketFate::kDelivered:
      ++counters_.delivered;
      break;
    case PacketFate::kTtlExhausted:
      ++counters_.ttl_exhausted;
      break;
    case PacketFate::kNoRoute:
      ++counters_.no_route;
      break;
    case PacketFate::kLinkDown:
      ++counters_.link_down;
      break;
  }
  if (on_fate_) on_fate_(p, fate, where, sim_.now());
}

void DataPlane::save_state(snap::Writer& w) const {
  w.u64(next_seq_);
  w.u64(next_packet_id_);
  w.u64(in_flight_);
  w.u64(counters_.injected);
  w.u64(counters_.delivered);
  w.u64(counters_.ttl_exhausted);
  w.u64(counters_.no_route);
  w.u64(counters_.link_down);
  w.u64(counters_.hops);
  w.b(bridge_armed_);
  w.time(bridge_time_);
  auto heap = heap_;  // drain a copy: ascending, deterministic order
  w.u64(heap.size());
  while (!heap.empty()) {
    const HopEvent& ev = heap.top();
    w.time(ev.at);
    w.u64(ev.seq);
    w.u32(ev.node);
    w.u64(ev.packet.id);
    w.u32(ev.packet.source);
    w.u32(ev.packet.prefix);
    w.i64(ev.packet.ttl);
    w.time(ev.packet.sent_at);
    w.i64(ev.packet.hops_taken);
    heap.pop();
  }
}

void DataPlane::restore_state(snap::Reader& r) {
  next_seq_ = r.u64();
  next_packet_id_ = r.u64();
  in_flight_ = static_cast<std::size_t>(r.u64());
  counters_.injected = r.u64();
  counters_.delivered = r.u64();
  counters_.ttl_exhausted = r.u64();
  counters_.no_route = r.u64();
  counters_.link_down = r.u64();
  counters_.hops = r.u64();
  bridge_armed_ = r.b();
  bridge_time_ = r.time();
  heap_ = {};
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    HopEvent ev;
    ev.at = r.time();
    ev.seq = r.u64();
    ev.node = r.u32();
    ev.packet.id = r.u64();
    ev.packet.source = r.u32();
    ev.packet.prefix = r.u32();
    ev.packet.ttl = static_cast<int>(r.i64());
    ev.packet.sent_at = r.time();
    ev.packet.hops_taken = static_cast<int>(r.i64());
    heap_.push(std::move(ev));
  }
}

void DataPlane::push_hop(sim::SimTime at, net::NodeId node, Packet packet) {
  heap_.push(HopEvent{at, next_seq_++, node, std::move(packet)});
  rearm();
}

void DataPlane::rearm() {
  if (heap_.empty()) return;
  const sim::SimTime next = heap_.top().at;
  if (bridge_armed_ && bridge_time_ <= next) return;  // armed early enough
  // arm_external replaces any previous arming with a fresh tie-break seq
  // — exactly the ordering the old cancel-and-reschedule produced.
  bridge_armed_ = true;
  bridge_time_ = next;
  sim_.arm_external(next);
}

void DataPlane::drain_due() {
  const sim::SimTime now = sim_.now();
  while (!heap_.empty() && heap_.top().at <= now) {
    // Copy out before pop; arrive() may push new hops.
    HopEvent ev = heap_.top();
    heap_.pop();
    arrive(ev.node, std::move(ev.packet));
  }
}

}  // namespace bgpsim::fwd
