#include "fwd/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

#include "sim/env.hpp"

namespace bgpsim::fwd {

namespace {
// -1 = no override (fall back to the env knob on each read).
std::atomic<int> g_plane_backend_override{-1};
}  // namespace

void set_plane_backend_override(int backend) {
  g_plane_backend_override.store(backend, std::memory_order_release);
}

int plane_backend_override() {
  return g_plane_backend_override.load(std::memory_order_acquire);
}

PlaneBackend default_plane_backend() {
  const int o = plane_backend_override();
  if (o >= 0) return o != 0 ? PlaneBackend::kRings : PlaneBackend::kHeap;
  return sim::env_u64_or("BGPSIM_DATAPLANE_RINGS", 1) != 0
             ? PlaneBackend::kRings
             : PlaneBackend::kHeap;
}

namespace {

/// Adapter behind the deprecated set_fate_handler: unrolls each batch
/// into the legacy per-packet callback.
class LegacyFateAdapter final : public FateSink {
 public:
  explicit LegacyFateAdapter(DataPlane::FateHandler handler)
      : handler_{std::move(handler)} {}
  void on_fates(std::span<const FateRecord> batch) override {
    for (const FateRecord& r : batch) {
      handler_(r.packet, r.fate, r.where, r.when);
    }
  }

 private:
  DataPlane::FateHandler handler_;
};

}  // namespace

DataPlane::DataPlane(sim::Simulator& simulator, const net::Topology& topology,
                     std::vector<Fib>& fibs, DataPlaneOptions options)
    : sim_{simulator},
      topo_{topology},
      fibs_{fibs},
      destinations_{std::move(options.destinations)},
      backend_{options.backend} {
  assert(fibs_.size() == topo_.node_count());
  assert(!destinations_.empty());
  sim_.set_external_handler([this] {
    bridge_armed_ = false;
    drain_due();
    rearm();
    flush_fates();
  });
}

DataPlane::DataPlane(sim::Simulator& simulator, const net::Topology& topology,
                     std::vector<Fib>& fibs, net::NodeId destination,
                     net::Prefix prefix)
    : DataPlane{simulator, topology, fibs, [&] {
                  DataPlaneOptions o;
                  o.destinations.assign(prefix + 1, net::kInvalidNode);
                  o.destinations[prefix] = destination;
                  return o;
                }()} {
  legacy_primary_ = prefix;
}

void DataPlane::register_destination(net::Prefix prefix, net::NodeId node) {
  if (prefix >= destinations_.size()) {
    destinations_.resize(prefix + 1, net::kInvalidNode);
  }
  destinations_[prefix] = node;
  // The destination table has no version counter; drop the whole decision
  // cache instead (registration happens at setup, never per hop).
  cache_.clear();
  cache_stride_ = 0;
}

void DataPlane::set_fate_handler(FateHandler h) {
  legacy_adapter_ = std::make_unique<LegacyFateAdapter>(std::move(h));
  sink_ = legacy_adapter_.get();
}

std::uint64_t DataPlane::inject(const Injection& injection) {
  return inject_impl(injection.prefix, injection.source, injection.ttl);
}

std::uint64_t DataPlane::inject_impl(net::Prefix prefix, net::NodeId source,
                                     int ttl) {
  assert(prefix < destinations_.size() &&
         destinations_[prefix] != net::kInvalidNode);
  Packet p;
  p.id = next_packet_id_++;
  p.source = source;
  p.prefix = prefix;
  p.ttl = ttl;
  p.sent_at = sim_.now();
  ++counters_.injected;
  ++in_flight_;
  // The packet "arrives" at its own source with no delay.
  arrive(source, p);
  flush_fates();
  return p.id;
}

DataPlane::Decision DataPlane::decide(net::NodeId node,
                                      net::Prefix prefix) const {
  Decision d;
  if (prefix < destinations_.size() && destinations_[prefix] == node) {
    d.kind = Decision::Kind::kDeliver;
    return d;
  }
  const std::optional<net::NodeId> nh = fibs_[node].next_hop(prefix);
  if (!nh) {
    d.kind = Decision::Kind::kNoRoute;
    return d;
  }
  const auto link = topo_.link_between(node, *nh);
  if (!link || !topo_.link(*link).up) {
    d.kind = Decision::Kind::kLinkDown;
    return d;
  }
  d.kind = Decision::Kind::kForward;
  d.next_hop = *nh;
  d.delay = topo_.link(*link).delay;
  return d;
}

const DataPlane::Decision& DataPlane::cached_decide(net::NodeId node,
                                                    net::Prefix prefix) const {
  if (cache_stride_ != destinations_.size()) {
    cache_stride_ = destinations_.size();
    cache_.assign(topo_.node_count() * cache_stride_, CachedDecision{});
  }
  CachedDecision& e = cache_[node * cache_stride_ + prefix];
  const std::uint64_t fib_now = fibs_[node].version();
  const std::uint64_t topo_now = topo_.state_version();
  if (e.fib_stamp != fib_now || e.topo_stamp != topo_now) {
    e.d = decide(node, prefix);
    e.fib_stamp = fib_now;
    e.topo_stamp = topo_now;
  }
  return e.d;
}

void DataPlane::arrive(net::NodeId node, Packet packet) {
  const Decision& d = cached_decide(node, packet.prefix);

  switch (d.kind) {
    case Decision::Kind::kDeliver:
      finish(packet, PacketFate::kDelivered, node);
      return;
    case Decision::Kind::kNoRoute:
      finish(packet, PacketFate::kNoRoute, node);
      return;
    case Decision::Kind::kLinkDown:
      finish(packet, PacketFate::kLinkDown, node);
      return;
    case Decision::Kind::kForward:
      break;
  }
  // One TTL decrement per AS hop (the study's loop indicator).
  if (--packet.ttl <= 0) {
    finish(packet, PacketFate::kTtlExhausted, node);
    return;
  }
  ++packet.hops_taken;
  ++counters_.hops;
  push_hop(sim_.now() + d.delay, d.next_hop, std::move(packet));
}

void DataPlane::finish(const Packet& p, PacketFate fate, net::NodeId where) {
  assert(in_flight_ > 0);
  --in_flight_;
  switch (fate) {
    case PacketFate::kDelivered:
      ++counters_.delivered;
      break;
    case PacketFate::kTtlExhausted:
      ++counters_.ttl_exhausted;
      break;
    case PacketFate::kNoRoute:
      ++counters_.no_route;
      break;
    case PacketFate::kLinkDown:
      ++counters_.link_down;
      break;
  }
  if (sink_ != nullptr) {
    batch_.push_back(FateRecord{p, fate, where, sim_.now()});
  }
}

void DataPlane::flush_fates() {
  if (batch_.empty()) return;
  sink_->on_fates(batch_);
  batch_.clear();
}

void DataPlane::save_state(snap::Writer& w) const {
  assert(batch_.empty());  // saves run from control events, never mid-drain
  w.u64(next_seq_);
  w.u64(next_packet_id_);
  w.u64(in_flight_);
  w.u64(counters_.injected);
  w.u64(counters_.delivered);
  w.u64(counters_.ttl_exhausted);
  w.u64(counters_.no_route);
  w.u64(counters_.link_down);
  w.u64(counters_.hops);
  w.b(bridge_armed_);
  w.time(bridge_time_);
  const auto write_event = [&w](const HopEvent& ev) {
    w.time(ev.at);
    w.u64(ev.seq);
    w.u32(ev.node);
    w.u64(ev.packet.id);
    w.u32(ev.packet.source);
    w.u32(ev.packet.prefix);
    w.i64(ev.packet.ttl);
    w.time(ev.packet.sent_at);
    w.i64(ev.packet.hops_taken);
  };
  if (backend_ == PlaneBackend::kRings) {
    // Rings are already ascending by (at, seq): tick cohorts are sorted
    // and each cohort holds its packets in seq order — the same canonical
    // bytes the heap path writes.
    std::uint64_t n = 0;
    for (const TickRing& r : rings_) n += r.items.size() - r.head;
    w.u64(n);
    for (const TickRing& r : rings_) {
      for (std::size_t i = r.head; i < r.items.size(); ++i) {
        write_event(r.items[i]);
      }
    }
  } else {
    auto heap = heap_;  // drain a copy: ascending, deterministic order
    w.u64(heap.size());
    while (!heap.empty()) {
      write_event(heap.top());
      heap.pop();
    }
  }
}

void DataPlane::restore_state(snap::Reader& r) {
  next_seq_ = r.u64();
  next_packet_id_ = r.u64();
  in_flight_ = static_cast<std::size_t>(r.u64());
  counters_.injected = r.u64();
  counters_.delivered = r.u64();
  counters_.ttl_exhausted = r.u64();
  counters_.no_route = r.u64();
  counters_.link_down = r.u64();
  counters_.hops = r.u64();
  bridge_armed_ = r.b();
  bridge_time_ = r.time();
  heap_ = {};
  rings_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    HopEvent ev;
    ev.at = r.time();
    ev.seq = r.u64();
    ev.node = r.u32();
    ev.packet.id = r.u64();
    ev.packet.source = r.u32();
    ev.packet.prefix = r.u32();
    ev.packet.ttl = static_cast<int>(r.i64());
    ev.packet.sent_at = r.time();
    ev.packet.hops_taken = static_cast<int>(r.i64());
    if (backend_ == PlaneBackend::kRings) {
      ring_insert(std::move(ev));
    } else {
      heap_.push(std::move(ev));
    }
  }
}

void DataPlane::push_hop(sim::SimTime at, net::NodeId node, Packet packet) {
  if (backend_ == PlaneBackend::kRings) {
    // Steady-state fast path: construct the HopEvent once, directly in
    // its final cohort slot.
    std::vector<HopEvent>* items;
    if (!rings_.empty() && at == rings_.back().at) {
      items = &rings_.back().items;
    } else if (rings_.empty() || at > rings_.back().at) {
      rings_.push_back(TickRing{at, 0, pooled_items()});
      items = &rings_.back().items;
    } else {
      ring_insert(HopEvent{at, next_seq_++, node, std::move(packet)});
      rearm();
      return;
    }
    items->push_back(HopEvent{at, next_seq_++, node, std::move(packet)});
  } else {
    heap_.push(HopEvent{at, next_seq_++, node, std::move(packet)});
  }
  rearm();
}

std::vector<DataPlane::HopEvent> DataPlane::pooled_items() {
  if (ring_pool_.empty()) return {};
  std::vector<HopEvent> v = std::move(ring_pool_.back());
  ring_pool_.pop_back();
  return v;
}

void DataPlane::ring_insert(HopEvent ev) {
  // Uniform link delays make the back cohort the overwhelmingly common
  // target; anything else walks back from the end (heterogeneous delays
  // stay correct, they just pay a short scan).
  if (!rings_.empty() && ev.at == rings_.back().at) {
    rings_.back().items.push_back(std::move(ev));
    return;
  }
  if (rings_.empty() || ev.at > rings_.back().at) {
    rings_.push_back(TickRing{ev.at, 0, pooled_items()});
    rings_.back().items.push_back(std::move(ev));
    return;
  }
  auto it = rings_.end();
  while (it != rings_.begin() && std::prev(it)->at > ev.at) --it;
  if (it != rings_.begin() && std::prev(it)->at == ev.at) {
    std::prev(it)->items.push_back(std::move(ev));
    return;
  }
  TickRing fresh{ev.at, 0, pooled_items()};
  fresh.items.push_back(std::move(ev));
  rings_.insert(it, std::move(fresh));
}

const sim::SimTime* DataPlane::next_pending_at() const {
  if (backend_ == PlaneBackend::kRings) {
    // Only the front cohort can be part-drained; skip it once exhausted.
    for (const TickRing& r : rings_) {
      if (r.head < r.items.size()) return &r.at;
    }
    return nullptr;
  }
  return heap_.empty() ? nullptr : &heap_.top().at;
}

void DataPlane::rearm() {
  const sim::SimTime* next = next_pending_at();
  if (next == nullptr) return;
  if (bridge_armed_ && bridge_time_ <= *next) return;  // armed early enough
  // arm_external replaces any previous arming with a fresh tie-break seq
  // — exactly the ordering the old cancel-and-reschedule produced.
  bridge_armed_ = true;
  bridge_time_ = *next;
  sim_.arm_external(*next);
}

void DataPlane::drain_due() {
  const sim::SimTime now = sim_.now();
  if (backend_ == PlaneBackend::kRings) {
    while (!rings_.empty() && rings_.front().at <= now) {
      TickRing& front = rings_.front();
      if (front.head >= front.items.size()) {
        // Recycle the cohort's storage before retiring it.
        front.items.clear();
        ring_pool_.push_back(std::move(front.items));
        rings_.pop_front();
        continue;
      }
      // Copy out before advancing; arrive() may grow this cohort's vector
      // (zero-delay links) or insert new cohorts.
      HopEvent ev = std::move(front.items[front.head++]);
      arrive(ev.node, std::move(ev.packet));
    }
    return;
  }
  while (!heap_.empty() && heap_.top().at <= now) {
    // Copy out before pop; arrive() may push new hops.
    HopEvent ev = heap_.top();
    heap_.pop();
    arrive(ev.node, std::move(ev.packet));
  }
}

}  // namespace bgpsim::fwd
