// Data-plane packet and fate types.
#pragma once

#include <cstdint>
#include <span>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::fwd {

/// The study's initial TTL: 128 hops, i.e. a 256 ms lifetime at 2 ms/hop —
/// chosen so packets caught in a loop exhaust their TTL well within any
/// loop that lasts longer than a fraction of a second.
inline constexpr int kDefaultTtl = 128;

/// One IP packet abstracted to what the study measures.
struct Packet {
  std::uint64_t id = 0;
  net::NodeId source = net::kInvalidNode;
  net::Prefix prefix = 0;
  int ttl = kDefaultTtl;
  sim::SimTime sent_at;
  int hops_taken = 0;
};

/// Terminal outcome of a packet.
enum class PacketFate : std::uint8_t {
  kDelivered,      // reached the destination AS
  kTtlExhausted,   // dropped with TTL zero — the study's loop indicator
  kNoRoute,        // dropped at a node with no FIB entry
  kLinkDown,       // FIB pointed over a failed link
};

[[nodiscard]] constexpr const char* to_string(PacketFate f) {
  switch (f) {
    case PacketFate::kDelivered:
      return "delivered";
    case PacketFate::kTtlExhausted:
      return "ttl_exhausted";
    case PacketFate::kNoRoute:
      return "no_route";
    case PacketFate::kLinkDown:
      return "link_down";
  }
  return "?";
}

/// One terminal packet outcome: the packet in its final state (TTL and hop
/// count at the drop point), where and when it terminated, and why.
struct FateRecord {
  Packet packet;
  PacketFate fate = PacketFate::kDelivered;
  net::NodeId where = net::kInvalidNode;
  sim::SimTime when;
};

/// Batch consumer of terminal packet fates. The data plane collects every
/// fate of one drained tick (they all share `when`) and hands them over in
/// a single call — one virtual dispatch per tick instead of one
/// `std::function` invocation per packet. Synchronously terminating
/// injections arrive as their own (usually one-record) batch before
/// `inject` returns. Records are ordered by termination (FIFO within the
/// tick) and the span is only valid for the duration of the call.
class FateSink {
 public:
  virtual ~FateSink() = default;
  virtual void on_fates(std::span<const FateRecord> batch) = 0;
};

}  // namespace bgpsim::fwd
