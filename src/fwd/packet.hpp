// Data-plane packet and fate types.
#pragma once

#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::fwd {

/// The study's initial TTL: 128 hops, i.e. a 256 ms lifetime at 2 ms/hop —
/// chosen so packets caught in a loop exhaust their TTL well within any
/// loop that lasts longer than a fraction of a second.
inline constexpr int kDefaultTtl = 128;

/// One IP packet abstracted to what the study measures.
struct Packet {
  std::uint64_t id = 0;
  net::NodeId source = net::kInvalidNode;
  net::Prefix prefix = 0;
  int ttl = kDefaultTtl;
  sim::SimTime sent_at;
  int hops_taken = 0;
};

/// Terminal outcome of a packet.
enum class PacketFate : std::uint8_t {
  kDelivered,      // reached the destination AS
  kTtlExhausted,   // dropped with TTL zero — the study's loop indicator
  kNoRoute,        // dropped at a node with no FIB entry
  kLinkDown,       // FIB pointed over a failed link
};

[[nodiscard]] constexpr const char* to_string(PacketFate f) {
  switch (f) {
    case PacketFate::kDelivered:
      return "delivered";
    case PacketFate::kTtlExhausted:
      return "ttl_exhausted";
    case PacketFate::kNoRoute:
      return "no_route";
    case PacketFate::kLinkDown:
      return "link_down";
  }
  return "?";
}

}  // namespace bgpsim::fwd
