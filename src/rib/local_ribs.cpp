#include "rib/local_ribs.hpp"

#include <algorithm>

namespace bgpsim::rib {

const PeerColumn LocalRibs::kEmptyColumn{};

LocalRibs::LocalRibs(SpeakerId speakers) { ensure_speakers(speakers); }

void LocalRibs::ensure_speakers(SpeakerId count) {
  if (count <= speakers_) return;
  best_.resize(static_cast<std::size_t>(count) * stride_);
  adj_.resize(static_cast<std::size_t>(count) * stride_);
  speakers_ = count;
}

PrefixId LocalRibs::ensure_column(net::Prefix prefix) {
  const PrefixId id = table_.intern(prefix);
  if (id >= stride_) {
    regrow(std::max<std::uint32_t>({4, stride_ * 2, id + 1}));
  }
  return id;
}

void LocalRibs::regrow(std::uint32_t new_stride) {
  std::vector<bgp::AsPath> best(static_cast<std::size_t>(speakers_) *
                                new_stride);
  std::vector<PeerColumn> adj(static_cast<std::size_t>(speakers_) *
                              new_stride);
  for (SpeakerId s = 0; s < speakers_; ++s) {
    for (std::uint32_t id = 0; id < stride_; ++id) {
      best[static_cast<std::size_t>(s) * new_stride + id] =
          std::move(best_[slot(s, id)]);
      adj[static_cast<std::size_t>(s) * new_stride + id] =
          std::move(adj_[slot(s, id)]);
    }
  }
  best_ = std::move(best);
  adj_ = std::move(adj);
  stride_ = new_stride;
}

// ---- best-route plane ----------------------------------------------------

bool LocalRibs::set_best(SpeakerId s, net::Prefix prefix,
                         std::optional<bgp::AsPath> path) {
  const PrefixId id = ensure_column(prefix);
  bgp::AsPath& cell = best_[slot(s, id)];
  if (!path) {
    if (cell.empty()) return false;
    cell = bgp::AsPath{};
    return true;
  }
  if (!cell.empty() && cell == *path) return false;
  cell = std::move(*path);
  return true;
}

const bgp::AsPath* LocalRibs::best(SpeakerId s, net::Prefix prefix) const {
  const PrefixId id = table_.id_of(prefix);
  if (id == kInvalidPrefixId || id >= stride_) return nullptr;
  const bgp::AsPath& cell = best_[slot(s, id)];
  return cell.empty() ? nullptr : &cell;
}

std::vector<net::Prefix> LocalRibs::best_prefixes(SpeakerId s) const {
  std::vector<net::Prefix> out;
  const std::uint32_t columns =
      std::min<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  for (std::uint32_t id = 0; id < columns; ++id) {
    if (!best_[slot(s, id)].empty()) out.push_back(table_.prefix_of(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void LocalRibs::save_best(SpeakerId s, snap::Writer& w) const {
  const std::vector<net::Prefix> keys = best_prefixes(s);
  w.u64(keys.size());
  for (const net::Prefix prefix : keys) {
    w.u32(prefix);
    best(s, prefix)->save(w);
  }
}

void LocalRibs::restore_best(SpeakerId s, snap::Reader& r) {
  const std::uint32_t columns =
      std::min<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  for (std::uint32_t id = 0; id < columns; ++id) {
    best_[slot(s, id)] = bgp::AsPath{};
  }
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::Prefix prefix = r.u32();
    best_[slot(s, ensure_column(prefix))] = bgp::AsPath::load(r);
  }
}

// ---- Adj-RIB-In plane ----------------------------------------------------

void LocalRibs::adj_set(SpeakerId s, net::Prefix prefix, net::NodeId peer,
                        bgp::AsPath path) {
  PeerColumn& column = adj_[slot(s, ensure_column(prefix))];
  auto it = std::lower_bound(
      column.begin(), column.end(), peer,
      [](const PeerRoute& e, net::NodeId p) { return e.first < p; });
  if (it != column.end() && it->first == peer) {
    it->second = std::move(path);
  } else {
    column.insert(it, PeerRoute{peer, std::move(path)});
  }
}

bool LocalRibs::adj_withdraw(SpeakerId s, net::Prefix prefix,
                             net::NodeId peer) {
  const PrefixId id = table_.id_of(prefix);
  if (id == kInvalidPrefixId || id >= stride_) return false;
  PeerColumn& column = adj_[slot(s, id)];
  auto it = std::lower_bound(
      column.begin(), column.end(), peer,
      [](const PeerRoute& e, net::NodeId p) { return e.first < p; });
  if (it == column.end() || it->first != peer) return false;
  column.erase(it);
  return true;
}

std::vector<net::Prefix> LocalRibs::adj_drop_peer(SpeakerId s,
                                                  net::NodeId peer) {
  std::vector<net::Prefix> affected;
  const std::uint32_t columns =
      std::min<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  for (std::uint32_t id = 0; id < columns; ++id) {
    if (adj_withdraw(s, table_.prefix_of(id), peer)) {
      affected.push_back(table_.prefix_of(id));
    }
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

const bgp::AsPath* LocalRibs::adj_get(SpeakerId s, net::Prefix prefix,
                                      net::NodeId peer) const {
  const PrefixId id = table_.id_of(prefix);
  if (id == kInvalidPrefixId || id >= stride_) return nullptr;
  const PeerColumn& column = adj_[slot(s, id)];
  auto it = std::lower_bound(
      column.begin(), column.end(), peer,
      [](const PeerRoute& e, net::NodeId p) { return e.first < p; });
  if (it == column.end() || it->first != peer) return nullptr;
  return &it->second;
}

const PeerColumn& LocalRibs::adj_entries(SpeakerId s,
                                         net::Prefix prefix) const {
  const PrefixId id = table_.id_of(prefix);
  if (id == kInvalidPrefixId || id >= stride_) return kEmptyColumn;
  return adj_[slot(s, id)];
}

std::vector<net::Prefix> LocalRibs::adj_prefixes(SpeakerId s) const {
  std::vector<net::Prefix> out;
  const std::uint32_t columns =
      std::min<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  for (std::uint32_t id = 0; id < columns; ++id) {
    if (!adj_[slot(s, id)].empty()) out.push_back(table_.prefix_of(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void LocalRibs::save_adj(SpeakerId s, snap::Writer& w) const {
  const std::vector<net::Prefix> keys = adj_prefixes(s);
  w.u64(keys.size());
  for (const net::Prefix prefix : keys) {
    const PeerColumn& column = adj_entries(s, prefix);
    w.u32(prefix);
    w.u64(column.size());
    for (const auto& [peer, path] : column) {
      w.u32(peer);
      path.save(w);
    }
  }
}

void LocalRibs::restore_adj(SpeakerId s, snap::Reader& r) {
  const std::uint32_t columns =
      std::min<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  for (std::uint32_t id = 0; id < columns; ++id) {
    adj_[slot(s, id)].clear();
  }
  const std::uint64_t prefixes = r.u64();
  for (std::uint64_t i = 0; i < prefixes; ++i) {
    const net::Prefix prefix = r.u32();
    PeerColumn& column = adj_[slot(s, ensure_column(prefix))];
    const std::uint64_t entries = r.u64();
    column.clear();
    column.reserve(entries);
    for (std::uint64_t j = 0; j < entries; ++j) {
      const net::NodeId peer = r.u32();
      // Saved sorted by peer ascending; loading in order keeps it sorted.
      column.emplace_back(peer, bgp::AsPath::load(r));
    }
  }
}

// ---- whole-store codec ---------------------------------------------------

void LocalRibs::restore_table(snap::Reader& r) {
  table_.restore_state(r);
  // Reset both planes: prefix ids may have been reassigned, so every live
  // column is stale. The per-speaker restore_* calls that follow a table
  // restore reload every row.
  const std::uint32_t new_stride =
      std::max<std::uint32_t>(stride_, static_cast<std::uint32_t>(table_.size()));
  stride_ = new_stride;
  best_.assign(static_cast<std::size_t>(speakers_) * stride_, bgp::AsPath{});
  adj_.assign(static_cast<std::size_t>(speakers_) * stride_, PeerColumn{});
}

}  // namespace bgpsim::rib
