// The dense structure-of-arrays RIB store shared by every speaker of one
// network.
//
// Layout (after BGPExtrapolator's LocalRibs.hpp): instead of per-speaker
// `unordered_map<prefix, ...>` tables, one LocalRibs holds two flat
// (speaker × prefix-id) planes —
//
//   best_ : the selected best path per (speaker, prefix); an empty AsPath
//           marks "no route" (an installed path always has >= 1 hop);
//   adj_  : the Adj-RIB-In column per (speaker, prefix): the most recent
//           route from each peer, kept as a compact vector sorted by peer
//           id (ascending-peer iteration matches the old std::map order,
//           which the decision process's tie-breaking depends on).
//
// Prefix values are interned to dense ids by the embedded PrefixTable, so
// a multi-prefix scenario's whole table is two contiguous allocations and
// a batched decision pass walks one cache-friendly column block. The
// bgp::AdjRibIn / bgp::LocRib facades preserve the old per-speaker API on
// top of this store; single-prefix behavior is bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bgp/as_path.hpp"
#include "net/types.hpp"
#include "rib/prefix_table.hpp"
#include "snap/codec.hpp"

namespace bgpsim::rib {

/// Row index of one speaker in the store (== its NodeId in BgpNetwork).
using SpeakerId = std::uint32_t;

/// One Adj-RIB-In column entry: the route `first` advertised.
using PeerRoute = std::pair<net::NodeId, bgp::AsPath>;

/// One (speaker, prefix) Adj-RIB-In column, sorted by peer ascending.
using PeerColumn = std::vector<PeerRoute>;

class LocalRibs {
 public:
  explicit LocalRibs(SpeakerId speakers = 1);

  [[nodiscard]] PrefixTable& prefix_table() { return table_; }
  [[nodiscard]] const PrefixTable& prefix_table() const { return table_; }

  /// Grow the store to at least `count` speaker rows.
  void ensure_speakers(SpeakerId count);
  [[nodiscard]] SpeakerId speaker_count() const { return speakers_; }

  // ---- best-route plane (Loc-RIB) ---------------------------------------

  /// Install the selected path (nullopt = disengage). Returns true if the
  /// stored value changed (same semantics as the old bgp::LocRib::set).
  bool set_best(SpeakerId s, net::Prefix prefix,
                std::optional<bgp::AsPath> path);

  /// The stored best path, or nullptr when the speaker has no route.
  [[nodiscard]] const bgp::AsPath* best(SpeakerId s, net::Prefix prefix) const;

  /// Prefixes the speaker currently has a best route for, ascending.
  [[nodiscard]] std::vector<net::Prefix> best_prefixes(SpeakerId s) const;

  void save_best(SpeakerId s, snap::Writer& w) const;
  void restore_best(SpeakerId s, snap::Reader& r);

  // ---- Adj-RIB-In plane -------------------------------------------------

  void adj_set(SpeakerId s, net::Prefix prefix, net::NodeId peer,
               bgp::AsPath path);
  bool adj_withdraw(SpeakerId s, net::Prefix prefix, net::NodeId peer);
  std::vector<net::Prefix> adj_drop_peer(SpeakerId s, net::NodeId peer);
  [[nodiscard]] const bgp::AsPath* adj_get(SpeakerId s, net::Prefix prefix,
                                           net::NodeId peer) const;
  /// The whole column, sorted by peer ascending (empty if none).
  [[nodiscard]] const PeerColumn& adj_entries(SpeakerId s,
                                              net::Prefix prefix) const;
  /// Prefixes with at least one Adj-RIB-In entry, ascending.
  [[nodiscard]] std::vector<net::Prefix> adj_prefixes(SpeakerId s) const;

  /// Erase column entries satisfying `pred(peer, path)`; returns the count
  /// erased (the Assertion enhancement's primitive).
  template <typename Pred>
  std::size_t adj_erase_if(SpeakerId s, net::Prefix prefix, Pred pred) {
    const PrefixId id = table_.id_of(prefix);
    if (id == kInvalidPrefixId || id >= stride_) return 0;
    PeerColumn& column = adj_[slot(s, id)];
    std::size_t erased = 0;
    for (auto it = column.begin(); it != column.end();) {
      if (pred(it->first, it->second)) {
        it = column.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  void save_adj(SpeakerId s, snap::Writer& w) const;
  void restore_adj(SpeakerId s, snap::Reader& r);

  // ---- whole-store codec ------------------------------------------------

  /// Serialize the shared prefix table once (snapshot v4 writes it ahead
  /// of the per-node sections instead of repeating prefix keys per row).
  void save_table(snap::Writer& w) const { table_.save_state(w); }

  /// Restore the shared table; resets both planes (the per-speaker
  /// restore_* calls that follow reload every row).
  void restore_table(snap::Reader& r);

 private:
  [[nodiscard]] std::size_t slot(SpeakerId s, PrefixId id) const {
    return static_cast<std::size_t>(s) * stride_ + id;
  }
  /// Intern `prefix` and make sure both planes have a column for it.
  PrefixId ensure_column(net::Prefix prefix);
  void regrow(std::uint32_t new_stride);

  PrefixTable table_;
  SpeakerId speakers_ = 0;
  std::uint32_t stride_ = 0;           // prefix-id capacity per speaker row
  std::vector<bgp::AsPath> best_;      // speakers_ × stride_; empty = none
  std::vector<PeerColumn> adj_;        // speakers_ × stride_

  static const PeerColumn kEmptyColumn;
};

}  // namespace bgpsim::rib
