// Dense prefix-id interning for the SoA RIB store.
//
// A scenario's prefix set is small and known up front (the paper's single
// destination, or a full-table workload's 1..4096 prefixes), so routes can
// live in flat (speaker × prefix-id) arrays instead of per-speaker hash
// maps — the layout BGPExtrapolator uses to propagate a whole routing
// table at once. PrefixTable is the id side of that layout: it interns
// net::Prefix values into dense PrefixIds (insertion order) and records
// each prefix's origin AS for per-prefix oracle checks and metrics lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "snap/codec.hpp"

namespace bgpsim::rib {

/// Dense index of an interned prefix (0..size()-1, insertion order).
using PrefixId = std::uint32_t;

inline constexpr PrefixId kInvalidPrefixId = 0xFFFFFFFFu;

class PrefixTable {
 public:
  /// Intern `prefix`, returning its dense id (existing id if present).
  PrefixId intern(net::Prefix prefix);

  /// The dense id of `prefix`, or kInvalidPrefixId if never interned.
  [[nodiscard]] PrefixId id_of(net::Prefix prefix) const;

  /// The prefix behind a dense id (id must be < size()).
  [[nodiscard]] net::Prefix prefix_of(PrefixId id) const {
    return prefixes_[id];
  }

  [[nodiscard]] std::size_t size() const { return prefixes_.size(); }

  /// Record (or update) the origin AS of `prefix`; interns it if needed.
  void set_origin(net::Prefix prefix, net::NodeId origin);

  /// The recorded origin AS of `prefix`, or net::kInvalidNode.
  [[nodiscard]] net::NodeId origin_of(net::Prefix prefix) const;

  /// All interned prefixes, in interning order.
  [[nodiscard]] const std::vector<net::Prefix>& prefixes() const {
    return prefixes_;
  }

  /// Checkpoint codec: prefixes + origins in interning order, so a restore
  /// reproduces the exact id assignment.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::vector<net::Prefix> prefixes_;  // id -> prefix
  std::vector<net::NodeId> origins_;   // id -> origin (kInvalidNode default)
  std::unordered_map<net::Prefix, PrefixId> ids_;
};

}  // namespace bgpsim::rib
