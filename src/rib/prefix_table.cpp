#include "rib/prefix_table.hpp"

namespace bgpsim::rib {

PrefixId PrefixTable::intern(net::Prefix prefix) {
  auto it = ids_.find(prefix);
  if (it != ids_.end()) return it->second;
  const PrefixId id = static_cast<PrefixId>(prefixes_.size());
  prefixes_.push_back(prefix);
  origins_.push_back(net::kInvalidNode);
  ids_.emplace(prefix, id);
  return id;
}

PrefixId PrefixTable::id_of(net::Prefix prefix) const {
  auto it = ids_.find(prefix);
  return it == ids_.end() ? kInvalidPrefixId : it->second;
}

void PrefixTable::set_origin(net::Prefix prefix, net::NodeId origin) {
  origins_[intern(prefix)] = origin;
}

net::NodeId PrefixTable::origin_of(net::Prefix prefix) const {
  const PrefixId id = id_of(prefix);
  return id == kInvalidPrefixId ? net::kInvalidNode : origins_[id];
}

void PrefixTable::save_state(snap::Writer& w) const {
  w.u64(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    w.u32(prefixes_[i]);
    w.u32(origins_[i]);
  }
}

void PrefixTable::restore_state(snap::Reader& r) {
  prefixes_.clear();
  origins_.clear();
  ids_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::Prefix prefix = r.u32();
    const net::NodeId origin = r.u32();
    intern(prefix);
    origins_.back() = origin;
  }
}

}  // namespace bgpsim::rib
