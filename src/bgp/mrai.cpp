#include "bgp/mrai.hpp"

#include <cassert>

namespace bgpsim::bgp {

bool MraiTimers::running(net::NodeId peer, net::Prefix prefix) const {
  return timers_.contains(Key{peer, prefix});
}

bool MraiTimers::pending(net::NodeId peer, net::Prefix prefix) const {
  auto it = timers_.find(Key{peer, prefix});
  return it != timers_.end() && it->second.pending;
}

void MraiTimers::set_pending(net::NodeId peer, net::Prefix prefix,
                             bool pending) {
  auto it = timers_.find(Key{peer, prefix});
  if (it != timers_.end()) it->second.pending = pending;
}

void MraiTimers::start(net::NodeId peer, net::Prefix prefix,
                       sim::SimTime duration, sim::Simulator& simulator) {
  assert(!running(peer, prefix));
  const Key key{peer, prefix};
  State st;
  st.ev = simulator.schedule_after(duration, [this, key] {
    auto it = timers_.find(key);
    assert(it != timers_.end());
    const bool was_pending = it->second.pending;
    timers_.erase(it);
    if (on_expiry_) on_expiry_(key.first, key.second, was_pending);
  });
  timers_.emplace(key, st);
}

void MraiTimers::cancel_peer(net::NodeId peer, sim::Simulator& simulator) {
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->first.first == peer) {
      simulator.cancel(it->second.ev);
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
}

bool MraiTimers::any_pending() const {
  for (const auto& [key, st] : timers_) {
    if (st.pending) return true;
  }
  return false;
}

}  // namespace bgpsim::bgp
