#include "bgp/mrai.hpp"

#include <algorithm>
#include <cassert>

namespace bgpsim::bgp {

bool MraiTimers::running(net::NodeId peer, net::Prefix prefix) const {
  return timers_.contains(Key{peer, prefix});
}

bool MraiTimers::pending(net::NodeId peer, net::Prefix prefix) const {
  auto it = timers_.find(Key{peer, prefix});
  return it != timers_.end() && it->second.pending;
}

void MraiTimers::set_pending(net::NodeId peer, net::Prefix prefix,
                             bool pending) {
  auto it = timers_.find(Key{peer, prefix});
  if (it != timers_.end()) it->second.pending = pending;
}

void MraiTimers::start(net::NodeId peer, net::Prefix prefix,
                       sim::SimTime duration, sim::Simulator& simulator) {
  assert(!running(peer, prefix));
  const Key key{peer, prefix};
  State st;
  st.ev = simulator.schedule_after(
      duration, [this, key, sim = &simulator] { fire(key, *sim); });
  timers_.emplace(key, st);
}

void MraiTimers::fire(const Key& key, sim::Simulator& simulator) {
  auto it = timers_.find(key);
  assert(it != timers_.end());
  batch_.clear();
  batch_.push_back(Expiry{key.first, key.second, it->second.pending});
  timers_.erase(it);

  if (simulator.burst_delivery()) {
    // Gather the run of immediately following events that are this
    // object's own timers due at this exact instant. Only the globally
    // next event is ever taken, so any foreign event (another component's
    // closure, the external slot) in between ends the batch — the
    // resulting delivery order is exactly the sequential one. Consumed
    // closures are discarded whole; the batch entries carry everything
    // the handlers need.
    while (const auto id = simulator.next_coincident_event()) {
      const auto match = std::find_if(
          timers_.begin(), timers_.end(),
          [&](const auto& kv) { return kv.second.ev == *id; });
      if (match == timers_.end()) break;
      simulator.consume_coincident(*id);
      batch_.push_back(Expiry{match->first.first, match->first.second,
                              match->second.pending});
      timers_.erase(match);
    }
  }

  if (batch_.size() > 1 && on_burst_) {
    on_burst_(batch_);
  } else if (on_expiry_) {
    for (const Expiry& e : batch_) on_expiry_(e.peer, e.prefix, e.was_pending);
  }
}

void MraiTimers::cancel_peer(net::NodeId peer, sim::Simulator& simulator) {
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->first.first == peer) {
      simulator.cancel(it->second.ev);
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
}

void MraiTimers::save_state(snap::Writer& w) const {
  w.u64(timers_.size());
  for (const auto& [key, st] : timers_) {
    w.u32(key.first);
    w.u32(key.second);
    w.b(st.pending);
    w.u64(st.ev.value);
  }
}

void MraiTimers::restore_state(snap::Reader& r) {
  timers_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::NodeId peer = r.u32();
    const net::Prefix prefix = r.u32();
    State st;
    st.pending = r.b();
    st.ev = sim::EventId{r.u64()};
    timers_.emplace(Key{peer, prefix}, st);
  }
}

bool MraiTimers::any_pending() const {
  for (const auto& [key, st] : timers_) {
    if (st.pending) return true;
  }
  return false;
}

}  // namespace bgpsim::bgp
