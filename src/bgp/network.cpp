#include "bgp/network.hpp"

#include <utility>

#include "bgp/messages.hpp"

namespace bgpsim::bgp {

BgpNetwork::BgpNetwork(sim::Simulator& simulator, net::Topology& topology,
                       const BgpConfig& config,
                       const net::ProcessingDelay& processing,
                       const sim::Rng& root_rng)
    : sim_{simulator},
      topo_{topology},
      transport_{simulator, topology},
      store_{static_cast<rib::SpeakerId>(topology.node_count())} {
  const std::size_t n = topo_.node_count();
  fibs_.resize(n);
  queues_.reserve(n);
  speakers_.reserve(n);

  for (net::NodeId node = 0; node < n; ++node) {
    queues_.push_back(std::make_unique<net::ProcessingQueue>(
        simulator, root_rng.child("proc", node), processing));
    speakers_.push_back(std::make_unique<Speaker>(
        node, config, simulator, transport_, fibs_[node],
        root_rng.child("bgp", node), &store_,
        static_cast<rib::SpeakerId>(node)));
    speakers_.back()->set_peers(topo_.up_neighbors(node));
  }

  // Wire: transport delivery -> receiver's processing queue -> speaker.
  transport_.set_delivery_handler([this](net::Envelope env) {
    queues_[env.to]->accept(std::move(env));
  });
  transport_.set_session_handler(
      [this](net::NodeId self, net::NodeId peer, bool up) {
        queues_[self]->accept_session_event(
            net::ProcessingQueue::SessionEvent{peer, up});
      });

  for (net::NodeId node = 0; node < n; ++node) {
    queues_[node]->set_message_handler([this, node](const net::Envelope& env) {
      if (env.payload.is<UpdateBatch>()) {
        speakers_[node]->handle_update_batch(env.from,
                                             env.payload.get<UpdateBatch>());
      } else {
        speakers_[node]->handle_update(env.from,
                                       env.payload.get<UpdateMsg>());
      }
    });
    queues_[node]->set_session_handler(
        [this, node](const net::ProcessingQueue::SessionEvent& ev) {
          speakers_[node]->handle_session(ev.peer, ev.up);
        });
  }
}

void BgpNetwork::set_hooks(const Speaker::Hooks& hooks) {
  for (auto& s : speakers_) s->set_hooks(hooks);
}

std::uint64_t BgpNetwork::control_messages_in_flight() const {
  return transport_.messages_sent() - transport_.messages_delivered() -
         transport_.messages_lost();
}

bool BgpNetwork::busy() const {
  if (control_messages_in_flight() > 0) return true;
  for (const auto& q : queues_) {
    if (q->busy() || q->backlog() > 0) return true;
  }
  for (const auto& s : speakers_) {
    if (!s->quiescent()) return true;
  }
  return false;
}

bool BgpNetwork::timers_running() const {
  for (const auto& s : speakers_) {
    if (s->timers_running()) return true;
  }
  return false;
}

namespace {

void save_update_msg(snap::Writer& w, const UpdateMsg& msg) {
  w.u32(msg.prefix);
  w.b(msg.path.has_value());
  if (msg.path) msg.path->save(w);
}

UpdateMsg load_update_msg(snap::Reader& r) {
  UpdateMsg msg;
  msg.prefix = r.u32();
  if (r.b()) msg.path = AsPath::load(r);
  return msg;
}

// In-queue payloads are tagged: 0 = a single UpdateMsg, 1 = a multiprefix
// UpdateBatch (snapshot format v4; v3 had no tag byte).
void save_update_payload(snap::Writer& w, const net::Payload& payload) {
  if (payload.is<UpdateBatch>()) {
    const auto& batch = payload.get<UpdateBatch>();
    w.u8(1);
    w.u64(batch.updates.size());
    for (const UpdateMsg& msg : batch.updates) save_update_msg(w, msg);
  } else {
    w.u8(0);
    save_update_msg(w, payload.get<UpdateMsg>());
  }
}

net::Payload load_update_payload(snap::Reader& r) {
  if (r.u8() != 0) {
    UpdateBatch batch;
    const std::uint64_t n = r.u64();
    batch.updates.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      batch.updates.push_back(load_update_msg(r));
    }
    return net::Payload{std::move(batch)};
  }
  return net::Payload{load_update_msg(r)};
}

}  // namespace

void BgpNetwork::save_state(snap::Writer& w) const {
  transport_.save_state(w);
  // v4: the shared prefix table once, ahead of the per-node sections
  // (whose RIB rows are columns keyed by the table's ids).
  store_.save_table(w);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->save_state(w, save_update_payload);
    speakers_[node]->save_state(w);
    fibs_[node].save_state(w);
  }
}

void BgpNetwork::restore_state(snap::Reader& r) {
  transport_.restore_state(r);
  store_.restore_table(r);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->restore_state(r, load_update_payload);
    speakers_[node]->restore_state(r);
    fibs_[node].restore_state(r);
  }
}

Speaker::Counters BgpNetwork::total_counters() const {
  Speaker::Counters total;
  for (const auto& s : speakers_) {
    const auto& c = s->counters();
    total.announcements_sent += c.announcements_sent;
    total.withdrawals_sent += c.withdrawals_sent;
    total.updates_received += c.updates_received;
    total.poison_reverse_discards += c.poison_reverse_discards;
    total.assertion_removals += c.assertion_removals;
    total.ghost_flushes += c.ghost_flushes;
    total.ssld_conversions += c.ssld_conversions;
    total.best_path_changes += c.best_path_changes;
    total.caution_holds += c.caution_holds;
  }
  return total;
}

}  // namespace bgpsim::bgp
