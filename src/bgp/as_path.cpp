#include "bgp/as_path.hpp"

#include <algorithm>

namespace bgpsim::bgp {

bool AsPath::contains(net::NodeId node) const {
  return std::ranges::find(hops_, node) != hops_.end();
}

AsPath AsPath::prepended(net::NodeId node) const {
  std::vector<net::NodeId> out;
  out.reserve(hops_.size() + 1);
  out.push_back(node);
  out.insert(out.end(), hops_.begin(), hops_.end());
  return AsPath{std::move(out)};
}

AsPath AsPath::suffix_from(net::NodeId node) const {
  auto it = std::ranges::find(hops_, node);
  if (it == hops_.end()) return AsPath{};
  return AsPath{std::vector<net::NodeId>(it, hops_.end())};
}

std::string AsPath::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(hops_[i]);
  }
  out += ')';
  return out;
}

}  // namespace bgpsim::bgp
