#include "bgp/as_path.hpp"

#include <algorithm>

namespace bgpsim::bgp {

AsPath::AsPath(const net::NodeId* hops, std::size_t n) {
  // Cons from the back so the list reads front -> origin.
  const detail::PathNode* node = nullptr;
  for (std::size_t i = n; i > 0; --i) {
    const detail::PathNode* next = detail::cons(hops[i - 1], node);
    detail::release(node);
    node = next;
  }
  node_ = node;
}

bool AsPath::contains(net::NodeId node) const {
  for (const detail::PathNode* n = node_; n != nullptr; n = n->parent) {
    if (n->head == node) return true;
  }
  return false;
}

AsPath AsPath::suffix_from(net::NodeId node) const {
  for (const detail::PathNode* n = node_; n != nullptr; n = n->parent) {
    if (n->head == node) return AsPath{detail::retain(n)};
  }
  return AsPath{};
}

bool AsPath::equal_slow(const AsPath& other) const {
  const detail::PathNode* a = node_;
  const detail::PathNode* b = other.node_;
  if (length() != other.length()) return false;
  // Shared suffixes (common under structural sharing even across stores)
  // end the walk at the first pointer match.
  while (a != b) {
    if (a == nullptr || b == nullptr || a->head != b->head) return false;
    a = a->parent;
    b = b->parent;
  }
  return true;
}

std::strong_ordering operator<=>(const AsPath& a, const AsPath& b) {
  const auto ah = a.hops();
  const auto bh = b.hops();
  return std::lexicographical_compare_three_way(ah.begin(), ah.end(),
                                                bh.begin(), bh.end());
}

std::string AsPath::to_string() const {
  std::string out = "(";
  bool first = true;
  for (const detail::PathNode* n = node_; n != nullptr; n = n->parent) {
    if (!first) out += ' ';
    first = false;
    out += std::to_string(n->head);
  }
  out += ')';
  return out;
}

}  // namespace bgpsim::bgp
