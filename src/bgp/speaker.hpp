// One BGP speaker (one AS / router in the study).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/config.hpp"
#include "bgp/decision.hpp"
#include "bgp/messages.hpp"
#include "bgp/mrai.hpp"
#include "bgp/rib.hpp"
#include "fwd/fib.hpp"
#include "net/channel.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::bgp {

/// The path-vector protocol machine.
///
/// Inbound work (updates, session events) must be fed through handle_update
/// / handle_session *after* the node's processing delay — BgpNetwork wires a
/// net::ProcessingQueue in front of each speaker. Outbound messages go to
/// the Transport immediately (sending is free; receiving costs CPU).
class Speaker {
 public:
  struct Hooks {
    /// Every UPDATE put on the wire (the convergence-time clock).
    std::function<void(net::NodeId from, net::NodeId to, const UpdateMsg&)>
        on_update_sent;
    /// Loc-RIB best-path changes (nullopt = destination now unreachable).
    std::function<void(net::NodeId node, net::Prefix,
                       const std::optional<AsPath>& best)>
        on_best_changed;
    /// Every UPDATE accepted off the wire (after the stray-peer filter,
    /// before the decision process).
    std::function<void(net::NodeId node, net::NodeId from, const UpdateMsg&)>
        on_update_received;
    /// Session to `peer` observed up/down by this speaker.
    std::function<void(net::NodeId node, net::NodeId peer, bool up)>
        on_session_changed;
    /// An MRAI timer toward `peer` expired; `was_pending` says whether a
    /// deferred decision was waiting behind it.
    std::function<void(net::NodeId node, net::NodeId peer, net::Prefix,
                       bool was_pending)>
        on_mrai_expired;
  };

  /// `store` binds this speaker's RIB facades to the network's shared SoA
  /// store (row `row`); nullptr (the default) keeps a private store, for
  /// standalone construction in tests.
  Speaker(net::NodeId self, BgpConfig config, sim::Simulator& simulator,
          net::Transport& transport, fwd::Fib& fib, sim::Rng rng,
          rib::LocalRibs* store = nullptr, rib::SpeakerId row = 0);

  /// Establish sessions with the given peers (initially up neighbors).
  void set_peers(const std::vector<net::NodeId>& peers);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Originate `prefix` locally (the destination AS). Advertises (self) to
  /// every peer.
  void originate(net::Prefix prefix);

  /// Withdraw a locally originated prefix — the study's Tdown event.
  void withdraw_origin(net::Prefix prefix);

  /// Originate several prefixes in one shot. In multiprefix mode the
  /// resulting advertisements are staged and flushed as one batched
  /// message per peer.
  void originate_batch(const std::vector<net::Prefix>& prefixes);

  /// Withdraw several locally originated prefixes at once — the
  /// correlated-failure Tdown (full-table event at one origin).
  void withdraw_origin_batch(const std::vector<net::Prefix>& prefixes);

  /// Inbound UPDATE from `from` (call after processing delay).
  void handle_update(net::NodeId from, const UpdateMsg& update);

  /// Inbound batched UPDATEs from `from` (one transport message, one
  /// processing-delay draw). Applies every contained update to the RIB,
  /// then runs ONE decision pass per touched prefix — the batched
  /// decision processing a shared SoA column block makes cheap.
  void handle_update_batch(net::NodeId from, const UpdateBatch& batch);

  /// Session to `peer` went down/up (call after processing delay).
  void handle_session(net::NodeId peer, bool up);

  // ---- Introspection --------------------------------------------------

  [[nodiscard]] net::NodeId id() const { return self_; }
  [[nodiscard]] const BgpConfig& config() const { return config_; }
  [[nodiscard]] const AdjRibIn& adj_rib_in() const { return adj_rib_in_; }
  [[nodiscard]] const LocRib& loc_rib() const { return loc_rib_; }
  [[nodiscard]] const std::set<net::NodeId>& peers() const { return peers_; }
  [[nodiscard]] bool originates(net::Prefix prefix) const {
    return originated_.contains(prefix);
  }

  /// True when neither an MRAI timer holds a deferred decision nor a
  /// caution window holds a deferred backup adoption — i.e. this speaker
  /// will change nothing further unless new input arrives.
  [[nodiscard]] bool quiescent() const {
    return !mrai_.any_pending() && caution_lost_length_.empty();
  }

  /// True while any MRAI timer is running (even without pending work).
  [[nodiscard]] bool timers_running() const {
    return mrai_.running_count() > 0;
  }

  struct Counters {
    std::uint64_t announcements_sent = 0;
    std::uint64_t withdrawals_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t poison_reverse_discards = 0;
    std::uint64_t assertion_removals = 0;
    std::uint64_t ghost_flushes = 0;
    std::uint64_t ssld_conversions = 0;
    std::uint64_t best_path_changes = 0;
    std::uint64_t caution_holds = 0;  // backup adoptions deferred
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Checkpoint codec: every mutable protocol field (RNG, session set,
  /// origins, RIBs, MRAI bookkeeping, caution holds, advertised mirror,
  /// counters) in a fixed deterministic order.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  /// What a peer currently believes we advertised.
  struct Advertised {
    enum class Kind { kNotSent, kAnnounced, kWithdrawn } kind = Kind::kNotSent;
    AsPath path;  // valid when kind == kAnnounced
  };

  /// Stages outbound updates for the enclosing handler in multiprefix
  /// mode; the destructor flushes them grouped per peer. A no-op when
  /// multiprefix is off or a scope is already active, so single-prefix
  /// runs execute exactly the unbatched send path.
  class StagingScope {
   public:
    explicit StagingScope(Speaker& s)
        : s_{s}, active_{s.config_.multiprefix && !s.staging_} {
      if (active_) s_.staging_ = true;
    }
    ~StagingScope() {
      if (active_) {
        s_.staging_ = false;
        s_.flush_staged();
      }
    }
    StagingScope(const StagingScope&) = delete;
    StagingScope& operator=(const StagingScope&) = delete;

   private:
    Speaker& s_;
    bool active_;
  };

  /// The RIB-mutation half of handle_update (everything but the decision
  /// pass), shared with batched delivery.
  void apply_update(net::NodeId from, const UpdateMsg& update);
  /// Send staged updates, grouped per peer (peers ascending, per-peer
  /// message order preserved); a group of one goes out as a plain
  /// UpdateMsg, so wire shapes only change when batching actually packs.
  void flush_staged();

  void run_decision(net::Prefix prefix);
  void advertise_to_all(net::Prefix prefix);
  void consider_send(net::NodeId peer, net::Prefix prefix);
  /// consider_send with the Loc-RIB lookup hoisted: burst delivery passes
  /// one lookup across every same-prefix expiry in the batch (nothing in
  /// the send path mutates the Loc-RIB).
  void consider_send_with(net::NodeId peer, net::Prefix prefix,
                          const AsPath* loc);
  void send_update(net::NodeId peer, net::Prefix prefix, UpdateMsg update);
  void on_mrai_expired(net::NodeId peer, net::Prefix prefix, bool was_pending);
  /// Batched delivery of coincident MRAI expiries (wheel backend): hooks
  /// and sends run per item in exact firing order — the observable stream
  /// is identical to sequential delivery — but the decision inputs are
  /// fetched once per prefix run instead of once per expiry.
  void on_mrai_burst(const std::vector<MraiTimers::Expiry>& batch);
  void ghost_flush(net::Prefix prefix);
  [[nodiscard]] sim::SimTime jittered_mrai();

  /// The update we currently want `peer` to hold (SSLD applied); `loc` is
  /// the caller's Loc-RIB lookup for `prefix`.
  [[nodiscard]] UpdateMsg desired_update(net::NodeId peer, net::Prefix prefix,
                                         const AsPath* loc);
  [[nodiscard]] bool already_advertised(net::NodeId peer, net::Prefix prefix,
                                        const UpdateMsg& desired) const;

  net::NodeId self_;
  BgpConfig config_;
  sim::Simulator& sim_;
  net::Transport& transport_;
  fwd::Fib& fib_;
  sim::Rng rng_;
  Hooks hooks_;

  std::set<net::NodeId> peers_;
  std::set<net::Prefix> originated_;
  AdjRibIn adj_rib_in_;
  LocRib loc_rib_;
  MraiTimers mrai_;
  /// Prefixes under backup caution: adoption of paths longer than the
  /// recorded lost length is suppressed until the caution timer fires.
  std::map<net::Prefix, std::size_t> caution_lost_length_;
  std::map<std::pair<net::NodeId, net::Prefix>, Advertised> advertised_;
  Counters counters_;
  /// Multiprefix staging state: while a StagingScope is active, send_update
  /// appends here instead of hitting the transport. Always empty between
  /// scheduler events, so it never enters the checkpoint codec.
  bool staging_ = false;
  std::vector<std::pair<net::NodeId, UpdateMsg>> staged_;
};

}  // namespace bgpsim::bgp
