// Assembles a full BGP network over a topology.
#pragma once

#include <memory>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/speaker.hpp"
#include "fwd/fib.hpp"
#include "rib/local_ribs.hpp"
#include "net/channel.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::bgp {

/// One speaker per topology node, each behind its own serialized
/// processing queue, all sharing one Transport. This is the object the
/// experiment driver manipulates.
class BgpNetwork {
 public:
  BgpNetwork(sim::Simulator& simulator, net::Topology& topology,
             const BgpConfig& config, const net::ProcessingDelay& processing,
             const sim::Rng& root_rng);

  [[nodiscard]] Speaker& speaker(net::NodeId n) { return *speakers_.at(n); }
  [[nodiscard]] const Speaker& speaker(net::NodeId n) const {
    return *speakers_.at(n);
  }
  [[nodiscard]] std::size_t size() const { return speakers_.size(); }

  [[nodiscard]] std::vector<fwd::Fib>& fibs() { return fibs_; }
  [[nodiscard]] net::Transport& transport() { return transport_; }
  [[nodiscard]] net::Topology& topology() { return topo_; }

  /// Install the same hooks on every speaker.
  void set_hooks(const Speaker::Hooks& hooks);

  /// The destination AS announces `prefix` at the current time.
  void originate(net::NodeId origin, net::Prefix prefix) {
    speaker(origin).originate(prefix);
  }

  /// The origin announces several prefixes at once (multi-prefix
  /// scenarios; advertisements go out batched per peer).
  void originate_batch(net::NodeId origin,
                       const std::vector<net::Prefix>& prefixes) {
    speaker(origin).originate_batch(prefixes);
  }

  /// Tdown: the origin withdraws the prefix (links stay up).
  void inject_tdown(net::NodeId origin, net::Prefix prefix) {
    speaker(origin).withdraw_origin(prefix);
  }

  /// Correlated Tdown: the origin withdraws every listed prefix in one
  /// event (withdrawals go out batched per peer).
  void inject_tdown_batch(net::NodeId origin,
                          const std::vector<net::Prefix>& prefixes) {
    speaker(origin).withdraw_origin_batch(prefixes);
  }

  /// The network's shared SoA RIB store (prefix table + route planes).
  [[nodiscard]] rib::LocalRibs& rib_store() { return store_; }
  [[nodiscard]] const rib::LocalRibs& rib_store() const { return store_; }

  /// Tlong: a physical link fails (sessions drop, in-flight lost).
  void inject_link_failure(net::LinkId link) { transport_.fail_link(link); }

  /// Control-plane messages currently on the wire.
  [[nodiscard]] std::uint64_t control_messages_in_flight() const;

  /// True while any node still has queued/processing work, messages are in
  /// flight, or an MRAI timer holds a deferred decision. When false, the
  /// control plane has converged (remaining timers will expire silently).
  [[nodiscard]] bool busy() const;

  /// True while any MRAI timer is running anywhere (even without pending
  /// work). busy()==false && !timers_running() means fully drained.
  [[nodiscard]] bool timers_running() const;

  /// Sum of per-speaker counters across the network.
  [[nodiscard]] Speaker::Counters total_counters() const;

  /// Checkpoint codec: transport counters, then per node the processing
  /// queue (with in-queue UpdateMsg payloads), speaker, and FIB.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  sim::Simulator& sim_;
  net::Topology& topo_;
  net::Transport transport_;
  rib::LocalRibs store_;  // shared by every speaker (declared before them)
  std::vector<fwd::Fib> fibs_;
  std::vector<std::unique_ptr<net::ProcessingQueue>> queues_;
  std::vector<std::unique_ptr<Speaker>> speakers_;
};

}  // namespace bgpsim::bgp
