#include "bgp/decision.hpp"

#include <algorithm>

#include "bgp/policy.hpp"

namespace bgpsim::bgp {

bool preferred(const AsPath& a, const AsPath& b) {
  if (a.length() != b.length()) return a.length() < b.length();
  if (a.first_hop() != b.first_hop()) return a.first_hop() < b.first_hop();
  return std::ranges::lexicographical_compare(a.hops(), b.hops());
}

std::optional<AsPath> select_best(const AdjRibIn& rib, net::Prefix prefix,
                                  net::NodeId self,
                                  const net::RelationshipTable* policy) {
  const AsPath* best = nullptr;
  int best_pref = 0;
  for (const auto& [peer, path] : rib.entries(prefix)) {
    if (path.contains(self)) continue;  // poison reverse
    const int pref = policy ? policy_local_pref(*policy, self, peer) : 0;
    if (!best || pref > best_pref ||
        (pref == best_pref && preferred(path, *best))) {
      best = &path;
      best_pref = pref;
    }
  }
  if (!best) return std::nullopt;
  return *best;
}

}  // namespace bgpsim::bgp
