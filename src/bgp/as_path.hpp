// AS-path value type.
//
// Convention (matching the paper's notation): a node's path to a destination
// *includes itself at the front* and ends at the origin AS. Node 6 reaching
// the destination at node 0 through node 4 holds path (6 4 0). Paths are
// advertised verbatim — the receiver sees a path whose first hop is the
// sender — and a receiver adopting a neighbor's path P stores (self)·P.
#pragma once

#include <compare>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "snap/codec.hpp"

namespace bgpsim::bgp {

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<net::NodeId> hops) : hops_{std::move(hops)} {}
  AsPath(std::initializer_list<net::NodeId> hops) : hops_{hops} {}

  [[nodiscard]] std::size_t length() const { return hops_.size(); }
  [[nodiscard]] bool empty() const { return hops_.empty(); }

  /// True if `node` appears anywhere in the path — the path-based
  /// poison-reverse test.
  [[nodiscard]] bool contains(net::NodeId node) const;

  /// The advertising AS (front of the path). Requires !empty().
  [[nodiscard]] net::NodeId first_hop() const { return hops_.front(); }

  /// The origin AS (back of the path). Requires !empty().
  [[nodiscard]] net::NodeId origin() const { return hops_.back(); }

  /// A copy with `node` prepended: (node)·this.
  [[nodiscard]] AsPath prepended(net::NodeId node) const;

  /// The sub-path starting at the first occurrence of `node` (inclusive),
  /// or an empty path if `node` is absent. Used by the Assertion check to
  /// compare what another route claims about `node`'s route.
  [[nodiscard]] AsPath suffix_from(net::NodeId node) const;

  [[nodiscard]] std::span<const net::NodeId> hops() const { return hops_; }

  /// "(6 4 0)" — the paper's notation.
  [[nodiscard]] std::string to_string() const;

  /// Checkpoint codec: hop count followed by the hops.
  void save(snap::Writer& w) const {
    w.u64(hops_.size());
    for (const net::NodeId hop : hops_) w.u32(hop);
  }
  [[nodiscard]] static AsPath load(snap::Reader& r) {
    const std::uint64_t n = r.u64();
    std::vector<net::NodeId> hops;
    hops.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) hops.push_back(r.u32());
    return AsPath{std::move(hops)};
  }

  friend bool operator==(const AsPath&, const AsPath&) = default;

  /// Lexicographic order on the hop sequence (not a preference order; see
  /// decision.hpp for route preference).
  friend auto operator<=>(const AsPath& a, const AsPath& b) {
    return a.hops_ <=> b.hops_;
  }

 private:
  std::vector<net::NodeId> hops_;
};

}  // namespace bgpsim::bgp
