// AS-path value type.
//
// Convention (matching the paper's notation): a node's path to a destination
// *includes itself at the front* and ends at the origin AS. Node 6 reaching
// the destination at node 0 through node 4 holds path (6 4 0). Paths are
// advertised verbatim — the receiver sees a path whose first hop is the
// sender — and a receiver adopting a neighbor's path P stores (self)·P.
//
// Representation: an AsPath is a pointer to an immutable, refcounted,
// structurally-shared cons list (see path_store.hpp). prepended() is an
// O(1) cons, copies are refcount bumps, and under a PathStore scope
// structurally-equal paths are pointer-equal. The public surface — and in
// particular the save()/load() codec bytes — is unchanged from the vector
// representation.
#pragma once

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "bgp/path_store.hpp"
#include "net/types.hpp"
#include "snap/codec.hpp"

namespace bgpsim::bgp {

/// Lightweight forward range over a path's hops, front (advertising AS) to
/// back (origin). Iteration is O(1) per hop; operator[] is O(i) — fine for
/// the engine's uses (index 1, and short-path double loops in tests).
class HopView {
 public:
  class iterator {
   public:
    using value_type = net::NodeId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    explicit iterator(const detail::PathNode* node) : node_{node} {}

    net::NodeId operator*() const { return node_->head; }
    iterator& operator++() {
      node_ = node_->parent;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      node_ = node_->parent;
      return tmp;
    }
    friend bool operator==(iterator, iterator) = default;

   private:
    const detail::PathNode* node_ = nullptr;
  };

  HopView() = default;
  explicit HopView(const detail::PathNode* node) : node_{node} {}

  [[nodiscard]] iterator begin() const { return iterator{node_}; }
  [[nodiscard]] iterator end() const { return iterator{}; }

  [[nodiscard]] std::size_t size() const {
    return node_ != nullptr ? node_->length : 0;
  }
  [[nodiscard]] bool empty() const { return node_ == nullptr; }

  /// i-th hop from the front. O(i). Requires i < size().
  [[nodiscard]] net::NodeId operator[](std::size_t i) const {
    const detail::PathNode* n = node_;
    for (; i > 0; --i) n = n->parent;
    return n->head;
  }

  [[nodiscard]] net::NodeId front() const { return node_->head; }
  [[nodiscard]] net::NodeId back() const { return node_->origin; }

 private:
  const detail::PathNode* node_ = nullptr;
};

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(const std::vector<net::NodeId>& hops)
      : AsPath(hops.data(), hops.size()) {}
  AsPath(std::initializer_list<net::NodeId> hops)
      : AsPath(hops.begin(), hops.size()) {}

  AsPath(const AsPath& other) : node_{detail::retain(other.node_)} {}
  AsPath(AsPath&& other) noexcept : node_{std::exchange(other.node_, nullptr)} {}
  AsPath& operator=(const AsPath& other) {
    if (this != &other) {
      detail::release(node_);
      node_ = detail::retain(other.node_);
    }
    return *this;
  }
  AsPath& operator=(AsPath&& other) noexcept {
    if (this != &other) {
      detail::release(node_);
      node_ = std::exchange(other.node_, nullptr);
    }
    return *this;
  }
  ~AsPath() { detail::release(node_); }

  [[nodiscard]] std::size_t length() const {
    return node_ != nullptr ? node_->length : 0;
  }
  [[nodiscard]] bool empty() const { return node_ == nullptr; }

  /// True if `node` appears anywhere in the path — the path-based
  /// poison-reverse test.
  [[nodiscard]] bool contains(net::NodeId node) const;

  /// The advertising AS (front of the path). Requires !empty().
  [[nodiscard]] net::NodeId first_hop() const { return node_->head; }

  /// The origin AS (back of the path). Requires !empty().
  [[nodiscard]] net::NodeId origin() const { return node_->origin; }

  /// A copy with `node` prepended: (node)·this. O(1): a cons onto this
  /// path's (shared) storage.
  [[nodiscard]] AsPath prepended(net::NodeId node) const {
    return AsPath{detail::cons(node, node_)};
  }

  /// The sub-path starting at the first occurrence of `node` (inclusive),
  /// or an empty path if `node` is absent. Used by the Assertion check to
  /// compare what another route claims about `node`'s route. O(position),
  /// and the result shares this path's storage.
  [[nodiscard]] AsPath suffix_from(net::NodeId node) const;

  [[nodiscard]] HopView hops() const { return HopView{node_}; }

  /// "(6 4 0)" — the paper's notation.
  [[nodiscard]] std::string to_string() const;

  /// Checkpoint codec: hop count followed by the hops. Byte-identical to
  /// the historical vector representation.
  void save(snap::Writer& w) const {
    w.u64(length());
    for (const detail::PathNode* n = node_; n != nullptr; n = n->parent) {
      w.u32(n->head);
    }
  }
  [[nodiscard]] static AsPath load(snap::Reader& r) {
    const std::uint64_t n = r.u64();
    std::vector<net::NodeId> hops;
    hops.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) hops.push_back(r.u32());
    return AsPath{hops};
  }

  /// Structural equality on the hop sequence. Pointer comparison when both
  /// sides were interned by the same PathStore (the hot path).
  friend bool operator==(const AsPath& a, const AsPath& b) {
    if (a.node_ == b.node_) return true;
    return a.equal_slow(b);
  }

  /// Lexicographic order on the hop sequence (not a preference order; see
  /// decision.hpp for route preference).
  friend std::strong_ordering operator<=>(const AsPath& a, const AsPath& b);

 private:
  AsPath(const net::NodeId* hops, std::size_t n);
  /// Adopts `owned` (a reference the caller already holds).
  explicit AsPath(const detail::PathNode* owned) : node_{owned} {}

  [[nodiscard]] bool equal_slow(const AsPath& other) const;

  const detail::PathNode* node_ = nullptr;
};

}  // namespace bgpsim::bgp
