#include "bgp/speaker.hpp"

#include <algorithm>

#include "bgp/assertion.hpp"
#include "bgp/policy.hpp"
#include "sim/logging.hpp"

namespace bgpsim::bgp {

Speaker::Speaker(net::NodeId self, BgpConfig config, sim::Simulator& simulator,
                 net::Transport& transport, fwd::Fib& fib, sim::Rng rng,
                 rib::LocalRibs* store, rib::SpeakerId row)
    : self_{self},
      config_{config},
      sim_{simulator},
      transport_{transport},
      fib_{fib},
      rng_{std::move(rng)},
      adj_rib_in_{store, row},
      loc_rib_{store, row} {
  mrai_.set_expiry_handler(
      [this](net::NodeId peer, net::Prefix prefix, bool was_pending) {
        on_mrai_expired(peer, prefix, was_pending);
      });
  mrai_.set_burst_handler(
      [this](const std::vector<MraiTimers::Expiry>& batch) {
        on_mrai_burst(batch);
      });
}

void Speaker::set_peers(const std::vector<net::NodeId>& peers) {
  peers_ = std::set<net::NodeId>(peers.begin(), peers.end());
}

void Speaker::originate(net::Prefix prefix) {
  originated_.insert(prefix);
  run_decision(prefix);
}

void Speaker::withdraw_origin(net::Prefix prefix) {
  if (originated_.erase(prefix) == 0) return;
  run_decision(prefix);
}

void Speaker::originate_batch(const std::vector<net::Prefix>& prefixes) {
  StagingScope staging{*this};
  for (const net::Prefix prefix : prefixes) originated_.insert(prefix);
  for (const net::Prefix prefix : prefixes) run_decision(prefix);
}

void Speaker::withdraw_origin_batch(const std::vector<net::Prefix>& prefixes) {
  StagingScope staging{*this};
  std::vector<net::Prefix> removed;
  removed.reserve(prefixes.size());
  for (const net::Prefix prefix : prefixes) {
    if (originated_.erase(prefix) > 0) removed.push_back(prefix);
  }
  for (const net::Prefix prefix : removed) run_decision(prefix);
}

void Speaker::handle_update(net::NodeId from, const UpdateMsg& update) {
  ++counters_.updates_received;
  // A message can race a session drop (in-flight when the link died is
  // already lost, but a restore/re-drop can interleave); ignore strays.
  if (!peers_.contains(from)) return;
  if (hooks_.on_update_received) hooks_.on_update_received(self_, from, update);
  apply_update(from, update);
  run_decision(update.prefix);
}

void Speaker::handle_update_batch(net::NodeId from, const UpdateBatch& batch) {
  StagingScope staging{*this};
  std::vector<net::Prefix> touched;  // first-touch order
  for (const UpdateMsg& update : batch.updates) {
    ++counters_.updates_received;
    if (!peers_.contains(from)) continue;  // stray (see handle_update)
    if (hooks_.on_update_received) {
      hooks_.on_update_received(self_, from, update);
    }
    apply_update(from, update);
    if (std::find(touched.begin(), touched.end(), update.prefix) ==
        touched.end()) {
      touched.push_back(update.prefix);
    }
  }
  // One decision pass per touched prefix, however many updates arrived —
  // the batched decision processing over the shared column block.
  for (const net::Prefix prefix : touched) run_decision(prefix);
}

void Speaker::apply_update(net::NodeId from, const UpdateMsg& update) {
  const net::Prefix prefix = update.prefix;
  if (update.is_withdrawal()) {
    adj_rib_in_.withdraw(prefix, from);
    if (config_.assertion) {
      counters_.assertion_removals +=
          assert_on_withdraw(adj_rib_in_, prefix, from);
    }
  } else {
    if (update.path->contains(self_)) {
      // Path-based poison reverse: the route is unusable here, and it
      // *replaces* whatever this peer previously advertised.
      ++counters_.poison_reverse_discards;
      adj_rib_in_.withdraw(prefix, from);
    } else {
      adj_rib_in_.set(prefix, from, *update.path);
    }
    // Assertion uses the announcement as ground truth about `from`'s own
    // route regardless of whether we can use the path ourselves.
    if (config_.assertion) {
      counters_.assertion_removals +=
          assert_on_announce(adj_rib_in_, prefix, from, *update.path);
    }
  }
  sim::LogLine{sim::LogLevel::kTrace, "bgp", sim_.now()}
      << "node " << self_ << " recv from " << from << ": "
      << update.to_string();
}

void Speaker::handle_session(net::NodeId peer, bool up) {
  StagingScope staging{*this};
  if (hooks_.on_session_changed) hooks_.on_session_changed(self_, peer, up);
  if (up) {
    peers_.insert(peer);
    // Session (re-)established: offer our current table to the new peer.
    for (net::Prefix prefix : loc_rib_.prefixes()) consider_send(peer, prefix);
    return;
  }

  peers_.erase(peer);
  mrai_.cancel_peer(peer, sim_);
  for (auto it = advertised_.begin(); it != advertised_.end();) {
    if (it->first.first == peer) {
      it = advertised_.erase(it);
    } else {
      ++it;
    }
  }

  // Gather every prefix that might be affected before mutating the RIB.
  std::set<net::Prefix> prefixes;
  for (net::Prefix p : adj_rib_in_.prefixes()) prefixes.insert(p);
  for (net::Prefix p : loc_rib_.prefixes()) prefixes.insert(p);

  adj_rib_in_.drop_peer(peer);
  if (config_.assertion) {
    // A session loss implicitly withdraws everything `peer` advertised;
    // the session-loss assertion (transit-only — see bgp/assertion.hpp)
    // applies to each prefix.
    for (net::Prefix p : prefixes) {
      counters_.assertion_removals +=
          assert_on_session_loss(adj_rib_in_, p, peer);
    }
  }
  for (net::Prefix p : prefixes) run_decision(p);
}

void Speaker::run_decision(net::Prefix prefix) {
  std::optional<AsPath> new_loc;
  if (originated_.contains(prefix)) {
    new_loc = AsPath{self_};
  } else if (auto best =
                 select_best(adj_rib_in_, prefix, self_, config_.policy)) {
    new_loc = best->prepended(self_);
  }

  // Backup caution (§3.3 future work): don't jump onto a *worse* backup
  // the instant the good path dies — it is exactly the obsolete-state pick
  // that forms loops. Behave as unreachable for the caution window; any
  // equal-or-better route arriving meanwhile is adopted immediately.
  if (config_.backup_caution > sim::SimTime::zero()) {
    const AsPath* current = loc_rib_.get(prefix);
    auto held = caution_lost_length_.find(prefix);
    if (held != caution_lost_length_.end()) {
      if (new_loc && new_loc->length() <= held->second) {
        caution_lost_length_.erase(held);  // genuine replacement: accept
      } else {
        new_loc = std::nullopt;  // still verifying: stay down
      }
    } else if (current && new_loc && new_loc->length() > current->length()) {
      ++counters_.caution_holds;
      caution_lost_length_.emplace(prefix, current->length());
      new_loc = std::nullopt;
      sim_.schedule_after(config_.backup_caution, [this, prefix] {
        if (caution_lost_length_.erase(prefix) > 0) run_decision(prefix);
      });
    }
  }

  const AsPath* old = loc_rib_.get(prefix);
  // 0 = no previous route (an installed path is never empty).
  const std::size_t old_len = old != nullptr ? old->length() : 0;
  if (!loc_rib_.set(prefix, new_loc)) return;  // decision unchanged
  ++counters_.best_path_changes;

  if (new_loc && new_loc->length() >= 2) {
    fib_.set_next_hop(prefix, new_loc->hops()[1]);
  } else {
    fib_.clear_route(prefix);
  }
  sim::LogLine{sim::LogLevel::kDebug, "bgp", sim_.now()}
      << "node " << self_ << " best path p" << prefix << " -> "
      << (new_loc ? new_loc->to_string() : "(unreachable)");
  if (hooks_.on_best_changed) hooks_.on_best_changed(self_, prefix, new_loc);

  // Ghost Flushing: the path just got *worse*; peers still holding our old
  // (better, now ghost) path whose refresh is stuck behind MRAI get an
  // immediate withdrawal so the stale information stops spreading.
  if (config_.ghost_flushing && old_len != 0 && new_loc &&
      new_loc->length() > old_len) {
    ghost_flush(prefix);
  }

  advertise_to_all(prefix);
}

void Speaker::advertise_to_all(net::Prefix prefix) {
  for (net::NodeId peer : peers_) consider_send(peer, prefix);
}

UpdateMsg Speaker::desired_update(net::NodeId peer, net::Prefix prefix,
                                  const AsPath* loc) {
  if (!loc) return UpdateMsg::withdraw(prefix);
  if (config_.policy && !policy_exportable(*config_.policy, self_, *loc, peer)) {
    // No-valley export rule: this peer must not receive the route (and any
    // earlier advertisement of a now-unexportable route is retracted).
    return UpdateMsg::withdraw(prefix);
  }
  if (config_.ssld && loc->contains(peer)) {
    // Sender-side loop detection: the receiver would discard this path
    // anyway; send the (MRAI-exempt) withdrawal instead so the implicit
    // poison-reverse information arrives sooner.
    return UpdateMsg::withdraw(prefix);
  }
  return UpdateMsg::announce(prefix, *loc);
}

bool Speaker::already_advertised(net::NodeId peer, net::Prefix prefix,
                                 const UpdateMsg& desired) const {
  auto it = advertised_.find({peer, prefix});
  const Advertised::Kind kind =
      it == advertised_.end() ? Advertised::Kind::kNotSent : it->second.kind;
  if (desired.is_withdrawal()) {
    // Nothing to retract if the peer never heard an announcement from us.
    return kind != Advertised::Kind::kAnnounced;
  }
  return kind == Advertised::Kind::kAnnounced && it->second.path == *desired.path;
}

void Speaker::consider_send(net::NodeId peer, net::Prefix prefix) {
  consider_send_with(peer, prefix, loc_rib_.get(prefix));
}

void Speaker::consider_send_with(net::NodeId peer, net::Prefix prefix,
                                 const AsPath* loc) {
  const UpdateMsg desired = desired_update(peer, prefix, loc);
  const bool same = already_advertised(peer, prefix, desired);
  const bool rate_limited = !desired.is_withdrawal() || config_.wrate;
  if (rate_limited && mrai_.running(peer, prefix)) {
    // Hold the decision; the expiry handler re-derives the then-current
    // desired update (intermediate flaps are never transmitted).
    mrai_.set_pending(peer, prefix, !same);
    return;
  }
  if (same) return;
  if (config_.ssld && desired.is_withdrawal() && loc && loc->contains(peer)) {
    ++counters_.ssld_conversions;
  }
  send_update(peer, prefix, desired);
}

void Speaker::send_update(net::NodeId peer, net::Prefix prefix,
                          UpdateMsg update) {
  auto& adv = advertised_[{peer, prefix}];
  if (update.is_withdrawal()) {
    adv.kind = Advertised::Kind::kWithdrawn;
    adv.path = AsPath{};
    ++counters_.withdrawals_sent;
  } else {
    adv.kind = Advertised::Kind::kAnnounced;
    adv.path = *update.path;
    ++counters_.announcements_sent;
  }

  sim::LogLine{sim::LogLevel::kTrace, "bgp", sim_.now()}
      << "node " << self_ << " send to " << peer << ": " << update.to_string();

  const bool start_timer =
      (!update.is_withdrawal() || config_.wrate) && !mrai_.running(peer, prefix);
  // A bypassing withdrawal supersedes any decision held behind the timer.
  mrai_.set_pending(peer, prefix, false);

  if (staging_) {
    // Multiprefix batching: defer the wire hop to the enclosing scope's
    // flush. All protocol bookkeeping (counters, advertised mirror, MRAI
    // starts, hooks) stays at logical-send time, so only the transport
    // message shape changes.
    staged_.emplace_back(peer, update);
  } else {
    transport_.send(self_, peer, update);
  }
  if (hooks_.on_update_sent) hooks_.on_update_sent(self_, peer, update);

  if (start_timer) mrai_.start(peer, prefix, jittered_mrai(), sim_);
}

void Speaker::flush_staged() {
  if (staged_.empty()) return;
  // Group per peer (ascending), preserving each peer's message order.
  std::map<net::NodeId, std::vector<UpdateMsg>> by_peer;
  for (auto& [peer, msg] : staged_) {
    by_peer[peer].push_back(std::move(msg));
  }
  staged_.clear();
  for (auto& [peer, msgs] : by_peer) {
    if (msgs.size() == 1) {
      transport_.send(self_, peer, std::move(msgs.front()));
    } else {
      transport_.send(self_, peer, UpdateBatch{std::move(msgs)});
    }
  }
}

void Speaker::on_mrai_expired(net::NodeId peer, net::Prefix prefix,
                              bool was_pending) {
  if (hooks_.on_mrai_expired) {
    hooks_.on_mrai_expired(self_, peer, prefix, was_pending);
  }
  if (was_pending) consider_send(peer, prefix);
}

void Speaker::on_mrai_burst(const std::vector<MraiTimers::Expiry>& batch) {
  // MRAI timers toward all peers start together (advertise_to_all under a
  // deterministic jitter), so a burst is typically one prefix × many
  // peers: run the Loc-RIB lookup once per prefix run. Safe because the
  // send path never mutates loc_rib_ — sends only go to peer processing
  // queues, delivered via future events.
  net::Prefix run_prefix{};
  const AsPath* loc = nullptr;
  bool have_run = false;
  for (const MraiTimers::Expiry& e : batch) {
    if (hooks_.on_mrai_expired) {
      hooks_.on_mrai_expired(self_, e.peer, e.prefix, e.was_pending);
    }
    if (!e.was_pending) continue;
    if (!have_run || e.prefix != run_prefix) {
      run_prefix = e.prefix;
      loc = loc_rib_.get(e.prefix);
      have_run = true;
    }
    consider_send_with(e.peer, e.prefix, loc);
  }
}

void Speaker::ghost_flush(net::Prefix prefix) {
  for (net::NodeId peer : peers_) {
    if (!mrai_.running(peer, prefix)) continue;  // announce not delayed
    auto it = advertised_.find({peer, prefix});
    if (it == advertised_.end() ||
        it->second.kind != Advertised::Kind::kAnnounced) {
      continue;
    }
    ++counters_.ghost_flushes;
    send_update(peer, prefix, UpdateMsg::withdraw(prefix));
    // The (longer) replacement path follows at MRAI expiry.
    mrai_.set_pending(peer, prefix, true);
  }
}

void Speaker::save_state(snap::Writer& w) const {
  snap::write_rng(w, rng_);
  w.u64(peers_.size());
  for (const net::NodeId peer : peers_) w.u32(peer);
  w.u64(originated_.size());
  for (const net::Prefix prefix : originated_) w.u32(prefix);
  adj_rib_in_.save_state(w);
  loc_rib_.save_state(w);
  mrai_.save_state(w);
  w.u64(caution_lost_length_.size());
  for (const auto& [prefix, lost_length] : caution_lost_length_) {
    w.u32(prefix);
    w.u64(lost_length);
  }
  w.u64(advertised_.size());
  for (const auto& [key, adv] : advertised_) {
    w.u32(key.first);
    w.u32(key.second);
    w.u8(static_cast<std::uint8_t>(adv.kind));
    adv.path.save(w);
  }
  w.u64(counters_.announcements_sent);
  w.u64(counters_.withdrawals_sent);
  w.u64(counters_.updates_received);
  w.u64(counters_.poison_reverse_discards);
  w.u64(counters_.assertion_removals);
  w.u64(counters_.ghost_flushes);
  w.u64(counters_.ssld_conversions);
  w.u64(counters_.best_path_changes);
  w.u64(counters_.caution_holds);
}

void Speaker::restore_state(snap::Reader& r) {
  snap::read_rng(r, rng_);
  peers_.clear();
  const std::uint64_t n_peers = r.u64();
  for (std::uint64_t i = 0; i < n_peers; ++i) peers_.insert(r.u32());
  originated_.clear();
  const std::uint64_t n_origins = r.u64();
  for (std::uint64_t i = 0; i < n_origins; ++i) originated_.insert(r.u32());
  adj_rib_in_.restore_state(r);
  loc_rib_.restore_state(r);
  mrai_.restore_state(r);
  caution_lost_length_.clear();
  const std::uint64_t n_caution = r.u64();
  for (std::uint64_t i = 0; i < n_caution; ++i) {
    const net::Prefix prefix = r.u32();
    const std::uint64_t lost_length = r.u64();
    caution_lost_length_.emplace(prefix,
                                 static_cast<std::size_t>(lost_length));
  }
  advertised_.clear();
  const std::uint64_t n_adv = r.u64();
  for (std::uint64_t i = 0; i < n_adv; ++i) {
    const net::NodeId peer = r.u32();
    const net::Prefix prefix = r.u32();
    Advertised adv;
    adv.kind = static_cast<Advertised::Kind>(r.u8());
    adv.path = AsPath::load(r);
    advertised_.emplace(std::pair{peer, prefix}, std::move(adv));
  }
  counters_.announcements_sent = r.u64();
  counters_.withdrawals_sent = r.u64();
  counters_.updates_received = r.u64();
  counters_.poison_reverse_discards = r.u64();
  counters_.assertion_removals = r.u64();
  counters_.ghost_flushes = r.u64();
  counters_.ssld_conversions = r.u64();
  counters_.best_path_changes = r.u64();
  counters_.caution_holds = r.u64();
}

sim::SimTime Speaker::jittered_mrai() {
  if (config_.jitter_lo == config_.jitter_hi) {
    return sim::SimTime::seconds(config_.mrai.as_seconds() * config_.jitter_lo);
  }
  return sim::SimTime::seconds(
      config_.mrai.as_seconds() *
      rng_.uniform(config_.jitter_lo, config_.jitter_hi));
}

}  // namespace bgpsim::bgp
