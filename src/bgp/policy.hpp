// Gao-Rexford routing policy over a RelationshipTable.
//
// Import: prefer customer-learned routes over peer-learned over
// provider-learned (local preference), before path length.
// Export ("no valley, no free transit"):
//   - self-originated and customer-learned routes go to everyone;
//   - peer- and provider-learned routes go to customers only.
// With a relationship-annotated hierarchy that is acyclic in its
// provider-customer digraph (our Internet generator guarantees this),
// these rules are the classic sufficient condition for BGP convergence.
#pragma once

#include "bgp/as_path.hpp"
#include "net/relationships.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// Local preference of a route learned from `peer` at `self`.
/// Unclassified adjacencies count as peers (middle preference).
[[nodiscard]] int policy_local_pref(const net::RelationshipTable& rel,
                                    net::NodeId self, net::NodeId peer);

/// May `self` export its current best route `loc` (paper notation: starts
/// with self; hops()[1] is the neighbor it was learned from, absent when
/// self-originated) to neighbor `to`?
[[nodiscard]] bool policy_exportable(const net::RelationshipTable& rel,
                                     net::NodeId self, const AsPath& loc,
                                     net::NodeId to);

/// Valley-free check for a full forwarding path (first hop = the source
/// node, last = origin): the relationship sequence along the traffic
/// direction must match up* peer? down*. Used by tests to validate
/// converged states under policy routing.
[[nodiscard]] bool valley_free(const net::RelationshipTable& rel,
                               const AsPath& path);

}  // namespace bgpsim::bgp
