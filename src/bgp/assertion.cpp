#include "bgp/assertion.hpp"

namespace bgpsim::bgp {

std::size_t assert_on_announce(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer, const AsPath& new_path) {
  return rib.erase_if(prefix, [&](net::NodeId peer, const AsPath& stored) {
    if (peer == from_peer) return false;
    if (!stored.contains(from_peer)) return false;
    return stored.suffix_from(from_peer) != new_path;
  });
}

std::size_t assert_on_withdraw(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer) {
  return rib.erase_if(prefix, [&](net::NodeId peer, const AsPath& stored) {
    return peer != from_peer && stored.contains(from_peer);
  });
}

std::size_t assert_on_session_loss(AdjRibIn& rib, net::Prefix prefix,
                                   net::NodeId from_peer) {
  return rib.erase_if(prefix, [&](net::NodeId peer, const AsPath& stored) {
    // A loop-free path contains each AS once, so origin()==u means u only
    // appears terminally — the path ends at u and does not rely on u's
    // route.
    return peer != from_peer && stored.contains(from_peer) &&
           stored.origin() != from_peer;
  });
}

}  // namespace bgpsim::bgp
