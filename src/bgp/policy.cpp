#include "bgp/policy.hpp"

namespace bgpsim::bgp {

int policy_local_pref(const net::RelationshipTable& rel, net::NodeId self,
                      net::NodeId peer) {
  const auto r = rel.relationship(self, peer);
  if (!r) return net::RelationshipTable::local_pref(net::Relationship::kPeer);
  return net::RelationshipTable::local_pref(*r);
}

bool policy_exportable(const net::RelationshipTable& rel, net::NodeId self,
                       const AsPath& loc, net::NodeId to) {
  // Self-originated: advertise to everyone.
  if (loc.length() <= 1) return true;
  const net::NodeId learned_from = loc.hops()[1];
  const auto from_rel = rel.relationship(self, learned_from);
  // Customer-learned routes are revenue: export to everyone.
  if (from_rel == net::Relationship::kCustomer) return true;
  // Peer-/provider-learned: only to customers (no free transit).
  return rel.relationship(self, to) == net::Relationship::kCustomer;
}

bool valley_free(const net::RelationshipTable& rel, const AsPath& path) {
  // Phase 0: climbing (to providers). Phase 1: one peer step.
  // Phase 2: descending (to customers). Any regression is a valley.
  int phase = 0;
  const auto hops = path.hops();
  for (auto it = hops.begin(); it != hops.end();) {
    const net::NodeId a = *it;
    if (++it == hops.end()) break;
    const auto r = rel.relationship(a, *it);
    const net::Relationship step = r.value_or(net::Relationship::kPeer);
    switch (step) {
      case net::Relationship::kProvider:  // climbing
        if (phase != 0) return false;
        break;
      case net::Relationship::kPeer:
        if (phase >= 1) return false;
        phase = 1;
        break;
      case net::Relationship::kCustomer:  // descending
        phase = 2;
        break;
    }
  }
  return true;
}

}  // namespace bgpsim::bgp
