// BGP UPDATE wire messages.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// A BGP UPDATE for one prefix: either an announcement carrying the
/// sender's full AS path, or an explicit withdrawal.
struct UpdateMsg {
  net::Prefix prefix = 0;
  /// Engaged: announcement with this path. Empty: withdrawal.
  std::optional<AsPath> path;

  [[nodiscard]] bool is_withdrawal() const { return !path.has_value(); }

  [[nodiscard]] static UpdateMsg announce(net::Prefix p, AsPath path) {
    return UpdateMsg{p, std::move(path)};
  }
  [[nodiscard]] static UpdateMsg withdraw(net::Prefix p) {
    return UpdateMsg{p, std::nullopt};
  }

  [[nodiscard]] std::string to_string() const {
    if (is_withdrawal()) return "withdraw p" + std::to_string(prefix);
    return "announce p" + std::to_string(prefix) + " " + path->to_string();
  }
};

/// Several UPDATEs to one peer carried in a single transport message —
/// the NLRI-packing analogue for multi-prefix scenarios. One batch costs
/// one propagation delay and one receiver processing-queue draw; the
/// receiver applies every contained update and then runs one decision
/// pass per touched prefix. Only constructed in multiprefix mode (a batch
/// of one is sent as a plain UpdateMsg), so single-prefix event streams
/// never see it.
struct UpdateBatch {
  std::vector<UpdateMsg> updates;
};

}  // namespace bgpsim::bgp
