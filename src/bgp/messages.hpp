// BGP UPDATE wire messages.
#pragma once

#include <optional>
#include <string>

#include "bgp/as_path.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// A BGP UPDATE for one prefix: either an announcement carrying the
/// sender's full AS path, or an explicit withdrawal.
struct UpdateMsg {
  net::Prefix prefix = 0;
  /// Engaged: announcement with this path. Empty: withdrawal.
  std::optional<AsPath> path;

  [[nodiscard]] bool is_withdrawal() const { return !path.has_value(); }

  [[nodiscard]] static UpdateMsg announce(net::Prefix p, AsPath path) {
    return UpdateMsg{p, std::move(path)};
  }
  [[nodiscard]] static UpdateMsg withdraw(net::Prefix p) {
    return UpdateMsg{p, std::nullopt};
  }

  [[nodiscard]] std::string to_string() const {
    if (is_withdrawal()) return "withdraw p" + std::to_string(prefix);
    return "announce p" + std::to_string(prefix) + " " + path->to_string();
  }
};

}  // namespace bgpsim::bgp
