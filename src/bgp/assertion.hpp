// The Assertion enhancement [Pei et al., INFOCOM 2002].
//
// Assertion keeps the Adj-RIB-In *mutually consistent* using only locally
// available information:
//
//  - When peer u announces path(u,new): any stored route (from a different
//    peer) whose path traverses u but disagrees with path(u,new) about the
//    route u uses — i.e. its suffix starting at u differs from path(u,new)
//    — is provably obsolete and is removed.
//
//  - When peer u explicitly withdraws: u states it has no route, so any
//    stored route whose path traverses u relied on that route and is
//    removed. (This is why, in a Clique Tdown, the origin's withdrawal
//    immediately invalidates every (j 0) backup: they all traverse the
//    origin.)
//
//  - When the session to u drops, the only information gained is that the
//    local link died — u's own route is not in question. Stored routes
//    that *transit* u are still pruned (they depend on reaching the
//    destination through u's forwarding state, which is now stale from our
//    vantage), but routes that merely *terminate* at u survive: u is the
//    destination there, and its reachability via other neighbors is
//    untouched by our link loss. Without this distinction a node adjacent
//    to the destination would discard every backup on a Tlong failure and
//    stay unreachable forever (no peer re-announces an unchanged route).
//
// Removing these entries prevents a node from selecting an obsolete backup
// path — the loop-formation mechanism identified in §3 of the paper.
#pragma once

#include <cstddef>

#include "bgp/as_path.hpp"
#include "bgp/rib.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// Apply the announce-side assertion after storing path(u,new). Returns the
/// number of Adj-RIB-In entries removed.
std::size_t assert_on_announce(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer, const AsPath& new_path);

/// Apply the withdraw-side assertion after removing u's route on an
/// explicit withdrawal. Returns the number of entries removed.
std::size_t assert_on_withdraw(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer);

/// Session-loss variant: prune only routes that transit u (u appears
/// before the terminal AS). Routes terminating at u remain usable.
std::size_t assert_on_session_loss(AdjRibIn& rib, net::Prefix prefix,
                                   net::NodeId from_peer);

}  // namespace bgpsim::bgp
