// The Assertion enhancement [Pei et al., INFOCOM 2002].
//
// Assertion keeps the Adj-RIB-In *mutually consistent* using only locally
// available information:
//
//  - When peer u announces path(u,new): any stored route (from a different
//    peer) whose path traverses u but disagrees with path(u,new) about the
//    route u uses — i.e. its suffix starting at u differs from path(u,new)
//    — is provably obsolete and is removed.
//
//  - When peer u withdraws (or the session to u drops): any stored route
//    whose path traverses u relied on u's now-withdrawn route and is
//    removed. (This is why, in a Clique Tdown, the origin's withdrawal
//    immediately invalidates every (j 0) backup: they all traverse the
//    origin.)
//
// Removing these entries prevents a node from selecting an obsolete backup
// path — the loop-formation mechanism identified in §3 of the paper.
#pragma once

#include <cstddef>

#include "bgp/as_path.hpp"
#include "bgp/rib.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// Apply the announce-side assertion after storing path(u,new). Returns the
/// number of Adj-RIB-In entries removed.
std::size_t assert_on_announce(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer, const AsPath& new_path);

/// Apply the withdraw-side assertion after removing u's route (explicit
/// withdrawal or session loss). Returns the number of entries removed.
std::size_t assert_on_withdraw(AdjRibIn& rib, net::Prefix prefix,
                               net::NodeId from_peer);

}  // namespace bgpsim::bgp
