#include "bgp/rib.hpp"

namespace bgpsim::bgp {

AdjRibIn::AdjRibIn(rib::LocalRibs* store, rib::SpeakerId row) {
  if (store != nullptr) {
    store_ = store;
    row_ = row;
  } else {
    owned_ = std::make_unique<rib::LocalRibs>(1);
    store_ = owned_.get();
    row_ = 0;
  }
}

LocRib::LocRib(rib::LocalRibs* store, rib::SpeakerId row) {
  if (store != nullptr) {
    store_ = store;
    row_ = row;
  } else {
    owned_ = std::make_unique<rib::LocalRibs>(1);
    store_ = owned_.get();
    row_ = 0;
  }
}

}  // namespace bgpsim::bgp
