#include "bgp/rib.hpp"

#include <algorithm>

namespace bgpsim::bgp {

const std::map<net::NodeId, AsPath> AdjRibIn::kEmpty{};

void AdjRibIn::set(net::Prefix prefix, net::NodeId peer, AsPath path) {
  table_[prefix][peer] = std::move(path);
}

bool AdjRibIn::withdraw(net::Prefix prefix, net::NodeId peer) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return false;
  return it->second.erase(peer) > 0;
}

std::vector<net::Prefix> AdjRibIn::drop_peer(net::NodeId peer) {
  std::vector<net::Prefix> affected;
  for (auto& [prefix, per_peer] : table_) {
    if (per_peer.erase(peer) > 0) affected.push_back(prefix);
  }
  return affected;
}

const AsPath* AdjRibIn::get(net::Prefix prefix, net::NodeId peer) const {
  auto it = table_.find(prefix);
  if (it == table_.end()) return nullptr;
  auto e = it->second.find(peer);
  if (e == it->second.end()) return nullptr;
  return &e->second;
}

const std::map<net::NodeId, AsPath>& AdjRibIn::entries(
    net::Prefix prefix) const {
  auto it = table_.find(prefix);
  return it == table_.end() ? kEmpty : it->second;
}

std::vector<net::Prefix> AdjRibIn::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, per_peer] : table_) {
    if (!per_peer.empty()) out.push_back(prefix);
  }
  return out;
}

bool LocRib::set(net::Prefix prefix, std::optional<AsPath> path) {
  auto it = best_.find(prefix);
  if (!path) {
    if (it == best_.end()) return false;
    best_.erase(it);
    return true;
  }
  if (it != best_.end() && it->second == *path) return false;
  best_[prefix] = std::move(*path);
  return true;
}

const AsPath* LocRib::get(net::Prefix prefix) const {
  auto it = best_.find(prefix);
  return it == best_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> LocRib::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(best_.size());
  for (const auto& [prefix, path] : best_) out.push_back(prefix);
  return out;
}

void AdjRibIn::save_state(snap::Writer& w) const {
  std::vector<net::Prefix> keys;
  keys.reserve(table_.size());
  for (const auto& [prefix, per_peer] : table_) keys.push_back(prefix);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const net::Prefix prefix : keys) {
    const auto& per_peer = table_.at(prefix);
    w.u32(prefix);
    w.u64(per_peer.size());
    for (const auto& [peer, path] : per_peer) {
      w.u32(peer);
      path.save(w);
    }
  }
}

void AdjRibIn::restore_state(snap::Reader& r) {
  table_.clear();
  const std::uint64_t prefixes = r.u64();
  for (std::uint64_t i = 0; i < prefixes; ++i) {
    const net::Prefix prefix = r.u32();
    auto& per_peer = table_[prefix];
    const std::uint64_t entries = r.u64();
    for (std::uint64_t j = 0; j < entries; ++j) {
      const net::NodeId peer = r.u32();
      per_peer.emplace(peer, AsPath::load(r));
    }
  }
}

void LocRib::save_state(snap::Writer& w) const {
  std::vector<net::Prefix> keys;
  keys.reserve(best_.size());
  for (const auto& [prefix, path] : best_) keys.push_back(prefix);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const net::Prefix prefix : keys) {
    w.u32(prefix);
    best_.at(prefix).save(w);
  }
}

void LocRib::restore_state(snap::Reader& r) {
  best_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::Prefix prefix = r.u32();
    best_.emplace(prefix, AsPath::load(r));
  }
}

}  // namespace bgpsim::bgp
