// BGP speaker configuration, including the four studied enhancements.
#pragma once

#include <string>

#include "net/relationships.hpp"
#include "sim/time.hpp"

namespace bgpsim::bgp {

/// Which convergence-enhancement mechanism a speaker runs. The paper
/// evaluates each one separately against standard BGP.
enum class Enhancement {
  kStandard,       // RFC 1771 behavior: MRAI on announcements only
  kSsld,           // Sender-Side Loop Detection [Labovitz et al.]
  kWrate,          // Withdrawal RAte limiTing: MRAI on withdrawals too
  kAssertion,      // Assertion checks [Pei et al., INFOCOM 2002]
  kGhostFlushing,  // Ghost Flushing [Bremler-Barr et al., INFOCOM 2003]
};

[[nodiscard]] constexpr const char* to_string(Enhancement e) {
  switch (e) {
    case Enhancement::kStandard:
      return "BGP";
    case Enhancement::kSsld:
      return "SSLD";
    case Enhancement::kWrate:
      return "WRATE";
    case Enhancement::kAssertion:
      return "Assertion";
    case Enhancement::kGhostFlushing:
      return "GhostFlush";
  }
  return "?";
}

/// All five protocol variants, in the paper's presentation order.
inline constexpr Enhancement kAllEnhancements[] = {
    Enhancement::kStandard, Enhancement::kSsld, Enhancement::kWrate,
    Enhancement::kAssertion, Enhancement::kGhostFlushing};

struct BgpConfig {
  /// Minimum Route Advertisement Interval (per (peer, prefix)); default 30 s
  /// per RFC 1771.
  sim::SimTime mrai = sim::SimTime::seconds(30);

  /// Each timer start draws duration = mrai × U[jitter_lo, jitter_hi]
  /// (RFC 1771 §9.2.2.3 suggests jitter of 0.75–1.0 of the base value).
  double jitter_lo = 0.75;
  double jitter_hi = 1.0;

  /// Individual feature flags; usually set via `with(Enhancement)`.
  bool ssld = false;
  bool wrate = false;            // apply MRAI to withdrawals
  bool assertion = false;
  bool ghost_flushing = false;

  /// Optional Gao-Rexford policy (import preference + no-valley export).
  /// Null = the paper's shortest-path policy. The table must outlive every
  /// speaker constructed with this config.
  const net::RelationshipTable* policy = nullptr;

  /// DUAL-inspired caution (the paper's §3.3/§6 future-work direction):
  /// when the current path is lost and only a *worse* backup remains, wait
  /// this long before adopting it — behaving as unreachable (dropping
  /// packets) meanwhile, so withdrawals get time to flush obsolete state.
  /// Zero (default) = standard BGP's immediate switch. Trades loops for
  /// drops; see bench/ablation_caution.
  sim::SimTime backup_caution = sim::SimTime::zero();

  /// Multi-prefix mode (set by the experiment driver when the scenario
  /// carries more than one prefix): speakers stage outbound updates inside
  /// a handler invocation and flush them as one batched transport message
  /// per peer, and batched inbound delivery runs one decision pass per
  /// touched prefix. Off (the default) executes exactly the single-prefix
  /// code paths, keeping those digests bit-identical.
  bool multiprefix = false;

  /// Returns a copy configured for exactly one enhancement.
  [[nodiscard]] BgpConfig with(Enhancement e) const {
    BgpConfig c = *this;
    c.ssld = e == Enhancement::kSsld;
    c.wrate = e == Enhancement::kWrate;
    c.assertion = e == Enhancement::kAssertion;
    c.ghost_flushing = e == Enhancement::kGhostFlushing;
    return c;
  }
};

}  // namespace bgpsim::bgp
