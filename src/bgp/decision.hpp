// The BGP decision process used by the study.
//
// Policy: shortest AS-path wins; ties break toward the smaller next-hop
// node id (the paper: "the smaller node ID is used for tie-breaking between
// equal length paths"), then lexicographically on the full path so the
// order is total and runs are deterministic.
#pragma once

#include <optional>

#include "bgp/rib.hpp"
#include "net/relationships.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// True if candidate `a` is preferred over `b`. Both are *neighbor* paths
/// as advertised (first hop = the neighbor).
[[nodiscard]] bool preferred(const AsPath& a, const AsPath& b);

/// Select the best usable route for `self` among `rib`'s entries for
/// `prefix`.
///
/// A route is usable iff its path does not contain `self` (path-based
/// poison reverse: a node never adopts a path through itself). Returns the
/// *selected neighbor path*; the caller's Loc-RIB path is its prepension
/// with `self`. Returns nullopt when no usable route exists.
///
/// With a non-null `policy`, Gao-Rexford local preference (customer >
/// peer > provider, by the advertising neighbor's relationship) is applied
/// before path length — the "prefer customer" import rule.
[[nodiscard]] std::optional<AsPath> select_best(
    const AdjRibIn& rib, net::Prefix prefix, net::NodeId self,
    const net::RelationshipTable* policy = nullptr);

}  // namespace bgpsim::bgp
