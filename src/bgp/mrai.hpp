// Per-(peer, prefix) Minimum Route Advertisement Interval timers.
//
// RFC 1771 §9.2.1.1: a route to a given destination may be advertised to a
// given peer at most once per MRAI. The timer starts when an advertisement
// is sent; while it runs, newer decisions are *held* (pending) and the most
// current one is sent at expiry — intermediate flaps are never sent at all.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "snap/codec.hpp"

namespace bgpsim::bgp {

class MraiTimers {
 public:
  /// Callback at timer expiry; `was_pending` says whether a held decision
  /// accumulated while the timer ran.
  using ExpiryHandler =
      std::function<void(net::NodeId peer, net::Prefix prefix, bool was_pending)>;

  /// One expiry inside a batched delivery, in exact firing order.
  struct Expiry {
    net::NodeId peer;
    net::Prefix prefix;
    bool was_pending;
  };

  /// Callback for a batch of two or more expiries due at the same instant
  /// (simulator burst delivery). The receiver must process the batch in
  /// order, producing the same observable effects as per-item expiry
  /// handling; single expiries still go through the ExpiryHandler. When no
  /// burst handler is set, every expiry is delivered individually.
  using BurstHandler = std::function<void(const std::vector<Expiry>&)>;

  void set_expiry_handler(ExpiryHandler h) { on_expiry_ = std::move(h); }
  void set_burst_handler(BurstHandler h) { on_burst_ = std::move(h); }

  [[nodiscard]] bool running(net::NodeId peer, net::Prefix prefix) const;
  [[nodiscard]] bool pending(net::NodeId peer, net::Prefix prefix) const;

  /// Overwrite the pending flag for a *running* timer. No-op when the timer
  /// is not running.
  void set_pending(net::NodeId peer, net::Prefix prefix, bool pending);

  /// Start the timer (must not be running) to expire after `duration`.
  void start(net::NodeId peer, net::Prefix prefix, sim::SimTime duration,
             sim::Simulator& simulator);

  /// Cancel all timers toward `peer` (session down).
  void cancel_peer(net::NodeId peer, sim::Simulator& simulator);

  /// True if any running timer holds a pending decision — i.e. protocol
  /// work is still queued behind MRAI.
  [[nodiscard]] bool any_pending() const;

  [[nodiscard]] std::size_t running_count() const { return timers_.size(); }

  /// Checkpoint codec. Only the bookkeeping map is serialized; the expiry
  /// events themselves live in the event queue. An in-place restore pairs
  /// the map back up with the still-scheduled closures (which capture keys
  /// by value); a fresh restore is only valid when no timers are running.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct State {
    bool pending = false;
    sim::EventId ev{};
  };
  using Key = std::pair<net::NodeId, net::Prefix>;

  /// Expiry entry point for the scheduled closure: under burst delivery
  /// (wheel backend) it additionally consumes every immediately following
  /// event that is one of this object's own timers due at the same
  /// instant, then dispatches the whole batch.
  void fire(const Key& key, sim::Simulator& simulator);

  // std::map keeps iteration deterministic for cancel_peer / any_pending.
  std::map<Key, State> timers_;
  ExpiryHandler on_expiry_;
  BurstHandler on_burst_;
  std::vector<Expiry> batch_;  // reused across fires; no steady-state alloc
};

}  // namespace bgpsim::bgp
