#include "bgp/path_store.hpp"

namespace bgpsim::bgp {

thread_local PathStore* PathStore::current_ = nullptr;

namespace detail {

void release(const PathNode* n) noexcept {
  while (n != nullptr) {
    if (n->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    const PathNode* parent = n->parent;
    delete n;
    n = parent;
  }
}

const PathNode* cons(net::NodeId head, const PathNode* parent) {
  if (PathStore* store = PathStore::current(); store != nullptr) {
    return store->intern(head, parent);
  }
  auto* node = new PathNode;
  node->parent = retain(parent);
  node->head = head;
  node->origin = parent != nullptr ? parent->origin : head;
  node->length = parent != nullptr ? parent->length + 1 : 1;
  return node;
}

}  // namespace detail

const detail::PathNode* PathStore::intern(net::NodeId head,
                                          const detail::PathNode* parent) {
  const Key key{head, parent};
  if (auto it = table_.find(key); it != table_.end()) {
    ++hits_;
    return detail::retain(it->second);
  }
  ++misses_;
  auto* node = new detail::PathNode;
  node->parent = detail::retain(parent);
  node->head = head;
  node->origin = parent != nullptr ? parent->origin : head;
  node->length = parent != nullptr ? parent->length + 1 : 1;
  node->refs.store(2, std::memory_order_relaxed);  // the table + the caller
  table_.emplace(key, node);
  return node;
}

void PathStore::clear() {
  for (const auto& [key, node] : table_) detail::release(node);
  table_.clear();
}

}  // namespace bgpsim::bgp
