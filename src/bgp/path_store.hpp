// Structurally-shared AS-path storage.
//
// An AS path is an immutable cons list: a node holds the front hop plus a
// refcounted pointer to the rest of the path. prepended() — the operation
// the convergence hot loop performs once per adopted route — is then an
// O(1) cons onto the parent instead of a full vector copy, and every
// speaker holding "(self)·P" shares P's storage with the neighbor that
// advertised P.
//
// A PathStore adds interning on top of the sharing: while a store is
// current (PathStore::Scope, opened per experiment by the run drivers),
// cons(head, parent) returns the same node for the same arguments, so
// structurally-equal paths built through any sequence of operations are
// pointer-equal and AsPath::operator== is a pointer comparison on the hot
// path. The store is thread-confined (one experiment = one thread = one
// scope); node refcounts are atomic so shared suffixes may outlive the
// store that created them.
//
// Determinism: interning changes only *where* a path lives, never its hop
// sequence, so every observable output (decision order, codec bytes,
// digests) is bit-identical with and without a store. The digest-equality
// suite in tests/core/digest_equiv_test.cpp enforces this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "net/types.hpp"

namespace bgpsim::bgp {

class PathStore;

namespace detail {

/// One immutable cons cell. `parent` (the rest of the path) is owned: a
/// node holds one reference to it for its whole lifetime. `origin` and
/// `length` are denormalized so AsPath::origin()/length() are O(1).
struct PathNode {
  const PathNode* parent = nullptr;
  mutable std::atomic<std::uint32_t> refs{1};
  net::NodeId head = 0;
  net::NodeId origin = 0;
  std::uint32_t length = 0;
};

/// Take one additional reference. Tolerates nullptr.
inline const PathNode* retain(const PathNode* n) noexcept {
  if (n != nullptr) n->refs.fetch_add(1, std::memory_order_relaxed);
  return n;
}

/// Drop one reference; frees the node (and cascades into its parent chain
/// while uniquely owned). Tolerates nullptr.
void release(const PathNode* n) noexcept;

/// (head)·parent as an owned node (+1 reference handed to the caller).
/// Consults the calling thread's current PathStore, if any, so repeated
/// construction of the same path returns the same node.
[[nodiscard]] const PathNode* cons(net::NodeId head, const PathNode* parent);

}  // namespace detail

/// Per-experiment intern table for PathNodes. Not thread-safe: a store
/// must be used (Scope'd, consed into, destroyed) on a single thread.
class PathStore {
 public:
  PathStore() = default;
  ~PathStore() { clear(); }
  PathStore(const PathStore&) = delete;
  PathStore& operator=(const PathStore&) = delete;

  /// Makes `store` the calling thread's current store for the Scope's
  /// lifetime (nestable: the previous current store is restored on exit).
  /// Every AsPath construction on this thread interns through it.
  class Scope {
   public:
    explicit Scope(PathStore& store) noexcept : prev_{current_} {
      current_ = &store;
    }
    ~Scope() { current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PathStore* prev_;
  };

  /// The calling thread's current store, or nullptr (plain refcounted
  /// sharing without interning).
  [[nodiscard]] static PathStore* current() noexcept { return current_; }

  /// Distinct interned nodes currently alive in the table.
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Intern probes that found an existing node / created a fresh one.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Drop the table (releases the store's reference on every interned
  /// node; nodes still referenced by live AsPaths survive un-interned).
  void clear();

 private:
  friend const detail::PathNode* detail::cons(net::NodeId, const detail::PathNode*);

  struct Key {
    net::NodeId head;
    const detail::PathNode* parent;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // FNV-1a over the two fields; the parent pointer is already
      // well-distributed.
      std::uint64_t h = 1469598103934665603ull;
      h = (h ^ k.head) * 1099511628211ull;
      h = (h ^ reinterpret_cast<std::uintptr_t>(k.parent)) * 1099511628211ull;
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] const detail::PathNode* intern(net::NodeId head,
                                               const detail::PathNode* parent);

  static thread_local PathStore* current_;

  // Holds one reference per entry.
  std::unordered_map<Key, const detail::PathNode*, KeyHash> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bgpsim::bgp
