// Routing Information Bases.
//
// Since the multi-prefix refactor these are thin per-speaker facades over
// the dense rib::LocalRibs structure-of-arrays store (one flat
// (speaker × prefix-id) block per network instead of per-speaker hash
// maps; see rib/local_ribs.hpp). A facade either binds to the network's
// shared store (BgpNetwork wires every Speaker to one LocalRibs) or, when
// default-constructed, owns a private single-speaker store so standalone
// unit-test use keeps working unchanged. The public semantics — including
// ascending-peer iteration, the set()-returns-changed contract, and the
// per-speaker checkpoint byte layout — are those of the old map-backed
// classes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/as_path.hpp"
#include "net/types.hpp"
#include "rib/local_ribs.hpp"

namespace bgpsim::bgp {

/// Adj-RIB-In: the most recent route learned from each neighbor, per prefix.
///
/// Entries persist until replaced, withdrawn, or the peer session drops —
/// which is exactly why obsolete entries exist to be picked as backup paths
/// (the root cause of the paper's transient loops). The Assertion
/// enhancement additionally erases entries it proves obsolete.
class AdjRibIn {
 public:
  /// Bind to `store` row `row`; with store == nullptr (the default), own a
  /// private single-speaker store.
  explicit AdjRibIn(rib::LocalRibs* store = nullptr, rib::SpeakerId row = 0);

  /// Record an announcement from `peer`. Replaces any previous entry.
  void set(net::Prefix prefix, net::NodeId peer, AsPath path) {
    store_->adj_set(row_, prefix, peer, std::move(path));
  }

  /// Remove `peer`'s route for `prefix` (withdrawal or poison-reverse
  /// discard). Returns true if an entry existed.
  bool withdraw(net::Prefix prefix, net::NodeId peer) {
    return store_->adj_withdraw(row_, prefix, peer);
  }

  /// Remove everything learned from `peer` (session down). Returns the
  /// prefixes that lost an entry, ascending.
  std::vector<net::Prefix> drop_peer(net::NodeId peer) {
    return store_->adj_drop_peer(row_, peer);
  }

  /// The stored route from `peer` for `prefix`, if any.
  [[nodiscard]] const AsPath* get(net::Prefix prefix, net::NodeId peer) const {
    return store_->adj_get(row_, prefix, peer);
  }

  /// All (peer, path) entries for `prefix`, in ascending peer order
  /// (deterministic iteration keeps runs reproducible).
  [[nodiscard]] const rib::PeerColumn& entries(net::Prefix prefix) const {
    return store_->adj_entries(row_, prefix);
  }

  /// All prefixes with at least one entry, ascending.
  [[nodiscard]] std::vector<net::Prefix> prefixes() const {
    return store_->adj_prefixes(row_);
  }

  /// Checkpoint codec (prefixes sorted; peers already deterministic).
  void save_state(snap::Writer& w) const { store_->save_adj(row_, w); }
  void restore_state(snap::Reader& r) { store_->restore_adj(row_, r); }

  /// Erase entries for `prefix` that satisfy `pred(peer, path)`; returns
  /// the number erased. Used by the Assertion enhancement.
  template <typename Pred>
  std::size_t erase_if(net::Prefix prefix, Pred pred) {
    return store_->adj_erase_if(row_, prefix, pred);
  }

 private:
  std::unique_ptr<rib::LocalRibs> owned_;  // engaged when unbound
  rib::LocalRibs* store_;
  rib::SpeakerId row_;
};

/// Loc-RIB: the node's currently selected best path per prefix. A node's
/// own path includes itself at the front (paper notation).
class LocRib {
 public:
  /// Bind to `store` row `row`; with store == nullptr (the default), own a
  /// private single-speaker store.
  explicit LocRib(rib::LocalRibs* store = nullptr, rib::SpeakerId row = 0);

  /// Install the selected path (or disengage on nullopt). Returns true if
  /// the stored value changed.
  bool set(net::Prefix prefix, std::optional<AsPath> path) {
    return store_->set_best(row_, prefix, std::move(path));
  }

  [[nodiscard]] const AsPath* get(net::Prefix prefix) const {
    return store_->best(row_, prefix);
  }

  [[nodiscard]] std::vector<net::Prefix> prefixes() const {
    return store_->best_prefixes(row_);
  }

  /// Checkpoint codec (prefixes sorted for deterministic bytes).
  void save_state(snap::Writer& w) const { store_->save_best(row_, w); }
  void restore_state(snap::Reader& r) { store_->restore_best(row_, r); }

 private:
  std::unique_ptr<rib::LocalRibs> owned_;  // engaged when unbound
  rib::LocalRibs* store_;
  rib::SpeakerId row_;
};

}  // namespace bgpsim::bgp
