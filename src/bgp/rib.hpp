// Routing Information Bases.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/as_path.hpp"
#include "net/types.hpp"

namespace bgpsim::bgp {

/// Adj-RIB-In: the most recent route learned from each neighbor, per prefix.
///
/// Entries persist until replaced, withdrawn, or the peer session drops —
/// which is exactly why obsolete entries exist to be picked as backup paths
/// (the root cause of the paper's transient loops). The Assertion
/// enhancement additionally erases entries it proves obsolete.
class AdjRibIn {
 public:
  /// Record an announcement from `peer`. Replaces any previous entry.
  void set(net::Prefix prefix, net::NodeId peer, AsPath path);

  /// Remove `peer`'s route for `prefix` (withdrawal or poison-reverse
  /// discard). Returns true if an entry existed.
  bool withdraw(net::Prefix prefix, net::NodeId peer);

  /// Remove everything learned from `peer` (session down). Returns the
  /// prefixes that lost an entry.
  std::vector<net::Prefix> drop_peer(net::NodeId peer);

  /// The stored route from `peer` for `prefix`, if any.
  [[nodiscard]] const AsPath* get(net::Prefix prefix, net::NodeId peer) const;

  /// All (peer, path) entries for `prefix`, in ascending peer order
  /// (deterministic iteration keeps runs reproducible).
  [[nodiscard]] const std::map<net::NodeId, AsPath>& entries(
      net::Prefix prefix) const;

  /// All prefixes with at least one entry.
  [[nodiscard]] std::vector<net::Prefix> prefixes() const;

  /// Checkpoint codec (prefixes sorted; peers already deterministic).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

  /// Erase entries for `prefix` that satisfy `pred(peer, path)`; returns
  /// the number erased. Used by the Assertion enhancement.
  template <typename Pred>
  std::size_t erase_if(net::Prefix prefix, Pred pred) {
    auto it = table_.find(prefix);
    if (it == table_.end()) return 0;
    std::size_t erased = 0;
    for (auto e = it->second.begin(); e != it->second.end();) {
      if (pred(e->first, e->second)) {
        e = it->second.erase(e);
        ++erased;
      } else {
        ++e;
      }
    }
    return erased;
  }

 private:
  // prefix -> (peer -> path); std::map for deterministic order.
  std::unordered_map<net::Prefix, std::map<net::NodeId, AsPath>> table_;
  static const std::map<net::NodeId, AsPath> kEmpty;
};

/// Loc-RIB: the node's currently selected best path per prefix. A node's
/// own path includes itself at the front (paper notation).
class LocRib {
 public:
  /// Install the selected path (or disengage on nullopt). Returns true if
  /// the stored value changed.
  bool set(net::Prefix prefix, std::optional<AsPath> path);

  [[nodiscard]] const AsPath* get(net::Prefix prefix) const;

  [[nodiscard]] std::vector<net::Prefix> prefixes() const;

  /// Checkpoint codec (prefixes sorted for deterministic bytes).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::unordered_map<net::Prefix, AsPath> best_;
};

}  // namespace bgpsim::bgp
