// Scenario description: what to build, what to break, what to measure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/config.hpp"
#include "fwd/traffic.hpp"
#include "metrics/trace.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "topo/internet.hpp"

namespace bgpsim::check {
class Oracle;
}  // namespace bgpsim::check

namespace bgpsim::snap {
class Snapshot;
}  // namespace bgpsim::snap

namespace bgpsim::core {

/// Topology families from the paper's evaluation (§4.1), plus the
/// Internet-scale families added for the policy-routing study.
enum class TopologyKind {
  kClique,    // Figure 3(a); size = node count
  kBClique,   // Figure 3(b); size = n, node count = 2n
  kChain,     // used in unit/analysis scenarios
  kRing,
  kInternet,  // Internet-like generator; size = node count
  kAsGraph,   // scaled AS-relationship generator (1k-75k); size = node count
  kRelFile,   // CAIDA AS-relationship file; size derived from the file
};

[[nodiscard]] constexpr const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kClique:
      return "Clique";
    case TopologyKind::kBClique:
      return "B-Clique";
    case TopologyKind::kChain:
      return "Chain";
    case TopologyKind::kRing:
      return "Ring";
    case TopologyKind::kInternet:
      return "Internet";
    case TopologyKind::kAsGraph:
      return "AS-Graph";
    case TopologyKind::kRelFile:
      return "RelFile";
  }
  return "?";
}

/// Kinds whose generator/loader supplies business relationships, i.e. the
/// kinds a policy_routing scenario may use.
[[nodiscard]] constexpr bool policy_capable(TopologyKind k) {
  return k == TopologyKind::kInternet || k == TopologyKind::kAsGraph ||
         k == TopologyKind::kRelFile;
}

/// Kinds built by a seeded generator (trial sweeps advance topo_seed so
/// each trial sees a fresh graph; kRelFile is fixed input, so it does not
/// belong here).
[[nodiscard]] constexpr bool generated_topology(TopologyKind k) {
  return k == TopologyKind::kInternet || k == TopologyKind::kAsGraph;
}

struct TopologySpec {
  TopologyKind kind = TopologyKind::kClique;
  std::size_t size = 10;
  /// Seed for generated (Internet / AS-Graph) topologies; ignored by the
  /// regular families and by kRelFile.
  std::uint64_t topo_seed = 1;
  /// CAIDA AS-relationship file path; required iff kind == kRelFile.
  std::string rel_file;

  [[nodiscard]] net::Topology build() const;
  /// Topology plus relationship table, for the policy-capable kinds.
  /// Throws std::invalid_argument for kinds without relationships.
  [[nodiscard]] topo::AnnotatedTopology build_annotated() const;
  [[nodiscard]] std::string label() const;
};

/// The two topology-change events of §4.1, plus the Tup recovery event
/// from the Griffin/Premore methodology the paper builds on (used by the
/// ablation benches: route *announcement* carries no obsolete state, so it
/// should not loop — the paper's loop mechanism is failure-asymmetric).
enum class EventKind {
  /// The destination AS withdraws the prefix; the rest of the network
  /// converges to "unreachable". (Links stay up — the origin's withdrawal
  /// is a routing event, exactly as in the Griffin/Premore methodology the
  /// paper follows.)
  kTdown,
  /// A physical link fails without disconnecting the destination; the
  /// network converges to longer paths.
  kTlong,
  /// The destination AS announces a fresh prefix into a quiet network.
  kTup,
  /// A link fails and comes back Scenario::flap_interval later — the
  /// Tlong failure followed by its recovery, in one run. Exercises the
  /// session-restore paths (fresh table exchange, MRAI clock restarts).
  kFlap,
};

[[nodiscard]] constexpr const char* to_string(EventKind e) {
  switch (e) {
    case EventKind::kTdown:
      return "Tdown";
    case EventKind::kTlong:
      return "Tlong";
    case EventKind::kTup:
      return "Tup";
    case EventKind::kFlap:
      return "Flap";
  }
  return "?";
}

/// Mid-run serialize/deserialize probe (fault injection for the snapshot
/// subsystem itself). kNoop schedules the probe event but does nothing in
/// it — the control run; kVerify saves, restores in place, re-saves, and
/// fails the run if the bytes differ. Both schedule the *same* event so a
/// kNoop and a kVerify run replay identically when the codec is correct.
enum class SnapRoundtrip { kOff, kNoop, kVerify };

struct Scenario {
  TopologySpec topology;
  EventKind event = EventKind::kTdown;

  bgp::BgpConfig bgp;              // MRAI, jitter, enhancement flags
  net::ProcessingDelay processing; // default U[0.1 s, 0.5 s] (§4.2)
  fwd::TrafficConfig traffic;      // default 10 pkt/s, TTL 128 (§4.2)

  /// Run with Gao-Rexford policy routing (prefer-customer import,
  /// no-valley export) instead of the paper's shortest-path policy.
  /// Requires a policy-capable topology kind (Internet, AS-Graph, or a
  /// relationship file — they supply the business relationships). See
  /// bench/ablation_policy and bench/headline_policy_scale.
  bool policy_routing = false;

  /// Root seed: drives jitter, processing delays, traffic stagger, and the
  /// destination / failed-link choice on Internet topologies.
  std::uint64_t seed = 1;

  /// Number of prefixes in the routing table (the full-table workload).
  /// 1 (the default) runs exactly the paper's single-prefix experiment —
  /// every multi-prefix code path is gated off. With P > 1, prefix 0
  /// originates at `destination` and Tdown withdraws *every* prefix the
  /// destination originates (the correlated-failure event); advertisements
  /// and withdrawals leave each origin batched per peer, and receivers run
  /// one decision pass per touched prefix per batch.
  std::size_t prefixes = 1;

  /// Origin ASes for prefixes 1..P-1, applied cycled (prefix i ≥ 1
  /// originates at origins[(i-1) % origins.size()]). Empty: every prefix
  /// originates at `destination` (the fully correlated full table).
  std::vector<net::NodeId> origins;

  /// Destination AS. Default: node 0 for Clique/B-Clique/Chain/Ring (the
  /// paper's convention); a random lowest-degree node for Internet.
  std::optional<net::NodeId> destination;

  /// The link Tlong fails. Default: B-Clique's [0, n] link; for Internet, a
  /// random link of the destination that does not disconnect it.
  /// (kFlap fails and restores the same link.)
  std::optional<net::LinkId> tlong_link;

  /// How long a kFlap failure lasts before the link is restored.
  sim::SimTime flap_interval = sim::SimTime::seconds(15);

  /// Traffic begins this long before the event so loops forming at the
  /// event instant already see packets.
  sim::SimTime traffic_lead = sim::SimTime::seconds(2);

  /// Idle gap between initial convergence (fully drained) and the event.
  sim::SimTime settle_margin = sim::SimTime::seconds(5);

  /// Safety cap on total simulated time; exceeded => runtime_error.
  sim::SimTime max_sim_time = sim::SimTime::seconds(50000);

  /// Optional caller-owned route-change trace sink. When set, the run
  /// records update transmissions, best-path changes, loop formation /
  /// resolution, and the event injection itself (see metrics/trace.hpp).
  metrics::TraceRecorder* trace = nullptr;

  /// Optional caller-owned invariant oracle (check/oracle.hpp). When set,
  /// the run arms it, feeds it every speaker/FIB event, and checks the
  /// converged state against the offline reference at quiescence. The
  /// caller inspects oracle->ok() / violations() afterwards.
  check::Oracle* oracle = nullptr;

  /// When set, the run writes a checkpoint of the fully converged prelude
  /// (immediately before traffic/event scheduling) into *save_converged.
  snap::Snapshot* save_converged = nullptr;

  /// When set, the run skips the initial convergence phase and restores
  /// the network from this checkpoint instead (warm start). The snapshot's
  /// metadata must match this scenario (topology/config/seed/destination);
  /// mismatches throw std::invalid_argument.
  const snap::Snapshot* warm_start = nullptr;

  /// Mid-run save/restore probe; see SnapRoundtrip.
  SnapRoundtrip snap_roundtrip = SnapRoundtrip::kOff;

  /// Probe offset after the event injection time.
  sim::SimTime snap_roundtrip_after = sim::SimTime::seconds(5);

  [[nodiscard]] std::string label() const;
};

}  // namespace bgpsim::core
