#include "core/experiment.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "bgp/network.hpp"
#include "bgp/path_store.hpp"
#include "check/oracle.hpp"
#include "core/run_options.hpp"
#include "core/snap_support.hpp"
#include "fwd/engine.hpp"
#include "fwd/traffic.hpp"
#include "metrics/collector.hpp"
#include "metrics/loop_detector.hpp"
#include "core/selection.hpp"
#include "net/relationships.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"
#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::core {
namespace {

constexpr net::Prefix kPrefix = 0;

/// Capture the complete BGP run state into a snapshot with full identity
/// metadata. `quiescent` must only be true when the event queue is empty.
snap::Snapshot capture_bgp(const sim::Simulator& simulator,
                           const bgp::BgpNetwork& network,
                           const fwd::DataPlane& plane,
                           const fwd::TrafficGenerator& traffic,
                           const metrics::Collector& collector,
                           std::uint64_t topology_hash,
                           std::uint64_t config_hash, std::uint64_t seed,
                           net::NodeId destination, bool originated,
                           bool quiescent) {
  snap::Writer w;
  detail::save_run_state(w, simulator, network, plane, traffic, collector);
  snap::SnapshotMeta meta;
  meta.driver = snap::DriverKind::kBgp;
  meta.topology_hash = topology_hash;
  meta.config_hash = config_hash;
  meta.seed = seed;
  meta.destination = destination;
  meta.originated = originated;
  meta.quiescent = quiescent;
  meta.sim_time = simulator.now();
  return snap::Snapshot{std::move(meta), std::move(w).take()};
}

void restore_bgp(const snap::Snapshot& snapshot, sim::Simulator& simulator,
                 bgp::BgpNetwork& network, fwd::DataPlane& plane,
                 fwd::TrafficGenerator& traffic,
                 metrics::Collector& collector) {
  snap::Reader r{snapshot.payload()};
  detail::restore_run_state(r, simulator, network, plane, traffic, collector);
  r.finish();
}

}  // namespace

std::uint64_t scenario_prelude_hash(const Scenario& scenario) {
  snap::Hasher h;
  h.mix(static_cast<std::uint64_t>(scenario.topology.kind));
  h.mix(scenario.topology.size);
  h.mix(scenario.topology.topo_seed);
  if (scenario.topology.kind == TopologyKind::kRelFile) {
    // Mixed only for this kind so every pre-existing prelude hash is
    // unchanged (warm-start caches stay valid across this addition).
    std::uint64_t path_hash = 1469598103934665603ULL;  // FNV-1a
    for (const unsigned char c : scenario.topology.rel_file) {
      path_hash ^= c;
      path_hash *= 1099511628211ULL;
    }
    h.mix(path_hash);
  }
  h.mix(scenario.policy_routing ? 1 : 0);
  h.mix_time(scenario.bgp.mrai);
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof scenario.bgp.jitter_lo);
  std::memcpy(&bits, &scenario.bgp.jitter_lo, sizeof bits);
  h.mix(bits);
  std::memcpy(&bits, &scenario.bgp.jitter_hi, sizeof bits);
  h.mix(bits);
  h.mix((scenario.bgp.ssld ? 1U : 0U) | (scenario.bgp.wrate ? 2U : 0U) |
        (scenario.bgp.assertion ? 4U : 0U) |
        (scenario.bgp.ghost_flushing ? 8U : 0U));
  h.mix_time(scenario.bgp.backup_caution);
  h.mix_time(scenario.processing.min);
  h.mix_time(scenario.processing.max);
  h.mix(scenario.destination.value_or(net::kInvalidNode));
  // Whether the prelude includes the origination (everything but Tup).
  h.mix(scenario.event != EventKind::kTup ? 1 : 0);
  // On generator/file topologies without a fixed destination, the
  // destination *choice* depends on whether a survivable-link filter
  // applies (Tlong / Flap), so those preludes are distinct even at equal
  // seeds.
  const bool link_filter =
      policy_capable(scenario.topology.kind) && !scenario.destination &&
      (scenario.event == EventKind::kTlong ||
       scenario.event == EventKind::kFlap);
  h.mix(link_filter ? 1 : 0);
  if (scenario.prefixes > 1) {
    // Mixed only for multi-prefix runs, so every pre-existing
    // single-prefix prelude hash (and warm-start cache) is unchanged.
    h.mix(scenario.prefixes);
    h.mix(scenario.origins.size());
    for (const net::NodeId o : scenario.origins) h.mix(o);
  }
  return h.value();
}

ExperimentOutcome run_experiment(const Scenario& scenario) {
  if (scenario.settle_margin <= scenario.traffic_lead) {
    throw std::invalid_argument{
        "Scenario: settle_margin must exceed traffic_lead"};
  }

  // Per-experiment AS-path interning: every path this run conses —
  // including ones decoded from a warm-start snapshot — lands in one
  // store, so structurally-equal paths are pointer-equal for the run's
  // whole lifetime. Purely a storage decision; outputs are bit-identical
  // with the toggle off (RunOptions::path_interning / BGPSIM_PATH_INTERN).
  std::optional<bgp::PathStore> path_store;
  std::optional<bgp::PathStore::Scope> path_scope;
  if (detail::path_interning_enabled()) {
    path_store.emplace();
    path_scope.emplace(*path_store);
  }

  net::Topology topo;
  net::RelationshipTable relationships;
  if (scenario.policy_routing) {
    if (!policy_capable(scenario.topology.kind)) {
      throw std::invalid_argument{
          "Scenario: policy_routing requires an Internet, AS-Graph, or "
          "relationship-file topology"};
    }
    auto annotated = scenario.topology.build_annotated();
    topo = std::move(annotated.topology);
    relationships = std::move(annotated.relationships);
  } else {
    topo = scenario.topology.build();
  }
  sim::Rng root{scenario.seed};
  sim::Rng scenario_rng = root.child("scenario");

  const net::NodeId destination =
      choose_destination(scenario.topology.kind, scenario.event,
                         scenario.destination, topo, scenario_rng);
  std::optional<net::LinkId> failed_link;
  if (scenario.event == EventKind::kTlong ||
      scenario.event == EventKind::kFlap) {
    failed_link =
        choose_tlong_link(scenario.topology.kind, scenario.topology.size,
                          scenario.tlong_link, topo, destination,
                          scenario_rng);
  }

  // ---- Multi-prefix table ----------------------------------------------
  // prefix 0 always originates at the destination; prefixes >= 1 cycle
  // over scenario.origins (empty: everything at the destination — the
  // fully correlated full table).
  const std::size_t prefix_count = std::max<std::size_t>(scenario.prefixes, 1);
  const bool multi = prefix_count > 1;
  std::vector<net::NodeId> prefix_origins;
  std::vector<net::Prefix> dest_prefixes;  // originated by the destination
  std::map<net::NodeId, std::vector<net::Prefix>> origin_groups;
  if (multi) {
    prefix_origins.assign(prefix_count, destination);
    for (std::size_t i = 1; i < prefix_count; ++i) {
      if (!scenario.origins.empty()) {
        prefix_origins[i] = scenario.origins[(i - 1) % scenario.origins.size()];
      }
      if (prefix_origins[i] >= topo.node_count()) {
        throw std::invalid_argument{
            "Scenario: prefix origin " + std::to_string(prefix_origins[i]) +
            " is not a node of the topology"};
      }
    }
    for (std::size_t p = 0; p < prefix_count; ++p) {
      origin_groups[prefix_origins[p]].push_back(static_cast<net::Prefix>(p));
      if (prefix_origins[p] == destination) {
        dest_prefixes.push_back(static_cast<net::Prefix>(p));
      }
    }
  }

  sim::Simulator simulator;
  bgp::BgpConfig bgp_config = scenario.bgp;
  if (scenario.policy_routing) bgp_config.policy = &relationships;
  if (multi) bgp_config.multiprefix = true;
  bgp::BgpNetwork network{simulator, topo, bgp_config, scenario.processing,
                          root};
  metrics::Collector collector;
  if (multi) collector.enable_prefix_lanes(prefix_count);
  metrics::TraceRecorder* trace = scenario.trace;
  check::Oracle* oracle = scenario.oracle;
  if (oracle) {
    check::Context ctx{&topo, bgp_config, kPrefix, destination,
                       scenario.policy_routing,
                       scenario.policy_routing ? &relationships : nullptr};
    if (multi) {
      ctx.prefix_count = prefix_count;
      ctx.origins = prefix_origins;
    }
    oracle->arm(ctx);
  }
  bgp::Speaker::Hooks hooks;
  hooks.on_update_sent = [&collector, &simulator, trace, oracle](
                             net::NodeId from, net::NodeId to,
                             const bgp::UpdateMsg& msg) {
    collector.note_update_sent(simulator.now(), msg.is_withdrawal());
    if (trace) {
      trace->record(metrics::TraceEvent{
          simulator.now(), metrics::TraceEventKind::kUpdateSent, from, to,
          msg.prefix, msg.to_string()});
    }
    if (oracle) oracle->on_update_sent(from, to, msg, simulator.now());
  };
  if (trace || oracle) {
    hooks.on_best_changed = [trace, oracle, &simulator](
                                net::NodeId node, net::Prefix prefix,
                                const std::optional<bgp::AsPath>& best) {
      if (trace) {
        trace->record(metrics::TraceEvent{
            simulator.now(), metrics::TraceEventKind::kBestChanged, node,
            net::kInvalidNode, prefix,
            best ? best->to_string() : "(unreachable)"});
      }
      // run_decision updates the FIB before firing this hook, so the
      // oracle's RIB/FIB cross-check sees current state here.
      if (oracle) oracle->on_route_installed(node, prefix, best,
                                             simulator.now());
    };
  }
  if (oracle) {
    hooks.on_update_received = [oracle, &simulator](net::NodeId node,
                                                    net::NodeId from,
                                                    const bgp::UpdateMsg& msg) {
      oracle->on_update_received(node, from, msg, simulator.now());
    };
    hooks.on_session_changed = [oracle, &simulator](net::NodeId node,
                                                    net::NodeId peer, bool up) {
      oracle->on_session_changed(node, peer, up, simulator.now());
    };
    hooks.on_mrai_expired = [oracle, &simulator](net::NodeId node,
                                                 net::NodeId peer,
                                                 net::Prefix prefix,
                                                 bool was_pending) {
      oracle->on_mrai_expired(node, peer, prefix, was_pending,
                              simulator.now());
    };
  }
  network.set_hooks(hooks);

  fwd::DataPlaneOptions plane_options =
      multi ? fwd::DataPlaneOptions{.destinations = prefix_origins}
            : fwd::DataPlaneOptions::single(destination);
  fwd::DataPlane plane{simulator, topo, network.fibs(),
                       std::move(plane_options)};
  plane.set_fate_sink(&collector);

  // One loop detector per prefix: detector 0 attaches first (replacing any
  // stale FIB observers), the rest subscribe alongside it.
  std::vector<std::unique_ptr<metrics::LoopDetector>> detectors;
  detectors.push_back(
      std::make_unique<metrics::LoopDetector>(topo.node_count()));
  detectors.front()->attach(simulator, network.fibs(), kPrefix);
  if (multi) {
    for (std::size_t p = 1; p < prefix_count; ++p) {
      detectors.push_back(
          std::make_unique<metrics::LoopDetector>(topo.node_count()));
      detectors.back()->attach_alongside(simulator, network.fibs(),
                                         static_cast<net::Prefix>(p));
    }
  }
  metrics::LoopDetector& detector = *detectors.front();
  // After attach: the detectors replace/extend the FIB observers, the
  // oracle subscribes alongside them.
  if (oracle) oracle->observe_fibs(simulator, network.fibs());
  if (trace) {
    detector.set_observer([trace](const metrics::LoopRecord& r, bool formed) {
      std::string members = "{";
      for (std::size_t i = 0; i < r.members.size(); ++i) {
        if (i) members += ' ';
        members += std::to_string(r.members[i]);
      }
      members += '}';
      trace->record(metrics::TraceEvent{
          formed ? r.formed_at : r.resolved_at.value_or(r.formed_at),
          formed ? metrics::TraceEventKind::kLoopFormed
                 : metrics::TraceEventKind::kLoopResolved,
          net::kInvalidNode, net::kInvalidNode, kPrefix, members});
    });
  }

  fwd::TrafficConfig traffic_config = scenario.traffic;
  if (multi) traffic_config.prefix_count = prefix_count;
  fwd::TrafficGenerator traffic{simulator, plane, traffic_config,
                                root.child("traffic")};
  traffic.set_send_hook([&](net::NodeId, net::Prefix p, sim::SimTime when) {
    collector.note_packet_sent(when);
    collector.note_packet_sent_for(p);  // no-op unless lanes are enabled
  });

  // ---- Phase 1: cold-start convergence or warm start --------------------
  // (For Tup the network starts empty — the origination *is* the event.)
  const std::uint64_t topology_hash = snap::hash_topology(topo);
  const std::uint64_t config_hash = scenario_prelude_hash(scenario);
  const bool prelude_originated = scenario.event != EventKind::kTup;

  if (scenario.warm_start) {
    detail::require_meta_match(scenario.warm_start->meta(),
                               snap::DriverKind::kBgp, topology_hash,
                               config_hash, scenario.seed, destination,
                               prelude_originated);
    restore_bgp(*scenario.warm_start, simulator, network, plane, traffic,
                collector);
    // Prove the restore bit-exact: re-serializing the restored graph must
    // reproduce the snapshot's content hash.
    const snap::Snapshot echo =
        capture_bgp(simulator, network, plane, traffic, collector,
                    topology_hash, config_hash, scenario.seed, destination,
                    prelude_originated, /*quiescent=*/true);
    if (oracle) {
      oracle->on_restored(scenario.warm_start->content_hash(),
                          echo.content_hash(), simulator.now());
    } else if (echo.content_hash() != scenario.warm_start->content_hash()) {
      throw std::runtime_error{
          "warm start restore is not bit-exact: restored state "
          "re-serializes to a different content hash"};
    }
  } else {
    if (multi) {
      // Non-destination origins always converge in the prelude (they are
      // background table state); the destination's own prefixes join
      // unless the origination *is* the event (Tup).
      simulator.schedule_at(sim::SimTime::zero(), [&] {
        for (const auto& [origin, group] : origin_groups) {
          if (origin == destination && !prelude_originated) continue;
          network.originate_batch(origin, group);
        }
      });
    } else if (prelude_originated) {
      simulator.schedule_at(sim::SimTime::zero(),
                            [&] { network.originate(destination, kPrefix); });
    }
    simulator.run_until(scenario.max_sim_time);
    if (simulator.pending() > 0 || network.busy()) {
      throw std::runtime_error{"initial convergence exceeded max_sim_time"};
    }
  }
  const double initial_convergence_s = simulator.now().as_seconds();

  if (scenario.save_converged) {
    *scenario.save_converged =
        capture_bgp(simulator, network, plane, traffic, collector,
                    topology_hash, config_hash, scenario.seed, destination,
                    prelude_originated, /*quiescent=*/true);
  }

  const auto quiescent_view = [&]() -> check::QuiescentView {
    check::QuiescentView view;
    view.loc_path = [&network](net::NodeId n) {
      return network.speaker(n).loc_rib().get(kPrefix);
    };
    view.fib_next_hop = [&network](net::NodeId n) {
      return network.fibs()[n].next_hop(kPrefix);
    };
    view.origin_up = network.speaker(destination).originates(kPrefix);
    if (multi) {
      view.loc_path_for = [&network](net::NodeId n, net::Prefix p) {
        return network.speaker(n).loc_rib().get(p);
      };
      view.fib_next_hop_for = [&network](net::NodeId n, net::Prefix p) {
        return network.fibs()[n].next_hop(p);
      };
      view.origin_up_for = [&network, &prefix_origins](net::Prefix p) {
        return network.speaker(prefix_origins[p]).originates(p);
      };
    }
    return view;
  };
  if (oracle) oracle->at_quiescence(quiescent_view(), simulator.now());

  // ---- Phase 2: traffic + event + convergence -------------------------
  const sim::SimTime t_event = simulator.now() + scenario.settle_margin;
  const sim::SimTime t_traffic = t_event - scenario.traffic_lead;

  std::vector<net::NodeId> sources;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (n != destination) sources.push_back(n);
  }
  traffic.start(sources, t_traffic);

  simulator.schedule_at(t_event, [&] {
    // Measure only post-event loops, on every prefix's detector.
    for (auto& d : detectors) d->clear_history();
    if (trace) {
      trace->record(metrics::TraceEvent{
          simulator.now(), metrics::TraceEventKind::kEventInjected,
          destination, net::kInvalidNode, kPrefix,
          to_string(scenario.event)});
    }
    switch (scenario.event) {
      case EventKind::kTdown:
        // Multi-prefix: the correlated failure — the destination withdraws
        // its whole originated slice of the table in one batched event.
        if (multi) {
          network.inject_tdown_batch(destination, dest_prefixes);
        } else {
          network.inject_tdown(destination, kPrefix);
        }
        break;
      case EventKind::kTlong:
        network.inject_link_failure(*failed_link);
        break;
      case EventKind::kTup:
        if (multi) {
          network.originate_batch(destination, dest_prefixes);
        } else {
          network.originate(destination, kPrefix);
        }
        break;
      case EventKind::kFlap:
        network.inject_link_failure(*failed_link);
        simulator.schedule_after(scenario.flap_interval, [&] {
          network.transport().restore_link(*failed_link);
        });
        break;
    }
  });

  // Mid-run serialize/deserialize probe. kNoop and kVerify schedule the
  // *same* event (so their event streams stay comparable); only kVerify
  // does work in it: save, restore in place, re-save, and fail the run if
  // the two byte streams differ. A correct codec makes this a perfect
  // no-op — the rest of the run is bit-identical to the kNoop control.
  if (scenario.snap_roundtrip != SnapRoundtrip::kOff) {
    simulator.schedule_at(t_event + scenario.snap_roundtrip_after, [&] {
      if (scenario.snap_roundtrip != SnapRoundtrip::kVerify) return;
      const snap::Snapshot before =
          capture_bgp(simulator, network, plane, traffic, collector,
                      topology_hash, config_hash, scenario.seed, destination,
                      prelude_originated, /*quiescent=*/false);
      restore_bgp(before, simulator, network, plane, traffic, collector);
      const snap::Snapshot after =
          capture_bgp(simulator, network, plane, traffic, collector,
                      topology_hash, config_hash, scenario.seed, destination,
                      prelude_originated, /*quiescent=*/false);
      if (before.content_hash() != after.content_hash()) {
        if (oracle) {
          oracle->on_restored(before.content_hash(), after.content_hash(),
                              simulator.now());
        }
        throw std::runtime_error{
            "snapshot round-trip diverged mid-run: in-place restore did "
            "not reproduce the saved state byte-for-byte"};
      }
    });
  }

  // Poll for control-plane quiescence once per simulated second. When the
  // control plane settles, stop traffic, let in-flight packets die out
  // (TTL lifetime is 256 ms), then cancel leftover silent timers. For a
  // flap, polling must not begin until the restore has fired: the network
  // can quiesce mid-flap, and clear_pending would cancel the restore.
  bool timed_out = false;
  const auto drain = sim::SimTime::seconds(2);
  std::function<void()> poll = [&] {
    if (!network.busy()) {
      traffic.stop();
      simulator.schedule_after(drain, [&] { simulator.clear_pending(); });
      return;
    }
    if (simulator.now() >= scenario.max_sim_time) {
      timed_out = true;
      simulator.clear_pending();
      return;
    }
    simulator.schedule_after(sim::SimTime::seconds(1), poll);
  };
  sim::SimTime poll_start = t_event + sim::SimTime::seconds(1);
  if (scenario.event == EventKind::kFlap) poll_start += scenario.flap_interval;
  simulator.schedule_at(poll_start, poll);

  simulator.run_until(scenario.max_sim_time + sim::SimTime::seconds(10));
  if (timed_out || simulator.pending() > 0) {
    throw std::runtime_error{"scenario did not converge within max_sim_time"};
  }

  const sim::SimTime end = simulator.now();
  for (auto& d : detectors) d->finalize(end);
  if (oracle) oracle->at_quiescence(quiescent_view(), end);

  // ---- Metrics ---------------------------------------------------------
  ExperimentOutcome out;
  out.destination = destination;
  out.failed_link = failed_link;
  out.initial_convergence_s = initial_convergence_s;
  out.events_fired = simulator.events_fired();

  metrics::RunMetrics& m = out.metrics;
  m.event_at = t_event;

  const auto last_update = collector.last_update_at(t_event);
  m.last_update_at = last_update.value_or(t_event);
  m.convergence_time_s = (m.last_update_at - t_event).as_seconds();

  const auto first_exh = collector.first_exhaustion(t_event);
  const auto last_exh = collector.last_exhaustion(t_event);
  m.first_exhaustion_at = first_exh.value_or(t_event);
  m.last_exhaustion_at = last_exh.value_or(t_event);
  m.looping_duration_s =
      first_exh ? (m.last_exhaustion_at - m.first_exhaustion_at).as_seconds()
                : 0.0;

  m.ttl_exhaustions = collector.exhaustions_since(t_event);
  m.packets_sent_during_convergence =
      collector.packets_sent_in(t_event, m.last_update_at);
  m.looping_ratio =
      m.packets_sent_during_convergence == 0
          ? 0.0
          : static_cast<double>(m.ttl_exhaustions) /
                static_cast<double>(m.packets_sent_during_convergence);

  m.packets_sent_total = collector.packets_sent_total();
  m.packets_delivered = collector.delivered_total();
  m.packets_no_route = collector.no_route_total();
  m.packets_link_down = collector.link_down_total();
  m.updates_sent = collector.updates_sent_since(t_event);
  m.updates_sent_total = collector.updates_sent_total();
  m.bgp = network.total_counters();

  const auto profile_end = m.last_update_at + sim::SimTime::seconds(1);
  m.update_activity_1s =
      collector.update_activity(t_event, profile_end, sim::SimTime::seconds(1));
  m.exhaustion_activity_1s = collector.exhaustion_activity(
      t_event, profile_end, sim::SimTime::seconds(1));

  m.loops = detector.records();
  if (multi) {
    // Headline loop metrics aggregate the whole table, prefix-major.
    for (std::size_t p = 1; p < prefix_count; ++p) {
      const auto& recs = detectors[p]->records();
      m.loops.insert(m.loops.end(), recs.begin(), recs.end());
    }
  }
  m.loops_formed = m.loops.size();
  m.loop_stats = metrics::analyze_loops(m.loops, end);
  if (!m.loops.empty()) {
    double size_sum = 0;
    for (const auto& loop : m.loops) {
      size_sum += static_cast<double>(loop.size());
      m.max_loop_size = std::max(m.max_loop_size, loop.size());
      m.max_loop_duration_s =
          std::max(m.max_loop_duration_s, loop.duration_seconds(end));
    }
    m.mean_loop_size = size_sum / static_cast<double>(m.loops.size());
  }
  if (multi) {
    m.per_prefix.resize(prefix_count);
    const auto& lanes = collector.prefix_lanes();
    for (std::size_t p = 0; p < prefix_count; ++p) {
      metrics::RunMetrics::PrefixLane& lane = m.per_prefix[p];
      const auto& recs = detectors[p]->records();
      lane.loops_formed = recs.size();
      for (const auto& loop : recs) {
        lane.max_loop_duration_s =
            std::max(lane.max_loop_duration_s, loop.duration_seconds(end));
      }
      lane.packets_sent = lanes[p].sent;
      lane.packets_delivered = lanes[p].delivered;
      lane.ttl_exhaustions = lanes[p].ttl_exhausted;
    }
  }
  return out;
}

}  // namespace bgpsim::core
