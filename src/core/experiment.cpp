#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bgp/network.hpp"
#include "check/oracle.hpp"
#include "fwd/engine.hpp"
#include "fwd/traffic.hpp"
#include "metrics/collector.hpp"
#include "metrics/loop_detector.hpp"
#include "core/selection.hpp"
#include "net/relationships.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::core {
namespace {

constexpr net::Prefix kPrefix = 0;

}  // namespace

ExperimentOutcome run_experiment(const Scenario& scenario) {
  if (scenario.settle_margin <= scenario.traffic_lead) {
    throw std::invalid_argument{
        "Scenario: settle_margin must exceed traffic_lead"};
  }

  net::Topology topo;
  net::RelationshipTable relationships;
  if (scenario.policy_routing) {
    if (scenario.topology.kind != TopologyKind::kInternet) {
      throw std::invalid_argument{
          "Scenario: policy_routing requires an Internet topology"};
    }
    topo::InternetParams params;
    params.nodes = scenario.topology.size;
    params.seed = scenario.topology.topo_seed;
    auto annotated = topo::make_internet_annotated(params);
    topo = std::move(annotated.topology);
    relationships = std::move(annotated.relationships);
  } else {
    topo = scenario.topology.build();
  }
  sim::Rng root{scenario.seed};
  sim::Rng scenario_rng = root.child("scenario");

  const net::NodeId destination =
      choose_destination(scenario.topology.kind, scenario.event,
                         scenario.destination, topo, scenario_rng);
  std::optional<net::LinkId> failed_link;
  if (scenario.event == EventKind::kTlong ||
      scenario.event == EventKind::kFlap) {
    failed_link =
        choose_tlong_link(scenario.topology.kind, scenario.topology.size,
                          scenario.tlong_link, topo, destination,
                          scenario_rng);
  }

  sim::Simulator simulator;
  bgp::BgpConfig bgp_config = scenario.bgp;
  if (scenario.policy_routing) bgp_config.policy = &relationships;
  bgp::BgpNetwork network{simulator, topo, bgp_config, scenario.processing,
                          root};
  metrics::Collector collector;
  metrics::TraceRecorder* trace = scenario.trace;
  check::Oracle* oracle = scenario.oracle;
  if (oracle) {
    oracle->arm(check::Context{&topo, bgp_config, kPrefix, destination,
                               scenario.policy_routing});
  }
  bgp::Speaker::Hooks hooks;
  hooks.on_update_sent = [&collector, &simulator, trace, oracle](
                             net::NodeId from, net::NodeId to,
                             const bgp::UpdateMsg& msg) {
    collector.note_update_sent(simulator.now(), msg.is_withdrawal());
    if (trace) {
      trace->record(metrics::TraceEvent{
          simulator.now(), metrics::TraceEventKind::kUpdateSent, from, to,
          msg.prefix, msg.to_string()});
    }
    if (oracle) oracle->on_update_sent(from, to, msg, simulator.now());
  };
  if (trace || oracle) {
    hooks.on_best_changed = [trace, oracle, &simulator](
                                net::NodeId node, net::Prefix prefix,
                                const std::optional<bgp::AsPath>& best) {
      if (trace) {
        trace->record(metrics::TraceEvent{
            simulator.now(), metrics::TraceEventKind::kBestChanged, node,
            net::kInvalidNode, prefix,
            best ? best->to_string() : "(unreachable)"});
      }
      // run_decision updates the FIB before firing this hook, so the
      // oracle's RIB/FIB cross-check sees current state here.
      if (oracle) oracle->on_route_installed(node, prefix, best,
                                             simulator.now());
    };
  }
  if (oracle) {
    hooks.on_update_received = [oracle, &simulator](net::NodeId node,
                                                    net::NodeId from,
                                                    const bgp::UpdateMsg& msg) {
      oracle->on_update_received(node, from, msg, simulator.now());
    };
    hooks.on_session_changed = [oracle, &simulator](net::NodeId node,
                                                    net::NodeId peer, bool up) {
      oracle->on_session_changed(node, peer, up, simulator.now());
    };
    hooks.on_mrai_expired = [oracle, &simulator](net::NodeId node,
                                                 net::NodeId peer,
                                                 net::Prefix prefix,
                                                 bool was_pending) {
      oracle->on_mrai_expired(node, peer, prefix, was_pending,
                              simulator.now());
    };
  }
  network.set_hooks(hooks);

  fwd::DataPlane plane{simulator, topo, network.fibs(), destination, kPrefix};
  plane.set_fate_handler([&](const fwd::Packet& p, fwd::PacketFate fate,
                             net::NodeId where, sim::SimTime when) {
    collector.note_fate(p, fate, where, when);
  });

  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(simulator, network.fibs(), kPrefix);
  // After attach: the detector replaces all FIB observers, the oracle
  // subscribes alongside it.
  if (oracle) oracle->observe_fibs(simulator, network.fibs());
  if (trace) {
    detector.set_observer([trace](const metrics::LoopRecord& r, bool formed) {
      std::string members = "{";
      for (std::size_t i = 0; i < r.members.size(); ++i) {
        if (i) members += ' ';
        members += std::to_string(r.members[i]);
      }
      members += '}';
      trace->record(metrics::TraceEvent{
          formed ? r.formed_at : r.resolved_at.value_or(r.formed_at),
          formed ? metrics::TraceEventKind::kLoopFormed
                 : metrics::TraceEventKind::kLoopResolved,
          net::kInvalidNode, net::kInvalidNode, kPrefix, members});
    });
  }

  fwd::TrafficGenerator traffic{simulator, plane, scenario.traffic,
                                root.child("traffic")};
  traffic.set_send_hook([&](net::NodeId, sim::SimTime when) {
    collector.note_packet_sent(when);
  });

  // ---- Phase 1: cold-start convergence --------------------------------
  // (For Tup the network starts empty — the origination *is* the event.)
  if (scenario.event != EventKind::kTup) {
    simulator.schedule_at(sim::SimTime::zero(),
                          [&] { network.originate(destination, kPrefix); });
  }
  simulator.run_until(scenario.max_sim_time);
  if (simulator.pending() > 0 || network.busy()) {
    throw std::runtime_error{"initial convergence exceeded max_sim_time"};
  }
  const double initial_convergence_s = simulator.now().as_seconds();

  const auto quiescent_view = [&]() -> check::QuiescentView {
    check::QuiescentView view;
    view.loc_path = [&network](net::NodeId n) {
      return network.speaker(n).loc_rib().get(kPrefix);
    };
    view.fib_next_hop = [&network](net::NodeId n) {
      return network.fibs()[n].next_hop(kPrefix);
    };
    view.origin_up = network.speaker(destination).originates(kPrefix);
    return view;
  };
  if (oracle) oracle->at_quiescence(quiescent_view(), simulator.now());

  // ---- Phase 2: traffic + event + convergence -------------------------
  const sim::SimTime t_event = simulator.now() + scenario.settle_margin;
  const sim::SimTime t_traffic = t_event - scenario.traffic_lead;

  std::vector<net::NodeId> sources;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (n != destination) sources.push_back(n);
  }
  traffic.start(sources, t_traffic);

  simulator.schedule_at(t_event, [&] {
    detector.clear_history();  // measure only post-event loops
    if (trace) {
      trace->record(metrics::TraceEvent{
          simulator.now(), metrics::TraceEventKind::kEventInjected,
          destination, net::kInvalidNode, kPrefix,
          to_string(scenario.event)});
    }
    switch (scenario.event) {
      case EventKind::kTdown:
        network.inject_tdown(destination, kPrefix);
        break;
      case EventKind::kTlong:
        network.inject_link_failure(*failed_link);
        break;
      case EventKind::kTup:
        network.originate(destination, kPrefix);
        break;
      case EventKind::kFlap:
        network.inject_link_failure(*failed_link);
        simulator.schedule_after(scenario.flap_interval, [&] {
          network.transport().restore_link(*failed_link);
        });
        break;
    }
  });

  // Poll for control-plane quiescence once per simulated second. When the
  // control plane settles, stop traffic, let in-flight packets die out
  // (TTL lifetime is 256 ms), then cancel leftover silent timers. For a
  // flap, polling must not begin until the restore has fired: the network
  // can quiesce mid-flap, and clear_pending would cancel the restore.
  bool timed_out = false;
  const auto drain = sim::SimTime::seconds(2);
  std::function<void()> poll = [&] {
    if (!network.busy()) {
      traffic.stop();
      simulator.schedule_after(drain, [&] { simulator.clear_pending(); });
      return;
    }
    if (simulator.now() >= scenario.max_sim_time) {
      timed_out = true;
      simulator.clear_pending();
      return;
    }
    simulator.schedule_after(sim::SimTime::seconds(1), poll);
  };
  sim::SimTime poll_start = t_event + sim::SimTime::seconds(1);
  if (scenario.event == EventKind::kFlap) poll_start += scenario.flap_interval;
  simulator.schedule_at(poll_start, poll);

  simulator.run_until(scenario.max_sim_time + sim::SimTime::seconds(10));
  if (timed_out || simulator.pending() > 0) {
    throw std::runtime_error{"scenario did not converge within max_sim_time"};
  }

  const sim::SimTime end = simulator.now();
  detector.finalize(end);
  if (oracle) oracle->at_quiescence(quiescent_view(), end);

  // ---- Metrics ---------------------------------------------------------
  ExperimentOutcome out;
  out.destination = destination;
  out.failed_link = failed_link;
  out.initial_convergence_s = initial_convergence_s;
  out.events_fired = simulator.events_fired();

  metrics::RunMetrics& m = out.metrics;
  m.event_at = t_event;

  const auto last_update = collector.last_update_at(t_event);
  m.last_update_at = last_update.value_or(t_event);
  m.convergence_time_s = (m.last_update_at - t_event).as_seconds();

  const auto first_exh = collector.first_exhaustion(t_event);
  const auto last_exh = collector.last_exhaustion(t_event);
  m.first_exhaustion_at = first_exh.value_or(t_event);
  m.last_exhaustion_at = last_exh.value_or(t_event);
  m.looping_duration_s =
      first_exh ? (m.last_exhaustion_at - m.first_exhaustion_at).as_seconds()
                : 0.0;

  m.ttl_exhaustions = collector.exhaustions_since(t_event);
  m.packets_sent_during_convergence =
      collector.packets_sent_in(t_event, m.last_update_at);
  m.looping_ratio =
      m.packets_sent_during_convergence == 0
          ? 0.0
          : static_cast<double>(m.ttl_exhaustions) /
                static_cast<double>(m.packets_sent_during_convergence);

  m.packets_sent_total = collector.packets_sent_total();
  m.packets_delivered = collector.delivered_total();
  m.packets_no_route = collector.no_route_total();
  m.packets_link_down = collector.link_down_total();
  m.updates_sent = collector.updates_sent_since(t_event);
  m.updates_sent_total = collector.updates_sent_total();
  m.bgp = network.total_counters();

  const auto profile_end = m.last_update_at + sim::SimTime::seconds(1);
  m.update_activity_1s =
      collector.update_activity(t_event, profile_end, sim::SimTime::seconds(1));
  m.exhaustion_activity_1s = collector.exhaustion_activity(
      t_event, profile_end, sim::SimTime::seconds(1));

  m.loops = detector.records();
  m.loops_formed = m.loops.size();
  m.loop_stats = metrics::analyze_loops(m.loops, end);
  if (!m.loops.empty()) {
    double size_sum = 0;
    for (const auto& loop : m.loops) {
      size_sum += static_cast<double>(loop.size());
      m.max_loop_size = std::max(m.max_loop_size, loop.size());
      m.max_loop_duration_s =
          std::max(m.max_loop_duration_s, loop.duration_seconds(end));
    }
    m.mean_loop_size = size_sum / static_cast<double>(m.loops.size());
  }
  return out;
}

}  // namespace bgpsim::core
