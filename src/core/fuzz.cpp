#include "core/fuzz.hpp"

#include <bit>
#include <exception>

#include "core/experiment.hpp"
#include "core/run_options.hpp"
#include "fwd/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace bgpsim::core {
namespace {

// FNV-1a over the eight bytes of each value, folded in iteration order.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

/// Deterministic digest contribution of one iteration: the seed, whether
/// it failed, and (for completed runs) the outcome numbers that any
/// behavioral drift would move first.
std::uint64_t iteration_fingerprint(std::uint64_t scenario_seed,
                                    const std::optional<ExperimentOutcome>& out,
                                    std::uint64_t violations_seen,
                                    std::uint64_t observations) {
  std::uint64_t h = fnv_mix(kFnvOffset, scenario_seed);
  h = fnv_mix(h, violations_seen);
  h = fnv_mix(h, observations);
  if (!out) return fnv_mix(h, 0xdeadULL);  // run threw
  const metrics::RunMetrics& m = out->metrics;
  h = fnv_mix(h, out->events_fired);
  h = fnv_mix(h, m.updates_sent_total);
  h = fnv_mix(h, m.ttl_exhaustions);
  h = fnv_mix(h, static_cast<std::uint64_t>(m.loops_formed));
  h = fnv_mix(h, std::bit_cast<std::uint64_t>(m.convergence_time_s));
  h = fnv_mix(h, std::bit_cast<std::uint64_t>(m.looping_duration_s));
  return h;
}

check::Oracle make_oracle(const FuzzOptions& options) {
  if (options.make_oracle) return options.make_oracle();
  return check::Oracle::standard();
}

struct IterationResult {
  std::optional<FuzzFailure> failure;  // iter not filled in
  std::uint64_t fingerprint = 0;
  std::string summary;  // one-line outcome for verbose mode
};

IterationResult run_once(Scenario scenario, std::uint64_t scenario_seed,
                         const FuzzOptions& options) {
  IterationResult result;
  check::Oracle oracle = make_oracle(options);
  scenario.oracle = &oracle;

  std::optional<ExperimentOutcome> outcome;
  std::string error;
  try {
    outcome = run_experiment(scenario);
  } catch (const std::exception& e) {
    error = e.what();
  }

  result.fingerprint = iteration_fingerprint(
      scenario_seed, outcome, oracle.violations_seen(), oracle.observations());

  const bool vacuous = outcome && oracle.observations() == 0;
  if (!error.empty() || !oracle.ok() || vacuous) {
    FuzzFailure failure;
    failure.scenario_seed = scenario_seed;
    failure.label = scenario.label();
    failure.violations = oracle.violations();
    failure.error = vacuous && error.empty()
                        ? "oracle observed no events (vacuous run)"
                        : error;
    result.failure = std::move(failure);
  }

  if (outcome) {
    const metrics::RunMetrics& m = outcome->metrics;
    result.summary = scenario.label() + ": conv " +
                     std::to_string(m.convergence_time_s) + " s, " +
                     std::to_string(m.loops_formed) + " loop(s), " +
                     std::to_string(oracle.observations()) + " obs, " +
                     std::to_string(oracle.violations_seen()) + " violation(s)";
  } else {
    result.summary = scenario.label() + ": threw: " + error;
  }
  return result;
}

/// Attach the seed-derived snap-check probe: the same scenario seed always
/// probes at the same simulated time, so --replay reproduces a divergence
/// exactly. Every pass schedules the identical probe event (kNoop just
/// returns inside it), keeping event streams comparable across passes.
void attach_snap_probe(Scenario& scenario, std::uint64_t scenario_seed) {
  scenario.snap_roundtrip_after = sim::SimTime::seconds(
      sim::Rng{scenario_seed}.child("snap-roundtrip").uniform(0.5, 30.0));
  scenario.snap_roundtrip = SnapRoundtrip::kNoop;
}

IterationResult run_checked(std::uint64_t scenario_seed,
                            const FuzzOptions& options) {
  Scenario scenario = fuzz_scenario(scenario_seed, options.multiprefix);
  if (!options.snap_check) return run_once(scenario, scenario_seed, options);

  attach_snap_probe(scenario, scenario_seed);
  IterationResult baseline = run_once(scenario, scenario_seed, options);
  if (baseline.failure) return baseline;

  scenario.snap_roundtrip = SnapRoundtrip::kVerify;
  IterationResult verified = run_once(scenario, scenario_seed, options);
  if (verified.failure) {
    verified.failure->error =
        "snap-check (serialize/restore pass): " +
        (verified.failure->error.empty() ? std::string{"invariant violations"}
                                         : verified.failure->error);
    verified.fingerprint = baseline.fingerprint;
    return verified;
  }

  if (verified.fingerprint != baseline.fingerprint) {
    FuzzFailure failure;
    failure.scenario_seed = scenario_seed;
    failure.label = scenario.label();
    failure.error =
        "snapshot divergence: a mid-run save/restore round-trip changed the "
        "outcome (baseline fingerprint " + std::to_string(baseline.fingerprint) +
        ", round-trip fingerprint " + std::to_string(verified.fingerprint) + ")";
    baseline.failure = std::move(failure);
  }
  return baseline;
}

IterationResult run_iteration(std::uint64_t scenario_seed,
                              const FuzzOptions& options) {
  IterationResult baseline = run_checked(scenario_seed, options);
  if (baseline.failure) return baseline;

  if (options.wheel_check) {
    // Opposite-scheduler pass: the identical scenario (same snap-check
    // probe when armed), pinned to the other queue backend for this run
    // only. Its fingerprint — events fired, updates sent, loop metrics,
    // convergence times — must match the default-backend baseline bit for
    // bit.
    Scenario scenario = fuzz_scenario(scenario_seed, options.multiprefix);
    if (options.snap_check) attach_snap_probe(scenario, scenario_seed);
    const bool wheel_now =
        sim::default_queue_backend() == sim::QueueBackend::kWheel;
    IterationResult other;
    {
      detail::TimerWheelGuard backend{!wheel_now};
      other = run_once(scenario, scenario_seed, options);
    }
    if (other.failure) {
      other.failure->error =
          "wheel-check (opposite-scheduler pass): " +
          (other.failure->error.empty() ? std::string{"invariant violations"}
                                        : other.failure->error);
      other.fingerprint = baseline.fingerprint;
      return other;
    }
    if (other.fingerprint != baseline.fingerprint) {
      FuzzFailure failure;
      failure.scenario_seed = scenario_seed;
      failure.label = scenario.label();
      failure.error =
          "scheduler divergence: " +
          std::string{wheel_now ? "heap" : "wheel"} +
          " re-run changed the outcome (baseline fingerprint " +
          std::to_string(baseline.fingerprint) + ", opposite-scheduler " +
          "fingerprint " + std::to_string(other.fingerprint) + ")";
      baseline.failure = std::move(failure);
      return baseline;
    }
  }

  if (options.dataplane_check) {
    // Opposite-hop-store pass, same contract as the wheel check: pin the
    // data plane to the other backend (rings vs heap) and require the
    // fingerprint to match the baseline exactly.
    Scenario scenario = fuzz_scenario(scenario_seed, options.multiprefix);
    if (options.snap_check) attach_snap_probe(scenario, scenario_seed);
    const bool rings_now =
        fwd::default_plane_backend() == fwd::PlaneBackend::kRings;
    IterationResult other;
    {
      detail::DataPlaneRingsGuard backend{!rings_now};
      other = run_once(scenario, scenario_seed, options);
    }
    if (other.failure) {
      other.failure->error =
          "dataplane-check (opposite-hop-store pass): " +
          (other.failure->error.empty() ? std::string{"invariant violations"}
                                        : other.failure->error);
      other.fingerprint = baseline.fingerprint;
      return other;
    }
    if (other.fingerprint != baseline.fingerprint) {
      FuzzFailure failure;
      failure.scenario_seed = scenario_seed;
      failure.label = scenario.label();
      failure.error =
          "data-plane divergence: " +
          std::string{rings_now ? "heap" : "ring"} +
          " re-run changed the outcome (baseline fingerprint " +
          std::to_string(baseline.fingerprint) + ", opposite-hop-store " +
          "fingerprint " + std::to_string(other.fingerprint) + ")";
      baseline.failure = std::move(failure);
    }
  }
  return baseline;
}

}  // namespace

std::string FuzzFailure::to_string() const {
  constexpr std::size_t kMaxShown = 10;
  std::string out = "FAIL iter " + std::to_string(iter) + " seed " +
                    std::to_string(scenario_seed) + " (" + label + ")";
  if (!error.empty()) out += "\n  error: " + error;
  for (std::size_t i = 0; i < violations.size() && i < kMaxShown; ++i) {
    out += "\n  " + violations[i].to_string();
  }
  if (violations.size() > kMaxShown) {
    out += "\n  ... and " + std::to_string(violations.size() - kMaxShown) +
           " more violation(s)";
  }
  out += "\n  replay: fuzz_scenarios --replay " + std::to_string(scenario_seed);
  return out;
}

std::uint64_t fuzz_scenario_seed(std::uint64_t campaign_seed,
                                 std::uint64_t iter) {
  return sim::Rng{campaign_seed}.child("fuzz-iter", iter).next_u64();
}

Scenario fuzz_scenario(std::uint64_t scenario_seed, bool multiprefix) {
  sim::Rng rng = sim::Rng{scenario_seed}.child("fuzz-scenario");
  Scenario s;

  switch (rng.next_below(5)) {
    case 0:
      s.topology.kind = TopologyKind::kClique;
      s.topology.size = static_cast<std::size_t>(rng.uniform_int(4, 8));
      break;
    case 1:
      s.topology.kind = TopologyKind::kBClique;
      s.topology.size = static_cast<std::size_t>(rng.uniform_int(3, 5));
      break;
    case 2:
      s.topology.kind = TopologyKind::kChain;
      s.topology.size = static_cast<std::size_t>(rng.uniform_int(4, 8));
      break;
    case 3:
      s.topology.kind = TopologyKind::kRing;
      s.topology.size = static_cast<std::size_t>(rng.uniform_int(4, 9));
      break;
    default:
      s.topology.kind = TopologyKind::kInternet;
      s.topology.size = static_cast<std::size_t>(rng.uniform_int(20, 32));
      break;
  }
  s.topology.topo_seed = rng.next_u64();

  // Chains cannot lose a link without disconnecting the destination, so
  // they only see the routing events.
  const bool link_events = s.topology.kind != TopologyKind::kChain;
  switch (rng.next_below(link_events ? 4 : 2)) {
    case 0:
      s.event = EventKind::kTdown;
      break;
    case 1:
      s.event = EventKind::kTup;
      break;
    case 2:
      s.event = EventKind::kTlong;
      break;
    default:
      s.event = EventKind::kFlap;
      break;
  }

  s.bgp = s.bgp.with(bgp::kAllEnhancements[rng.next_below(5)]);
  constexpr double kMraiChoices[] = {2.0, 5.0, 10.0, 30.0};
  s.bgp.mrai = sim::SimTime::seconds(kMraiChoices[rng.next_below(4)]);
  if (rng.chance(0.25)) {
    s.bgp.jitter_lo = 1.0;  // deterministic timers: the worst-case regime
  }
  if (rng.chance(0.125)) {
    s.bgp.backup_caution = sim::SimTime::seconds(rng.uniform(2.0, 8.0));
  }
  // Drawn unconditionally so the draw sequence does not depend on the
  // event choice.
  s.flap_interval = sim::SimTime::seconds(rng.uniform(2.0, 20.0));

  s.seed = rng.next_u64();

  if (multiprefix) {
    // Appended after the classic draw sequence: with the flag off the
    // scenario (and the campaign digest) is bit-identical to before.
    constexpr std::size_t kPrefixChoices[] = {2, 4, 8, 16};
    s.prefixes = kPrefixChoices[rng.next_below(4)];
    if (rng.chance(0.5)) {
      // Scatter some origins over the topology (cycled over prefixes >= 1);
      // the other half keeps the fully correlated single-origin table.
      const std::size_t nodes = s.topology.kind == TopologyKind::kBClique
                                    ? 2 * s.topology.size
                                    : s.topology.size;
      const auto n_origins = static_cast<std::size_t>(rng.uniform_int(1, 3));
      for (std::size_t i = 0; i < n_origins; ++i) {
        s.origins.push_back(static_cast<net::NodeId>(rng.next_below(nodes)));
      }
    }
  }
  return s;
}

std::optional<FuzzFailure> replay_fuzz_scenario(std::uint64_t scenario_seed,
                                                const FuzzOptions& options) {
  IterationResult result = run_iteration(scenario_seed, options);
  if (options.out) {
    if (result.failure) {
      *options.out << result.failure->to_string() << "\n";
    } else {
      *options.out << "clean: " << result.summary << "\n";
    }
  }
  return result.failure;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  std::uint64_t digest = kFnvOffset;
  for (std::size_t i = 0; i < options.iters; ++i) {
    const std::uint64_t seed = fuzz_scenario_seed(options.seed, i);
    IterationResult result = run_iteration(seed, options);
    digest = fnv_mix(digest, result.fingerprint);
    ++report.iterations;
    if (result.failure) {
      result.failure->iter = i;
      if (options.out) *options.out << result.failure->to_string() << "\n";
      report.failures.push_back(std::move(*result.failure));
    } else if (options.verbose && options.out) {
      *options.out << "iter " << i << " seed " << seed << " ok — "
                   << result.summary << "\n";
    }
  }
  report.digest = digest;
  return report;
}

}  // namespace bgpsim::core
