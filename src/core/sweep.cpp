#include "core/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "core/env.hpp"
#include "sim/logging.hpp"
#include "sim/thread_pool.hpp"
#include "snap/cache.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim::core {
namespace {

template <typename Get>
metrics::Summary collect(const std::vector<ExperimentOutcome>& runs, Get get) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& r : runs) values.push_back(get(r.metrics));
  return metrics::summarize(values);
}

/// Seed layout shared by the serial and parallel runners: trial i is a pure
/// function of (base, i), never of execution order.
Scenario trial_scenario(const Scenario& base, std::size_t i) {
  Scenario s = base;
  s.seed = base.seed + i;
  if (generated_topology(s.topology.kind)) {
    s.topology.topo_seed = base.topology.topo_seed + i;
  }
  return s;
}

/// Aggregation shared by both runners so summaries are computed by the
/// exact same code path (bit-identical results).
void summarize_trials(TrialSet& set) {
  using M = metrics::RunMetrics;
  set.convergence_time_s =
      collect(set.runs, [](const M& m) { return m.convergence_time_s; });
  set.looping_duration_s =
      collect(set.runs, [](const M& m) { return m.looping_duration_s; });
  set.ttl_exhaustions = collect(
      set.runs, [](const M& m) { return static_cast<double>(m.ttl_exhaustions); });
  set.looping_ratio =
      collect(set.runs, [](const M& m) { return m.looping_ratio; });
  set.loops_formed = collect(
      set.runs, [](const M& m) { return static_cast<double>(m.loops_formed); });
  set.max_loop_duration_s =
      collect(set.runs, [](const M& m) { return m.max_loop_duration_s; });
}

/// A trial may use the prelude cache only when it carries no caller-owned
/// observation or checkpoint hooks: a warm start skips Phase 1 entirely, so
/// a trace recorder or oracle would see a different (shorter) event stream,
/// and caller-set snapshot fields must not be silently repurposed.
bool cacheable(const Scenario& s) {
  return s.trace == nullptr && s.oracle == nullptr &&
         s.warm_start == nullptr && s.save_converged == nullptr &&
         s.snap_roundtrip == SnapRoundtrip::kOff;
}

/// Cache key for one trial's converged prelude: driver tag + everything that
/// shapes Phase 1 (scenario_prelude_hash) + the seed. Scenarios that differ
/// only in post-event knobs (event kind, flap interval, traffic) share the
/// key and fork from one cold run.
std::uint64_t prelude_key(const Scenario& s) {
  snap::Hasher h;
  h.mix(static_cast<std::uint64_t>(snap::DriverKind::kBgp));
  h.mix(scenario_prelude_hash(s));
  h.mix(s.seed);
  return h.value();
}

}  // namespace

// One trial, warm-started from the process-wide PreludeCache when possible.
// Shared by the serial and parallel runners (and the campaign service's
// workers) so all produce bit-identical results whether a trial hits or
// misses the cache.
ExperimentOutcome run_single_trial(const Scenario& base, std::size_t i,
                                   bool use_snap_cache) {
  Scenario s = trial_scenario(base, i);
  auto& cache = snap::PreludeCache::instance();
  if (!use_snap_cache || !cache.enabled() || !cacheable(s)) {
    return run_experiment(s);
  }

  const std::uint64_t key = prelude_key(s);
  if (const std::shared_ptr<const snap::Snapshot> hit = cache.find(key)) {
    s.warm_start = hit.get();
    return run_experiment(s);
  }
  snap::Snapshot converged;
  s.save_converged = &converged;
  ExperimentOutcome out = run_experiment(s);
  cache.insert(key,
               std::make_shared<const snap::Snapshot>(std::move(converged)));
  return out;
}

std::vector<TrialRange> decompose_trials(std::size_t trials,
                                         std::size_t unit_trials) {
  if (unit_trials == 0) unit_trials = 1;
  std::vector<TrialRange> units;
  units.reserve((trials + unit_trials - 1) / unit_trials);
  for (std::size_t begin = 0; begin < trials; begin += unit_trials) {
    units.push_back({begin, std::min(unit_trials, trials - begin)});
  }
  return units;
}

TrialSet assemble_trials(Scenario base, std::vector<ExperimentOutcome> runs) {
  TrialSet set;
  set.scenario = std::move(base);
  set.runs = std::move(runs);
  summarize_trials(set);
  return set;
}

TrialSet run_trials(const Scenario& base, const RunOptions& options) {
  // Effective scenario: RunOptions-attached sinks override the scenario's
  // own (both remain supported; the scenario fields predate RunOptions).
  Scenario s = base;
  if (options.trace != nullptr) s.trace = options.trace;
  if (options.oracle != nullptr) s.oracle = options.oracle;

  // The BGPSIM_PATH_INTERN knob gates the option (off always wins); the
  // BGP driver reads the resolved toggle when opening its PathStore scope.
  detail::PathInterningGuard interning{options.path_interning &&
                                       env::path_interning()};
  // Same gating for the scheduler backend: every Simulator constructed
  // under this run (worker threads included) resolves it at construction.
  detail::TimerWheelGuard wheel{options.timer_wheel && env::timer_wheel()};
  // And for the data-plane hop store: every DataPlane constructed under
  // this run resolves its backend from the override at construction.
  detail::DataPlaneRingsGuard rings{options.dataplane_rings &&
                                    env::dataplane_rings()};

  const std::size_t trials = options.trials;
  const std::size_t jobs = options.jobs == 0 ? default_jobs() : options.jobs;
  const bool sinks = s.trace != nullptr || s.oracle != nullptr;

  // The trace recorder and the invariant oracle are caller-owned,
  // unsynchronized sinks; honor them by running serially rather than
  // interleaving trials into them. Say so — a silent fallback reads as a
  // parallel run that mysteriously used one core.
  if (jobs > 1 && trials > 1 && sinks) {
    sim::LogLine{sim::LogLevel::kInfo, "core", sim::SimTime::zero()}
        << "run_trials_parallel: falling back to serial execution because "
        << (s.trace != nullptr ? "a trace recorder" : "an invariant oracle")
        << " is attached (caller-owned sinks are not synchronized across "
           "worker threads)";
  }

  if (jobs <= 1 || trials <= 1 || sinks) {
    TrialSet set;
    set.scenario = s;
    set.runs.reserve(trials);
    for (std::size_t i = 0; i < trials; ++i) {
      set.runs.push_back(run_single_trial(s, i, options.snap_cache));
    }
    summarize_trials(set);
    return set;
  }

  TrialSet set;
  set.scenario = s;
  set.runs.resize(trials);  // slot per trial: collected in trial order
  std::vector<std::exception_ptr> errors(trials);

  {
    sim::ThreadPool pool{std::min(jobs, trials)};
    for (std::size_t i = 0; i < trials; ++i) {
      pool.submit([&s, &set, &errors, &options, i] {
        try {
          set.runs[i] = run_single_trial(s, i, options.snap_cache);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }

  // Serial semantics: the lowest-index failure is the one reported.
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  summarize_trials(set);
  return set;
}

TrialSet run_trials(Scenario base, std::size_t trials) {
  RunOptions options;
  options.trials = trials;
  options.jobs = 1;
  return run_trials(static_cast<const Scenario&>(base), options);
}

TrialSet run_trials_parallel(Scenario base, std::size_t trials,
                             std::size_t jobs) {
  RunOptions options;
  options.trials = trials;
  options.jobs = jobs;
  return run_trials(static_cast<const Scenario&>(base), options);
}

std::size_t default_jobs() { return env::jobs(); }

std::size_t env_or(const char* name, std::size_t fallback) {
  return env::u64_or(name, fallback);
}

}  // namespace bgpsim::core
