#include "core/sweep.hpp"

#include <cstdlib>
#include <string>

namespace bgpsim::core {
namespace {

template <typename Get>
metrics::Summary collect(const std::vector<ExperimentOutcome>& runs, Get get) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& r : runs) values.push_back(get(r.metrics));
  return metrics::summarize(values);
}

}  // namespace

TrialSet run_trials(Scenario base, std::size_t trials) {
  TrialSet set;
  set.scenario = base;
  set.runs.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    Scenario s = base;
    s.seed = base.seed + i;
    if (s.topology.kind == TopologyKind::kInternet) {
      s.topology.topo_seed = base.topology.topo_seed + i;
    }
    set.runs.push_back(run_experiment(s));
  }

  using M = metrics::RunMetrics;
  set.convergence_time_s =
      collect(set.runs, [](const M& m) { return m.convergence_time_s; });
  set.looping_duration_s =
      collect(set.runs, [](const M& m) { return m.looping_duration_s; });
  set.ttl_exhaustions = collect(
      set.runs, [](const M& m) { return static_cast<double>(m.ttl_exhaustions); });
  set.looping_ratio =
      collect(set.runs, [](const M& m) { return m.looping_ratio; });
  set.loops_formed = collect(
      set.runs, [](const M& m) { return static_cast<double>(m.loops_formed); });
  set.max_loop_duration_s =
      collect(set.runs, [](const M& m) { return m.max_loop_duration_s; });
  return set;
}

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace bgpsim::core
