// Multi-trial execution and aggregation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::core {

/// Aggregated results of repeated runs of one scenario with varied seeds
/// (the paper: "the simulation were repeated for a number of times with
/// different destination ASes and failed links").
struct TrialSet {
  Scenario scenario;                    // base scenario (seed of trial 0)
  std::vector<ExperimentOutcome> runs;  // one per trial

  metrics::Summary convergence_time_s;
  metrics::Summary looping_duration_s;
  metrics::Summary ttl_exhaustions;
  metrics::Summary looping_ratio;
  metrics::Summary loops_formed;
  metrics::Summary max_loop_duration_s;
};

/// Run `trials` independent repetitions. Trial i uses seed base.seed + i;
/// for Internet topologies the topology seed also advances so each trial
/// draws a fresh graph, destination, and failed link (as in the paper).
[[nodiscard]] TrialSet run_trials(Scenario base, std::size_t trials);

/// Like run_trials, but distributes trials across `jobs` worker threads.
///
/// Deterministic: trial i always runs with seed base.seed + i and results
/// are collected in trial order regardless of completion order, so the
/// returned TrialSet — including every Summary — is bit-identical to the
/// serial path at any job count.
///
/// jobs == 0 resolves to default_jobs() (BGPSIM_JOBS env var, else
/// hardware_concurrency). Falls back to the serial path when jobs <= 1,
/// trials <= 1, or base.trace is set (the trace recorder is a single
/// caller-owned sink and is not synchronized).
///
/// If any trial throws, the exception of the lowest-index failing trial is
/// rethrown after all in-flight trials finish (matching the serial path,
/// which would have failed on that trial first).
[[nodiscard]] TrialSet run_trials_parallel(Scenario base, std::size_t trials,
                                           std::size_t jobs = 0);

/// Worker count used by run_trials_parallel when jobs == 0: the
/// BGPSIM_JOBS environment variable if set and valid, otherwise
/// std::thread::hardware_concurrency(); never less than 1.
[[nodiscard]] std::size_t default_jobs();

/// One trial of a TrialSet, exactly as run_trials would execute it: seed
/// layout seed = base.seed + index (plus topo_seed advance on Internet
/// topologies) and warm-started from the process-wide snap::PreludeCache
/// when the scenario is cacheable. This is the unit of work the campaign
/// service (src/svc/) ships to worker processes — a merged campaign is
/// bit-identical to run_trials precisely because both run this function.
[[nodiscard]] ExperimentOutcome run_single_trial(const Scenario& base,
                                                 std::size_t index);

/// A contiguous slice of a TrialSet's trial index space.
struct TrialRange {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Sweep decomposition: split `trials` into ranges of at most `unit_trials`
/// each (the campaign service's work units). unit_trials == 0 resolves
/// to 1. Ranges are returned in trial order and exactly cover
/// [0, trials) without overlap.
[[nodiscard]] std::vector<TrialRange> decompose_trials(
    std::size_t trials, std::size_t unit_trials);

/// Assemble a TrialSet from trial-ordered outcomes (runs[i] must be the
/// result of run_single_trial(base, i)). Summaries are computed by the same
/// aggregation code as run_trials, so a campaign merged through this
/// function is bit-identical to the in-process runners.
[[nodiscard]] TrialSet assemble_trials(Scenario base,
                                       std::vector<ExperimentOutcome> runs);

/// Environment-variable override for bench scaling (e.g. BGPSIM_TRIALS).
/// Returns `fallback` when unset or unparsable; a set-but-garbled value
/// ("8x", "two") additionally warns on stderr so a misspelled knob is
/// never silently ignored.
[[nodiscard]] std::size_t env_or(const char* name, std::size_t fallback);

}  // namespace bgpsim::core
