// Multi-trial execution and aggregation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/experiment.hpp"
#include "core/run_options.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::core {

/// Aggregated results of repeated runs of one scenario with varied seeds
/// (the paper: "the simulation were repeated for a number of times with
/// different destination ASes and failed links").
struct TrialSet {
  Scenario scenario;                    // base scenario (seed of trial 0)
  std::vector<ExperimentOutcome> runs;  // one per trial

  metrics::Summary convergence_time_s;
  metrics::Summary looping_duration_s;
  metrics::Summary ttl_exhaustions;
  metrics::Summary looping_ratio;
  metrics::Summary loops_formed;
  metrics::Summary max_loop_duration_s;
};

/// Run options.trials independent repetitions of `base`. Trial i uses
/// seed base.seed + i; for Internet topologies the topology seed also
/// advances so each trial draws a fresh graph, destination, and failed
/// link (as in the paper).
///
/// Execution is governed entirely by `options` (see run_options.hpp):
/// trials fan out across options.jobs worker threads, yet results are
/// collected in trial order and every Summary is computed by the same
/// aggregation code — the returned TrialSet is bit-identical at any job
/// count. Runs with a trace or oracle attached (via options or the
/// scenario) degrade to serial with a logged notice, since those are
/// caller-owned unsynchronized sinks.
///
/// If any trial throws, the exception of the lowest-index failing trial
/// is rethrown after all in-flight trials finish (matching what a serial
/// run would have reported first).
[[nodiscard]] TrialSet run_trials(const Scenario& base,
                                  const RunOptions& options);

/// Deprecated shim: run_trials(base, {.trials = trials, .jobs = 1}).
[[deprecated("use run_trials(base, RunOptions{...})")]] [[nodiscard]]
TrialSet run_trials(Scenario base, std::size_t trials);

/// Deprecated shim: run_trials(base, {.trials = trials, .jobs = jobs}).
[[deprecated("use run_trials(base, RunOptions{...})")]] [[nodiscard]]
TrialSet run_trials_parallel(Scenario base, std::size_t trials,
                             std::size_t jobs = 0);

/// Worker count used when RunOptions::jobs == 0: env::jobs() — the
/// BGPSIM_JOBS environment variable if set and valid, otherwise
/// std::thread::hardware_concurrency(); never less than 1.
[[nodiscard]] std::size_t default_jobs();

/// One trial of a TrialSet, exactly as run_trials would execute it: seed
/// layout seed = base.seed + index (plus topo_seed advance on Internet
/// topologies) and — when `use_snap_cache` and the scenario is cacheable —
/// warm-started from the process-wide snap::PreludeCache. This is the unit
/// of work the campaign service (src/svc/) ships to worker processes — a
/// merged campaign is bit-identical to run_trials precisely because both
/// run this function.
[[nodiscard]] ExperimentOutcome run_single_trial(const Scenario& base,
                                                 std::size_t index,
                                                 bool use_snap_cache = true);

/// A contiguous slice of a TrialSet's trial index space.
struct TrialRange {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Sweep decomposition: split `trials` into ranges of at most `unit_trials`
/// each (the campaign service's work units). unit_trials == 0 resolves
/// to 1. Ranges are returned in trial order and exactly cover
/// [0, trials) without overlap.
[[nodiscard]] std::vector<TrialRange> decompose_trials(
    std::size_t trials, std::size_t unit_trials);

/// Assemble a TrialSet from trial-ordered outcomes (runs[i] must be the
/// result of run_single_trial(base, i)). Summaries are computed by the same
/// aggregation code as run_trials, so a campaign merged through this
/// function is bit-identical to the in-process runners.
[[nodiscard]] TrialSet assemble_trials(Scenario base,
                                       std::vector<ExperimentOutcome> runs);

/// Environment-variable override for bench scaling (e.g. BGPSIM_TRIALS).
/// Returns `fallback` when unset or unparsable; a set-but-garbled value
/// ("8x", "two") additionally warns on stderr so a misspelled knob is
/// never silently ignored. Legacy forwarder for core::env::u64_or — the
/// documented knob registry lives in core/env.hpp.
[[nodiscard]] std::size_t env_or(const char* name, std::size_t fallback);

}  // namespace bgpsim::core
