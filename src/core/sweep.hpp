// Multi-trial execution and aggregation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::core {

/// Aggregated results of repeated runs of one scenario with varied seeds
/// (the paper: "the simulation were repeated for a number of times with
/// different destination ASes and failed links").
struct TrialSet {
  Scenario scenario;                    // base scenario (seed of trial 0)
  std::vector<ExperimentOutcome> runs;  // one per trial

  metrics::Summary convergence_time_s;
  metrics::Summary looping_duration_s;
  metrics::Summary ttl_exhaustions;
  metrics::Summary looping_ratio;
  metrics::Summary loops_formed;
  metrics::Summary max_loop_duration_s;
};

/// Run `trials` independent repetitions. Trial i uses seed base.seed + i;
/// for Internet topologies the topology seed also advances so each trial
/// draws a fresh graph, destination, and failed link (as in the paper).
[[nodiscard]] TrialSet run_trials(Scenario base, std::size_t trials);

/// Environment-variable override for bench scaling (e.g. BGPSIM_TRIALS).
/// Returns `fallback` when unset or unparsable.
[[nodiscard]] std::size_t env_or(const char* name, std::size_t fallback);

}  // namespace bgpsim::core
