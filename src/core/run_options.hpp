// Options for the trial runners — the one knobs struct consumed by
// core::run_trials, the svc campaign coordinator, and the benches.
//
// This replaces the accreted positional parameter lists
// (run_trials(base, trials) / run_trials_parallel(base, trials, jobs) plus
// per-call-site env lookups); those signatures survive as deprecated thin
// shims over this struct.
//
// Environment defaults (core/env.hpp registry): a field left at its
// neutral value resolves against the corresponding knob at run time —
// jobs == 0 resolves to env::jobs(), snap_cache/path_interning are
// additionally gated by BGPSIM_SNAP_CACHE / BGPSIM_PATH_INTERN — so the
// environment configures every runner without each call site re-reading
// it, and an explicit field always wins in the off direction.
#pragma once

#include <cstddef>

namespace bgpsim::metrics {
class TraceRecorder;
}
namespace bgpsim::check {
class Oracle;
}

namespace bgpsim::core {

struct RunOptions {
  /// Independent repetitions; trial i uses seed base.seed + i (and an
  /// advanced topo_seed on Internet topologies).
  std::size_t trials = 1;

  /// Worker threads. 0 = env::jobs() (BGPSIM_JOBS, else all cores);
  /// 1 = serial. Results are bit-identical at any job count. Runs with a
  /// trace or oracle attached degrade to serial (caller-owned sinks are
  /// not synchronized) with a logged notice.
  std::size_t jobs = 0;

  /// Consult the process-wide snap::PreludeCache for converged-prelude
  /// warm starts (hits and misses are bit-identical by construction).
  /// false forces every trial to run cold; true still requires the cache
  /// to be enabled (BGPSIM_SNAP_CACHE > 0).
  bool snap_cache = true;

  /// Per-experiment AS-path interning (bgp::PathStore): structurally
  /// equal paths share one node, equality is pointer comparison. Outputs
  /// are bit-identical either way (the digest-equality suite enforces
  /// this); false is the A/B lever. true still requires
  /// BGPSIM_PATH_INTERN != 0.
  bool path_interning = true;

  /// Hierarchical timer-wheel event scheduling with batched same-tick
  /// MRAI delivery (sim::QueueBackend::kWheel). Outputs are bit-identical
  /// either way (the wheel digest-equality suite enforces this); false
  /// falls back to the (time, seq) binary heap with strictly sequential
  /// delivery — the A/B lever. true still requires BGPSIM_TIMER_WHEEL != 0.
  bool timer_wheel = true;

  /// Per-tick FIFO ring hop store in the data plane with batched
  /// per-(node, prefix) FIB decisions (fwd::PlaneBackend::kRings). Outputs
  /// are bit-identical either way (the data-plane digest-equality suite
  /// enforces this); false falls back to the (time, seq) binary-heap hop
  /// store with a per-packet FIB lookup — the A/B lever. true still
  /// requires BGPSIM_DATAPLANE_RINGS != 0.
  bool dataplane_rings = true;

  /// Caller-owned route-change trace sink, applied to every trial (forces
  /// serial execution and bypasses the prelude cache). Overrides
  /// Scenario::trace when non-null.
  metrics::TraceRecorder* trace = nullptr;

  /// Caller-owned invariant oracle, applied to every trial (forces serial
  /// execution and bypasses the prelude cache). Overrides Scenario::oracle
  /// when non-null.
  check::Oracle* oracle = nullptr;
};

namespace detail {

/// Effective process-wide path-interning toggle the BGP experiment driver
/// consults when opening its PathStore scope. The RunOptions engine sets
/// it around a run; outside any run it follows env::path_interning().
[[nodiscard]] bool path_interning_enabled();
void set_path_interning(bool on);

/// RAII: apply a RunOptions-resolved toggle for the duration of a run.
class PathInterningGuard {
 public:
  explicit PathInterningGuard(bool on)
      : prev_{path_interning_enabled()} {
    set_path_interning(on);
  }
  ~PathInterningGuard() { set_path_interning(prev_); }
  PathInterningGuard(const PathInterningGuard&) = delete;
  PathInterningGuard& operator=(const PathInterningGuard&) = delete;

 private:
  bool prev_;
};

/// RAII: pin the event-queue backend (sim::set_queue_backend_override)
/// for the duration of a run, restoring the exact previous override on
/// exit. Out-of-line so this header stays free of sim/ includes.
class TimerWheelGuard {
 public:
  explicit TimerWheelGuard(bool on);
  ~TimerWheelGuard();
  TimerWheelGuard(const TimerWheelGuard&) = delete;
  TimerWheelGuard& operator=(const TimerWheelGuard&) = delete;

 private:
  int prev_;
};

/// RAII: pin the data-plane hop-store backend
/// (fwd::set_plane_backend_override) for the duration of a run, restoring
/// the exact previous override on exit. Out-of-line so this header stays
/// free of fwd/ includes.
class DataPlaneRingsGuard {
 public:
  explicit DataPlaneRingsGuard(bool on);
  ~DataPlaneRingsGuard();
  DataPlaneRingsGuard(const DataPlaneRingsGuard&) = delete;
  DataPlaneRingsGuard& operator=(const DataPlaneRingsGuard&) = delete;

 private:
  int prev_;
};

}  // namespace detail

}  // namespace bgpsim::core
