// Destination / failed-link selection shared by the experiment drivers
// (path-vector and the distance-vector baseline).
#pragma once

#include <optional>

#include "core/scenario.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"

namespace bgpsim::core {

/// Does removing `link` keep the graph connected?
[[nodiscard]] bool removal_keeps_connected(net::Topology& topo,
                                           net::LinkId link);

/// Pick the destination AS: the fixed choice if given; node 0 for regular
/// families; a random lowest-degree node for Internet topologies (for
/// Tlong, one that can lose a link without disconnecting).
[[nodiscard]] net::NodeId choose_destination(
    TopologyKind kind, EventKind event, std::optional<net::NodeId> fixed,
    net::Topology& topo, sim::Rng& rng);

/// Pick the link Tlong fails: the fixed choice if given; the B-Clique's
/// direct [0, n] attachment; otherwise a connectivity-preserving link of
/// the destination, biased to its primary (highest-degree) provider.
[[nodiscard]] net::LinkId choose_tlong_link(TopologyKind kind,
                                            std::size_t size,
                                            std::optional<net::LinkId> fixed,
                                            net::Topology& topo,
                                            net::NodeId destination,
                                            sim::Rng& rng);

}  // namespace bgpsim::core
