#include "core/scenario_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace bgpsim::core {
namespace {

std::string trimmed(const std::string& raw) {
  const auto begin = raw.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = raw.find_last_not_of(" \t\r");
  return raw.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"scenario file line " + std::to_string(line) +
                           ": " + what};
}

double to_double(std::size_t line, const std::string& key,
                 const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument{""};
    return v;
  } catch (...) {
    fail(line, "bad numeric value for '" + key + "': " + value);
  }
}

std::uint64_t to_u64(std::size_t line, const std::string& key,
                     const std::string& value) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument{""};
    return v;
  } catch (...) {
    fail(line, "bad integer value for '" + key + "': " + value);
  }
}

bool to_bool(std::size_t line, const std::string& key,
             const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  fail(line, "bad boolean value for '" + key + "': " + value);
}

}  // namespace

Scenario parse_scenario(std::istream& in) {
  Scenario s;
  bool saw_topology = false;
  bool saw_size = false;
  std::size_t prefixes_line = 0;  // line that set 'prefixes' (0 = unset)
  std::size_t origins_line = 0;   // line that set 'origins' (0 = unset)
  std::map<std::string, std::size_t> seen_keys;  // key -> first line

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments, then whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trimmed(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trimmed(line.substr(0, eq));
    const std::string value = trimmed(line.substr(eq + 1));
    if (key.empty() || value.empty()) fail(line_no, "empty key or value");

    // Duplicate keys are near-certainly an editing mistake; silently
    // letting the last one win hides it, so reject the file.
    const auto [it, first_use] = seen_keys.emplace(key, line_no);
    if (!first_use) {
      fail(line_no, "duplicate key '" + key + "' (first set on line " +
                        std::to_string(it->second) + ")");
    }

    if (key == "topology") {
      saw_topology = true;
      if (value == "clique") s.topology.kind = TopologyKind::kClique;
      else if (value == "bclique") s.topology.kind = TopologyKind::kBClique;
      else if (value == "chain") s.topology.kind = TopologyKind::kChain;
      else if (value == "ring") s.topology.kind = TopologyKind::kRing;
      else if (value == "internet") s.topology.kind = TopologyKind::kInternet;
      else if (value == "asgraph") s.topology.kind = TopologyKind::kAsGraph;
      else if (value == "relfile") s.topology.kind = TopologyKind::kRelFile;
      else fail(line_no, "unknown topology: " + value);
    } else if (key == "rel_file") {
      s.topology.rel_file = value;
    } else if (key == "size") {
      saw_size = true;
      s.topology.size = static_cast<std::size_t>(to_u64(line_no, key, value));
    } else if (key == "topo_seed") {
      s.topology.topo_seed = to_u64(line_no, key, value);
    } else if (key == "event") {
      if (value == "tdown") s.event = EventKind::kTdown;
      else if (value == "tlong") s.event = EventKind::kTlong;
      else if (value == "tup") s.event = EventKind::kTup;
      else if (value == "flap") s.event = EventKind::kFlap;
      else fail(line_no, "unknown event: " + value);
    } else if (key == "flap_s") {
      const double v = to_double(line_no, key, value);
      if (v <= 0) fail(line_no, "flap_s must be positive");
      s.flap_interval = sim::SimTime::seconds(v);
    } else if (key == "protocol") {
      if (value == "bgp") s.bgp = s.bgp.with(bgp::Enhancement::kStandard);
      else if (value == "ssld") s.bgp = s.bgp.with(bgp::Enhancement::kSsld);
      else if (value == "wrate") s.bgp = s.bgp.with(bgp::Enhancement::kWrate);
      else if (value == "assertion")
        s.bgp = s.bgp.with(bgp::Enhancement::kAssertion);
      else if (value == "ghost")
        s.bgp = s.bgp.with(bgp::Enhancement::kGhostFlushing);
      else fail(line_no, "unknown protocol: " + value);
    } else if (key == "mrai") {
      const double v = to_double(line_no, key, value);
      if (v < 0) fail(line_no, "mrai must be non-negative");
      s.bgp.mrai = sim::SimTime::seconds(v);
    } else if (key == "jitter_lo") {
      s.bgp.jitter_lo = to_double(line_no, key, value);
    } else if (key == "jitter_hi") {
      s.bgp.jitter_hi = to_double(line_no, key, value);
    } else if (key == "seed") {
      s.seed = to_u64(line_no, key, value);
    } else if (key == "policy") {
      s.policy_routing = to_bool(line_no, key, value);
    } else if (key == "destination") {
      s.destination = static_cast<net::NodeId>(to_u64(line_no, key, value));
    } else if (key == "tlong_link") {
      s.tlong_link = static_cast<net::LinkId>(to_u64(line_no, key, value));
    } else if (key == "processing_min_ms") {
      s.processing.min = sim::SimTime::seconds(
          to_double(line_no, key, value) / 1000.0);
    } else if (key == "processing_max_ms") {
      s.processing.max = sim::SimTime::seconds(
          to_double(line_no, key, value) / 1000.0);
    } else if (key == "traffic_pps") {
      const double pps = to_double(line_no, key, value);
      if (pps <= 0) fail(line_no, "traffic_pps must be positive");
      s.traffic.interval = sim::SimTime::seconds(1.0 / pps);
    } else if (key == "ttl") {
      s.traffic.ttl = static_cast<int>(to_u64(line_no, key, value));
    } else if (key == "caution") {
      const double v = to_double(line_no, key, value);
      if (v < 0) fail(line_no, "caution must be non-negative");
      s.bgp.backup_caution = sim::SimTime::seconds(v);
    } else if (key == "prefixes") {
      // stoull wraps negatives silently, so reject the sign up front.
      if (value[0] == '-') {
        fail(line_no, "prefixes must be a positive count, got: " + value);
      }
      const auto n = to_u64(line_no, key, value);
      if (n == 0) fail(line_no, "prefixes must be at least 1, got: 0");
      s.prefixes = static_cast<std::size_t>(n);
      prefixes_line = line_no;
    } else if (key == "origins") {
      // Comma-separated origin AS list for prefixes >= 1 (applied cycled).
      std::string rest = value;
      while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string item = trimmed(rest.substr(0, comma));
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (item.empty()) fail(line_no, "empty entry in 'origins' list");
        if (item[0] == '-') {
          fail(line_no, "origin AS must be non-negative, got: " + item);
        }
        s.origins.push_back(
            static_cast<net::NodeId>(to_u64(line_no, key, item)));
      }
      if (s.origins.empty()) fail(line_no, "empty 'origins' list");
      origins_line = line_no;
    } else {
      fail(line_no, "unknown key: " + key);
    }
  }

  if (!saw_topology) throw std::runtime_error{"scenario file: missing 'topology'"};
  if (s.topology.kind == TopologyKind::kRelFile) {
    // The relationship file decides the node count, so 'size' is neither
    // required nor meaningful for this kind.
    if (s.topology.rel_file.empty()) {
      throw std::runtime_error{
          "scenario file: topology relfile needs 'rel_file'"};
    }
  } else if (!saw_size) {
    throw std::runtime_error{"scenario file: missing 'size'"};
  }
  if (!s.topology.rel_file.empty() &&
      s.topology.kind != TopologyKind::kRelFile) {
    throw std::runtime_error{
        "scenario file: 'rel_file' requires topology = relfile"};
  }
  if (s.bgp.jitter_lo > s.bgp.jitter_hi) {
    throw std::runtime_error{"scenario file: jitter_lo > jitter_hi"};
  }
  if (s.processing.min > s.processing.max) {
    throw std::runtime_error{
        "scenario file: processing_min_ms > processing_max_ms"};
  }
  if (origins_line != 0 && prefixes_line == 0) {
    fail(origins_line, "'origins' requires 'prefixes' > 1");
  }
  if (origins_line != 0 && s.prefixes < 2) {
    fail(origins_line, "'origins' needs prefixes >= 2 (prefix 0 always "
                       "originates at the destination)");
  }
  // Origins must name real nodes. The node count is known here for every
  // sized kind (relfile derives it from the file, so it is checked at
  // build time instead).
  if (s.topology.kind != TopologyKind::kRelFile) {
    const std::size_t n = s.topology.kind == TopologyKind::kBClique
                              ? 2 * s.topology.size
                              : s.topology.size;
    for (const net::NodeId o : s.origins) {
      if (o >= n) {
        fail(origins_line, "origin AS " + std::to_string(o) +
                               " out of range for " +
                               std::to_string(n) + "-node topology");
      }
    }
  }
  return s;
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream in{text};
  return parse_scenario(in);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open scenario file: " + path};
  return parse_scenario(in);
}

std::string to_scenario_text(const Scenario& s) {
  std::ostringstream out;
  const auto topology_name = [&] {
    switch (s.topology.kind) {
      case TopologyKind::kClique:
        return "clique";
      case TopologyKind::kBClique:
        return "bclique";
      case TopologyKind::kChain:
        return "chain";
      case TopologyKind::kRing:
        return "ring";
      case TopologyKind::kInternet:
        return "internet";
      case TopologyKind::kAsGraph:
        return "asgraph";
      case TopologyKind::kRelFile:
        return "relfile";
    }
    return "?";
  }();
  out << "topology = " << topology_name << "\n";
  if (s.topology.kind == TopologyKind::kRelFile) {
    out << "rel_file = " << s.topology.rel_file << "\n";
  } else {
    out << "size = " << s.topology.size << "\n";
  }
  out << "topo_seed = " << s.topology.topo_seed << "\n";
  out << "event = "
      << (s.event == EventKind::kTdown    ? "tdown"
          : s.event == EventKind::kTlong  ? "tlong"
          : s.event == EventKind::kFlap   ? "flap"
                                          : "tup")
      << "\n";
  if (s.event == EventKind::kFlap) {
    out << "flap_s = " << s.flap_interval.as_seconds() << "\n";
  }
  out << "protocol = "
      << (s.bgp.ssld ? "ssld"
                     : s.bgp.wrate ? "wrate"
                                   : s.bgp.assertion
                                         ? "assertion"
                                         : s.bgp.ghost_flushing ? "ghost"
                                                                : "bgp")
      << "\n";
  out << "mrai = " << s.bgp.mrai.as_seconds() << "\n";
  out << "jitter_lo = " << s.bgp.jitter_lo << "\n";
  out << "jitter_hi = " << s.bgp.jitter_hi << "\n";
  out << "seed = " << s.seed << "\n";
  out << "policy = " << (s.policy_routing ? "true" : "false") << "\n";
  if (s.destination) out << "destination = " << *s.destination << "\n";
  if (s.tlong_link) out << "tlong_link = " << *s.tlong_link << "\n";
  out << "processing_min_ms = " << s.processing.min.as_millis() << "\n";
  out << "processing_max_ms = " << s.processing.max.as_millis() << "\n";
  out << "traffic_pps = " << 1.0 / s.traffic.interval.as_seconds() << "\n";
  out << "ttl = " << s.traffic.ttl << "\n";
  out << "caution = " << s.bgp.backup_caution.as_seconds() << "\n";
  // Emitted only for multi-prefix scenarios so single-prefix round-trip
  // text (and everything hashed from it) is byte-identical to before.
  if (s.prefixes > 1) {
    out << "prefixes = " << s.prefixes << "\n";
    if (!s.origins.empty()) {
      out << "origins = ";
      for (std::size_t i = 0; i < s.origins.size(); ++i) {
        if (i != 0) out << ",";
        out << s.origins[i];
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace bgpsim::core
