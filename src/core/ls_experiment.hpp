// Experiment driver for the link-state baseline.
#pragma once

#include <optional>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "ls/config.hpp"

namespace bgpsim::core {

struct LsScenario {
  TopologySpec topology;
  EventKind event = EventKind::kTlong;  // LS loops come from link events

  ls::LsConfig ls;
  /// IGP message processing is orders of magnitude cheaper than BGP's
  /// 0.1-0.5 s update handling; default 1-10 ms.
  net::ProcessingDelay processing{sim::SimTime::millis(1),
                                  sim::SimTime::millis(10)};
  fwd::TrafficConfig traffic;

  std::uint64_t seed = 1;
  std::optional<net::NodeId> destination;
  std::optional<net::LinkId> tlong_link;

  sim::SimTime traffic_lead = sim::SimTime::seconds(2);
  sim::SimTime settle_margin = sim::SimTime::seconds(5);
  sim::SimTime max_sim_time = sim::SimTime::seconds(50000);

  /// Checkpoint hooks (see Scenario for semantics).
  snap::Snapshot* save_converged = nullptr;
  const snap::Snapshot* warm_start = nullptr;
  SnapRoundtrip snap_roundtrip = SnapRoundtrip::kOff;
  sim::SimTime snap_roundtrip_after = sim::SimTime::seconds(5);
};

/// Run the link-state baseline end to end; metrics use the same
/// definitions and substrate as run_experiment. Convergence clock: last
/// LSA put on the wire after the event.
[[nodiscard]] ExperimentOutcome run_ls_experiment(const LsScenario& scenario);

/// Hash of everything that shapes the converged LS prelude (see
/// scenario_prelude_hash).
[[nodiscard]] std::uint64_t ls_prelude_hash(const LsScenario& scenario);

}  // namespace bgpsim::core
