// Runs one scenario end to end and extracts the paper's metrics.
#pragma once

#include <optional>

#include "core/scenario.hpp"
#include "metrics/results.hpp"
#include "net/types.hpp"

namespace bgpsim::core {

struct ExperimentOutcome {
  metrics::RunMetrics metrics;
  net::NodeId destination = net::kInvalidNode;
  std::optional<net::LinkId> failed_link;  // engaged for Tlong
  double initial_convergence_s = 0;        // cold-start convergence
  std::uint64_t events_fired = 0;          // simulator events, whole run
};

/// Execute: build topology -> cold-start convergence -> start traffic ->
/// inject the event -> run to quiescence -> drain packets -> measure.
///
/// Throws std::runtime_error if the network fails to converge within
/// scenario.max_sim_time.
[[nodiscard]] ExperimentOutcome run_experiment(const Scenario& scenario);

}  // namespace bgpsim::core
