// Runs one scenario end to end and extracts the paper's metrics.
#pragma once

#include <cstdint>
#include <optional>

#include "core/scenario.hpp"
#include "metrics/results.hpp"
#include "net/types.hpp"

namespace bgpsim::core {

struct ExperimentOutcome {
  metrics::RunMetrics metrics;
  net::NodeId destination = net::kInvalidNode;
  std::optional<net::LinkId> failed_link;  // engaged for Tlong
  double initial_convergence_s = 0;        // cold-start convergence
  std::uint64_t events_fired = 0;          // simulator events, whole run
};

/// Execute: build topology -> cold-start convergence -> start traffic ->
/// inject the event -> run to quiescence -> drain packets -> measure.
///
/// Throws std::runtime_error if the network fails to converge within
/// scenario.max_sim_time.
[[nodiscard]] ExperimentOutcome run_experiment(const Scenario& scenario);

/// Hash of everything that shapes the converged *prelude* of a scenario
/// (topology, protocol config, processing delays, destination choice and
/// whether the prefix is originated before the event). Two scenarios with
/// equal prelude hashes and equal seeds converge to bit-identical state in
/// phase 1, so one's converged checkpoint warm-starts the other — this is
/// the snap::PreludeCache key ingredient. Deliberately *excludes* the
/// traffic config (traffic has not started at the prelude checkpoint) and
/// post-event knobs (event timing, flap interval, tlong link).
[[nodiscard]] std::uint64_t scenario_prelude_hash(const Scenario& scenario);

}  // namespace bgpsim::core
