// Text scenario files: archive and replay experiment configurations.
//
// Format: one `key = value` per line; `#` starts a comment. Keys:
//
//   topology   clique|bclique|chain|ring|internet   (required)
//   size       node count / B-Clique n              (required)
//   event      tdown|tlong|tup                      (default tdown)
//   protocol   bgp|ssld|wrate|assertion|ghost       (default bgp)
//   mrai       seconds                              (default 30)
//   jitter_lo / jitter_hi   MRAI jitter factors     (default 0.75 / 1.0)
//   seed / topo_seed        integers                (default 1 / 1)
//   policy     true|false (Gao-Rexford routing)     (default false)
//   destination / tlong_link   integers             (optional overrides)
//   processing_min_ms / processing_max_ms           (default 100 / 500)
//   traffic_pps   packets per second per source     (default 10)
//   ttl           initial packet TTL                (default 128)
//   caution       backup-caution seconds (§3.3)     (default 0)
#pragma once

#include <iosfwd>
#include <string>

#include "core/scenario.hpp"

namespace bgpsim::core {

/// Parse a scenario description. Throws std::runtime_error with a
/// line-numbered message on malformed input, unknown keys, or bad values.
[[nodiscard]] Scenario parse_scenario(std::istream& in);
[[nodiscard]] Scenario parse_scenario_string(const std::string& text);
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// Serialize a Scenario back into the file format (round-trips through
/// parse_scenario for all file-expressible fields).
[[nodiscard]] std::string to_scenario_text(const Scenario& scenario);

}  // namespace bgpsim::core
