// Fixed-width tables and CSV output for the bench harness.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bgpsim::core {

/// A simple aligned-text table: define columns, add rows, print. Used by
/// every bench binary to print a figure's series the way the paper tabulates
/// them.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header underline.
  void print(std::ostream& out) const;

  /// Comma-separated form (headers + rows) for downstream plotting.
  void write_csv(std::ostream& out) const;

  /// JSON object form: {"title": ..., "headers": [...], "rows": [[...]]}.
  /// The title member is omitted when `title` is empty. Cells are emitted
  /// as JSON strings (bench cells mix numbers with "12.3 ±0.4" forms), with
  /// full string escaping. Used by the BGPSIM_JSON bench artifact knob.
  void write_json(std::ostream& out, const std::string& title = "") const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(double v, int decimals = 1);
[[nodiscard]] std::string fmt_pct(double ratio, int decimals = 0);

/// Section banner used between panels of one figure.
void banner(std::ostream& out, const std::string& title);

}  // namespace bgpsim::core
