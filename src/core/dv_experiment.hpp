// Experiment driver for the distance-vector baseline (same flow and
// metrics as run_experiment, with a DvNetwork in place of BgpNetwork).
//
// Because periodic refresh keeps the event queue non-empty forever, the
// DV driver detects convergence by *route-table stability* (no table
// change anywhere for two refresh cycles) rather than queue drain, and its
// convergence clock is "event -> last route-table change" (for the BGP
// driver the clock is "event -> last update sent"; for triggered updates
// the two differ by at most one triggered delay).
#pragma once

#include <optional>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "dv/config.hpp"

namespace bgpsim::core {

struct DvScenario {
  TopologySpec topology;
  EventKind event = EventKind::kTdown;

  dv::DvConfig dv;                  // RIP defaults: periodic 30 s, triggered
  net::ProcessingDelay processing;  // U[0.1 s, 0.5 s] as in the study
  fwd::TrafficConfig traffic;

  std::uint64_t seed = 1;
  std::optional<net::NodeId> destination;
  std::optional<net::LinkId> tlong_link;

  /// Optional runtime invariant oracle (see src/check/), borrowed for the
  /// run. DV speakers have no AS paths, MRAI timers, or sessions, so arm a
  /// DV-applicable invariant set (e.g. only ConvergedReferenceInvariant) —
  /// check::Oracle::standard() would judge DV by BGP timing rules. The
  /// driver feeds it FIB changes and the quiescent views (with an empty
  /// loc_path accessor, which skips the path-shape checks).
  check::Oracle* oracle = nullptr;

  sim::SimTime traffic_lead = sim::SimTime::seconds(2);
  sim::SimTime settle_margin = sim::SimTime::seconds(5);
  sim::SimTime max_sim_time = sim::SimTime::seconds(50000);

  /// Checkpoint hooks (see Scenario for semantics). DV fresh-graph
  /// checkpoints require triggered-only mode (dv.periodic == 0): periodic
  /// refresh keeps the event queue non-empty, so a converged-prelude
  /// snapshot cannot capture a quiescent queue otherwise.
  snap::Snapshot* save_converged = nullptr;
  const snap::Snapshot* warm_start = nullptr;
  SnapRoundtrip snap_roundtrip = SnapRoundtrip::kOff;
  sim::SimTime snap_roundtrip_after = sim::SimTime::seconds(5);
};

/// Run the distance-vector baseline end to end; the returned metrics use
/// the same definitions and substrate (data plane, loop detector) as
/// run_experiment, so they are directly comparable. The BGP-specific
/// counter block is left empty.
[[nodiscard]] ExperimentOutcome run_dv_experiment(const DvScenario& scenario);

/// Hash of everything that shapes the converged DV prelude (see
/// scenario_prelude_hash).
[[nodiscard]] std::uint64_t dv_prelude_hash(const DvScenario& scenario);

}  // namespace bgpsim::core
