#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bgpsim::core {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"Table: no columns"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count mismatch"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align everything but the first column (labels left, numbers
      // right reads naturally).
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

void banner(std::ostream& out, const std::string& title) {
  out << '\n' << "== " << title << " ==\n";
}

}  // namespace bgpsim::core
