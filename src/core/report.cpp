#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bgpsim::core {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"Table: no columns"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count mismatch"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align everything but the first column (labels left, numbers
      // right reads naturally).
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

namespace {

// Minimal JSON string escaping: quotes, backslashes, and control bytes.
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void json_string_array(std::ostream& out, const std::vector<std::string>& v) {
  out << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out << ", ";
    json_string(out, v[i]);
  }
  out << ']';
}

}  // namespace

void Table::write_json(std::ostream& out, const std::string& title) const {
  out << '{';
  if (!title.empty()) {
    out << "\"title\": ";
    json_string(out, title);
    out << ", ";
  }
  out << "\"headers\": ";
  json_string_array(out, headers_);
  out << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ", ";
    json_string_array(out, rows_[r]);
  }
  out << "]}";
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

void banner(std::ostream& out, const std::string& title) {
  out << '\n' << "== " << title << " ==\n";
}

}  // namespace bgpsim::core
