#include "core/env.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdio>
#include <string_view>
#include <system_error>

#include "core/run_options.hpp"
#include "fwd/engine.hpp"
#include "sim/env.hpp"
#include "sim/event_queue.hpp"
#include "sim/thread_pool.hpp"

namespace bgpsim::core::env {

namespace {

constexpr Knob kRegistry[] = {
    {"BGPSIM_JOBS", "all cores",
     "worker threads per in-process run (run_trials fan-out); results are "
     "bit-identical at any job count"},
    {"BGPSIM_WORKERS", "BGPSIM_JOBS",
     "worker processes for run_campaign; campaign results are bit-identical "
     "at any worker count"},
    {"BGPSIM_TRIALS", "per bench", "trials per bench data point"},
    {"BGPSIM_FULL", "0", "1 = benches sweep the paper's full size range"},
    {"BGPSIM_CSV", "0", "1 = benches append CSV dumps after each table"},
    {"BGPSIM_JSON", "unset",
     "directory for BENCH_<bench>.json artifacts (schema bgpsim-bench-1)"},
    {"BGPSIM_FUZZ_ITERS", "100", "fuzz_scenarios default iteration count"},
    {"BGPSIM_SNAP_CACHE", "32",
     "prelude-cache capacity in snapshots; 0 disables warm-start caching"},
    {"BGPSIM_PATH_INTERN", "1",
     "per-experiment AS-path interning (bgp::PathStore); 0 = plain "
     "structural sharing, for A/B digest checks"},
    {"BGPSIM_TIMER_WHEEL", "1",
     "hierarchical timer-wheel scheduler with batched same-tick MRAI "
     "delivery; 0 = (time, seq) binary heap, for A/B digest checks"},
    {"BGPSIM_DATAPLANE_RINGS", "1",
     "per-tick FIFO ring hop store in the data plane with batched "
     "per-(node, prefix) FIB decisions; 0 = (time, seq) binary-heap hop "
     "store, for A/B digest checks"},
    {"BGPSIM_PREFIXES", "256",
     "prefix-count cap for the multi-prefix bench sweep; sweep points "
     "above the cap are skipped"},
    {"BGPSIM_POLICY_SIZES", "1000,10000",
     "comma-separated AS-graph node counts for the policy-scale bench; "
     "the default grows by 75000 under BGPSIM_FULL=1"},
    {"BGPSIM_JOURNAL_DIR", "unset",
     "directory where bgpsimd and run_campaign --journal place campaign "
     "journals when given a bare file name instead of a path"},
    {"BGPSIM_ADMIN_SOCK", "unset",
     "default unix-socket path for the bgpsimd admin interface "
     "(STATUS/SUBMIT/CANCEL), used by bgpsimd and campaign_ctl when "
     "--admin is not given"},
};

}  // namespace

std::span<const Knob> registry() { return kRegistry; }

std::size_t u64_or(const char* name, std::size_t fallback) {
  return sim::env_u64_or(name, fallback);
}

std::size_t jobs() {
  return sim::env_u64_or("BGPSIM_JOBS", sim::ThreadPool::default_workers());
}

std::size_t workers() { return sim::env_u64_or("BGPSIM_WORKERS", jobs()); }

std::size_t trials(std::size_t fallback) {
  return sim::env_u64_or("BGPSIM_TRIALS", fallback);
}

bool full_run() { return sim::env_u64_or("BGPSIM_FULL", 0) != 0; }

bool csv() { return sim::env_u64_or("BGPSIM_CSV", 0) != 0; }

const char* json_dir() { return sim::env_raw("BGPSIM_JSON"); }

std::size_t fuzz_iters(std::size_t fallback) {
  return sim::env_u64_or("BGPSIM_FUZZ_ITERS", fallback);
}

std::size_t snap_cache_capacity() {
  return sim::env_u64_or("BGPSIM_SNAP_CACHE", 32);
}

std::size_t prefixes_cap() {
  const std::size_t v = sim::env_u64_or("BGPSIM_PREFIXES", 256);
  return v == 0 ? 1 : v;
}

bool path_interning() {
  return sim::env_u64_or("BGPSIM_PATH_INTERN", 1) != 0;
}

bool timer_wheel() { return sim::env_u64_or("BGPSIM_TIMER_WHEEL", 1) != 0; }

bool dataplane_rings() {
  return sim::env_u64_or("BGPSIM_DATAPLANE_RINGS", 1) != 0;
}

const char* journal_dir() { return sim::env_raw("BGPSIM_JOURNAL_DIR"); }

const char* admin_sock() { return sim::env_raw("BGPSIM_ADMIN_SOCK"); }

std::vector<std::size_t> policy_sizes() {
  std::vector<std::size_t> fallback{1000, 10000};
  if (full_run()) fallback.push_back(75000);
  const char* raw = sim::env_raw("BGPSIM_POLICY_SIZES");
  if (raw == nullptr) return fallback;
  std::vector<std::size_t> sizes;
  const std::string_view sv{raw};
  for (std::size_t pos = 0; pos <= sv.size();) {
    const std::size_t comma = std::min(sv.find(',', pos), sv.size());
    const std::string_view tok = sv.substr(pos, comma - pos);
    std::size_t value = 0;
    const auto [end, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || end != tok.data() + tok.size() || value == 0) {
      std::fprintf(stderr,
                   "bgpsim: BGPSIM_POLICY_SIZES=\"%s\" is not a "
                   "comma-separated list of node counts; using the default\n",
                   raw);
      return fallback;
    }
    sizes.push_back(value);
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace bgpsim::core::env

namespace bgpsim::core::detail {

namespace {
// -1 = not yet resolved (fall back to the env knob on first read).
std::atomic<int> g_path_interning{-1};
}  // namespace

bool path_interning_enabled() {
  const int v = g_path_interning.load(std::memory_order_acquire);
  if (v >= 0) return v != 0;
  return env::path_interning();
}

void set_path_interning(bool on) {
  g_path_interning.store(on ? 1 : 0, std::memory_order_release);
}

// The queue-backend toggle lives in sim/ (Simulator construction reads it
// below core in the layer stack); the guard just drives it and restores
// the exact previous override, -1 (env fallback) included.
TimerWheelGuard::TimerWheelGuard(bool on)
    : prev_{sim::queue_backend_override()} {
  sim::set_queue_backend_override(on ? 1 : 0);
}

TimerWheelGuard::~TimerWheelGuard() { sim::set_queue_backend_override(prev_); }

// Same shape for the data-plane hop store: the toggle lives in fwd/
// (DataPlaneOptions resolves it at construction), the guard drives it and
// restores the exact previous override, -1 (env fallback) included.
DataPlaneRingsGuard::DataPlaneRingsGuard(bool on)
    : prev_{fwd::plane_backend_override()} {
  fwd::set_plane_backend_override(on ? 1 : 0);
}

DataPlaneRingsGuard::~DataPlaneRingsGuard() {
  fwd::set_plane_backend_override(prev_);
}

}  // namespace bgpsim::core::detail
