#include "core/scenario.hpp"

#include <stdexcept>

#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::core {

net::Topology TopologySpec::build() const {
  switch (kind) {
    case TopologyKind::kClique:
      return topo::make_clique(size);
    case TopologyKind::kBClique:
      return topo::make_bclique(size);
    case TopologyKind::kChain:
      return topo::make_chain(size);
    case TopologyKind::kRing:
      return topo::make_ring(size);
    case TopologyKind::kInternet:
      return topo::make_internet_preset(size, topo_seed);
  }
  throw std::logic_error{"TopologySpec::build: unknown kind"};
}

std::string TopologySpec::label() const {
  return std::string{to_string(kind)} + "-" + std::to_string(size);
}

std::string Scenario::label() const {
  std::string label = topology.label() + " " + to_string(event) + " " +
                      [this] {
                        if (bgp.ssld) return "SSLD";
                        if (bgp.wrate) return "WRATE";
                        if (bgp.assertion) return "Assertion";
                        if (bgp.ghost_flushing) return "GhostFlush";
                        return "BGP";
                      }();
  if (policy_routing) label += " (policy)";
  return label;
}

}  // namespace bgpsim::core
