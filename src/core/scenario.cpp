#include "core/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "topo/generators.hpp"
#include "topo/internet.hpp"
#include "topo/io.hpp"

namespace bgpsim::core {

net::Topology TopologySpec::build() const {
  switch (kind) {
    case TopologyKind::kClique:
      return topo::make_clique(size);
    case TopologyKind::kBClique:
      return topo::make_bclique(size);
    case TopologyKind::kChain:
      return topo::make_chain(size);
    case TopologyKind::kRing:
      return topo::make_ring(size);
    case TopologyKind::kInternet:
      return topo::make_internet_preset(size, topo_seed);
    case TopologyKind::kAsGraph:
    case TopologyKind::kRelFile:
      return build_annotated().topology;
  }
  throw std::logic_error{"TopologySpec::build: unknown kind"};
}

topo::AnnotatedTopology TopologySpec::build_annotated() const {
  switch (kind) {
    case TopologyKind::kInternet: {
      topo::InternetParams p;
      p.nodes = size;
      p.seed = topo_seed;
      return topo::make_internet_annotated(p);
    }
    case TopologyKind::kAsGraph: {
      topo::AsGraphParams p;
      p.nodes = size;
      p.seed = topo_seed;
      return topo::make_as_graph(p);
    }
    case TopologyKind::kRelFile: {
      if (rel_file.empty()) {
        throw std::invalid_argument{
            "TopologySpec::build_annotated: kRelFile needs rel_file"};
      }
      auto g = topo::load_as_relationships(rel_file);
      return topo::AnnotatedTopology{std::move(g.topology),
                                     std::move(g.relationships)};
    }
    default:
      throw std::invalid_argument{
          "TopologySpec::build_annotated: topology kind '" +
          std::string{to_string(kind)} + "' has no relationship table"};
  }
}

std::string TopologySpec::label() const {
  if (kind == TopologyKind::kRelFile) {
    // The file decides the node count; name the input instead of a size.
    const auto slash = rel_file.find_last_of('/');
    const auto base =
        slash == std::string::npos ? rel_file : rel_file.substr(slash + 1);
    return std::string{to_string(kind)} + "-" + base;
  }
  return std::string{to_string(kind)} + "-" + std::to_string(size);
}

std::string Scenario::label() const {
  std::string label = topology.label() + " " + to_string(event) + " " +
                      [this] {
                        if (bgp.ssld) return "SSLD";
                        if (bgp.wrate) return "WRATE";
                        if (bgp.assertion) return "Assertion";
                        if (bgp.ghost_flushing) return "GhostFlush";
                        return "BGP";
                      }();
  if (policy_routing) label += " (policy)";
  if (prefixes > 1) label += " x" + std::to_string(prefixes) + "pfx";
  return label;
}

}  // namespace bgpsim::core
