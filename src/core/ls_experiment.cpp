#include "core/ls_experiment.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/selection.hpp"
#include "core/snap_support.hpp"
#include "fwd/engine.hpp"
#include "fwd/traffic.hpp"
#include "ls/network.hpp"
#include "metrics/collector.hpp"
#include "metrics/loop_detector.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim::core {
namespace {

constexpr net::Prefix kPrefix = 0;

snap::Snapshot capture_ls(const sim::Simulator& simulator,
                          const ls::LsNetwork& network,
                          const fwd::DataPlane& plane,
                          const fwd::TrafficGenerator& traffic,
                          const metrics::Collector& collector,
                          std::uint64_t topology_hash,
                          std::uint64_t config_hash, std::uint64_t seed,
                          net::NodeId destination, bool originated,
                          bool quiescent) {
  snap::Writer w;
  detail::save_run_state(w, simulator, network, plane, traffic, collector);
  snap::SnapshotMeta meta;
  meta.driver = snap::DriverKind::kLs;
  meta.topology_hash = topology_hash;
  meta.config_hash = config_hash;
  meta.seed = seed;
  meta.destination = destination;
  meta.originated = originated;
  meta.quiescent = quiescent;
  meta.sim_time = simulator.now();
  return snap::Snapshot{std::move(meta), std::move(w).take()};
}

void restore_ls(const snap::Snapshot& snapshot, sim::Simulator& simulator,
                ls::LsNetwork& network, fwd::DataPlane& plane,
                fwd::TrafficGenerator& traffic,
                metrics::Collector& collector) {
  snap::Reader r{snapshot.payload()};
  detail::restore_run_state(r, simulator, network, plane, traffic, collector);
  r.finish();
}

}  // namespace

std::uint64_t ls_prelude_hash(const LsScenario& scenario) {
  snap::Hasher h;
  h.mix(static_cast<std::uint64_t>(scenario.topology.kind));
  h.mix(scenario.topology.size);
  h.mix(scenario.topology.topo_seed);
  h.mix_time(scenario.ls.spf_delay_lo);
  h.mix_time(scenario.ls.spf_delay_hi);
  h.mix_time(scenario.processing.min);
  h.mix_time(scenario.processing.max);
  h.mix(scenario.destination.value_or(net::kInvalidNode));
  h.mix(scenario.event != EventKind::kTup ? 1 : 0);
  const bool link_filter = scenario.topology.kind == TopologyKind::kInternet &&
                           !scenario.destination &&
                           scenario.event == EventKind::kTlong;
  h.mix(link_filter ? 1 : 0);
  return h.value();
}

ExperimentOutcome run_ls_experiment(const LsScenario& scenario) {
  if (scenario.settle_margin <= scenario.traffic_lead) {
    throw std::invalid_argument{
        "LsScenario: settle_margin must exceed traffic_lead"};
  }
  if (scenario.event == EventKind::kFlap) {
    throw std::invalid_argument{
        "LsScenario: flap event is not supported by the LS baseline"};
  }

  net::Topology topo = scenario.topology.build();
  sim::Rng root{scenario.seed};
  sim::Rng scenario_rng = root.child("scenario");

  const net::NodeId destination =
      choose_destination(scenario.topology.kind, scenario.event,
                         scenario.destination, topo, scenario_rng);
  std::optional<net::LinkId> failed_link;
  if (scenario.event == EventKind::kTlong) {
    failed_link =
        choose_tlong_link(scenario.topology.kind, scenario.topology.size,
                          scenario.tlong_link, topo, destination,
                          scenario_rng);
  }

  sim::Simulator simulator;
  ls::LsNetwork network{simulator, topo, scenario.ls, scenario.processing,
                        root};
  metrics::Collector collector;
  network.set_hooks(ls::LsSpeaker::Hooks{
      .on_lsa_sent =
          [&](net::NodeId, net::NodeId, const ls::Lsa&) {
            collector.note_update_sent(simulator.now(), false);
          },
      .on_route_changed = nullptr,
  });

  fwd::DataPlane plane{simulator, topo, network.fibs(),
                       fwd::DataPlaneOptions::single(destination)};
  plane.set_fate_sink(&collector);

  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(simulator, network.fibs(), kPrefix);

  fwd::TrafficGenerator traffic{simulator, plane, scenario.traffic,
                                root.child("traffic")};
  traffic.set_send_hook([&](net::NodeId, net::Prefix, sim::SimTime when) {
    collector.note_packet_sent(when);
  });

  // ---- Phase 1: bring-up + cold-start convergence, or warm start --------
  const std::uint64_t topology_hash = snap::hash_topology(topo);
  const std::uint64_t config_hash = ls_prelude_hash(scenario);
  const bool prelude_originated = scenario.event != EventKind::kTup;

  if (scenario.warm_start) {
    detail::require_meta_match(scenario.warm_start->meta(),
                               snap::DriverKind::kLs, topology_hash,
                               config_hash, scenario.seed, destination,
                               prelude_originated);
    restore_ls(*scenario.warm_start, simulator, network, plane, traffic,
               collector);
    const snap::Snapshot echo =
        capture_ls(simulator, network, plane, traffic, collector,
                   topology_hash, config_hash, scenario.seed, destination,
                   prelude_originated, /*quiescent=*/true);
    if (echo.content_hash() != scenario.warm_start->content_hash()) {
      throw std::runtime_error{
          "ls warm start restore is not bit-exact: restored state "
          "re-serializes to a different content hash"};
    }
  } else {
    simulator.schedule_at(sim::SimTime::zero(), [&] {
      network.start_all();
      if (prelude_originated) {
        network.originate(destination, kPrefix);
      }
    });
    simulator.run_until(scenario.max_sim_time);
    if (simulator.pending() > 0 || network.busy()) {
      throw std::runtime_error{"ls initial convergence exceeded max_sim_time"};
    }
  }
  const double initial_convergence_s = simulator.now().as_seconds();

  if (scenario.save_converged) {
    *scenario.save_converged =
        capture_ls(simulator, network, plane, traffic, collector,
                   topology_hash, config_hash, scenario.seed, destination,
                   prelude_originated, /*quiescent=*/true);
  }

  // ---- Phase 2: traffic + event + convergence -------------------------
  const sim::SimTime t_event = simulator.now() + scenario.settle_margin;
  const sim::SimTime t_traffic = t_event - scenario.traffic_lead;

  std::vector<net::NodeId> sources;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (n != destination) sources.push_back(n);
  }
  traffic.start(sources, t_traffic);

  simulator.schedule_at(t_event, [&] {
    detector.clear_history();
    switch (scenario.event) {
      case EventKind::kTdown:
        network.inject_tdown(destination, kPrefix);
        break;
      case EventKind::kTlong:
        network.inject_link_failure(*failed_link);
        break;
      case EventKind::kTup:
        network.originate(destination, kPrefix);
        break;
      case EventKind::kFlap:
        break;  // rejected up front
    }
  });

  // Mid-run serialize/deserialize probe (see Scenario::snap_roundtrip).
  if (scenario.snap_roundtrip != SnapRoundtrip::kOff) {
    simulator.schedule_at(t_event + scenario.snap_roundtrip_after, [&] {
      if (scenario.snap_roundtrip != SnapRoundtrip::kVerify) return;
      const snap::Snapshot before =
          capture_ls(simulator, network, plane, traffic, collector,
                     topology_hash, config_hash, scenario.seed, destination,
                     prelude_originated, /*quiescent=*/false);
      restore_ls(before, simulator, network, plane, traffic, collector);
      const snap::Snapshot after =
          capture_ls(simulator, network, plane, traffic, collector,
                     topology_hash, config_hash, scenario.seed, destination,
                     prelude_originated, /*quiescent=*/false);
      if (before.content_hash() != after.content_hash()) {
        throw std::runtime_error{
            "ls snapshot round-trip diverged mid-run: in-place restore did "
            "not reproduce the saved state byte-for-byte"};
      }
    });
  }

  bool timed_out = false;
  const auto drain = sim::SimTime::seconds(2);
  std::function<void()> poll = [&] {
    if (!network.busy()) {
      traffic.stop();
      simulator.schedule_after(drain, [&] { simulator.clear_pending(); });
      return;
    }
    if (simulator.now() >= scenario.max_sim_time) {
      timed_out = true;
      simulator.clear_pending();
      return;
    }
    simulator.schedule_after(sim::SimTime::seconds(1), poll);
  };
  simulator.schedule_at(t_event + sim::SimTime::seconds(1), poll);

  simulator.run_until(scenario.max_sim_time + sim::SimTime::seconds(10));
  if (timed_out || simulator.pending() > 0) {
    throw std::runtime_error{"ls scenario did not converge in max_sim_time"};
  }

  const sim::SimTime end = simulator.now();
  detector.finalize(end);

  // ---- Metrics ---------------------------------------------------------
  ExperimentOutcome out;
  out.destination = destination;
  out.failed_link = failed_link;
  out.initial_convergence_s = initial_convergence_s;
  out.events_fired = simulator.events_fired();

  metrics::RunMetrics& m = out.metrics;
  m.event_at = t_event;
  const auto last_update = collector.last_update_at(t_event);
  m.last_update_at = last_update.value_or(t_event);
  m.convergence_time_s = (m.last_update_at - t_event).as_seconds();

  const auto first_exh = collector.first_exhaustion(t_event);
  const auto last_exh = collector.last_exhaustion(t_event);
  m.first_exhaustion_at = first_exh.value_or(t_event);
  m.last_exhaustion_at = last_exh.value_or(t_event);
  m.looping_duration_s =
      first_exh ? (m.last_exhaustion_at - m.first_exhaustion_at).as_seconds()
                : 0.0;

  m.ttl_exhaustions = collector.exhaustions_since(t_event);
  m.packets_sent_during_convergence =
      collector.packets_sent_in(t_event, m.last_update_at);
  m.looping_ratio =
      m.packets_sent_during_convergence == 0
          ? 0.0
          : static_cast<double>(m.ttl_exhaustions) /
                static_cast<double>(m.packets_sent_during_convergence);

  m.packets_sent_total = collector.packets_sent_total();
  m.packets_delivered = collector.delivered_total();
  m.packets_no_route = collector.no_route_total();
  m.packets_link_down = collector.link_down_total();
  m.updates_sent = collector.updates_sent_since(t_event);
  m.updates_sent_total = collector.updates_sent_total();

  const auto profile_end = m.last_update_at + sim::SimTime::seconds(1);
  m.update_activity_1s =
      collector.update_activity(t_event, profile_end, sim::SimTime::seconds(1));
  m.exhaustion_activity_1s = collector.exhaustion_activity(
      t_event, profile_end, sim::SimTime::seconds(1));

  m.loops = detector.records();
  m.loops_formed = m.loops.size();
  m.loop_stats = metrics::analyze_loops(m.loops, end);
  if (!m.loops.empty()) {
    double size_sum = 0;
    for (const auto& loop : m.loops) {
      size_sum += static_cast<double>(loop.size());
      m.max_loop_size = std::max(m.max_loop_size, loop.size());
      m.max_loop_duration_s =
          std::max(m.max_loop_duration_s, loop.duration_seconds(end));
    }
    m.mean_loop_size = size_sum / static_cast<double>(m.loops.size());
  }
  return out;
}

}  // namespace bgpsim::core
