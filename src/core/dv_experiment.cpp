#include "core/dv_experiment.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "check/oracle.hpp"
#include "core/selection.hpp"
#include "core/snap_support.hpp"
#include "dv/network.hpp"
#include "fwd/engine.hpp"
#include "fwd/traffic.hpp"
#include "metrics/collector.hpp"
#include "metrics/loop_detector.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim::core {
namespace {

constexpr net::Prefix kPrefix = 0;

/// Capture the DV run state: the common substrate plus the driver's local
/// stability clock and origin flag.
snap::Snapshot capture_dv(const sim::Simulator& simulator,
                          const dv::DvNetwork& network,
                          const fwd::DataPlane& plane,
                          const fwd::TrafficGenerator& traffic,
                          const metrics::Collector& collector,
                          sim::SimTime last_change, bool origin_up,
                          std::uint64_t topology_hash,
                          std::uint64_t config_hash, std::uint64_t seed,
                          net::NodeId destination, bool originated,
                          bool quiescent) {
  snap::Writer w;
  detail::save_run_state(w, simulator, network, plane, traffic, collector);
  w.time(last_change);
  w.b(origin_up);
  snap::SnapshotMeta meta;
  meta.driver = snap::DriverKind::kDv;
  meta.topology_hash = topology_hash;
  meta.config_hash = config_hash;
  meta.seed = seed;
  meta.destination = destination;
  meta.originated = originated;
  meta.quiescent = quiescent;
  meta.sim_time = simulator.now();
  return snap::Snapshot{std::move(meta), std::move(w).take()};
}

void restore_dv(const snap::Snapshot& snapshot, sim::Simulator& simulator,
                dv::DvNetwork& network, fwd::DataPlane& plane,
                fwd::TrafficGenerator& traffic, metrics::Collector& collector,
                sim::SimTime& last_change, bool& origin_up) {
  snap::Reader r{snapshot.payload()};
  detail::restore_run_state(r, simulator, network, plane, traffic, collector);
  last_change = r.time();
  origin_up = r.b();
  r.finish();
}

}  // namespace

std::uint64_t dv_prelude_hash(const DvScenario& scenario) {
  snap::Hasher h;
  h.mix(static_cast<std::uint64_t>(scenario.topology.kind));
  h.mix(scenario.topology.size);
  h.mix(scenario.topology.topo_seed);
  h.mix(static_cast<std::uint64_t>(scenario.dv.infinity));
  h.mix((scenario.dv.split_horizon ? 1U : 0U) |
        (scenario.dv.poison_reverse ? 2U : 0U) |
        (scenario.dv.triggered ? 4U : 0U));
  h.mix_time(scenario.dv.triggered_delay_lo);
  h.mix_time(scenario.dv.triggered_delay_hi);
  h.mix_time(scenario.dv.periodic);
  h.mix_time(scenario.processing.min);
  h.mix_time(scenario.processing.max);
  h.mix(scenario.destination.value_or(net::kInvalidNode));
  h.mix(scenario.event != EventKind::kTup ? 1 : 0);
  const bool link_filter = scenario.topology.kind == TopologyKind::kInternet &&
                           !scenario.destination &&
                           scenario.event == EventKind::kTlong;
  h.mix(link_filter ? 1 : 0);
  return h.value();
}

ExperimentOutcome run_dv_experiment(const DvScenario& scenario) {
  if (scenario.settle_margin <= scenario.traffic_lead) {
    throw std::invalid_argument{
        "DvScenario: settle_margin must exceed traffic_lead"};
  }
  if (scenario.dv.periodic == sim::SimTime::zero() && !scenario.dv.triggered) {
    throw std::invalid_argument{
        "DvScenario: need triggered updates, periodic refresh, or both"};
  }
  if (scenario.event == EventKind::kFlap) {
    // Flap needs session-restoration semantics; the RIP baseline has no
    // notion of a session, and triggered-only DV would never relearn the
    // restored link.
    throw std::invalid_argument{
        "DvScenario: flap event is not supported by the DV baseline"};
  }

  net::Topology topo = scenario.topology.build();
  sim::Rng root{scenario.seed};
  sim::Rng scenario_rng = root.child("scenario");

  const net::NodeId destination =
      choose_destination(scenario.topology.kind, scenario.event,
                         scenario.destination, topo, scenario_rng);
  std::optional<net::LinkId> failed_link;
  if (scenario.event == EventKind::kTlong) {
    failed_link =
        choose_tlong_link(scenario.topology.kind, scenario.topology.size,
                          scenario.tlong_link, topo, destination,
                          scenario_rng);
  }

  sim::Simulator simulator;
  dv::DvNetwork network{simulator, topo, scenario.dv, scenario.processing,
                        root};
  check::Oracle* oracle = scenario.oracle;
  if (oracle) {
    // Default BgpConfig: only topology/prefix/destination matter to the
    // DV-applicable invariants (see DvScenario::oracle).
    oracle->arm(check::Context{&topo, {}, kPrefix, destination,
                               /*policy_routing=*/false});
  }
  metrics::Collector collector;
  // Stability clock: the last time any route table changed anywhere.
  sim::SimTime last_change = sim::SimTime::zero();
  network.set_hooks(dv::DvSpeaker::Hooks{
      .on_update_sent =
          [&](net::NodeId, net::NodeId, const dv::DvUpdate&) {
            collector.note_update_sent(simulator.now(), false);
          },
      .on_route_changed =
          [&](net::NodeId, net::Prefix, std::optional<int>) {
            last_change = simulator.now();
          },
  });

  // With periodic refresh the network is "stable" once two whole refresh
  // cycles (plus triggered/processing slack) pass without a table change.
  const sim::SimTime stability_window =
      scenario.dv.periodic > sim::SimTime::zero()
          ? 2 * scenario.dv.periodic + sim::SimTime::seconds(10)
          : scenario.dv.triggered_delay_hi + sim::SimTime::seconds(10);
  const bool has_periodic = scenario.dv.periodic > sim::SimTime::zero();
  const auto stable = [&] {
    if (!has_periodic) return !network.busy();  // triggered-only: drains
    return simulator.now() - last_change > stability_window;
  };

  fwd::DataPlane plane{simulator, topo, network.fibs(),
                       fwd::DataPlaneOptions::single(destination)};
  plane.set_fate_sink(&collector);

  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(simulator, network.fibs(), kPrefix);
  // After attach: the detector replaces all FIB observers, the oracle
  // subscribes alongside it.
  if (oracle) oracle->observe_fibs(simulator, network.fibs());

  // DV has no Loc-RIB paths, so the view exposes only forwarding state;
  // the reference check then verifies loop-freedom and distance-decreasing
  // next hops but skips the AS-path shape checks.
  bool origin_up = scenario.event != EventKind::kTup;
  const auto quiescent_view = [&]() -> check::QuiescentView {
    check::QuiescentView view;
    view.fib_next_hop = [&](net::NodeId n) {
      return network.fibs()[n].next_hop(kPrefix);
    };
    view.origin_up = origin_up;
    return view;
  };

  fwd::TrafficGenerator traffic{simulator, plane, scenario.traffic,
                                root.child("traffic")};
  traffic.set_send_hook([&](net::NodeId, net::Prefix, sim::SimTime when) {
    collector.note_packet_sent(when);
  });

  // ---- Phase 1: cold-start convergence or warm start --------------------
  // Fresh-graph checkpoints need an *empty* event queue, which periodic
  // refresh never allows — the converged-prelude hooks are triggered-only.
  if ((scenario.warm_start || scenario.save_converged) && has_periodic) {
    throw std::invalid_argument{
        "DvScenario: warm_start/save_converged require triggered-only mode "
        "(dv.periodic == 0); periodic refresh keeps the event queue busy"};
  }
  const std::uint64_t topology_hash = snap::hash_topology(topo);
  const std::uint64_t config_hash = dv_prelude_hash(scenario);
  const bool prelude_originated = scenario.event != EventKind::kTup;

  if (scenario.warm_start) {
    detail::require_meta_match(scenario.warm_start->meta(),
                               snap::DriverKind::kDv, topology_hash,
                               config_hash, scenario.seed, destination,
                               prelude_originated);
    restore_dv(*scenario.warm_start, simulator, network, plane, traffic,
               collector, last_change, origin_up);
    const snap::Snapshot echo =
        capture_dv(simulator, network, plane, traffic, collector, last_change,
                   origin_up, topology_hash, config_hash, scenario.seed,
                   destination, prelude_originated, /*quiescent=*/true);
    if (oracle) {
      oracle->on_restored(scenario.warm_start->content_hash(),
                          echo.content_hash(), simulator.now());
    } else if (echo.content_hash() != scenario.warm_start->content_hash()) {
      throw std::runtime_error{
          "dv warm start restore is not bit-exact: restored state "
          "re-serializes to a different content hash"};
    }
  } else {
    if (prelude_originated) {
      simulator.schedule_at(sim::SimTime::zero(),
                            [&] { network.originate(destination, kPrefix); });
    }
    // Run until the tables stabilize (bounded by max_sim_time).
    sim::SimTime horizon = stability_window + sim::SimTime::seconds(30);
    while (horizon < scenario.max_sim_time) {
      simulator.run_until(horizon);
      if (stable()) break;
      horizon += stability_window;
    }
    if (!stable()) {
      throw std::runtime_error{"dv initial convergence exceeded max_sim_time"};
    }
  }
  const double initial_convergence_s = last_change.as_seconds();
  if (oracle) oracle->at_quiescence(quiescent_view(), simulator.now());

  if (scenario.save_converged) {
    if (simulator.pending() > 0) {
      throw std::runtime_error{
          "dv save_converged: event queue not empty at stability"};
    }
    *scenario.save_converged =
        capture_dv(simulator, network, plane, traffic, collector, last_change,
                   origin_up, topology_hash, config_hash, scenario.seed,
                   destination, prelude_originated, /*quiescent=*/true);
  }

  // ---- Phase 2: traffic + event + convergence -------------------------
  const sim::SimTime t_event = simulator.now() + scenario.settle_margin;
  const sim::SimTime t_traffic = t_event - scenario.traffic_lead;

  std::vector<net::NodeId> sources;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    if (n != destination) sources.push_back(n);
  }
  traffic.start(sources, t_traffic);

  simulator.schedule_at(t_event, [&] {
    detector.clear_history();
    last_change = simulator.now();
    switch (scenario.event) {
      case EventKind::kTdown:
        network.inject_tdown(destination, kPrefix);
        origin_up = false;
        break;
      case EventKind::kTlong:
        network.inject_link_failure(*failed_link);
        break;
      case EventKind::kTup:
        network.originate(destination, kPrefix);
        origin_up = true;
        break;
      case EventKind::kFlap:
        break;  // rejected up front
    }
  });

  // Mid-run serialize/deserialize probe (see Scenario::snap_roundtrip).
  // In-place restores work with periodic refresh too: scheduled events
  // stay in the queue untouched.
  if (scenario.snap_roundtrip != SnapRoundtrip::kOff) {
    simulator.schedule_at(t_event + scenario.snap_roundtrip_after, [&] {
      if (scenario.snap_roundtrip != SnapRoundtrip::kVerify) return;
      const snap::Snapshot before =
          capture_dv(simulator, network, plane, traffic, collector,
                     last_change, origin_up, topology_hash, config_hash,
                     scenario.seed, destination, prelude_originated,
                     /*quiescent=*/false);
      restore_dv(before, simulator, network, plane, traffic, collector,
                 last_change, origin_up);
      const snap::Snapshot after =
          capture_dv(simulator, network, plane, traffic, collector,
                     last_change, origin_up, topology_hash, config_hash,
                     scenario.seed, destination, prelude_originated,
                     /*quiescent=*/false);
      if (before.content_hash() != after.content_hash()) {
        if (oracle) {
          oracle->on_restored(before.content_hash(), after.content_hash(),
                              simulator.now());
        }
        throw std::runtime_error{
            "dv snapshot round-trip diverged mid-run: in-place restore did "
            "not reproduce the saved state byte-for-byte"};
      }
    });
  }

  bool timed_out = false;
  bool done = false;
  const auto drain = sim::SimTime::seconds(2);
  std::function<void()> poll = [&] {
    if (stable()) {
      done = true;
      traffic.stop();
      simulator.schedule_after(drain, [&] { simulator.clear_pending(); });
      return;
    }
    if (simulator.now() >= scenario.max_sim_time) {
      timed_out = true;
      simulator.clear_pending();
      return;
    }
    simulator.schedule_after(sim::SimTime::seconds(2), poll);
  };
  simulator.schedule_at(t_event + sim::SimTime::seconds(2), poll);

  simulator.run_until(scenario.max_sim_time + sim::SimTime::seconds(10));
  if (timed_out || !done) {
    throw std::runtime_error{"dv scenario did not converge in max_sim_time"};
  }

  const sim::SimTime end = simulator.now();
  detector.finalize(end);
  if (oracle) oracle->at_quiescence(quiescent_view(), end);

  // ---- Metrics (same definitions; DV clock = last table change) --------
  ExperimentOutcome out;
  out.destination = destination;
  out.failed_link = failed_link;
  out.initial_convergence_s = initial_convergence_s;
  out.events_fired = simulator.events_fired();

  metrics::RunMetrics& m = out.metrics;
  m.event_at = t_event;
  m.last_update_at = std::max(last_change, t_event);
  m.convergence_time_s = (m.last_update_at - t_event).as_seconds();

  const auto first_exh = collector.first_exhaustion(t_event);
  const auto last_exh = collector.last_exhaustion(t_event);
  m.first_exhaustion_at = first_exh.value_or(t_event);
  m.last_exhaustion_at = last_exh.value_or(t_event);
  m.looping_duration_s =
      first_exh ? (m.last_exhaustion_at - m.first_exhaustion_at).as_seconds()
                : 0.0;

  m.ttl_exhaustions = collector.exhaustions_since(t_event);
  m.packets_sent_during_convergence =
      collector.packets_sent_in(t_event, m.last_update_at);
  m.looping_ratio =
      m.packets_sent_during_convergence == 0
          ? 0.0
          : static_cast<double>(m.ttl_exhaustions) /
                static_cast<double>(m.packets_sent_during_convergence);

  m.packets_sent_total = collector.packets_sent_total();
  m.packets_delivered = collector.delivered_total();
  m.packets_no_route = collector.no_route_total();
  m.packets_link_down = collector.link_down_total();
  m.updates_sent = collector.updates_sent_since(t_event);
  m.updates_sent_total = collector.updates_sent_total();

  const auto profile_end = m.last_update_at + sim::SimTime::seconds(1);
  m.update_activity_1s =
      collector.update_activity(t_event, profile_end, sim::SimTime::seconds(1));
  m.exhaustion_activity_1s = collector.exhaustion_activity(
      t_event, profile_end, sim::SimTime::seconds(1));

  m.loops = detector.records();
  m.loops_formed = m.loops.size();
  m.loop_stats = metrics::analyze_loops(m.loops, end);
  if (!m.loops.empty()) {
    double size_sum = 0;
    for (const auto& loop : m.loops) {
      size_sum += static_cast<double>(loop.size());
      m.max_loop_size = std::max(m.max_loop_size, loop.size());
      m.max_loop_duration_s =
          std::max(m.max_loop_duration_s, loop.duration_seconds(end));
    }
    m.mean_loop_size = size_sum / static_cast<double>(m.loops.size());
  }
  return out;
}

}  // namespace bgpsim::core
