// Deterministic scenario fuzzer.
//
// Each iteration derives one 64-bit scenario seed, expands it into a full
// Scenario (topology family and size, event, MRAI, jitter, enhancement,
// caution, flap interval — all drawn from the seed and nothing else), runs
// it with the invariant oracle armed (check/oracle.hpp), and folds the
// outcome into a campaign digest. The same campaign seed therefore always
// produces the same scenarios, the same verdicts, and the same digest; a
// failing iteration is reproduced exactly by replaying its scenario seed
// (`fuzz_scenarios --replay <seed>`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/scenario.hpp"

namespace bgpsim::core {

struct FuzzOptions {
  /// Campaign seed. Iteration i runs fuzz_scenario(fuzz_scenario_seed(seed, i)).
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  /// Print a one-line outcome per iteration (failures always print).
  bool verbose = false;
  /// Failure / progress sink; null = silent.
  std::ostream* out = nullptr;
  /// Oracle factory, one fresh oracle per iteration. Default:
  /// check::Oracle::standard(). Tests inject canary invariants here.
  std::function<check::Oracle()> make_oracle;
  /// Snapshot round-trip checking: run every iteration twice — once with a
  /// no-op probe scheduled mid-run and once where that probe serializes,
  /// restores, and re-serializes the full simulation in place
  /// (Scenario::snap_roundtrip) — and fail the iteration if the two passes'
  /// fingerprints differ. The probe offset is seed-derived, so a divergence
  /// reproduces exactly via --replay.
  bool snap_check = false;
  /// Scheduler differential checking: re-run every clean iteration under
  /// the opposite event-queue backend (timer wheel vs binary heap, see
  /// BGPSIM_TIMER_WHEEL) and fail the iteration if the two executions'
  /// fingerprints differ. Composes with snap_check: the opposite-scheduler
  /// pass then carries the same no-op probe so event streams stay
  /// comparable. The reported digest is always the default-backend one, so
  /// a clean --wheel-check campaign prints the same digest as a plain run.
  bool wheel_check = false;
  /// Data-plane differential checking: re-run every clean iteration under
  /// the opposite hop-store backend (per-tick FIFO rings vs binary heap,
  /// see BGPSIM_DATAPLANE_RINGS) and fail the iteration if the two
  /// executions' fingerprints differ. Composes with snap_check and
  /// wheel_check the same way wheel_check does; the reported digest is
  /// always the default-backend one.
  bool dataplane_check = false;
  /// Multi-prefix fuzzing (opt-in): every scenario additionally draws a
  /// prefix count from {2, 4, 8, 16} and, half the time, a set of random
  /// extra origins — exercising the SoA RIB, batched decision processing,
  /// and per-prefix oracle paths. The extra draws are appended after the
  /// single-prefix draw sequence, so with this off every scenario (and the
  /// campaign digest) is unchanged.
  bool multiprefix = false;
};

/// One failing iteration: either armed invariants reported violations, the
/// run threw, or the oracle observed nothing at all (a vacuous run proves
/// nothing and is treated as a harness failure).
struct FuzzFailure {
  std::size_t iter = 0;
  std::uint64_t scenario_seed = 0;
  std::string label;  // Scenario::label() of the failing run
  std::vector<check::Violation> violations;
  std::string error;  // exception text; empty when the run completed

  [[nodiscard]] std::string to_string() const;
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::vector<FuzzFailure> failures;
  /// Order-sensitive digest over every iteration's outcome (seeds, metrics,
  /// verdicts). Two runs of the same campaign must print the same digest.
  std::uint64_t digest = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Scenario seed of campaign iteration `iter` — a pure function of
/// (campaign_seed, iter), independent of every other iteration.
[[nodiscard]] std::uint64_t fuzz_scenario_seed(std::uint64_t campaign_seed,
                                               std::uint64_t iter);

/// Expand one scenario seed into a runnable Scenario. Pure: no global
/// state, no entropy beyond the seed. Chain topologies never draw Tlong or
/// Flap (losing any chain link disconnects the destination). With
/// `multiprefix`, appends the prefix-count/origin draws (FuzzOptions::
/// multiprefix); false leaves the classic scenario untouched.
[[nodiscard]] Scenario fuzz_scenario(std::uint64_t scenario_seed,
                                     bool multiprefix = false);

/// Run one scenario seed with the oracle armed — the --replay entry point.
/// Returns the failure record, or nullopt if the run was clean.
[[nodiscard]] std::optional<FuzzFailure> replay_fuzz_scenario(
    std::uint64_t scenario_seed, const FuzzOptions& options = {});

/// Run a full campaign serially (one oracle is armed per iteration; runs
/// are cheap enough that determinism is worth more than parallelism here).
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace bgpsim::core
