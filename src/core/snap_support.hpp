// Internal checkpoint plumbing shared by the experiment drivers.
//
// Each driver's snapshot payload is: the simulator prologue (clock, fired
// count, event sequence), the network, the data plane, the traffic
// generator, and the metrics collector — in that order — optionally
// followed by driver-private extras. These helpers keep the common part in
// one place so the three drivers cannot drift apart byte-wise.
#pragma once

#include <stdexcept>
#include <string>

#include "fwd/engine.hpp"
#include "fwd/traffic.hpp"
#include "metrics/collector.hpp"
#include "sim/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim::core::detail {

/// Serialize the shared run state (prologue + substrate) into `w`. The
/// driver appends any extras afterwards.
template <typename Network>
void save_run_state(snap::Writer& w, const sim::Simulator& simulator,
                    const Network& network, const fwd::DataPlane& plane,
                    const fwd::TrafficGenerator& traffic,
                    const metrics::Collector& collector) {
  w.i64(simulator.now().as_micros());
  w.u64(simulator.events_fired());
  w.u64(simulator.event_seq());
  // v3: the live pending-event multiset as sorted (time µs, seq) pairs —
  // identical bytes under either queue backend (the wheel's batched
  // consumption permutes slot recycling, so slot/generation state is
  // deliberately excluded). The external slot is component-owned and
  // re-armed by its owner; it is not part of this list.
  const auto pending = simulator.pending_entries();
  w.u64(pending.size());
  for (const auto& [time_us, seq] : pending) {
    w.i64(time_us);
    w.u64(seq);
  }
  network.save_state(w);
  plane.save_state(w);
  traffic.save_state(w);
  collector.save_state(w);
}

/// Inverse of save_run_state. The driver reads its extras from `r` after
/// this returns, then calls r.finish().
template <typename Network>
void restore_run_state(snap::Reader& r, sim::Simulator& simulator,
                       Network& network, fwd::DataPlane& plane,
                       fwd::TrafficGenerator& traffic,
                       metrics::Collector& collector) {
  const sim::SimTime now = sim::SimTime::micros(r.i64());
  const std::uint64_t fired = r.u64();
  const std::uint64_t seq = r.u64();
  simulator.restore_clock(now, fired, seq);
  // Scheduled closures cannot be rebuilt from bytes, so the pending list
  // is verified, not restored: the live queue must already hold exactly
  // the recorded (time, seq) multiset — trivially true for a fresh
  // restore at quiescence (both empty) and for an in-place restore whose
  // closures never left the queue. A mismatch means the snapshot is being
  // fed to a simulator in a different scheduling state; diverging
  // silently here would corrupt determinism, so refuse loudly.
  const std::uint64_t n_pending = r.u64();
  const auto live = simulator.pending_entries();
  if (live.size() != n_pending) {
    throw std::runtime_error{
        "restore_run_state: snapshot records " + std::to_string(n_pending) +
        " pending events, the live queue holds " +
        std::to_string(live.size())};
  }
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const std::int64_t time_us = r.i64();
    const std::uint64_t seq_i = r.u64();
    if (live[i].first != time_us || live[i].second != seq_i) {
      throw std::runtime_error{
          "restore_run_state: pending event " + std::to_string(i) +
          " mismatch: snapshot (" + std::to_string(time_us) + " us, seq " +
          std::to_string(seq_i) + ") vs live (" +
          std::to_string(live[i].first) + " us, seq " +
          std::to_string(live[i].second) + ")"};
    }
  }
  network.restore_state(r);
  plane.restore_state(r);
  traffic.restore_state(r);
  collector.restore_state(r);
}

/// Refuse a warm start whose snapshot identity does not match the scenario
/// about to run. Every rejection is a precise std::invalid_argument.
inline void require_meta_match(const snap::SnapshotMeta& meta,
                               snap::DriverKind driver,
                               std::uint64_t topology_hash,
                               std::uint64_t config_hash, std::uint64_t seed,
                               net::NodeId destination, bool originated) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument{"warm start rejected: " + what};
  };
  if (meta.driver != driver) {
    fail(std::string{"snapshot was written by the '"} +
         snap::to_string(meta.driver) + "' driver, this scenario runs '" +
         snap::to_string(driver) + "'");
  }
  if (!meta.quiescent) {
    fail("snapshot was not taken at quiescence (mid-run snapshots cannot "
         "seed a fresh object graph)");
  }
  if (meta.topology_hash != topology_hash) {
    fail("topology hash " + std::to_string(meta.topology_hash) +
         " does not match this scenario's topology (" +
         std::to_string(topology_hash) + ")");
  }
  if (meta.config_hash != config_hash) {
    fail("config hash " + std::to_string(meta.config_hash) +
         " does not match this scenario's prelude hash (" +
         std::to_string(config_hash) + ")");
  }
  if (meta.seed != seed) {
    fail("snapshot seed " + std::to_string(meta.seed) +
         " != scenario seed " + std::to_string(seed));
  }
  if (meta.destination != destination) {
    fail("snapshot destination " + std::to_string(meta.destination) +
         " != scenario destination " + std::to_string(destination));
  }
  if (meta.originated != originated) {
    fail(meta.originated
             ? "snapshot prelude originated the prefix, this scenario's "
               "does not (Tup)"
             : "snapshot prelude did not originate the prefix (Tup), this "
               "scenario's does");
  }
}

}  // namespace bgpsim::core::detail
