// The BGPSIM_* environment-knob registry.
//
// Every runtime knob the tree reads is declared here, once, with its
// default and its documentation — docs/RUNNING.md's knob table mirrors
// this registry (see registry() below). Each knob has a typed accessor;
// RunOptions::defaults() is built from these, so a knob set in the
// environment flows into every runner that doesn't explicitly override
// the corresponding option.
//
// Parsing (and the warn-on-garbage contract) is sim::env_u64_or — one
// parser for the whole tree, shared even by layers below core (snap/'s
// BGPSIM_SNAP_CACHE read). BGPSIM_SANITIZE is absent here on purpose:
// it is a CMake configure-time option, not a runtime knob.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bgpsim::core::env {

/// One registry row: knob name, human-readable default, one-line doc.
struct Knob {
  const char* name;
  const char* fallback;
  const char* doc;
};

/// Every runtime BGPSIM_* knob, in docs/RUNNING.md table order.
[[nodiscard]] std::span<const Knob> registry();

/// Legacy spelling of sim::env_u64_or, kept because call sites and tests
/// predate the registry. Prefer the typed accessors below.
[[nodiscard]] std::size_t u64_or(const char* name, std::size_t fallback);

// ---- typed accessors, one per registry row -------------------------------

/// BGPSIM_JOBS: worker threads per in-process run (run_trials fan-out).
/// Default: std::thread::hardware_concurrency(), never less than 1.
[[nodiscard]] std::size_t jobs();

/// BGPSIM_WORKERS: campaign worker processes (run_campaign). Default:
/// jobs().
[[nodiscard]] std::size_t workers();

/// BGPSIM_TRIALS: trials per bench data point. Default: per bench.
[[nodiscard]] std::size_t trials(std::size_t fallback);

/// BGPSIM_FULL=1: benches sweep the paper's full size range.
[[nodiscard]] bool full_run();

/// BGPSIM_CSV=1: benches append CSV dumps after each table.
[[nodiscard]] bool csv();

/// BGPSIM_JSON=DIR: drop BENCH_<bench>.json artifacts into DIR
/// (schema bgpsim-bench-1). nullptr when unset.
[[nodiscard]] const char* json_dir();

/// BGPSIM_FUZZ_ITERS: fuzz_scenarios default iteration count.
[[nodiscard]] std::size_t fuzz_iters(std::size_t fallback);

/// BGPSIM_SNAP_CACHE: PreludeCache capacity in snapshots; 0 disables
/// warm-start caching. Default 32.
[[nodiscard]] std::size_t snap_cache_capacity();

/// BGPSIM_PREFIXES: prefix-count cap for the multi-prefix bench sweep
/// (headline_multiprefix skips sweep points above it) and the fuzzer's
/// multi-prefix mode. Default 256; 0 is clamped to 1.
[[nodiscard]] std::size_t prefixes_cap();

/// BGPSIM_PATH_INTERN: per-experiment AS-path interning (bgp::PathStore);
/// 0 disables (plain structural sharing, for A/B digest checks). Default 1.
[[nodiscard]] bool path_interning();

/// BGPSIM_TIMER_WHEEL: hierarchical timer-wheel scheduler with batched
/// same-tick MRAI delivery; 0 falls back to the (time, seq) binary heap
/// (strictly sequential delivery, for A/B digest checks). Outputs are
/// bit-identical either way. Default 1.
[[nodiscard]] bool timer_wheel();

/// BGPSIM_DATAPLANE_RINGS: per-tick FIFO ring hop store in the data plane
/// with batched per-(node, prefix) FIB decisions; 0 falls back to the
/// (time, seq) binary-heap hop store (per-event reference, for A/B digest
/// checks). Outputs are bit-identical either way. Default 1.
[[nodiscard]] bool dataplane_rings();

/// BGPSIM_JOURNAL_DIR: directory where bgpsimd and run_campaign --journal
/// place campaign journals when given a bare file name instead of a path.
/// nullptr when unset.
[[nodiscard]] const char* journal_dir();

/// BGPSIM_ADMIN_SOCK: default unix-socket path for the bgpsimd admin
/// interface, used by bgpsimd and campaign_ctl when --admin is not given.
/// nullptr when unset.
[[nodiscard]] const char* admin_sock();

/// BGPSIM_POLICY_SIZES: comma-separated AS-graph node counts for the
/// policy-scale bench (headline_policy_scale). Default {1000, 10000},
/// plus 75000 when BGPSIM_FULL=1; an explicit value replaces the whole
/// list (BGPSIM_FULL does not append to it). A garbled list warns on
/// stderr and falls back to the default, like every other knob.
[[nodiscard]] std::vector<std::size_t> policy_sizes();

}  // namespace bgpsim::core::env
