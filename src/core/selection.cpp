#include "core/selection.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::core {

/// Does removing `link` keep the graph connected?
bool removal_keeps_connected(net::Topology& topo, net::LinkId link) {
  topo.set_link_state(link, false);
  const bool ok = topo.connected();
  topo.set_link_state(link, true);
  return ok;
}

net::NodeId choose_destination(TopologyKind kind, EventKind event,
                               std::optional<net::NodeId> fixed,
                               net::Topology& topo, sim::Rng& rng) {
  if (fixed) return *fixed;
  if (!policy_capable(kind)) return 0;

  const bool needs_failable_link =
      event == EventKind::kTlong || event == EventKind::kFlap;

  // Internet-scale kinds: the exhaustive survivability filter below runs a
  // BFS per candidate link and a full-graph widening pass — fine at the
  // paper's 110 nodes, far too slow at 10k-75k. Sample candidates of the
  // lowest multi-homed degree instead and verify only the sampled ones.
  if (kind != TopologyKind::kInternet && needs_failable_link) {
    std::size_t min_d2 = SIZE_MAX;
    for (net::NodeId n = 0; n < topo.node_count(); ++n) {
      const std::size_t d = topo.degree(n);
      if (d >= 2 && d < min_d2) min_d2 = d;
    }
    std::vector<net::NodeId> candidates;
    for (net::NodeId n = 0; n < topo.node_count(); ++n) {
      if (topo.degree(n) == min_d2) candidates.push_back(n);
    }
    for (int attempt = 0; attempt < 64 && !candidates.empty(); ++attempt) {
      const net::NodeId n = candidates[rng.next_below(candidates.size())];
      for (net::LinkId l : topo.links_of(n)) {
        if (removal_keeps_connected(topo, l)) return n;
      }
    }
    throw std::runtime_error{"no Tlong-capable destination found by sampling"};
  }

  // Paper: destination "randomly chosen among the nodes with the lowest
  // degrees". For Tlong (and Flap, which is a Tlong plus recovery) the
  // chosen node must survive losing one link.
  std::vector<net::NodeId> candidates = topo::lowest_degree_nodes(topo);
  if (needs_failable_link) {
    std::erase_if(candidates, [&](net::NodeId n) {
      if (topo.degree(n) < 2) return true;
      for (net::LinkId l : topo.links_of(n)) {
        if (removal_keeps_connected(topo, l)) return false;
      }
      return true;
    });
    if (candidates.empty()) {
      // No lowest-degree node qualifies; widen to any qualifying node,
      // preferring low degree.
      std::vector<net::NodeId> all;
      for (net::NodeId n = 0; n < topo.node_count(); ++n) {
        if (topo.degree(n) < 2) continue;
        for (net::LinkId l : topo.links_of(n)) {
          if (removal_keeps_connected(topo, l)) {
            all.push_back(n);
            break;
          }
        }
      }
      if (all.empty()) {
        throw std::runtime_error{"no Tlong-capable destination in topology"};
      }
      std::ranges::sort(all, [&](net::NodeId a, net::NodeId b) {
        return topo.degree(a) < topo.degree(b);
      });
      const std::size_t lowest = topo.degree(all.front());
      std::erase_if(all,
                    [&](net::NodeId n) { return topo.degree(n) != lowest; });
      candidates = std::move(all);
    }
  }
  return candidates[rng.next_below(candidates.size())];
}

net::LinkId choose_tlong_link(TopologyKind kind, std::size_t size,
                              std::optional<net::LinkId> fixed,
                              net::Topology& topo, net::NodeId destination,
                              sim::Rng& rng) {
  if (fixed) return *fixed;
  if (kind == TopologyKind::kBClique) {
    return topo::bclique_tlong_link(topo, size);
  }
  // Paper (Internet topologies): "one of its links is randomly chosen to
  // fail" — restricted to links whose removal keeps the graph connected.
  // We bias toward the destination's *primary* provider (highest degree):
  // failing a pure backup link triggers no reconvergence at all, and the
  // paper's averages are dominated by the failures that do.
  std::vector<net::LinkId> usable;
  for (net::LinkId l : topo.links_of(destination)) {
    if (removal_keeps_connected(topo, l)) usable.push_back(l);
  }
  if (usable.empty()) {
    throw std::runtime_error{"destination has no failable link for Tlong"};
  }
  std::ranges::stable_sort(usable, [&](net::LinkId a, net::LinkId b) {
    return topo.degree(topo.link(a).other(destination)) >
           topo.degree(topo.link(b).other(destination));
  });
  // Random among the top-degree ties.
  const std::size_t top_degree =
      topo.degree(topo.link(usable.front()).other(destination));
  std::erase_if(usable, [&](net::LinkId l) {
    return topo.degree(topo.link(l).other(destination)) != top_degree;
  });
  return usable[rng.next_below(usable.size())];
}


}  // namespace bgpsim::core
