#include "svcd/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace bgpsim::svcd {
namespace {

// epoll_event.data.u64 values for the loop's own fds; watch tokens start
// at 1 and count up, so the top-bit range can never collide.
constexpr std::uint64_t kTimerToken = ~std::uint64_t{0};
constexpr std::uint64_t kSignalToken = ~std::uint64_t{0} - 1;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error{std::string{"svcd: "} + what + " failed: " +
                           std::strerror(errno)};
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("timerfd_create");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTimerToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) < 0) {
    ::close(timer_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(timerfd)");
  }
}

EventLoop::~EventLoop() {
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (signal_mask_saved_) {
    (void)::sigprocmask(SIG_SETMASK, &saved_mask_, nullptr);
  }
}

std::uint64_t EventLoop::now_ms() {
  timespec ts{};
  (void)::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

std::uint64_t EventLoop::watch(int fd, std::uint32_t events, FdCallback cb) {
  const std::uint64_t token = next_token_++;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(add)");
  }
  watches_.emplace(token, Watch{fd, std::move(cb)});
  return token;
}

void EventLoop::unwatch(std::uint64_t token) {
  const auto it = watches_.find(token);
  if (it == watches_.end()) return;
  // The fd may already be closed by the owner; a failing DEL is harmless
  // (kernel dropped the registration with the last fd reference).
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  watches_.erase(it);
}

std::uint64_t EventLoop::add_timer(std::uint64_t delay_ms, TimerCallback cb) {
  const std::uint64_t token = next_token_++;
  timers_.emplace(token, Timer{now_ms() + delay_ms, std::move(cb)});
  arm_timerfd();
  return token;
}

void EventLoop::cancel_timer(std::uint64_t token) {
  if (timers_.erase(token) != 0) arm_timerfd();
}

void EventLoop::arm_timerfd() {
  itimerspec spec{};  // all-zero disarms
  if (!timers_.empty()) {
    std::uint64_t earliest = ~std::uint64_t{0};
    for (const auto& [token, timer] : timers_) {
      earliest = std::min(earliest, timer.deadline_ms);
    }
    // Relative arming against the time left; an already-due deadline still
    // needs a nonzero value (zero would disarm), so round up to 1 ns.
    const std::uint64_t now = now_ms();
    const std::uint64_t left_ms = earliest > now ? earliest - now : 0;
    spec.it_value.tv_sec = static_cast<time_t>(left_ms / 1000);
    spec.it_value.tv_nsec = static_cast<long>((left_ms % 1000) * 1'000'000);
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  if (::timerfd_settime(timer_fd_, 0, &spec, nullptr) < 0) {
    throw_errno("timerfd_settime");
  }
}

void EventLoop::fire_due_timers() {
  std::uint64_t expirations = 0;
  (void)::read(timer_fd_, &expirations, sizeof expirations);
  // Collect due timers first: callbacks may add or cancel timers, which
  // mutates timers_ under us.
  const std::uint64_t now = now_ms();
  std::vector<std::uint64_t> due;
  for (const auto& [token, timer] : timers_) {
    if (timer.deadline_ms <= now) due.push_back(token);
  }
  for (const std::uint64_t token : due) {
    auto it = timers_.find(token);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    TimerCallback cb = std::move(it->second.cb);
    timers_.erase(it);
    cb();
  }
  arm_timerfd();
}

void EventLoop::watch_signals(const std::vector<int>& signals,
                              SignalCallback cb) {
  if (signal_fd_ >= 0) {
    throw std::logic_error{"svcd: watch_signals called twice"};
  }
  sigset_t mask;
  sigemptyset(&mask);
  for (const int signo : signals) sigaddset(&mask, signo);
  if (::sigprocmask(SIG_BLOCK, &mask, &saved_mask_) < 0) {
    throw_errno("sigprocmask");
  }
  signal_mask_saved_ = true;
  signal_fd_ = ::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
  if (signal_fd_ < 0) throw_errno("signalfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kSignalToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, signal_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(signalfd)");
  }
  signal_cb_ = std::move(cb);
}

void EventLoop::drain_signalfd() {
  for (;;) {
    signalfd_siginfo info{};
    const ssize_t r = ::read(signal_fd_, &info, sizeof info);
    if (r != static_cast<ssize_t>(sizeof info)) break;  // EAGAIN drained
    if (signal_cb_) signal_cb_(static_cast<int>(info.ssi_signo));
  }
}

void EventLoop::run() {
  running_ = true;
  epoll_event events[64];
  while (running_) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n && running_; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kTimerToken) {
        fire_due_timers();
        continue;
      }
      if (token == kSignalToken) {
        drain_signalfd();
        continue;
      }
      const auto it = watches_.find(token);
      if (it == watches_.end()) continue;  // unwatched earlier in this batch
      // Copy the callback: it may unwatch its own token (invalidating the
      // map entry) while running.
      const FdCallback cb = it->second.cb;
      cb(events[i].events);
    }
  }
}

void EventLoop::close_fds_after_fork() {
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  signal_fd_ = timer_fd_ = epoll_fd_ = -1;
  if (signal_mask_saved_) {
    (void)::sigprocmask(SIG_SETMASK, &saved_mask_, nullptr);
    signal_mask_saved_ = false;
  }
}

}  // namespace bgpsim::svcd
