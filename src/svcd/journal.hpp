// svcd::Journal — the daemon's write-ahead work-queue journal.
//
// Every state transition a resume needs is appended as a versioned,
// FNV-1a-trailed record built on the snap::Writer/Reader codec (the same
// binary idiom as snapshots and the wire protocol):
//
//   file header   magic "bgpsvjnl" | u32 journal format version
//                 | u32 svc protocol version | u64 FNV-1a trailer
//   record        u8 type | u64 payload length | payload | u64 FNV-1a
//                 trailer over (type, length, payload)
//
// Record types: a campaign header (full CampaignSpec — scenarios travel
// through svc::write_scenario, exactly the bytes a worker would see),
// unit-dispatched (advisory: which unit went to which worker incarnation,
// so a resume can report what was in flight at the crash), unit-completed
// (the full UnitResult outcome bytes — the payload that makes resume
// skip re-running the unit), and campaign-sealed (final digest, written
// after assembly; a sealed campaign resumes straight to its result, and a
// digest mismatch on replay means the journal lies and is rejected).
//
// Torn-tail discipline: appends are sequential whole-record writes, so a
// crash can only leave a *prefix* of the final record — any record that
// is complete but wrong (bad trailer, unknown type, absurd length,
// malformed payload) is corruption and always a precise FormatError. Only
// incompleteness at end-of-file is recoverable, and only when the caller
// opts in with TornTail::kRecover (the resume paths); the default kReject
// refuses with a precise error, so a partial record can never silently
// shorten a campaign ("never a partial resume"). The file header is never
// recoverable — a journal torn inside its header holds nothing to resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/units.hpp"

namespace bgpsim::svcd {

/// "bgpsvjnl" read as a little-endian u64.
inline constexpr std::uint64_t kJournalMagic = 0x6c6e6a7673706762ULL;

/// Bump on any change to the header or any record payload layout.
inline constexpr std::uint32_t kJournalFormatVersion = 1;

enum class RecordType : std::uint8_t {
  kCampaignHeader = 1,  // campaign id + full CampaignSpec + max_attempts
  kUnitDispatched = 2,  // campaign id + unit id + worker incarnation key
  kUnitCompleted = 3,   // campaign id + full UnitResult (outcome bytes)
  kCampaignSealed = 4,  // campaign id + final digest + unit count
};

/// Append-side handle. All writes go through buffered whole-record
/// ::write() calls; sync() is fdatasync. The fd is O_CLOEXEC so forked
/// workers never inherit it.
class Journal {
 public:
  /// Create (or overwrite) `path` and write the file header.
  static Journal create(const std::string& path);

  /// Reopen `path` for appending after a replay: truncate to
  /// `valid_bytes` (discarding a recovered torn tail) and position at the
  /// end. `valid_bytes` comes from JournalReplay.
  static Journal append_to(const std::string& path, std::uint64_t valid_bytes);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  void campaign_header(std::uint64_t campaign_id, const svc::CampaignSpec& spec,
                       std::size_t max_attempts);
  void unit_dispatched(std::uint64_t campaign_id, std::uint64_t unit_id,
                       std::uint64_t worker_key);
  void unit_completed(std::uint64_t campaign_id,
                      const svc::UnitResult& result);
  void campaign_sealed(std::uint64_t campaign_id, std::uint64_t digest,
                       std::uint64_t units);

  /// fdatasync the journal. Called after every completion record by the
  /// daemon: a unit acknowledged to the results stream must survive a
  /// crash, or a resume would re-run it (harmless for determinism, but a
  /// lie in the stream).
  void sync();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

 private:
  Journal(std::string path, int fd) : path_{std::move(path)}, fd_{fd} {}
  void append_record(RecordType type,
                     const std::vector<std::uint8_t>& payload);

  std::string path_;
  int fd_ = -1;
};

/// One campaign reconstructed from a journal.
struct JournalCampaign {
  std::uint64_t campaign_id = 0;
  svc::CampaignSpec spec;
  std::size_t max_attempts = 3;
  /// Completed units in record order; feeding them through
  /// UnitLedger::restore_completed rebuilds the merge state exactly.
  std::vector<svc::UnitResult> completed;
  /// Units recorded dispatched but never completed: in flight at the
  /// crash. Advisory — a resume simply leaves them pending and re-runs
  /// them (determinism makes the re-run byte-identical).
  std::vector<std::uint64_t> inflight_at_crash;
  bool sealed = false;
  std::uint64_t sealed_digest = 0;
};

enum class TornTail {
  kReject,   // incomplete tail record => precise FormatError (default)
  kRecover,  // incomplete tail record => discard it, report torn_tail
};

struct JournalReplay {
  std::vector<JournalCampaign> campaigns;
  /// True when a torn tail record was discarded (kRecover only).
  bool torn_tail = false;
  /// Offset one past the last complete record — what append_to truncates
  /// to, so the torn bytes are physically removed before new appends.
  std::uint64_t valid_bytes = 0;
};

/// Read and validate a journal end to end. Throws snap::FormatError with
/// a precise message on any corruption (bad magic, stale format or
/// protocol version, trailer mismatch, unknown record type, absurd
/// length, malformed payload, records referencing unknown campaigns) —
/// and, under TornTail::kReject, on an incomplete tail record too.
[[nodiscard]] JournalReplay replay_journal(const std::string& path,
                                           TornTail policy = TornTail::kReject);

}  // namespace bgpsim::svcd
