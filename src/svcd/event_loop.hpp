// svcd::EventLoop — the daemon's single-threaded epoll reactor.
//
// The PR 4 coordinator rebuilt a pollfd array on every iteration and
// computed deadline timeouts by hand; fine for a one-shot campaign over a
// handful of fds, wrong for a long-lived daemon where worker connections,
// admin clients, and per-unit lease deadlines come and go continuously.
// This loop keeps interest registered in the kernel (epoll), multiplexes
// any number of one-shot timers through a single timerfd armed to the
// earliest deadline, and turns SIGINT/SIGTERM into an ordinary readable
// fd via signalfd so shutdown is a callback, not an async-signal-unsafe
// handler.
//
// Reentrancy: watches and timers are addressed by opaque tokens, never by
// fd or array index. A callback may unwatch any token (including its own)
// or add new ones; a token cancelled mid-batch is simply skipped when its
// queued event comes up, and a new watch on a recycled fd number gets a
// fresh token, so stale events can never be delivered to the wrong owner.
//
// Fork hygiene: the daemon forks workers. close_fds_after_fork() closes
// the epoll/timerfd/signalfd descriptors and restores the pre-loop signal
// mask in the child (signalfd only works while the signals are blocked;
// a worker that inherited the blocked mask could never be interrupted).
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace bgpsim::svcd {

class EventLoop {
 public:
  /// fd callback; `events` is the epoll event mask (EPOLLIN | EPOLLHUP...).
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using SignalCallback = std::function<void(int signo)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN etc.). The loop does not own the
  /// fd; unwatch before closing it. Returns the watch token.
  std::uint64_t watch(int fd, std::uint32_t events, FdCallback cb);
  void unwatch(std::uint64_t token);

  /// One-shot timer firing `delay_ms` from now. Returns the timer token;
  /// cancel_timer() before expiry is a no-op after it fired.
  std::uint64_t add_timer(std::uint64_t delay_ms, TimerCallback cb);
  void cancel_timer(std::uint64_t token);

  /// Block `signals` process-wide and deliver them through the loop as
  /// callbacks (signalfd). Call at most once, before run(). The previous
  /// signal mask is restored by the destructor.
  void watch_signals(const std::vector<int>& signals, SignalCallback cb);

  /// Dispatch events until stop(). Safe to call run() again after a stop.
  void run();
  void stop() { running_ = false; }

  /// Post-fork(), in the child: close the loop's kernel objects (epoll,
  /// timerfd, signalfd) and restore the inherited signal mask. The child
  /// must not touch the EventLoop object afterwards.
  void close_fds_after_fork();

 private:
  struct Watch {
    int fd = -1;
    FdCallback cb;
  };
  struct Timer {
    std::uint64_t deadline_ms = 0;  // CLOCK_MONOTONIC, absolute
    TimerCallback cb;
  };

  void arm_timerfd();
  void fire_due_timers();
  void drain_signalfd();
  static std::uint64_t now_ms();

  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  int signal_fd_ = -1;
  bool running_ = false;
  bool signal_mask_saved_ = false;
  sigset_t saved_mask_{};
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, Watch> watches_;
  std::map<std::uint64_t, Timer> timers_;  // scanned for the earliest deadline
  SignalCallback signal_cb_;
};

}  // namespace bgpsim::svcd
