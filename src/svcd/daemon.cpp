#include "svcd/daemon.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/report.hpp"
#include "core/scenario_file.hpp"
#include "core/sweep.hpp"
#include "sim/logging.hpp"
#include "svc/worker.hpp"

namespace bgpsim::svcd {
namespace {

void log_svcd(const std::string& message) {
  sim::LogLine{sim::LogLevel::kInfo, "svcd", sim::SimTime::zero()} << message;
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

constexpr std::uint64_t kLocalUnitMask = 0xFFFF'FFFFULL;

std::uint64_t wire_unit_id(std::uint64_t campaign_id, std::uint64_t local) {
  return (campaign_id << 32) | (local & kLocalUnitMask);
}

const char* state_name(Daemon::CampaignState s) {
  switch (s) {
    case Daemon::CampaignState::kQueued:
      return "queued";
    case Daemon::CampaignState::kRunning:
      return "running";
    case Daemon::CampaignState::kDone:
      return "done";
    case Daemon::CampaignState::kFailed:
      return "failed";
    case Daemon::CampaignState::kCancelled:
      return "cancelled";
  }
  return "?";
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_{std::move(options)} {
  if (!options_.journal_path.empty() && !options_.resume_path.empty()) {
    throw std::invalid_argument{
        "svcd: journal_path and resume_path are mutually exclusive"};
  }
  if (options_.handle_signals) {
    loop_.watch_signals({SIGINT, SIGTERM}, [this](int signo) {
      log_svcd(std::string{"received "} +
               (signo == SIGINT ? "SIGINT" : "SIGTERM") + ", shutting down");
      loop_.stop();
    });
  }
  if (options_.tcp_listen) {
    tcp_listener_ = svc::TcpListener::bind_localhost(options_.tcp_port);
    loop_.watch(tcp_listener_->fd(), EPOLLIN, [this](std::uint32_t) {
      svc::Connection conn = tcp_listener_->accept_one(0);
      if (!conn.valid()) return;
      log_svcd("TCP worker joined");
      attach_worker(std::move(conn), -1, -1);
      dispatch();
    });
  }
  if (!options_.admin_socket.empty()) open_admin_socket();
  if (!options_.journal_path.empty()) {
    journal_ = Journal::create(options_.journal_path);
  } else if (!options_.resume_path.empty()) {
    restore_from_journal(options_.resume_path);
  }
}

Daemon::~Daemon() {
  shutdown_workers();
  for (auto& [fd, client] : admin_clients_) ::close(fd);
  admin_clients_.clear();
  if (admin_fd_ >= 0) {
    ::close(admin_fd_);
    ::unlink(options_.admin_socket.c_str());
  }
}

Daemon::Campaign* Daemon::active_campaign() {
  for (const auto& c : campaigns_) {
    if (c->state == CampaignState::kQueued ||
        c->state == CampaignState::kRunning) {
      return c.get();
    }
  }
  return nullptr;
}

Daemon::Campaign* Daemon::find_campaign(std::uint64_t id) {
  for (const auto& c : campaigns_) {
    if (c->id == id) return c.get();
  }
  return nullptr;
}

std::uint64_t Daemon::submit(svc::CampaignSpec spec) {
  const std::uint64_t id = next_campaign_id_++;
  svc::UnitLedger ledger{std::move(spec), options_.max_attempts};
  if (journal_) {
    journal_->campaign_header(id, ledger.spec(), options_.max_attempts);
    journal_->sync();
  }
  campaigns_.push_back(std::make_unique<Campaign>(id, std::move(ledger)));
  any_submitted_ = true;
  log_svcd("campaign " + std::to_string(id) + " submitted (" +
           std::to_string(campaigns_.back()->ledger.unit_count()) + " units)");
  dispatch();
  return id;
}

bool Daemon::cancel(std::uint64_t campaign_id) {
  Campaign* c = find_campaign(campaign_id);
  if (c == nullptr || (c->state != CampaignState::kQueued &&
                       c->state != CampaignState::kRunning)) {
    return false;
  }
  c->state = CampaignState::kCancelled;
  log_svcd("campaign " + std::to_string(campaign_id) + " cancelled");
  dispatch();
  maybe_exit_idle();
  return true;
}

std::vector<Daemon::CampaignStatus> Daemon::status() const {
  std::vector<CampaignStatus> out;
  out.reserve(campaigns_.size());
  for (const auto& c : campaigns_) {
    CampaignStatus s;
    s.id = c->id;
    s.state = c->state;
    s.units_done = c->ledger.done();
    s.unit_count = c->ledger.unit_count();
    if (c->result) s.digest = c->result->digest;
    out.push_back(s);
  }
  return out;
}

svc::CampaignResult Daemon::take_result(std::uint64_t campaign_id) {
  Campaign* c = find_campaign(campaign_id);
  if (c == nullptr) {
    throw std::logic_error{"svcd: unknown campaign " +
                           std::to_string(campaign_id)};
  }
  if (c->state == CampaignState::kFailed) {
    throw svc::CampaignError{
        "svcd: campaign " + std::to_string(campaign_id) + " failed — " +
            std::to_string(c->ledger.failures().size()) +
            " unit(s) failed permanently",
        c->ledger.failures()};
  }
  if (c->state != CampaignState::kDone || !c->result) {
    throw std::logic_error{"svcd: campaign " + std::to_string(campaign_id) +
                           " has no result (state " + state_name(c->state) +
                           ")"};
  }
  svc::CampaignResult result = std::move(*c->result);
  c->result.reset();
  return result;
}

void Daemon::restore_from_journal(const std::string& path) {
  JournalReplay replay = replay_journal(path, TornTail::kRecover);
  if (replay.torn_tail) {
    log_svcd("journal " + path + " had a torn tail record (crash mid-append);"
             " discarded it and truncating to " +
             std::to_string(replay.valid_bytes) + " byte(s)");
  }
  journal_ = Journal::append_to(path, replay.valid_bytes);
  for (JournalCampaign& jc : replay.campaigns) {
    svc::UnitLedger ledger{std::move(jc.spec), jc.max_attempts};
    for (const svc::UnitResult& r : jc.completed) ledger.restore_completed(r);
    auto c = std::make_unique<Campaign>(jc.campaign_id, std::move(ledger));
    next_campaign_id_ = std::max(next_campaign_id_, jc.campaign_id + 1);
    if (jc.sealed) {
      if (!c->ledger.complete()) {
        throw snap::FormatError{
            "svcd journal: campaign " + std::to_string(jc.campaign_id) +
            " is sealed but missing completion records"};
      }
      svc::CampaignResult result;
      result.sets = c->ledger.assemble();
      result.digest = svc::campaign_digest(result.sets);
      if (result.digest != jc.sealed_digest) {
        throw snap::FormatError{
            "svcd journal: campaign " + std::to_string(jc.campaign_id) +
            " sealed digest " + hex64(jc.sealed_digest) +
            " does not match replayed digest " + hex64(result.digest)};
      }
      c->result = std::move(result);
      c->state = CampaignState::kDone;
    } else if (c->ledger.complete()) {
      // Crashed after the last completion record but before the seal.
      seal_campaign(*c);
    } else {
      log_svcd("campaign " + std::to_string(jc.campaign_id) + " resumes: " +
               std::to_string(c->ledger.done()) + "/" +
               std::to_string(c->ledger.unit_count()) +
               " unit(s) restored from the journal, " +
               std::to_string(jc.inflight_at_crash.size()) +
               " in flight at the crash will re-run");
    }
    any_submitted_ = true;
    campaigns_.push_back(std::move(c));
  }
}

void Daemon::seal_campaign(Campaign& c) {
  svc::CampaignResult result;
  result.sets = c.ledger.assemble();
  result.digest = svc::campaign_digest(result.sets);
  result.units_dispatched = c.ledger.dispatched();
  result.requeues = c.ledger.requeues();
  if (journal_) {
    journal_->campaign_sealed(c.id, result.digest, c.ledger.done());
    journal_->sync();
  }
  c.result = std::move(result);
  c.state = CampaignState::kDone;
  log_svcd("campaign " + std::to_string(c.id) + " sealed, digest " +
           hex64(c.result->digest));
  stream_campaign_line(c);
  maybe_exit_idle();
}

void Daemon::finish_failed(Campaign& c) {
  if (c.state == CampaignState::kFailed) return;
  c.state = CampaignState::kFailed;
  log_svcd("campaign " + std::to_string(c.id) + " failed: " +
           std::to_string(c.ledger.failures().size()) +
           " unit(s) failed permanently");
  maybe_exit_idle();
}

void Daemon::spawn_fork_worker() {
  svc::SocketPair pair = svc::make_socketpair();
  const std::uint64_t key = next_worker_key_++;
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error{"svcd: fork failed"};
  if (pid == 0) {
    pair.coordinator.close();
    close_all_in_forked_child();
    ::_exit(svc::worker_loop(std::move(pair.worker), key));
  }
  pair.worker.close();
  next_worker_key_ = key;  // attach_worker re-issues the same key
  attach_worker(std::move(pair.coordinator), pid, -1);
}

void Daemon::close_all_in_forked_child() {
  // A forked worker must not keep any daemon-side descriptor open: a held
  // worker-connection fd would defeat EOF-on-death detection for that
  // sibling, a held journal fd could outlive a truncate, and inherited
  // epoll/signalfd state would leave the child uninterruptible.
  loop_.close_fds_after_fork();
  if (journal_) journal_->close();
  for (auto& [key, w] : workers_) {
    w.conn.close();
    if (w.stderr_fd >= 0) ::close(w.stderr_fd);
  }
  if (tcp_listener_ && tcp_listener_->fd() >= 0) ::close(tcp_listener_->fd());
  if (admin_fd_ >= 0) ::close(admin_fd_);
  for (auto& [fd, client] : admin_clients_) ::close(fd);
}

void Daemon::attach_worker(svc::Connection conn, pid_t pid, int stderr_fd) {
  conn.set_nonblocking();
  const std::uint64_t key = next_worker_key_++;
  Worker w;
  w.key = key;
  w.conn = std::move(conn);
  w.pid = pid;
  w.stderr_fd = stderr_fd;
  const int fd = w.conn.fd();
  auto [it, inserted] = workers_.emplace(key, std::move(w));
  it->second.conn_token = loop_.watch(
      fd, EPOLLIN, [this, key](std::uint32_t) { on_worker_readable(key); });
}

std::uint16_t Daemon::tcp_port() const {
  return tcp_listener_ ? tcp_listener_->port() : 0;
}

std::size_t Daemon::live_workers() const { return workers_.size(); }

std::vector<pid_t> Daemon::worker_pids() const {
  std::vector<pid_t> pids;
  for (const auto& [key, w] : workers_) {
    if (w.pid > 0) pids.push_back(w.pid);
  }
  return pids;
}

void Daemon::dispatch() {
  Campaign* c = active_campaign();
  if (c == nullptr) return;
  // Snapshot the keys: fail_worker during a failed send erases map entries.
  std::vector<std::uint64_t> keys;
  keys.reserve(workers_.size());
  for (const auto& [key, w] : workers_) keys.push_back(key);
  for (const std::uint64_t key : keys) {
    auto it = workers_.find(key);
    if (it == workers_.end() || it->second.inflight) continue;
    Worker& w = it->second;
    std::optional<svc::WorkUnit> wu = c->ledger.acquire(key);
    if (!wu) continue;  // nothing this worker can take (yet)
    c->state = CampaignState::kRunning;
    const std::uint64_t local = wu->unit_id;
    if (journal_) journal_->unit_dispatched(c->id, local, key);
    wu->unit_id = wire_unit_id(c->id, local);
    w.inflight = true;
    w.inflight_campaign = c->id;
    w.inflight_unit = local;
    if (options_.deadline_s > 0) {
      const auto ms =
          static_cast<std::uint64_t>(options_.deadline_s * 1000.0);
      w.lease_timer = loop_.add_timer(ms, [this, key] {
        auto wit = workers_.find(key);
        if (wit == workers_.end() || !wit->second.inflight) return;
        wit->second.lease_timer = 0;
        fail_worker(key, "unit lease (" +
                             std::to_string(options_.deadline_s) +
                             " s) expired");
        dispatch();
      });
    }
    if (!w.conn.send_frame(svc::encode_work(*wu))) {
      fail_worker(key, "send failed (worker gone)");
    }
    if (c->state != CampaignState::kRunning) break;  // campaign just failed
  }
  if (!c->ledger.failures().empty()) finish_failed(*c);
}

void Daemon::on_worker_readable(std::uint64_t key) {
  auto it = workers_.find(key);
  if (it == workers_.end()) return;
  const svc::Connection::Pump status = it->second.conn.pump();
  try {
    for (;;) {
      it = workers_.find(key);
      if (it == workers_.end()) return;
      std::optional<svc::Frame> frame = it->second.conn.next_frame();
      if (!frame) break;
      handle_worker_frame(it->second, *frame);
    }
  } catch (const snap::FormatError& e) {
    // A corrupt stream cannot be resynchronized; drop the worker and let
    // the lease table recover its unit.
    fail_worker(key, std::string{"protocol violation: "} + e.what());
    dispatch();
    return;
  }
  if (status == svc::Connection::Pump::kEof) {
    fail_worker(key, "connection closed (worker left or died)");
  }
  dispatch();
}

void Daemon::handle_worker_frame(Worker& w, const svc::Frame& frame) {
  switch (frame.type) {
    case svc::FrameType::kHello: {
      const svc::Hello hello = svc::decode_hello(frame);
      log_svcd("worker key " + std::to_string(w.key) + " up (pid " +
               std::to_string(hello.pid) + ")");
      return;
    }
    case svc::FrameType::kResult: {
      svc::UnitResult result = svc::decode_result(frame);
      const std::uint64_t campaign_id = result.unit_id >> 32;
      result.unit_id &= kLocalUnitMask;
      Campaign* c = find_campaign(campaign_id);
      if (c == nullptr) {
        throw snap::FormatError{"svcd: result for unknown campaign " +
                                std::to_string(campaign_id)};
      }
      if (c->state == CampaignState::kCancelled ||
          c->state == CampaignState::kFailed) {
        clear_inflight(w);
        return;  // late result for a dead campaign: drop
      }
      // accept() throws on shape mismatch; w.inflight stays set so
      // fail_worker requeues the real unit.
      const svc::UnitLedger::Accept accepted = c->ledger.accept(result);
      clear_inflight(w);
      if (accepted == svc::UnitLedger::Accept::kDuplicate) {
        log_svcd("dropping duplicate result for campaign " +
                 std::to_string(campaign_id) + " unit " +
                 std::to_string(result.unit_id));
        return;
      }
      if (journal_) {
        journal_->unit_completed(campaign_id, result);
        journal_->sync();
      }
      stream_unit_line(*c, result);
      if (options_.on_unit_done) {
        options_.on_unit_done(*this, campaign_id, c->ledger.done());
      }
      if (c->ledger.complete()) seal_campaign(*c);
      return;
    }
    case svc::FrameType::kError: {
      const svc::UnitError err = svc::decode_error(frame);
      const std::uint64_t campaign_id = err.unit_id >> 32;
      const std::uint64_t local = err.unit_id & kLocalUnitMask;
      clear_inflight(w);
      Campaign* c = find_campaign(campaign_id);
      if (c == nullptr) {
        throw snap::FormatError{"svcd: error for unknown campaign " +
                                std::to_string(campaign_id)};
      }
      if (c->state != CampaignState::kRunning) return;
      // Deterministic in-driver failure: retries would recur (serial
      // semantics), so the unit is abandoned and the campaign fails.
      c->ledger.fail_deterministic(
          local, "worker key " + std::to_string(w.key) +
                     " reported: " + err.message);
      finish_failed(*c);
      return;
    }
    default:
      throw snap::FormatError{
          "svcd: unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)) + " from worker"};
  }
}

void Daemon::clear_inflight(Worker& w) {
  w.inflight = false;
  if (w.lease_timer != 0) {
    loop_.cancel_timer(w.lease_timer);
    w.lease_timer = 0;
  }
}

void Daemon::fail_worker(std::uint64_t key, const std::string& why) {
  auto it = workers_.find(key);
  if (it == workers_.end()) return;
  Worker& w = it->second;
  log_svcd("worker key " + std::to_string(key) + " lost: " + why);
  if (w.lease_timer != 0) loop_.cancel_timer(w.lease_timer);
  loop_.unwatch(w.conn_token);
  w.conn.close();
  if (w.stderr_fd >= 0) ::close(w.stderr_fd);
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);  // no-op if already dead
    reap(w.pid);
  }
  const bool had_inflight = w.inflight;
  const std::uint64_t campaign_id = w.inflight_campaign;
  const std::uint64_t local = w.inflight_unit;
  workers_.erase(it);
  if (had_inflight) {
    Campaign* c = find_campaign(campaign_id);
    if (c != nullptr && c->state == CampaignState::kRunning) {
      (void)c->ledger.release(local, key, why);
      if (!c->ledger.failures().empty()) finish_failed(*c);
    }
  }
  check_progress_possible();
}

void Daemon::check_progress_possible() {
  if (!workers_.empty() || tcp_listener_) return;
  if (active_campaign() == nullptr) return;
  // No worker left and no way for one to join: the queue can never drain.
  fatal_error_ =
      "svcd: campaign failed — every worker died with work outstanding and "
      "no TCP listener for replacements";
  loop_.stop();
}

void Daemon::maybe_exit_idle() {
  if (!options_.exit_when_idle || !any_submitted_) return;
  if (active_campaign() != nullptr) return;
  loop_.stop();
}

void Daemon::stream_unit_line(const Campaign& c,
                              const svc::UnitResult& result) {
  if (options_.results == nullptr) return;
  core::Table table{{"campaign", "unit", "scenario", "trial_begin", "trials",
                     "done", "total"}};
  table.add_row({std::to_string(c.id), std::to_string(result.unit_id),
                 std::to_string(result.scenario_index),
                 std::to_string(result.trial_begin),
                 std::to_string(result.outcomes.size()),
                 std::to_string(c.ledger.done()),
                 std::to_string(c.ledger.unit_count())});
  std::ostringstream os;
  table.write_json(os, "unit");
  std::fprintf(options_.results,
               "{\"schema\": \"bgpsim-bench-1\", \"bench\": \"svcd_unit\", "
               "\"tables\": [%s]}\n",
               os.str().c_str());
  std::fflush(options_.results);
}

void Daemon::stream_campaign_line(const Campaign& c) {
  if (options_.results == nullptr || !c.result) return;
  core::Table table{{"campaign", "digest", "units", "dispatched", "requeues"}};
  table.add_row({std::to_string(c.id), hex64(c.result->digest),
                 std::to_string(c.ledger.done()),
                 std::to_string(c.result->units_dispatched),
                 std::to_string(c.result->requeues)});
  std::ostringstream os;
  table.write_json(os, "campaign");
  std::fprintf(options_.results,
               "{\"schema\": \"bgpsim-bench-1\", \"bench\": \"svcd_campaign\", "
               "\"tables\": [%s]}\n",
               os.str().c_str());
  std::fflush(options_.results);
}

void Daemon::open_admin_socket() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.admin_socket.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument{"svcd: admin socket path too long: " +
                                options_.admin_socket};
  }
  std::memcpy(addr.sun_path, options_.admin_socket.c_str(),
              options_.admin_socket.size() + 1);
  ::unlink(options_.admin_socket.c_str());
  admin_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (admin_fd_ < 0) throw std::runtime_error{"svcd: socket(AF_UNIX) failed"};
  if (::bind(admin_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(admin_fd_, 8) < 0) {
    ::close(admin_fd_);
    admin_fd_ = -1;
    throw std::runtime_error{"svcd: cannot listen on admin socket " +
                             options_.admin_socket + ": " +
                             std::strerror(errno)};
  }
  loop_.watch(admin_fd_, EPOLLIN, [this](std::uint32_t) { on_admin_accept(); });
}

void Daemon::on_admin_accept() {
  const int fd = ::accept4(admin_fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return;
  AdminClient client;
  client.fd = fd;
  client.token =
      loop_.watch(fd, EPOLLIN, [this, fd](std::uint32_t) { on_admin_readable(fd); });
  admin_clients_.emplace(fd, std::move(client));
}

void Daemon::on_admin_readable(int fd) {
  auto it = admin_clients_.find(fd);
  if (it == admin_clients_.end()) return;
  char buf[4096];
  const ssize_t r = ::read(fd, buf, sizeof buf);
  if (r <= 0) {
    loop_.unwatch(it->second.token);
    ::close(fd);
    admin_clients_.erase(it);
    return;
  }
  it->second.inbuf.append(buf, static_cast<std::size_t>(r));
  std::size_t nl;
  while ((nl = it->second.inbuf.find('\n')) != std::string::npos) {
    const std::string line = it->second.inbuf.substr(0, nl);
    it->second.inbuf.erase(0, nl + 1);
    const std::string response = handle_admin_command(line);
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + off, response.size() - off,
                 MSG_NOSIGNAL);
      if (n <= 0) break;  // client gone; EOF cleanup follows
      off += static_cast<std::size_t>(n);
    }
    it = admin_clients_.find(fd);
    if (it == admin_clients_.end()) return;
  }
}

std::string Daemon::handle_admin_command(const std::string& raw) {
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t\r");
    const auto e = s.find_last_not_of(" \t\r");
    return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
  };
  const std::string line = trim(raw);
  try {
    if (line == "STATUS") {
      std::string out = "version " + std::to_string(svc::protocol_version()) +
                        "\nport " + std::to_string(tcp_port()) + "\nworkers " +
                        std::to_string(workers_.size()) + "\n";
      for (const auto& [key, w] : workers_) {
        out += "worker " + std::to_string(key) +
               " pid=" + std::to_string(w.pid) +
               (w.inflight ? " busy" : " idle") + "\n";
      }
      for (const CampaignStatus& s : status()) {
        out += "campaign " + std::to_string(s.id) + " " +
               state_name(s.state) + " done=" + std::to_string(s.units_done) +
               "/" + std::to_string(s.unit_count) +
               " digest=" + hex64(s.digest) + "\n";
      }
      return out + "OK\n";
    }
    if (line.rfind("SUBMIT ", 0) == 0) {
      // SUBMIT trials=8 ; unit_trials=2 ; topology = clique ; size = 5 ...
      // Semicolons separate what a scenario file would hold on lines;
      // trials / unit_trials configure the campaign itself.
      svc::CampaignSpec spec;
      spec.run.trials = 1;
      std::string scenario_text;
      std::stringstream parts{line.substr(7)};
      std::string part;
      while (std::getline(parts, part, ';')) {
        const std::string entry = trim(part);
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        const std::string key =
            eq == std::string::npos ? entry : trim(entry.substr(0, eq));
        if (eq != std::string::npos && key == "trials") {
          spec.run.trials = std::stoul(trim(entry.substr(eq + 1)));
        } else if (eq != std::string::npos && key == "unit_trials") {
          spec.unit_trials = std::stoul(trim(entry.substr(eq + 1)));
        } else {
          scenario_text += entry + "\n";
        }
      }
      spec.scenarios.push_back(core::parse_scenario_string(scenario_text));
      const std::uint64_t id = submit(std::move(spec));
      return "OK id=" + std::to_string(id) + "\n";
    }
    if (line.rfind("CANCEL ", 0) == 0) {
      const std::uint64_t id = std::stoull(trim(line.substr(7)));
      return cancel(id) ? "OK\n"
                        : "ERR unknown or already-finished campaign " +
                              std::to_string(id) + "\n";
    }
    return "ERR unknown command (expected STATUS, SUBMIT, or CANCEL)\n";
  } catch (const std::exception& e) {
    std::string msg = e.what();
    std::replace(msg.begin(), msg.end(), '\n', ' ');
    return "ERR " + msg + "\n";
  }
}

void Daemon::run() {
  dispatch();
  maybe_exit_idle();
  if (options_.exit_when_idle && any_submitted_ &&
      active_campaign() == nullptr) {
    // Everything already terminal (e.g. resumed a sealed journal).
    shutdown_workers();
    return;
  }
  check_progress_possible();
  if (fatal_error_.empty()) loop_.run();
  shutdown_workers();
  if (!fatal_error_.empty()) {
    throw std::runtime_error{std::exchange(fatal_error_, {})};
  }
}

void Daemon::shutdown_workers() {
  for (auto& [key, w] : workers_) {
    (void)w.conn.send_frame(svc::encode_shutdown());
    if (w.lease_timer != 0) loop_.cancel_timer(w.lease_timer);
    loop_.unwatch(w.conn_token);
    w.conn.close();
    if (w.stderr_fd >= 0) ::close(w.stderr_fd);
    if (w.pid > 0) reap(w.pid);
  }
  workers_.clear();
}

svc::CampaignResult run_journaled_campaign(const svc::CampaignSpec& spec,
                                           const std::string& journal_path,
                                           const JournaledRunOptions& options) {
  DaemonOptions dopts;
  dopts.journal_path = journal_path;
  dopts.deadline_s = options.deadline_s;
  dopts.max_attempts = options.max_attempts;
  dopts.results = options.results;
  dopts.exit_when_idle = true;
  dopts.on_unit_done = options.on_unit_done;
  Daemon daemon{std::move(dopts)};
  const std::uint64_t id = daemon.submit(spec);
  const std::size_t workers =
      options.workers == 0 ? core::default_jobs() : options.workers;
  for (std::size_t i = 0; i < workers; ++i) daemon.spawn_fork_worker();
  daemon.run();
  return daemon.take_result(id);
}

svc::CampaignResult resume_journaled_campaign(
    const std::string& journal_path, const JournaledRunOptions& options) {
  DaemonOptions dopts;
  dopts.resume_path = journal_path;
  dopts.deadline_s = options.deadline_s;
  dopts.max_attempts = options.max_attempts;
  dopts.results = options.results;
  dopts.exit_when_idle = true;
  dopts.on_unit_done = options.on_unit_done;
  Daemon daemon{std::move(dopts)};
  const std::vector<Daemon::CampaignStatus> statuses = daemon.status();
  if (statuses.empty()) {
    throw snap::FormatError{"svcd journal: " + journal_path +
                            " holds no campaign to resume"};
  }
  const bool anything_left =
      std::any_of(statuses.begin(), statuses.end(), [](const auto& s) {
        return s.state == Daemon::CampaignState::kQueued ||
               s.state == Daemon::CampaignState::kRunning;
      });
  if (anything_left) {
    const std::size_t workers =
        options.workers == 0 ? core::default_jobs() : options.workers;
    for (std::size_t i = 0; i < workers; ++i) daemon.spawn_fork_worker();
  }
  daemon.run();
  return daemon.take_result(statuses.front().id);
}

}  // namespace bgpsim::svcd
