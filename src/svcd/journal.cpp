#include "svcd/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "snap/codec.hpp"

namespace bgpsim::svcd {
namespace {

using snap::FormatError;
using snap::Reader;
using snap::Writer;

constexpr std::size_t kFileHeaderSize = 8 + 4 + 4 + 8;  // magic+jver+pver+fnv
constexpr std::size_t kRecordPrefix = 1 + 8;            // type + payload len

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{"svcd journal: " + what + ": " +
                           std::strerror(errno)};
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void write_spec(Writer& w, const svc::CampaignSpec& spec,
                std::size_t max_attempts) {
  w.u64(spec.scenarios.size());
  for (const core::Scenario& s : spec.scenarios) svc::write_scenario(w, s);
  // Of RunOptions only `trials` shapes the output; the execution knobs
  // (jobs, caches, timer backend) are output-invariant and stay local to
  // whichever process replays the journal.
  w.u64(spec.run.trials);
  w.u64(spec.unit_trials);
  w.u64(max_attempts);
}

void read_spec(Reader& r, svc::CampaignSpec& spec, std::size_t& max_attempts) {
  const std::uint64_t n = r.u64();
  spec.scenarios.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    spec.scenarios.push_back(svc::read_scenario(r));
  }
  spec.run.trials = static_cast<std::size_t>(r.u64());
  spec.unit_trials = static_cast<std::size_t>(r.u64());
  max_attempts = static_cast<std::size_t>(r.u64());
}

void write_result(Writer& w, const svc::UnitResult& result) {
  w.u64(result.unit_id);
  w.u64(result.scenario_index);
  w.u64(result.trial_begin);
  w.u64(result.outcomes.size());
  for (const core::ExperimentOutcome& o : result.outcomes) {
    svc::write_outcome(w, o);
  }
}

svc::UnitResult read_result(Reader& r) {
  svc::UnitResult result;
  result.unit_id = r.u64();
  result.scenario_index = r.u64();
  result.trial_begin = r.u64();
  const std::uint64_t n = r.u64();
  result.outcomes.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    result.outcomes.push_back(svc::read_outcome(r));
  }
  return result;
}

JournalCampaign& campaign_for(std::vector<JournalCampaign>& campaigns,
                              std::uint64_t campaign_id, std::uint64_t offset,
                              const char* what) {
  for (JournalCampaign& c : campaigns) {
    if (c.campaign_id == campaign_id) return c;
  }
  throw FormatError{"svcd journal: " + std::string{what} + " record at offset " +
                    std::to_string(offset) + " references unknown campaign " +
                    std::to_string(campaign_id)};
}

}  // namespace

Journal Journal::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                        0644);
  if (fd < 0) throw_errno("cannot create " + path);
  Writer w;
  w.u64(kJournalMagic);
  w.u32(kJournalFormatVersion);
  w.u32(svc::protocol_version());
  const std::uint64_t hash = snap::fnv1a(w.bytes());
  w.u64(hash);
  Journal j{path, fd};
  write_all(fd, w.bytes().data(), w.bytes().size());
  return j;
}

Journal Journal::append_to(const std::string& path,
                           std::uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot reopen " + path);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) < 0) {
    ::close(fd);
    throw_errno("cannot truncate " + path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throw_errno("cannot seek " + path);
  }
  return Journal{path, fd};
}

Journal::Journal(Journal&& other) noexcept
    : path_{std::move(other.path_)}, fd_{std::exchange(other.fd_, -1)} {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append_record(RecordType type,
                            const std::vector<std::uint8_t>& payload) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(payload.size());
  std::vector<std::uint8_t> bytes = std::move(w).take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint64_t hash = snap::fnv1a(bytes);
  Writer trailer;
  trailer.u64(hash);
  bytes.insert(bytes.end(), trailer.bytes().begin(), trailer.bytes().end());
  write_all(fd_, bytes.data(), bytes.size());
}

void Journal::campaign_header(std::uint64_t campaign_id,
                              const svc::CampaignSpec& spec,
                              std::size_t max_attempts) {
  Writer w;
  w.u64(campaign_id);
  write_spec(w, spec, max_attempts);
  append_record(RecordType::kCampaignHeader, w.bytes());
}

void Journal::unit_dispatched(std::uint64_t campaign_id, std::uint64_t unit_id,
                              std::uint64_t worker_key) {
  Writer w;
  w.u64(campaign_id);
  w.u64(unit_id);
  w.u64(worker_key);
  append_record(RecordType::kUnitDispatched, w.bytes());
}

void Journal::unit_completed(std::uint64_t campaign_id,
                             const svc::UnitResult& result) {
  Writer w;
  w.u64(campaign_id);
  write_result(w, result);
  append_record(RecordType::kUnitCompleted, w.bytes());
}

void Journal::campaign_sealed(std::uint64_t campaign_id, std::uint64_t digest,
                              std::uint64_t units) {
  Writer w;
  w.u64(campaign_id);
  w.u64(digest);
  w.u64(units);
  append_record(RecordType::kCampaignSealed, w.bytes());
}

void Journal::sync() {
  if (fd_ >= 0) (void)::fdatasync(fd_);
}

JournalReplay replay_journal(const std::string& path, TornTail policy) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  {
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_errno("read failed on " + path);
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
  }
  ::close(fd);

  // File header: never recoverable — a journal torn inside its own header
  // holds nothing to resume.
  if (bytes.size() < kFileHeaderSize) {
    throw FormatError{"svcd journal: file truncated in header (" +
                      std::to_string(bytes.size()) + " byte(s), header is " +
                      std::to_string(kFileHeaderSize) + ")"};
  }
  {
    Reader r{{bytes.data(), kFileHeaderSize}};
    if (r.u64() != kJournalMagic) {
      throw FormatError{"svcd journal: bad magic (not a bgpsim journal)"};
    }
    const std::uint32_t jver = r.u32();
    if (jver != kJournalFormatVersion) {
      throw FormatError{"svcd journal: unsupported journal format version " +
                        std::to_string(jver) + " (this build writes " +
                        std::to_string(kJournalFormatVersion) + ")"};
    }
    svc::check_protocol_version(r.u32(), "journal header");
    const std::uint64_t declared = r.u64();
    const std::uint64_t actual =
        snap::fnv1a({bytes.data(), kFileHeaderSize - 8});
    if (declared != actual) {
      throw FormatError{"svcd journal: header integrity trailer mismatch"};
    }
  }

  JournalReplay replay;
  std::uint64_t offset = kFileHeaderSize;
  while (offset < bytes.size()) {
    const std::uint64_t remaining = bytes.size() - offset;
    // Appends write whole records, so a crash leaves at most a *prefix* of
    // the final record: any incompleteness past here is a torn tail. A
    // record that is complete but wrong is corruption, handled below.
    if (remaining < kRecordPrefix) {
      if (policy == TornTail::kReject) {
        throw FormatError{"svcd journal: record at offset " +
                          std::to_string(offset) +
                          " truncated (journal ends mid-record)"};
      }
      replay.torn_tail = true;
      break;
    }
    Reader prefix{{bytes.data() + offset, kRecordPrefix}};
    const std::uint8_t raw_type = prefix.u8();
    const std::uint64_t payload_len = prefix.u64();
    if (payload_len > svc::kMaxPayload) {
      throw FormatError{"svcd journal: record at offset " +
                        std::to_string(offset) + ": payload length " +
                        std::to_string(payload_len) + " exceeds the " +
                        std::to_string(svc::kMaxPayload) + "-byte limit"};
    }
    if (raw_type < static_cast<std::uint8_t>(RecordType::kCampaignHeader) ||
        raw_type > static_cast<std::uint8_t>(RecordType::kCampaignSealed)) {
      throw FormatError{"svcd journal: record at offset " +
                        std::to_string(offset) + ": unknown record type " +
                        std::to_string(raw_type)};
    }
    const std::uint64_t total = kRecordPrefix + payload_len + 8;
    if (remaining < total) {
      if (policy == TornTail::kReject) {
        throw FormatError{"svcd journal: record at offset " +
                          std::to_string(offset) + " truncated (needs " +
                          std::to_string(total) + " byte(s), " +
                          std::to_string(remaining) + " left)"};
      }
      replay.torn_tail = true;
      break;
    }
    const std::size_t hashed = kRecordPrefix + static_cast<std::size_t>(payload_len);
    {
      Reader trailer{{bytes.data() + offset + hashed, 8}};
      const std::uint64_t declared = trailer.u64();
      const std::uint64_t actual = snap::fnv1a({bytes.data() + offset, hashed});
      if (declared != actual) {
        throw FormatError{"svcd journal: record at offset " +
                          std::to_string(offset) +
                          ": integrity trailer mismatch (corrupt record)"};
      }
    }

    Reader r{{bytes.data() + offset + kRecordPrefix,
              static_cast<std::size_t>(payload_len)}};
    switch (static_cast<RecordType>(raw_type)) {
      case RecordType::kCampaignHeader: {
        JournalCampaign c;
        c.campaign_id = r.u64();
        for (const JournalCampaign& seen : replay.campaigns) {
          if (seen.campaign_id == c.campaign_id) {
            throw FormatError{
                "svcd journal: duplicate campaign header for campaign " +
                std::to_string(c.campaign_id) + " at offset " +
                std::to_string(offset)};
          }
        }
        read_spec(r, c.spec, c.max_attempts);
        replay.campaigns.push_back(std::move(c));
        break;
      }
      case RecordType::kUnitDispatched: {
        const std::uint64_t cid = r.u64();
        const std::uint64_t unit_id = r.u64();
        (void)r.u64();  // worker incarnation key: advisory
        JournalCampaign& c =
            campaign_for(replay.campaigns, cid, offset, "unit-dispatched");
        c.inflight_at_crash.push_back(unit_id);
        break;
      }
      case RecordType::kUnitCompleted: {
        const std::uint64_t cid = r.u64();
        JournalCampaign& c =
            campaign_for(replay.campaigns, cid, offset, "unit-completed");
        svc::UnitResult result = read_result(r);
        for (auto it = c.inflight_at_crash.begin();
             it != c.inflight_at_crash.end(); ++it) {
          if (*it == result.unit_id) {
            c.inflight_at_crash.erase(it);
            break;
          }
        }
        c.completed.push_back(std::move(result));
        break;
      }
      case RecordType::kCampaignSealed: {
        const std::uint64_t cid = r.u64();
        JournalCampaign& c =
            campaign_for(replay.campaigns, cid, offset, "campaign-sealed");
        c.sealed = true;
        c.sealed_digest = r.u64();
        const std::uint64_t units = r.u64();
        if (units != c.completed.size()) {
          throw FormatError{
              "svcd journal: campaign " + std::to_string(cid) + " sealed at " +
              std::to_string(units) + " unit(s) but " +
              std::to_string(c.completed.size()) + " completion record(s)"};
        }
        break;
      }
    }
    r.finish();
    offset += total;
  }
  replay.valid_bytes = offset;
  return replay;
}

}  // namespace bgpsim::svcd
