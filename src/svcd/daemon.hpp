// svcd::Daemon — the always-on campaign service.
//
// Where the PR 4 Coordinator runs exactly one campaign over a fixed
// worker set and returns, the daemon is a persistent process built on
// svcd::EventLoop that:
//
//   - queues multiple campaigns (FIFO) submitted programmatically or over
//     a line-oriented unix admin socket (STATUS / SUBMIT / CANCEL);
//   - journals every state transition through svcd::Journal, so a daemon
//     killed mid-campaign resumes from the journal: completed units are
//     restored byte-for-byte, only units in flight at the crash re-run,
//     and the final digest is bit-identical to an uninterrupted run;
//   - streams one `bgpsim-bench-1` JSON line per completed unit (and one
//     per sealed campaign) to a results sink as work finishes, instead of
//     holding everything until the end;
//   - tolerates worker churn: TCP workers join mid-campaign through a
//     persistent listener, leave or die at any time, and each connection
//     is a fresh incarnation key in the UnitLedger's lease table, so the
//     requeue-on-different-worker exclusion logic survives arbitrary
//     join/leave sequences. Per-unit leases are EventLoop timers: a
//     worker that holds a unit past the deadline is failed and its unit
//     requeued elsewhere.
//
// The determinism contract is inherited from svc: trial i of scenario s
// is seeded from (s.seed + i) no matter which worker runs it, so any
// interleaving of churn, crashes, and resumes merges to the same bytes
// core::run_trials produces serially. Tests assert digest equality; the
// svcd_smoke harness does it end to end over the real binaries.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/coordinator.hpp"
#include "svc/transport.hpp"
#include "svc/units.hpp"
#include "svcd/event_loop.hpp"
#include "svcd/journal.hpp"

namespace bgpsim::svcd {

class Daemon;

struct DaemonOptions {
  /// Journal file to create for this daemon's campaigns; "" disables
  /// journaling (campaigns are then not resumable).
  std::string journal_path;

  /// Resume from an existing journal instead: replay it (recovering a
  /// torn tail), restore every campaign, and continue appending to the
  /// same file. Mutually exclusive with journal_path.
  std::string resume_path;

  /// Unix-domain admin socket path; "" disables the admin interface.
  std::string admin_socket;

  /// Listen for TCP workers joining at runtime (port 0 = ephemeral; the
  /// bound port is in tcp_port() and every STATUS response).
  bool tcp_listen = false;
  std::uint16_t tcp_port = 0;

  /// Per-unit lease in seconds; a worker holding a unit longer is failed
  /// and the unit requeued. <= 0 disables leases.
  double deadline_s = 0;

  /// Attempt cap per unit (see UnitLedger).
  std::size_t max_attempts = 3;

  /// Streaming results sink for bgpsim-bench-1 JSON lines; nullptr
  /// disables streaming.
  std::FILE* results = nullptr;

  /// One-shot mode: stop run() once at least one campaign was submitted
  /// and every submitted campaign reached a terminal state.
  bool exit_when_idle = false;

  /// Relay exec-workers' stderr with a "[worker N]" prefix.
  bool relay_stderr = true;

  /// Install SIGINT/SIGTERM handling (signalfd): a signal stops the loop
  /// gracefully. Off by default so embedding in tests leaves signal
  /// disposition alone.
  bool handle_signals = false;

  /// Test/progress hook, called after every merged unit.
  std::function<void(Daemon&, std::uint64_t campaign_id,
                     std::size_t units_done)>
      on_unit_done;
};

class Daemon {
 public:
  enum class CampaignState { kQueued, kRunning, kDone, kFailed, kCancelled };

  struct CampaignStatus {
    std::uint64_t id = 0;
    CampaignState state = CampaignState::kQueued;
    std::size_t units_done = 0;
    std::size_t unit_count = 0;
    std::uint64_t digest = 0;  // nonzero once sealed
  };

  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Queue a campaign (journaled immediately). Returns its campaign id.
  std::uint64_t submit(svc::CampaignSpec spec);

  /// Cancel a campaign. Queued campaigns never start; a running one stops
  /// dispatching and drops late results. Cancellation is NOT journaled: a
  /// resume re-queues the campaign. Returns false for unknown/terminal id.
  bool cancel(std::uint64_t campaign_id);

  [[nodiscard]] std::vector<CampaignStatus> status() const;

  /// Result of a campaign in state kDone. Throws CampaignError for
  /// kFailed (with the per-unit failure records), std::logic_error
  /// otherwise.
  [[nodiscard]] svc::CampaignResult take_result(std::uint64_t campaign_id);

  /// Fork an in-process worker over a socketpair (library/test path).
  void spawn_fork_worker();

  [[nodiscard]] std::uint16_t tcp_port() const;
  [[nodiscard]] std::size_t live_workers() const;
  /// pids of live fork-spawned workers (tests kill these to drill churn).
  [[nodiscard]] std::vector<pid_t> worker_pids() const;

  /// Dispatch and handle events until stop() — or, in exit_when_idle
  /// mode, until the queue drains. Throws std::runtime_error if progress
  /// became impossible (every worker died with no way to get more).
  void run();
  void stop() { loop_.stop(); }

  [[nodiscard]] EventLoop& loop() { return loop_; }

 private:
  struct Campaign {
    std::uint64_t id = 0;
    svc::UnitLedger ledger;
    CampaignState state = CampaignState::kQueued;
    std::optional<svc::CampaignResult> result;
    Campaign(std::uint64_t id_, svc::UnitLedger ledger_)
        : id{id_}, ledger{std::move(ledger_)} {}
  };

  struct Worker {
    std::uint64_t key = 0;
    svc::Connection conn;
    pid_t pid = -1;
    int stderr_fd = -1;
    std::uint64_t conn_token = 0;
    std::uint64_t stderr_token = 0;
    std::uint64_t lease_timer = 0;  // 0 = no lease armed
    bool inflight = false;
    std::uint64_t inflight_campaign = 0;
    std::uint64_t inflight_unit = 0;  // campaign-local unit id
    std::string stderr_partial;
  };

  struct AdminClient {
    int fd = -1;
    std::uint64_t token = 0;
    std::string inbuf;
  };

  Campaign* active_campaign();
  Campaign* find_campaign(std::uint64_t id);
  void restore_from_journal(const std::string& path);
  void seal_campaign(Campaign& c);
  void finish_failed(Campaign& c);
  void attach_worker(svc::Connection conn, pid_t pid, int stderr_fd);
  void dispatch();
  void on_worker_readable(std::uint64_t key);
  void handle_worker_frame(Worker& w, const svc::Frame& frame);
  void clear_inflight(Worker& w);
  void fail_worker(std::uint64_t key, const std::string& why);
  void check_progress_possible();
  void maybe_exit_idle();
  void stream_unit_line(const Campaign& c, const svc::UnitResult& result);
  void stream_campaign_line(const Campaign& c);
  void open_admin_socket();
  void on_admin_accept();
  void on_admin_readable(int fd);
  [[nodiscard]] std::string handle_admin_command(const std::string& line);
  void shutdown_workers();
  void close_all_in_forked_child();

  DaemonOptions options_;
  EventLoop loop_;
  std::optional<Journal> journal_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  std::uint64_t next_campaign_id_ = 1;
  std::map<std::uint64_t, Worker> workers_;
  std::uint64_t next_worker_key_ = 1;
  std::optional<svc::TcpListener> tcp_listener_;
  int admin_fd_ = -1;  // listening unix socket
  std::map<int, AdminClient> admin_clients_;
  bool any_submitted_ = false;
  std::string fatal_error_;
};

/// One-shot helpers powering `run_campaign --journal/--resume` and the
/// resume tests: run (or resume) a journaled campaign over `workers`
/// fork-workers and return the merged result. Throws CampaignError on
/// permanent unit failure, runtime_error if every worker died,
/// snap::FormatError on a corrupt journal.
struct JournaledRunOptions {
  std::size_t workers = 0;  // 0 = core::default_jobs()
  double deadline_s = 0;
  std::size_t max_attempts = 3;
  std::FILE* results = nullptr;
  std::function<void(Daemon&, std::uint64_t, std::size_t)> on_unit_done;
};

[[nodiscard]] svc::CampaignResult run_journaled_campaign(
    const svc::CampaignSpec& spec, const std::string& journal_path,
    const JournaledRunOptions& options = {});

[[nodiscard]] svc::CampaignResult resume_journaled_campaign(
    const std::string& journal_path, const JournaledRunOptions& options = {});

}  // namespace bgpsim::svcd
