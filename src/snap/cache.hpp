// Process-wide cache of converged-prelude snapshots.
//
// run_trials / run_trials_parallel key each trial's Phase-1 prelude by
// (driver, topology spec, prelude-shaping config, seed). On a hit the
// trial warm-starts from the cached snapshot instead of re-running cold
// convergence; on a miss the cold run captures its converged state and
// deposits it. Entries are immutable (shared_ptr<const Snapshot>), so
// concurrent trials can fork from one entry without copies or locks
// beyond the map mutex.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "snap/snapshot.hpp"

namespace bgpsim::snap {

class PreludeCache {
 public:
  /// The process-wide instance. Capacity comes from BGPSIM_SNAP_CACHE on
  /// first use (default kDefaultCapacity; 0 disables caching entirely).
  [[nodiscard]] static PreludeCache& instance();

  /// Lookup; null on miss. Counts a hit or a miss.
  [[nodiscard]] std::shared_ptr<const Snapshot> find(std::uint64_t key);

  /// Deposit; first writer wins (a concurrent duplicate is dropped).
  /// Evicts the oldest entry when full. No-op while disabled.
  void insert(std::uint64_t key, std::shared_ptr<const Snapshot> snapshot);

  [[nodiscard]] bool enabled() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::size_t size() const;
  /// Resize (evicting oldest entries if shrinking); 0 disables.
  void set_capacity(std::size_t capacity);
  void clear();

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  void reset_stats();

  static constexpr std::size_t kDefaultCapacity = 32;

  PreludeCache(const PreludeCache&) = delete;
  PreludeCache& operator=(const PreludeCache&) = delete;

 private:
  PreludeCache();  // reads BGPSIM_SNAP_CACHE

  void evict_to_capacity_locked();

  mutable std::mutex mu_;
  std::size_t capacity_ = kDefaultCapacity;
  std::list<std::uint64_t> order_;  // insertion order, oldest first
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<const Snapshot>,
                               std::list<std::uint64_t>::iterator>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bgpsim::snap
