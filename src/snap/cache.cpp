#include "snap/cache.hpp"

#include <utility>

#include "sim/env.hpp"

namespace bgpsim::snap {

// snap sits below core, so the knob is read through the shared sim-level
// parser (same contract: warn on garbage, fall back); the registry entry
// documenting BGPSIM_SNAP_CACHE lives in core/env.cpp.
PreludeCache::PreludeCache()
    : capacity_{sim::env_u64_or("BGPSIM_SNAP_CACHE",
                                PreludeCache::kDefaultCapacity)} {}

PreludeCache& PreludeCache::instance() {
  static PreludeCache cache;
  return cache;
}

std::shared_ptr<const Snapshot> PreludeCache::find(std::uint64_t key) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.first;
}

void PreludeCache::insert(std::uint64_t key,
                          std::shared_ptr<const Snapshot> snapshot) {
  if (!snapshot) return;
  std::lock_guard lock{mu_};
  if (capacity_ == 0 || entries_.contains(key)) return;
  order_.push_back(key);
  entries_.emplace(key, std::pair{std::move(snapshot), std::prev(order_.end())});
  evict_to_capacity_locked();
}

bool PreludeCache::enabled() const {
  std::lock_guard lock{mu_};
  return capacity_ > 0;
}

std::size_t PreludeCache::capacity() const {
  std::lock_guard lock{mu_};
  return capacity_;
}

std::size_t PreludeCache::size() const {
  std::lock_guard lock{mu_};
  return entries_.size();
}

void PreludeCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock{mu_};
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void PreludeCache::clear() {
  std::lock_guard lock{mu_};
  entries_.clear();
  order_.clear();
}

std::uint64_t PreludeCache::hits() const {
  std::lock_guard lock{mu_};
  return hits_;
}

std::uint64_t PreludeCache::misses() const {
  std::lock_guard lock{mu_};
  return misses_;
}

void PreludeCache::reset_stats() {
  std::lock_guard lock{mu_};
  hits_ = 0;
  misses_ = 0;
}

void PreludeCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

}  // namespace bgpsim::snap
