#include "snap/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bgpsim::snap {
namespace {

// Local parse of BGPSIM_SNAP_CACHE (snap sits below core, so it cannot
// use core::env_or); same contract: warn on garbage, fall back.
std::size_t capacity_from_env() {
  const char* raw = std::getenv("BGPSIM_SNAP_CACHE");
  if (!raw || !*raw) return PreludeCache::kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr,
                 "bgpsim: ignoring BGPSIM_SNAP_CACHE=\"%s\" (not an unsigned "
                 "integer), using %zu\n",
                 raw, PreludeCache::kDefaultCapacity);
    return PreludeCache::kDefaultCapacity;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

PreludeCache::PreludeCache() : capacity_{capacity_from_env()} {}

PreludeCache& PreludeCache::instance() {
  static PreludeCache cache;
  return cache;
}

std::shared_ptr<const Snapshot> PreludeCache::find(std::uint64_t key) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.first;
}

void PreludeCache::insert(std::uint64_t key,
                          std::shared_ptr<const Snapshot> snapshot) {
  if (!snapshot) return;
  std::lock_guard lock{mu_};
  if (capacity_ == 0 || entries_.contains(key)) return;
  order_.push_back(key);
  entries_.emplace(key, std::pair{std::move(snapshot), std::prev(order_.end())});
  evict_to_capacity_locked();
}

bool PreludeCache::enabled() const {
  std::lock_guard lock{mu_};
  return capacity_ > 0;
}

std::size_t PreludeCache::capacity() const {
  std::lock_guard lock{mu_};
  return capacity_;
}

std::size_t PreludeCache::size() const {
  std::lock_guard lock{mu_};
  return entries_.size();
}

void PreludeCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock{mu_};
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void PreludeCache::clear() {
  std::lock_guard lock{mu_};
  entries_.clear();
  order_.clear();
}

std::uint64_t PreludeCache::hits() const {
  std::lock_guard lock{mu_};
  return hits_;
}

std::uint64_t PreludeCache::misses() const {
  std::lock_guard lock{mu_};
  return misses_;
}

void PreludeCache::reset_stats() {
  std::lock_guard lock{mu_};
  hits_ = 0;
  misses_ = 0;
}

void PreludeCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

}  // namespace bgpsim::snap
