#include "snap/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

namespace bgpsim::snap {
namespace {

// "bgpsnap\0" as a little-endian u64.
constexpr std::uint64_t kMagic = 0x0070616e73706762ULL;

}  // namespace

Snapshot::Snapshot(SnapshotMeta meta, std::vector<std::uint8_t> payload)
    : meta_{meta},
      payload_{std::move(payload)},
      content_hash_{fnv1a(payload_)} {}

std::vector<std::uint8_t> Snapshot::encode() const {
  Writer w;
  w.u64(kMagic);
  w.u32(kFormatVersion);
  w.u8(static_cast<std::uint8_t>(meta_.driver));
  w.u64(meta_.topology_hash);
  w.u64(meta_.config_hash);
  w.u64(meta_.seed);
  w.u32(meta_.destination);
  w.b(meta_.originated);
  w.b(meta_.quiescent);
  w.time(meta_.sim_time);
  w.u64(payload_.size());
  std::vector<std::uint8_t> blob = std::move(w).take();
  blob.insert(blob.end(), payload_.begin(), payload_.end());
  const std::uint64_t integrity = fnv1a(blob);
  Writer trailer;
  trailer.u64(integrity);
  const auto& t = trailer.bytes();
  blob.insert(blob.end(), t.begin(), t.end());
  return blob;
}

Snapshot Snapshot::decode(std::span<const std::uint8_t> blob) {
  if (blob.size() < 8 + 8) {
    throw FormatError{"snapshot blob too short to hold magic and trailer"};
  }
  // Verify the integrity trailer before trusting any field.
  Reader trailer{blob.subspan(blob.size() - 8)};
  const std::uint64_t stored = trailer.u64();
  const std::uint64_t computed = fnv1a(blob.first(blob.size() - 8));
  Reader r{blob.first(blob.size() - 8)};
  if (r.u64() != kMagic) {
    throw FormatError{"not a bgpsim snapshot (bad magic)"};
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw FormatError{"unsupported snapshot format version " +
                      std::to_string(version) + " (this build reads version " +
                      std::to_string(kFormatVersion) + ")"};
  }
  if (computed != stored) {
    throw FormatError{"snapshot integrity hash mismatch (corrupted blob?)"};
  }
  SnapshotMeta meta;
  const std::uint8_t driver = r.u8();
  if (driver < 1 || driver > 3) {
    throw FormatError{"snapshot names unknown driver tag " +
                      std::to_string(driver)};
  }
  meta.driver = static_cast<DriverKind>(driver);
  meta.topology_hash = r.u64();
  meta.config_hash = r.u64();
  meta.seed = r.u64();
  meta.destination = r.u32();
  meta.originated = r.b();
  meta.quiescent = r.b();
  meta.sim_time = r.time();
  const std::uint64_t payload_len = r.u64();
  if (payload_len != r.remaining()) {
    throw FormatError{"snapshot payload length " +
                      std::to_string(payload_len) + " does not match the " +
                      std::to_string(r.remaining()) + " byte(s) present"};
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(static_cast<std::size_t>(payload_len));
  for (std::uint64_t i = 0; i < payload_len; ++i) payload.push_back(r.u8());
  return Snapshot{meta, std::move(payload)};
}

void Snapshot::save_file(const std::string& path) const {
  const std::vector<std::uint8_t> blob = encode();
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw std::runtime_error{"snapshot: cannot open " + path + " for writing"};
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw std::runtime_error{"snapshot: short write to " + path};
  }
}

Snapshot Snapshot::load_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"snapshot: cannot open " + path};
  }
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>{in},
                                 std::istreambuf_iterator<char>{}};
  if (in.bad()) {
    throw std::runtime_error{"snapshot: read error on " + path};
  }
  return decode(blob);
}

std::uint64_t hash_topology(const net::Topology& topo) {
  Hasher h;
  h.mix(topo.node_count());
  h.mix(topo.link_count());
  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const net::Link& link = topo.link(id);
    h.mix(link.a);
    h.mix(link.b);
    h.mix_time(link.delay);
    h.mix(link.up ? 1 : 0);
  }
  return h.value();
}

}  // namespace bgpsim::snap
