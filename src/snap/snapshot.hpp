// Versioned, deterministic checkpoints of complete simulation state.
//
// A Snapshot is an opaque payload (written by an experiment driver via
// snap::Writer) plus identity metadata: which driver wrote it, hashes of
// the topology and of every prelude-shaping configuration knob, the root
// seed, and the simulation clock. The metadata is what makes restore safe:
// a driver refuses to warm-start from a snapshot whose identity does not
// match the scenario it is about to run, with a precise error instead of
// silently diverging state.
//
// On-disk layout of encode() (all little-endian):
//   offset 0   u64  magic "bgpsnap\0"
//   offset 8   u32  format version (kFormatVersion)
//   offset 12  ...  meta fields, u64 payload length, payload bytes
//   trailer    u64  FNV-1a over everything before the trailer
// The version sits at a fixed offset so readers can reject a future
// format before trusting any field behind it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "snap/codec.hpp"

namespace bgpsim::snap {

/// Bump on any change to the meta or payload layout.
/// v2: pooled-queue EventId encoding (slot|generation) inside serialized
/// MRAI timers; the data plane's bridge event moved to the simulator's
/// external slot and its EventId left the record.
/// v3: the simulator prologue gained the live pending-event list as
/// sorted (time µs, seq) pairs — the backend-invariant view of the event
/// queue, byte-identical whether the run used the timer wheel or the
/// heap (slot/generation/free-list order are allocation artifacts and
/// stay out of the stream). Restore verifies the list against the live
/// queue instead of rebuilding it: closures are not serializable, so a
/// fresh restore still requires quiescence (zero entries).
/// v4: multi-prefix SoA RIB — the BGP payload gained a shared prefix
/// table section ahead of the per-node sections, and in-queue update
/// payloads carry a tag byte (0 = single UpdateMsg, 1 = UpdateBatch).
/// v5: redesigned fwd API — the data plane's hop events are serialized in
/// ascending (time µs, seq) order as an explicit backend-invariant
/// contract (ring cohorts or binary heap, BGPSIM_DATAPLANE_RINGS), so
/// snapshots are portable across hop-store backends; the bump fences off
/// v4 builds whose data plane cannot restore into a ring store.
inline constexpr std::uint32_t kFormatVersion = 5;

/// Byte offset of the format-version field inside encode() output —
/// stable across versions (it sits directly behind the magic).
inline constexpr std::size_t kVersionOffset = 8;

/// Which experiment driver wrote the payload. Payload layouts are
/// per-driver and private to that driver; the tag prevents cross-feeding.
enum class DriverKind : std::uint8_t { kBgp = 1, kDv = 2, kLs = 3 };

[[nodiscard]] constexpr const char* to_string(DriverKind d) {
  switch (d) {
    case DriverKind::kBgp:
      return "bgp";
    case DriverKind::kDv:
      return "dv";
    case DriverKind::kLs:
      return "ls";
  }
  return "?";
}

struct SnapshotMeta {
  DriverKind driver = DriverKind::kBgp;
  /// hash_topology() of the built topology the state refers to.
  std::uint64_t topology_hash = 0;
  /// Driver-specific hash of every knob that shaped the saved state
  /// (protocol config, processing delays, destination-choice inputs).
  std::uint64_t config_hash = 0;
  /// Scenario root seed the run was started with.
  std::uint64_t seed = 0;
  /// The destination the run selected (restore must agree on it).
  net::NodeId destination = net::kInvalidNode;
  /// Whether the prelude included the origination (event != Tup).
  bool originated = false;
  /// True when taken at control-plane quiescence with an empty event
  /// queue — the only instant a snapshot can be restored into a freshly
  /// constructed object graph (scheduled closures are not serializable).
  bool quiescent = false;
  /// Simulation clock at the instant of capture.
  sim::SimTime sim_time = sim::SimTime::zero();
};

class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(SnapshotMeta meta, std::vector<std::uint8_t> payload);

  [[nodiscard]] const SnapshotMeta& meta() const { return meta_; }
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return payload_;
  }
  /// True for a default-constructed (never captured) snapshot.
  [[nodiscard]] bool empty() const { return payload_.empty(); }
  /// FNV-1a over the payload: the state fingerprint the restore-equivalence
  /// checks compare.
  [[nodiscard]] std::uint64_t content_hash() const { return content_hash_; }
  [[nodiscard]] std::size_t size_bytes() const { return payload_.size(); }

  /// Self-contained blob: magic, version, meta, payload, integrity hash.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse an encoded blob. Throws FormatError on bad magic, unsupported
  /// version, truncation, trailing bytes, or integrity-hash mismatch.
  [[nodiscard]] static Snapshot decode(std::span<const std::uint8_t> blob);

  /// File I/O over encode()/decode(). Throws std::runtime_error on I/O
  /// failure, FormatError on malformed content.
  void save_file(const std::string& path) const;
  [[nodiscard]] static Snapshot load_file(const std::string& path);

 private:
  SnapshotMeta meta_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t content_hash_ = fnv1a({});
};

/// Identity hash of a topology: node count plus every link's endpoints,
/// delay, and up/down state.
[[nodiscard]] std::uint64_t hash_topology(const net::Topology& topo);

}  // namespace bgpsim::snap
