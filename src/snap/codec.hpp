// Binary codec for simulation checkpoints (header-only).
//
// The format is deliberately boring: little-endian fixed-width integers,
// length-prefixed containers, no alignment, no varints. Determinism is the
// whole point — the same simulation state must always produce the same
// bytes, because restore-equivalence is verified by comparing encodings
// (see snap/snapshot.hpp and the drivers' round-trip probes).
//
// Header-only so that every layer (net, fwd, bgp, dv, ls, metrics) can
// serialize its own private state without linking against bgpsim_snap —
// the library proper (snapshot.cpp, cache.cpp) sits *above* those layers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace bgpsim::snap {

/// Thrown on any malformed snapshot input: truncation, bad magic, version
/// or integrity-hash mismatch, trailing bytes. Never undefined behavior.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// FNV-1a, byte-wise — the same constants the fuzzer's campaign digest
// uses, so one hash idiom serves the whole repo.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// Incremental FNV-1a over 64-bit words: the identity-hash builder for
/// topology / configuration fingerprints (snapshot meta, cache keys).
class Hasher {
 public:
  Hasher& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= kFnvPrime;
    }
    return *this;
  }
  Hasher& mix_time(sim::SimTime t) {
    return mix(static_cast<std::uint64_t>(t.as_micros()));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// Appends little-endian fixed-width values to a byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { put(static_cast<std::uint64_t>(v), 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v), 8); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void time(sim::SimTime t) { i64(t.as_micros()); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const& {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  void put(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffU));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over an encoded buffer. Every underrun throws
/// FormatError; finish() additionally rejects trailing bytes, so a decode
/// that consumes a different shape than the encode wrote always surfaces.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_{bytes} {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get(4)); }
  std::uint64_t u64() { return get(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(get(8)); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  sim::SimTime time() { return sim::SimTime::micros(i64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s{reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n)};
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Require that every byte was consumed.
  void finish() const {
    if (pos_ != bytes_.size()) {
      throw FormatError{"snapshot decode left " +
                        std::to_string(bytes_.size() - pos_) +
                        " trailing byte(s)"};
    }
  }

 private:
  void need(std::uint64_t n) const {
    if (n > bytes_.size() - pos_) {
      throw FormatError{"snapshot truncated: need " + std::to_string(n) +
                        " byte(s) at offset " + std::to_string(pos_) +
                        ", have " + std::to_string(bytes_.size() - pos_)};
    }
  }
  std::uint64_t get(int n) {
    need(static_cast<std::uint64_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// RNG streams checkpoint as their raw engine words plus the retained
/// root seed (child() derives from it, so it is part of the state).
inline void write_rng(Writer& w, const sim::Rng& rng) {
  const sim::Rng::State st = rng.state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.u64(st.seed);
}

inline void read_rng(Reader& r, sim::Rng& rng) {
  sim::Rng::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.seed = r.u64();
  rng.set_state(st);
}

}  // namespace bgpsim::snap
