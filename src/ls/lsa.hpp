// Link-State Advertisements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace bgpsim::ls {

/// One router's self-description: its live adjacencies and the prefixes it
/// hosts. Freshness is a per-origin sequence number.
struct Lsa {
  net::NodeId origin = net::kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<net::NodeId> neighbors;  // up adjacencies, ascending
  std::vector<net::Prefix> prefixes;   // hosted prefixes, ascending

  [[nodiscard]] std::string to_string() const {
    std::string out = "LSA(origin " + std::to_string(origin) + " seq " +
                      std::to_string(seq) + " nbrs";
    for (const auto n : neighbors) out += " " + std::to_string(n);
    out += ")";
    return out;
  }
};

/// Flooding envelope: one LSA per message (a full LSDB exchange at session
/// establishment is a burst of these).
struct LsaMsg {
  Lsa lsa;
};

}  // namespace bgpsim::ls
