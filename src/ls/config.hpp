// Link-state (OSPF/IS-IS-like) baseline configuration.
//
// The paper's §2 cites Hengartner et al.: transient loops form in link
// state protocols too, but they are short (bounded by flooding + SPF
// delay), and Sridharan et al. found packet loops correlate with BGP — not
// IS-IS — events. This module provides the link-state side of that
// comparison on the same substrate.
#pragma once

#include "sim/time.hpp"

namespace bgpsim::ls {

struct LsConfig {
  /// Delay between an LSDB change and the SPF run it schedules (routers
  /// batch changes; IS-IS spf-interval is typically tens of ms to
  /// seconds). Drawn uniformly per run.
  sim::SimTime spf_delay_lo = sim::SimTime::millis(50);
  sim::SimTime spf_delay_hi = sim::SimTime::millis(200);
};

}  // namespace bgpsim::ls
