#include "ls/network.hpp"

#include <utility>

namespace bgpsim::ls {

LsNetwork::LsNetwork(sim::Simulator& simulator, net::Topology& topology,
                     const LsConfig& config,
                     const net::ProcessingDelay& processing,
                     const sim::Rng& root_rng)
    : sim_{simulator}, topo_{topology}, transport_{simulator, topology} {
  const std::size_t n = topo_.node_count();
  fibs_.resize(n);
  queues_.reserve(n);
  speakers_.reserve(n);

  for (net::NodeId node = 0; node < n; ++node) {
    queues_.push_back(std::make_unique<net::ProcessingQueue>(
        simulator, root_rng.child("proc", node), processing));
    speakers_.push_back(std::make_unique<LsSpeaker>(
        node, config, simulator, transport_, fibs_[node],
        root_rng.child("ls", node)));
    speakers_.back()->set_peers(topo_.up_neighbors(node));
  }

  transport_.set_delivery_handler([this](net::Envelope env) {
    queues_[env.to]->accept(std::move(env));
  });
  transport_.set_session_handler(
      [this](net::NodeId self, net::NodeId peer, bool up) {
        queues_[self]->accept_session_event(
            net::ProcessingQueue::SessionEvent{peer, up});
      });

  for (net::NodeId node = 0; node < n; ++node) {
    queues_[node]->set_message_handler([this, node](const net::Envelope& env) {
      speakers_[node]->handle_lsa(
          env.from, env.payload.get<LsaMsg>().lsa);
    });
    queues_[node]->set_session_handler(
        [this, node](const net::ProcessingQueue::SessionEvent& ev) {
          speakers_[node]->handle_session(ev.peer, ev.up);
        });
  }
}

void LsNetwork::set_hooks(const LsSpeaker::Hooks& hooks) {
  for (auto& s : speakers_) s->set_hooks(hooks);
}

void LsNetwork::start_all() {
  for (auto& s : speakers_) s->start();
}

bool LsNetwork::busy() const {
  if (control_messages_in_flight() > 0) return true;
  for (const auto& q : queues_) {
    if (q->busy() || q->backlog() > 0) return true;
  }
  for (const auto& s : speakers_) {
    if (s->spf_pending()) return true;
  }
  return false;
}

namespace {

void save_lsa_payload(snap::Writer& w, const net::Payload& payload) {
  const Lsa& lsa = payload.get<LsaMsg>().lsa;
  w.u32(lsa.origin);
  w.u64(lsa.seq);
  w.u64(lsa.neighbors.size());
  for (const net::NodeId n : lsa.neighbors) w.u32(n);
  w.u64(lsa.prefixes.size());
  for (const net::Prefix p : lsa.prefixes) w.u32(p);
}

net::Payload load_lsa_payload(snap::Reader& r) {
  LsaMsg msg;
  msg.lsa.origin = r.u32();
  msg.lsa.seq = r.u64();
  const std::uint64_t n_nbrs = r.u64();
  msg.lsa.neighbors.reserve(static_cast<std::size_t>(n_nbrs));
  for (std::uint64_t i = 0; i < n_nbrs; ++i) {
    msg.lsa.neighbors.push_back(r.u32());
  }
  const std::uint64_t n_prefixes = r.u64();
  msg.lsa.prefixes.reserve(static_cast<std::size_t>(n_prefixes));
  for (std::uint64_t i = 0; i < n_prefixes; ++i) {
    msg.lsa.prefixes.push_back(r.u32());
  }
  return net::Payload{std::move(msg)};
}

}  // namespace

void LsNetwork::save_state(snap::Writer& w) const {
  transport_.save_state(w);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->save_state(w, save_lsa_payload);
    speakers_[node]->save_state(w);
    fibs_[node].save_state(w);
  }
}

void LsNetwork::restore_state(snap::Reader& r) {
  transport_.restore_state(r);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->restore_state(r, load_lsa_payload);
    speakers_[node]->restore_state(r);
    fibs_[node].restore_state(r);
  }
}

LsSpeaker::Counters LsNetwork::total_counters() const {
  LsSpeaker::Counters total;
  for (const auto& s : speakers_) {
    const auto& c = s->counters();
    total.lsas_originated += c.lsas_originated;
    total.lsas_flooded += c.lsas_flooded;
    total.lsas_accepted += c.lsas_accepted;
    total.lsas_ignored += c.lsas_ignored;
    total.spf_runs += c.spf_runs;
  }
  return total;
}

}  // namespace bgpsim::ls
