// Assembles a link-state network over a topology (the LS analogue of
// BgpNetwork / DvNetwork, on the same substrate).
#pragma once

#include <memory>
#include <vector>

#include "fwd/fib.hpp"
#include "ls/config.hpp"
#include "ls/speaker.hpp"
#include "net/channel.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::ls {

class LsNetwork {
 public:
  LsNetwork(sim::Simulator& simulator, net::Topology& topology,
            const LsConfig& config, const net::ProcessingDelay& processing,
            const sim::Rng& root_rng);

  [[nodiscard]] LsSpeaker& speaker(net::NodeId n) { return *speakers_.at(n); }
  [[nodiscard]] std::size_t size() const { return speakers_.size(); }
  [[nodiscard]] std::vector<fwd::Fib>& fibs() { return fibs_; }
  [[nodiscard]] net::Transport& transport() { return transport_; }

  void set_hooks(const LsSpeaker::Hooks& hooks);

  /// Bring every router up (initial LSA origination) — call once at t=0.
  void start_all();

  void originate(net::NodeId origin, net::Prefix prefix) {
    speaker(origin).originate(prefix);
  }
  void inject_tdown(net::NodeId origin, net::Prefix prefix) {
    speaker(origin).withdraw_origin(prefix);
  }
  void inject_link_failure(net::LinkId link) { transport_.fail_link(link); }

  [[nodiscard]] std::uint64_t control_messages_in_flight() const {
    return transport_.messages_sent() - transport_.messages_delivered() -
           transport_.messages_lost();
  }

  /// True while flooding or SPF work is outstanding anywhere.
  [[nodiscard]] bool busy() const;

  [[nodiscard]] LsSpeaker::Counters total_counters() const;

  /// Checkpoint codec (same layout discipline as bgp::BgpNetwork).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  sim::Simulator& sim_;
  net::Topology& topo_;
  net::Transport transport_;
  std::vector<fwd::Fib> fibs_;
  std::vector<std::unique_ptr<net::ProcessingQueue>> queues_;
  std::vector<std::unique_ptr<LsSpeaker>> speakers_;
};

}  // namespace bgpsim::ls
