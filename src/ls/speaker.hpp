// Link-state speaker: LSDB + flooding + delayed SPF.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "fwd/fib.hpp"
#include "ls/config.hpp"
#include "ls/lsa.hpp"
#include "net/channel.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "snap/codec.hpp"

namespace bgpsim::ls {

/// An OSPF/IS-IS-like router on the shared substrate.
///
/// Loops here are *micro-loops*: while an LSA floods, nodes that already
/// ran SPF on the new topology disagree with nodes that have not — exactly
/// the transient inconsistency the paper describes, but bounded by
/// flooding + SPF delay rather than by MRAI rounds.
class LsSpeaker {
 public:
  struct Hooks {
    std::function<void(net::NodeId from, net::NodeId to, const Lsa&)>
        on_lsa_sent;
    /// SPF installed a new next hop for a prefix (nullopt = unreachable).
    std::function<void(net::NodeId node, net::Prefix,
                       std::optional<net::NodeId>)>
        on_route_changed;
  };

  LsSpeaker(net::NodeId self, LsConfig config, sim::Simulator& simulator,
            net::Transport& transport, fwd::Fib& fib, sim::Rng rng);

  void set_peers(const std::vector<net::NodeId>& peers);
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Start hosting `prefix` and flood the change.
  void originate(net::Prefix prefix);
  /// Stop hosting `prefix` (Tdown) and flood the change.
  void withdraw_origin(net::Prefix prefix);

  /// Inbound LSA (call after processing delay).
  void handle_lsa(net::NodeId from, const Lsa& lsa);
  /// Session change (call after processing delay): re-originate our LSA
  /// and, on up, exchange full databases.
  void handle_session(net::NodeId peer, bool up);

  /// Bring the router up: originate the initial self-LSA.
  void start();

  // ---- introspection ----
  [[nodiscard]] net::NodeId id() const { return self_; }
  [[nodiscard]] bool spf_pending() const { return spf_pending_; }
  [[nodiscard]] const Lsa* lsdb_entry(net::NodeId origin) const;
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::Prefix prefix) const {
    return fib_.next_hop(prefix);
  }

  struct Counters {
    std::uint64_t lsas_originated = 0;
    std::uint64_t lsas_flooded = 0;   // copies put on the wire
    std::uint64_t lsas_accepted = 0;  // newer-than-stored arrivals
    std::uint64_t lsas_ignored = 0;   // stale/duplicate arrivals
    std::uint64_t spf_runs = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Checkpoint codec: RNG, sessions, hosted/tracked prefixes, LSDB,
  /// sequence counter, SPF flag, counters. A pending delayed-SPF event
  /// stays in the event queue (in-place restores only).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  void originate_self_lsa();
  void flood(const Lsa& lsa, std::optional<net::NodeId> except);
  void schedule_spf();
  void run_spf();

  net::NodeId self_;
  LsConfig config_;
  sim::Simulator& sim_;
  net::Transport& transport_;
  fwd::Fib& fib_;
  sim::Rng rng_;
  Hooks hooks_;

  std::set<net::NodeId> peers_;
  std::set<net::Prefix> hosted_;
  std::set<net::Prefix> tracked_prefixes_;  // everything ever seen hosted
  std::map<net::NodeId, Lsa> lsdb_;
  std::uint64_t my_seq_ = 0;
  bool spf_pending_ = false;
  Counters counters_;
};

}  // namespace bgpsim::ls
