#include "ls/speaker.hpp"

#include <algorithm>
#include <any>
#include <deque>
#include <limits>

namespace bgpsim::ls {

LsSpeaker::LsSpeaker(net::NodeId self, LsConfig config,
                     sim::Simulator& simulator, net::Transport& transport,
                     fwd::Fib& fib, sim::Rng rng)
    : self_{self},
      config_{config},
      sim_{simulator},
      transport_{transport},
      fib_{fib},
      rng_{std::move(rng)} {}

void LsSpeaker::set_peers(const std::vector<net::NodeId>& peers) {
  peers_ = std::set<net::NodeId>(peers.begin(), peers.end());
}

void LsSpeaker::start() { originate_self_lsa(); }

void LsSpeaker::originate(net::Prefix prefix) {
  hosted_.insert(prefix);
  originate_self_lsa();
}

void LsSpeaker::withdraw_origin(net::Prefix prefix) {
  if (hosted_.erase(prefix) == 0) return;
  originate_self_lsa();
}

void LsSpeaker::originate_self_lsa() {
  Lsa lsa;
  lsa.origin = self_;
  lsa.seq = ++my_seq_;
  lsa.neighbors.assign(peers_.begin(), peers_.end());
  lsa.prefixes.assign(hosted_.begin(), hosted_.end());
  ++counters_.lsas_originated;
  lsdb_[self_] = lsa;
  schedule_spf();
  flood(lsa, std::nullopt);
}

void LsSpeaker::flood(const Lsa& lsa, std::optional<net::NodeId> except) {
  for (const net::NodeId peer : peers_) {
    if (except && peer == *except) continue;
    ++counters_.lsas_flooded;
    transport_.send(self_, peer, std::any{LsaMsg{lsa}});
    if (hooks_.on_lsa_sent) hooks_.on_lsa_sent(self_, peer, lsa);
  }
}

void LsSpeaker::handle_lsa(net::NodeId from, const Lsa& lsa) {
  auto it = lsdb_.find(lsa.origin);
  if (it != lsdb_.end() && it->second.seq >= lsa.seq) {
    ++counters_.lsas_ignored;  // stale or duplicate: flood stops here
    return;
  }
  ++counters_.lsas_accepted;
  lsdb_[lsa.origin] = lsa;
  schedule_spf();
  flood(lsa, from);
}

void LsSpeaker::handle_session(net::NodeId peer, bool up) {
  if (up) {
    peers_.insert(peer);
    // Database exchange: offer everything we know to the new neighbor.
    for (const auto& [origin, lsa] : lsdb_) {
      ++counters_.lsas_flooded;
      transport_.send(self_, peer, std::any{LsaMsg{lsa}});
      if (hooks_.on_lsa_sent) hooks_.on_lsa_sent(self_, peer, lsa);
    }
  } else {
    peers_.erase(peer);
  }
  originate_self_lsa();  // our adjacency set changed
}

void LsSpeaker::schedule_spf() {
  if (spf_pending_) return;  // LSDB changes batch into the pending run
  spf_pending_ = true;
  const sim::SimTime delay =
      config_.spf_delay_lo == config_.spf_delay_hi
          ? config_.spf_delay_lo
          : rng_.uniform_time(config_.spf_delay_lo, config_.spf_delay_hi);
  sim_.schedule_after(delay, [this] {
    spf_pending_ = false;
    run_spf();
  });
}

void LsSpeaker::run_spf() {
  ++counters_.spf_runs;

  // Two-way-checked adjacency from the LSDB: a link exists iff both
  // endpoints' LSAs list each other.
  const auto linked = [&](net::NodeId a, net::NodeId b) {
    auto ia = lsdb_.find(a);
    auto ib = lsdb_.find(b);
    if (ia == lsdb_.end() || ib == lsdb_.end()) return false;
    return std::ranges::binary_search(ia->second.neighbors, b) &&
           std::ranges::binary_search(ib->second.neighbors, a);
  };

  // BFS (unit costs) with smaller-id tie-break: parent pointers give the
  // first hop. Deterministic because neighbor lists are sorted.
  std::map<net::NodeId, net::NodeId> first_hop;  // node -> next hop from us
  std::map<net::NodeId, int> dist;
  std::deque<net::NodeId> frontier{self_};
  dist[self_] = 0;
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    auto iu = lsdb_.find(u);
    if (iu == lsdb_.end()) continue;
    for (const net::NodeId v : iu->second.neighbors) {
      if (!linked(u, v)) continue;
      if (dist.contains(v)) continue;
      dist[v] = dist[u] + 1;
      first_hop[v] = (u == self_) ? v : first_hop[u];
      frontier.push_back(v);
    }
  }

  // Install routes for every hosted prefix in the LSDB. Where several
  // nodes host a prefix (anycast), the nearest (then smallest id) wins.
  std::map<net::Prefix, net::NodeId> best_host;
  for (const auto& [origin, lsa] : lsdb_) {
    if (origin != self_ && !dist.contains(origin)) continue;  // unreachable
    for (const net::Prefix prefix : lsa.prefixes) {
      auto it = best_host.find(prefix);
      if (it == best_host.end()) {
        best_host[prefix] = origin;
        continue;
      }
      const int d_new = origin == self_ ? 0 : dist[origin];
      const int d_old = it->second == self_ ? 0 : dist[it->second];
      if (d_new < d_old || (d_new == d_old && origin < it->second)) {
        it->second = origin;
      }
    }
  }

  // Track every prefix we have ever seen hosted so that routes to
  // withdrawn / unreachable prefixes get cleared, not just left behind.
  std::set<net::Prefix> seen;
  for (const auto& [origin, lsa] : lsdb_) {
    for (const net::Prefix p : lsa.prefixes) seen.insert(p);
  }
  for (const net::Prefix p : tracked_prefixes_) seen.insert(p);
  tracked_prefixes_ = seen;

  for (const net::Prefix prefix : seen) {
    auto host = best_host.find(prefix);
    std::optional<net::NodeId> nh;
    if (host != best_host.end()) {
      if (host->second == self_) {
        nh = std::nullopt;  // local delivery
      } else {
        nh = first_hop.at(host->second);
      }
    }
    const bool changed =
        nh ? fib_.set_next_hop(prefix, *nh) : fib_.clear_route(prefix);
    if (changed && hooks_.on_route_changed) {
      hooks_.on_route_changed(self_, prefix, nh);
    }
  }
}

const Lsa* LsSpeaker::lsdb_entry(net::NodeId origin) const {
  auto it = lsdb_.find(origin);
  return it == lsdb_.end() ? nullptr : &it->second;
}

}  // namespace bgpsim::ls
