#include "ls/speaker.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace bgpsim::ls {

LsSpeaker::LsSpeaker(net::NodeId self, LsConfig config,
                     sim::Simulator& simulator, net::Transport& transport,
                     fwd::Fib& fib, sim::Rng rng)
    : self_{self},
      config_{config},
      sim_{simulator},
      transport_{transport},
      fib_{fib},
      rng_{std::move(rng)} {}

void LsSpeaker::set_peers(const std::vector<net::NodeId>& peers) {
  peers_ = std::set<net::NodeId>(peers.begin(), peers.end());
}

void LsSpeaker::start() { originate_self_lsa(); }

void LsSpeaker::originate(net::Prefix prefix) {
  hosted_.insert(prefix);
  originate_self_lsa();
}

void LsSpeaker::withdraw_origin(net::Prefix prefix) {
  if (hosted_.erase(prefix) == 0) return;
  originate_self_lsa();
}

void LsSpeaker::originate_self_lsa() {
  Lsa lsa;
  lsa.origin = self_;
  lsa.seq = ++my_seq_;
  lsa.neighbors.assign(peers_.begin(), peers_.end());
  lsa.prefixes.assign(hosted_.begin(), hosted_.end());
  ++counters_.lsas_originated;
  lsdb_[self_] = lsa;
  schedule_spf();
  flood(lsa, std::nullopt);
}

void LsSpeaker::flood(const Lsa& lsa, std::optional<net::NodeId> except) {
  for (const net::NodeId peer : peers_) {
    if (except && peer == *except) continue;
    ++counters_.lsas_flooded;
    transport_.send(self_, peer, LsaMsg{lsa});
    if (hooks_.on_lsa_sent) hooks_.on_lsa_sent(self_, peer, lsa);
  }
}

void LsSpeaker::handle_lsa(net::NodeId from, const Lsa& lsa) {
  auto it = lsdb_.find(lsa.origin);
  if (it != lsdb_.end() && it->second.seq >= lsa.seq) {
    ++counters_.lsas_ignored;  // stale or duplicate: flood stops here
    return;
  }
  ++counters_.lsas_accepted;
  lsdb_[lsa.origin] = lsa;
  schedule_spf();
  flood(lsa, from);
}

void LsSpeaker::handle_session(net::NodeId peer, bool up) {
  if (up) {
    peers_.insert(peer);
    // Database exchange: offer everything we know to the new neighbor.
    for (const auto& [origin, lsa] : lsdb_) {
      ++counters_.lsas_flooded;
      transport_.send(self_, peer, LsaMsg{lsa});
      if (hooks_.on_lsa_sent) hooks_.on_lsa_sent(self_, peer, lsa);
    }
  } else {
    peers_.erase(peer);
  }
  originate_self_lsa();  // our adjacency set changed
}

void LsSpeaker::schedule_spf() {
  if (spf_pending_) return;  // LSDB changes batch into the pending run
  spf_pending_ = true;
  const sim::SimTime delay =
      config_.spf_delay_lo == config_.spf_delay_hi
          ? config_.spf_delay_lo
          : rng_.uniform_time(config_.spf_delay_lo, config_.spf_delay_hi);
  sim_.schedule_after(delay, [this] {
    spf_pending_ = false;
    run_spf();
  });
}

void LsSpeaker::run_spf() {
  ++counters_.spf_runs;

  // Two-way-checked adjacency from the LSDB: a link exists iff both
  // endpoints' LSAs list each other.
  const auto linked = [&](net::NodeId a, net::NodeId b) {
    auto ia = lsdb_.find(a);
    auto ib = lsdb_.find(b);
    if (ia == lsdb_.end() || ib == lsdb_.end()) return false;
    return std::ranges::binary_search(ia->second.neighbors, b) &&
           std::ranges::binary_search(ib->second.neighbors, a);
  };

  // BFS (unit costs) with smaller-id tie-break: parent pointers give the
  // first hop. Deterministic because neighbor lists are sorted.
  std::map<net::NodeId, net::NodeId> first_hop;  // node -> next hop from us
  std::map<net::NodeId, int> dist;
  std::deque<net::NodeId> frontier{self_};
  dist[self_] = 0;
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    auto iu = lsdb_.find(u);
    if (iu == lsdb_.end()) continue;
    for (const net::NodeId v : iu->second.neighbors) {
      if (!linked(u, v)) continue;
      if (dist.contains(v)) continue;
      dist[v] = dist[u] + 1;
      first_hop[v] = (u == self_) ? v : first_hop[u];
      frontier.push_back(v);
    }
  }

  // Install routes for every hosted prefix in the LSDB. Where several
  // nodes host a prefix (anycast), the nearest (then smallest id) wins.
  std::map<net::Prefix, net::NodeId> best_host;
  for (const auto& [origin, lsa] : lsdb_) {
    if (origin != self_ && !dist.contains(origin)) continue;  // unreachable
    for (const net::Prefix prefix : lsa.prefixes) {
      auto it = best_host.find(prefix);
      if (it == best_host.end()) {
        best_host[prefix] = origin;
        continue;
      }
      const int d_new = origin == self_ ? 0 : dist[origin];
      const int d_old = it->second == self_ ? 0 : dist[it->second];
      if (d_new < d_old || (d_new == d_old && origin < it->second)) {
        it->second = origin;
      }
    }
  }

  // Track every prefix we have ever seen hosted so that routes to
  // withdrawn / unreachable prefixes get cleared, not just left behind.
  std::set<net::Prefix> seen;
  for (const auto& [origin, lsa] : lsdb_) {
    for (const net::Prefix p : lsa.prefixes) seen.insert(p);
  }
  for (const net::Prefix p : tracked_prefixes_) seen.insert(p);
  tracked_prefixes_ = seen;

  for (const net::Prefix prefix : seen) {
    auto host = best_host.find(prefix);
    std::optional<net::NodeId> nh;
    if (host != best_host.end()) {
      if (host->second == self_) {
        nh = std::nullopt;  // local delivery
      } else {
        nh = first_hop.at(host->second);
      }
    }
    const bool changed =
        nh ? fib_.set_next_hop(prefix, *nh) : fib_.clear_route(prefix);
    if (changed && hooks_.on_route_changed) {
      hooks_.on_route_changed(self_, prefix, nh);
    }
  }
}

const Lsa* LsSpeaker::lsdb_entry(net::NodeId origin) const {
  auto it = lsdb_.find(origin);
  return it == lsdb_.end() ? nullptr : &it->second;
}

namespace {

void save_lsa(snap::Writer& w, const Lsa& lsa) {
  w.u32(lsa.origin);
  w.u64(lsa.seq);
  w.u64(lsa.neighbors.size());
  for (const net::NodeId n : lsa.neighbors) w.u32(n);
  w.u64(lsa.prefixes.size());
  for (const net::Prefix p : lsa.prefixes) w.u32(p);
}

Lsa load_lsa(snap::Reader& r) {
  Lsa lsa;
  lsa.origin = r.u32();
  lsa.seq = r.u64();
  const std::uint64_t n_nbrs = r.u64();
  lsa.neighbors.reserve(static_cast<std::size_t>(n_nbrs));
  for (std::uint64_t i = 0; i < n_nbrs; ++i) lsa.neighbors.push_back(r.u32());
  const std::uint64_t n_prefixes = r.u64();
  lsa.prefixes.reserve(static_cast<std::size_t>(n_prefixes));
  for (std::uint64_t i = 0; i < n_prefixes; ++i) {
    lsa.prefixes.push_back(r.u32());
  }
  return lsa;
}

}  // namespace

void LsSpeaker::save_state(snap::Writer& w) const {
  snap::write_rng(w, rng_);
  w.u64(peers_.size());
  for (const net::NodeId peer : peers_) w.u32(peer);
  w.u64(hosted_.size());
  for (const net::Prefix prefix : hosted_) w.u32(prefix);
  w.u64(tracked_prefixes_.size());
  for (const net::Prefix prefix : tracked_prefixes_) w.u32(prefix);
  w.u64(lsdb_.size());
  for (const auto& [origin, lsa] : lsdb_) save_lsa(w, lsa);
  w.u64(my_seq_);
  w.b(spf_pending_);
  w.u64(counters_.lsas_originated);
  w.u64(counters_.lsas_flooded);
  w.u64(counters_.lsas_accepted);
  w.u64(counters_.lsas_ignored);
  w.u64(counters_.spf_runs);
}

void LsSpeaker::restore_state(snap::Reader& r) {
  snap::read_rng(r, rng_);
  peers_.clear();
  const std::uint64_t n_peers = r.u64();
  for (std::uint64_t i = 0; i < n_peers; ++i) peers_.insert(r.u32());
  hosted_.clear();
  const std::uint64_t n_hosted = r.u64();
  for (std::uint64_t i = 0; i < n_hosted; ++i) hosted_.insert(r.u32());
  tracked_prefixes_.clear();
  const std::uint64_t n_tracked = r.u64();
  for (std::uint64_t i = 0; i < n_tracked; ++i) {
    tracked_prefixes_.insert(r.u32());
  }
  lsdb_.clear();
  const std::uint64_t n_lsas = r.u64();
  for (std::uint64_t i = 0; i < n_lsas; ++i) {
    Lsa lsa = load_lsa(r);
    const net::NodeId origin = lsa.origin;
    lsdb_.emplace(origin, std::move(lsa));
  }
  my_seq_ = r.u64();
  spf_pending_ = r.b();
  counters_.lsas_originated = r.u64();
  counters_.lsas_flooded = r.u64();
  counters_.lsas_accepted = r.u64();
  counters_.lsas_ignored = r.u64();
  counters_.spf_runs = r.u64();
}

}  // namespace bgpsim::ls
