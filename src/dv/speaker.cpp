#include "dv/speaker.hpp"

#include <algorithm>

namespace bgpsim::dv {

DvSpeaker::DvSpeaker(net::NodeId self, DvConfig config,
                     sim::Simulator& simulator, net::Transport& transport,
                     fwd::Fib& fib, sim::Rng rng)
    : self_{self},
      config_{config},
      sim_{simulator},
      transport_{transport},
      fib_{fib},
      rng_{std::move(rng)} {
  if (config_.periodic > sim::SimTime::zero()) start_periodic();
}

void DvSpeaker::set_peers(const std::vector<net::NodeId>& peers) {
  peers_ = std::set<net::NodeId>(peers.begin(), peers.end());
}

void DvSpeaker::originate(net::Prefix prefix) {
  originated_.insert(prefix);
  table_[prefix] = Entry{0, net::kInvalidNode};
  after_change(prefix);
}

void DvSpeaker::withdraw_origin(net::Prefix prefix) {
  if (originated_.erase(prefix) == 0) return;
  table_[prefix] = Entry{config_.infinity, net::kInvalidNode};
  after_change(prefix);
}

void DvSpeaker::handle_update(net::NodeId from, const DvUpdate& update) {
  if (!peers_.contains(from)) return;
  for (const auto& [prefix, sender_metric] : update.routes) {
    relax(from, prefix, sender_metric);
  }
}

void DvSpeaker::relax(net::NodeId from, net::Prefix prefix,
                      int sender_metric) {
  if (originated_.contains(prefix)) return;  // our own origination wins
  const int candidate =
      std::min(sender_metric + 1, config_.infinity);

  auto it = table_.find(prefix);
  const bool have = it != table_.end();
  if (have && it->second.next_hop == from) {
    // Updates from the current next hop are authoritative, better or worse
    // — this is where counting-to-infinity begins.
    if (it->second.metric != candidate) {
      it->second.metric = candidate;
      after_change(prefix);
    }
    return;
  }
  if (candidate >= config_.infinity) return;  // not an improvement
  if (!have || candidate < it->second.metric) {
    table_[prefix] = Entry{candidate, from};
    after_change(prefix);
  }
}

void DvSpeaker::after_change(net::Prefix prefix) {
  ++counters_.route_changes;
  const auto& entry = table_.at(prefix);
  const bool reachable = entry.metric < config_.infinity;
  if (reachable && entry.next_hop != net::kInvalidNode) {
    fib_.set_next_hop(prefix, entry.next_hop);
  } else {
    fib_.clear_route(prefix);
  }
  if (hooks_.on_route_changed) {
    hooks_.on_route_changed(self_, prefix,
                            reachable ? std::optional{entry.metric}
                                      : std::nullopt);
  }
  schedule_trigger();
}

void DvSpeaker::schedule_trigger() {
  if (!config_.triggered) return;  // periodic refresh only
  if (trigger_pending_) return;    // changes batch into the pending update
  trigger_pending_ = true;
  const sim::SimTime delay =
      config_.triggered_delay_lo == config_.triggered_delay_hi
          ? config_.triggered_delay_lo
          : rng_.uniform_time(config_.triggered_delay_lo,
                              config_.triggered_delay_hi);
  sim_.schedule_after(delay, [this] {
    trigger_pending_ = false;
    send_full_table();
  });
}

void DvSpeaker::send_full_table() {
  for (const net::NodeId peer : peers_) {
    DvUpdate update;
    update.routes.reserve(table_.size());
    for (const auto& [prefix, entry] : table_) {
      if (config_.split_horizon && entry.next_hop == peer) {
        if (config_.poison_reverse) {
          update.routes.emplace_back(prefix, config_.infinity);
          ++counters_.poisoned_advertisements;
        }
        continue;  // plain split horizon: omit
      }
      update.routes.emplace_back(prefix, entry.metric);
    }
    if (update.routes.empty()) continue;
    counters_.routes_advertised += update.routes.size();
    ++counters_.updates_sent;
    transport_.send(self_, peer, update);
    if (hooks_.on_update_sent) hooks_.on_update_sent(self_, peer, update);
  }
}

void DvSpeaker::start_periodic() {
  sim_.schedule_after(
      rng_.uniform_time(sim::SimTime::zero(), config_.periodic), [this] {
        send_full_table();
        start_periodic();
      });
}

void DvSpeaker::handle_session(net::NodeId peer, bool up) {
  if (up) {
    peers_.insert(peer);
    schedule_trigger();  // offer our table
    return;
  }
  peers_.erase(peer);
  for (auto& [prefix, entry] : table_) {
    if (entry.next_hop == peer && entry.metric < config_.infinity) {
      entry.metric = config_.infinity;
      after_change(prefix);
    }
  }
}

std::optional<int> DvSpeaker::metric(net::Prefix prefix) const {
  auto it = table_.find(prefix);
  if (it == table_.end() || it->second.metric >= config_.infinity) {
    return std::nullopt;
  }
  return it->second.metric;
}

std::optional<net::NodeId> DvSpeaker::next_hop(net::Prefix prefix) const {
  auto it = table_.find(prefix);
  if (it == table_.end() || it->second.metric >= config_.infinity ||
      it->second.next_hop == net::kInvalidNode) {
    return std::nullopt;
  }
  return it->second.next_hop;
}

void DvSpeaker::save_state(snap::Writer& w) const {
  snap::write_rng(w, rng_);
  w.u64(peers_.size());
  for (const net::NodeId peer : peers_) w.u32(peer);
  w.u64(originated_.size());
  for (const net::Prefix prefix : originated_) w.u32(prefix);
  w.u64(table_.size());
  for (const auto& [prefix, entry] : table_) {
    w.u32(prefix);
    w.i64(entry.metric);
    w.u32(entry.next_hop);
  }
  w.b(trigger_pending_);
  w.u64(counters_.updates_sent);
  w.u64(counters_.routes_advertised);
  w.u64(counters_.poisoned_advertisements);
  w.u64(counters_.route_changes);
}

void DvSpeaker::restore_state(snap::Reader& r) {
  snap::read_rng(r, rng_);
  peers_.clear();
  const std::uint64_t n_peers = r.u64();
  for (std::uint64_t i = 0; i < n_peers; ++i) peers_.insert(r.u32());
  originated_.clear();
  const std::uint64_t n_origins = r.u64();
  for (std::uint64_t i = 0; i < n_origins; ++i) originated_.insert(r.u32());
  table_.clear();
  const std::uint64_t n_routes = r.u64();
  for (std::uint64_t i = 0; i < n_routes; ++i) {
    const net::Prefix prefix = r.u32();
    Entry entry;
    entry.metric = static_cast<int>(r.i64());
    entry.next_hop = r.u32();
    table_.emplace(prefix, entry);
  }
  trigger_pending_ = r.b();
  counters_.updates_sent = r.u64();
  counters_.routes_advertised = r.u64();
  counters_.poisoned_advertisements = r.u64();
  counters_.route_changes = r.u64();
}

}  // namespace bgpsim::dv
