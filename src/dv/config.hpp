// Distance-vector (RIP-like) baseline configuration.
//
// The paper's §2 contrasts path-vector loop handling with distance-vector
// protocols: "poison-reverse can be used to detect two-node loops but
// fails to detect longer loops" (§6). This module implements that baseline
// so the contrast is measurable on the same substrate (same topologies,
// same data plane, same loop detector).
#pragma once

#include "sim/time.hpp"

namespace bgpsim::dv {

struct DvConfig {
  /// Metric value meaning "unreachable" (RIP uses 16).
  int infinity = 16;

  /// Split horizon: never advertise a route back to the neighbor it was
  /// learned from.
  bool split_horizon = true;

  /// Poison reverse: instead of omitting (split horizon), advertise the
  /// route back to its next hop with an infinite metric. Detects exactly
  /// the 2-node loops (the paper's point of comparison with path vector).
  bool poison_reverse = true;

  /// Send triggered updates on route changes (RIP RFC 2453 §3.10.1).
  /// Without them, all propagation rides the periodic refresh — the
  /// classic textbook setting where counting-to-infinity is easiest to see.
  bool triggered = true;

  /// Triggered updates are delayed by a uniform draw from this window (RIP
  /// RFC 2453 suggests 1-5 s to damp storms); further changes within the
  /// window batch into one update.
  sim::SimTime triggered_delay_lo = sim::SimTime::seconds(1);
  sim::SimTime triggered_delay_hi = sim::SimTime::seconds(5);

  /// Periodic full-table advertisement interval (RIP: 30 s, randomized
  /// phase per router). Zero disables the refresh; note that *without*
  /// periodic refresh a node that lost its route never re-hears a
  /// neighbor's stale route, so counting-to-infinity cannot occur —
  /// staleness needs a carrier.
  sim::SimTime periodic = sim::SimTime::seconds(30);
};

}  // namespace bgpsim::dv
