// RIP-like distance-vector speaker (baseline comparator).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "dv/config.hpp"
#include "fwd/fib.hpp"
#include "net/channel.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "snap/codec.hpp"

namespace bgpsim::dv {

/// One (prefix, metric) pair on the wire; a full update carries the
/// sender's table view after split-horizon / poison-reverse filtering.
struct DvUpdate {
  std::vector<std::pair<net::Prefix, int>> routes;
};

/// A RIP-like router: hop-count metrics, Bellman-Ford relaxation,
/// counting-to-infinity, triggered updates.
class DvSpeaker {
 public:
  struct Hooks {
    /// Every update message put on the wire.
    std::function<void(net::NodeId from, net::NodeId to, const DvUpdate&)>
        on_update_sent;
    /// Route table change for a prefix (nullopt metric = unreachable).
    std::function<void(net::NodeId node, net::Prefix, std::optional<int>)>
        on_route_changed;
  };

  DvSpeaker(net::NodeId self, DvConfig config, sim::Simulator& simulator,
            net::Transport& transport, fwd::Fib& fib, sim::Rng rng);

  void set_peers(const std::vector<net::NodeId>& peers);
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Originate `prefix` at metric 0 and trigger an update.
  void originate(net::Prefix prefix);

  /// Withdraw an origination: the route is poisoned (metric = infinity)
  /// and the poison propagates — the Tdown equivalent.
  void withdraw_origin(net::Prefix prefix);

  /// Inbound update (call after processing delay).
  void handle_update(net::NodeId from, const DvUpdate& update);

  /// Session state change (call after processing delay).
  void handle_session(net::NodeId peer, bool up);

  // ---- introspection ----
  [[nodiscard]] net::NodeId id() const { return self_; }
  /// Current metric for `prefix` (nullopt: no entry or at infinity).
  [[nodiscard]] std::optional<int> metric(net::Prefix prefix) const;
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::Prefix prefix) const;
  [[nodiscard]] bool trigger_pending() const { return trigger_pending_; }

  struct Counters {
    std::uint64_t updates_sent = 0;
    std::uint64_t routes_advertised = 0;
    std::uint64_t poisoned_advertisements = 0;  // poison-reverse entries
    std::uint64_t route_changes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Checkpoint codec: RNG, sessions, origins, route table, trigger flag,
  /// counters. Pending trigger/periodic events stay in the event queue; a
  /// fresh-graph restore is only valid in triggered-only mode at quiescence
  /// (no periodic refresh events outstanding).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct Entry {
    int metric = 0;
    net::NodeId next_hop = net::kInvalidNode;  // kInvalidNode: originated
  };

  /// Apply one learned (prefix, metric-at-sender) from `from`.
  void relax(net::NodeId from, net::Prefix prefix, int sender_metric);
  void after_change(net::Prefix prefix);
  void schedule_trigger();
  void send_full_table();
  void start_periodic();

  net::NodeId self_;
  DvConfig config_;
  sim::Simulator& sim_;
  net::Transport& transport_;
  fwd::Fib& fib_;
  sim::Rng rng_;
  Hooks hooks_;

  std::set<net::NodeId> peers_;
  std::set<net::Prefix> originated_;
  std::map<net::Prefix, Entry> table_;  // includes infinity (poisoned) rows
  bool trigger_pending_ = false;
  Counters counters_;
};

}  // namespace bgpsim::dv
