#include "dv/network.hpp"

#include <utility>

namespace bgpsim::dv {

DvNetwork::DvNetwork(sim::Simulator& simulator, net::Topology& topology,
                     const DvConfig& config,
                     const net::ProcessingDelay& processing,
                     const sim::Rng& root_rng)
    : sim_{simulator}, topo_{topology}, transport_{simulator, topology} {
  const std::size_t n = topo_.node_count();
  fibs_.resize(n);
  queues_.reserve(n);
  speakers_.reserve(n);

  for (net::NodeId node = 0; node < n; ++node) {
    queues_.push_back(std::make_unique<net::ProcessingQueue>(
        simulator, root_rng.child("proc", node), processing));
    speakers_.push_back(std::make_unique<DvSpeaker>(
        node, config, simulator, transport_, fibs_[node],
        root_rng.child("dv", node)));
    speakers_.back()->set_peers(topo_.up_neighbors(node));
  }

  transport_.set_delivery_handler([this](net::Envelope env) {
    queues_[env.to]->accept(std::move(env));
  });
  transport_.set_session_handler(
      [this](net::NodeId self, net::NodeId peer, bool up) {
        queues_[self]->accept_session_event(
            net::ProcessingQueue::SessionEvent{peer, up});
      });

  for (net::NodeId node = 0; node < n; ++node) {
    queues_[node]->set_message_handler([this, node](const net::Envelope& env) {
      speakers_[node]->handle_update(env.from,
                                     env.payload.get<DvUpdate>());
    });
    queues_[node]->set_session_handler(
        [this, node](const net::ProcessingQueue::SessionEvent& ev) {
          speakers_[node]->handle_session(ev.peer, ev.up);
        });
  }
}

void DvNetwork::set_hooks(const DvSpeaker::Hooks& hooks) {
  for (auto& s : speakers_) s->set_hooks(hooks);
}

bool DvNetwork::busy() const {
  if (control_messages_in_flight() > 0) return true;
  for (const auto& q : queues_) {
    if (q->busy() || q->backlog() > 0) return true;
  }
  for (const auto& s : speakers_) {
    if (s->trigger_pending()) return true;
  }
  return false;
}

namespace {

void save_dv_payload(snap::Writer& w, const net::Payload& payload) {
  const auto& msg = payload.get<DvUpdate>();
  w.u64(msg.routes.size());
  for (const auto& [prefix, metric] : msg.routes) {
    w.u32(prefix);
    w.i64(metric);
  }
}

net::Payload load_dv_payload(snap::Reader& r) {
  DvUpdate msg;
  const std::uint64_t n = r.u64();
  msg.routes.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::Prefix prefix = r.u32();
    msg.routes.emplace_back(prefix, static_cast<int>(r.i64()));
  }
  return net::Payload{std::move(msg)};
}

}  // namespace

void DvNetwork::save_state(snap::Writer& w) const {
  transport_.save_state(w);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->save_state(w, save_dv_payload);
    speakers_[node]->save_state(w);
    fibs_[node].save_state(w);
  }
}

void DvNetwork::restore_state(snap::Reader& r) {
  transport_.restore_state(r);
  for (std::size_t node = 0; node < speakers_.size(); ++node) {
    queues_[node]->restore_state(r, load_dv_payload);
    speakers_[node]->restore_state(r);
    fibs_[node].restore_state(r);
  }
}

DvSpeaker::Counters DvNetwork::total_counters() const {
  DvSpeaker::Counters total;
  for (const auto& s : speakers_) {
    const auto& c = s->counters();
    total.updates_sent += c.updates_sent;
    total.routes_advertised += c.routes_advertised;
    total.poisoned_advertisements += c.poisoned_advertisements;
    total.route_changes += c.route_changes;
  }
  return total;
}

}  // namespace bgpsim::dv
