// Campaign worker: serves WorkUnit frames until shutdown or EOF.
#pragma once

#include <cstdint>

#include "svc/transport.hpp"

namespace bgpsim::svc {

/// Serve one coordinator connection: send Hello, then loop — receive a
/// WorkUnit, run its trial range through core::run_single_trial (which
/// warm-starts from the process-wide snap::PreludeCache, so units that
/// differ only post-event share converged preludes), reply with a
/// UnitResult. A unit that throws inside the experiment driver is
/// reported as a UnitError frame and the worker keeps serving.
///
/// Tags every sim::Log line with "w<id>" so interleaved multi-process
/// campaign logs stay attributable.
///
/// Returns the process exit code: 0 on clean shutdown (kShutdown frame or
/// EOF at a frame boundary), 1 on a protocol violation or transport
/// error. Never throws.
[[nodiscard]] int worker_loop(Connection conn, std::uint64_t worker_id);

}  // namespace bgpsim::svc
