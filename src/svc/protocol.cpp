#include "svc/protocol.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/loop_detector.hpp"
#include "metrics/loop_stats.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::svc {
namespace {

using snap::FormatError;
using snap::Reader;
using snap::Writer;

void write_summary(Writer& w, const metrics::Summary& s) {
  w.u64(s.n);
  w.f64(s.mean);
  w.f64(s.stddev);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.median);
}

metrics::Summary read_summary(Reader& r) {
  metrics::Summary s;
  s.n = static_cast<std::size_t>(r.u64());
  s.mean = r.f64();
  s.stddev = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  s.median = r.f64();
  return s;
}

void write_loop_record(Writer& w, const metrics::LoopRecord& rec) {
  w.u64(rec.members.size());
  for (const net::NodeId m : rec.members) w.u32(m);
  w.time(rec.formed_at);
  w.b(rec.resolved_at.has_value());
  if (rec.resolved_at) w.time(*rec.resolved_at);
}

metrics::LoopRecord read_loop_record(Reader& r) {
  metrics::LoopRecord rec;
  const std::uint64_t n = r.u64();
  rec.members.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) rec.members.push_back(r.u32());
  rec.formed_at = r.time();
  if (r.b()) rec.resolved_at = r.time();
  return rec;
}

void write_loop_stats(Writer& w, const metrics::LoopStats& s) {
  w.u64(s.total_loops);
  w.u64(s.distinct_sizes);
  w.u64(s.max_size);
  w.f64(s.mean_size);
  w.f64(s.two_node_fraction);
  write_summary(w, s.duration_s);
  w.u64(s.by_size.size());
  for (const metrics::SizeBucket& b : s.by_size) {
    w.u64(b.size);
    w.u64(b.count);
    write_summary(w, b.duration_s);
    w.f64(b.worst_per_hop_s);
  }
  w.f64(s.active_time_s);
  w.u64(s.max_concurrent);
}

metrics::LoopStats read_loop_stats(Reader& r) {
  metrics::LoopStats s;
  s.total_loops = static_cast<std::size_t>(r.u64());
  s.distinct_sizes = static_cast<std::size_t>(r.u64());
  s.max_size = static_cast<std::size_t>(r.u64());
  s.mean_size = r.f64();
  s.two_node_fraction = r.f64();
  s.duration_s = read_summary(r);
  const std::uint64_t buckets = r.u64();
  s.by_size.reserve(static_cast<std::size_t>(buckets));
  for (std::uint64_t i = 0; i < buckets; ++i) {
    metrics::SizeBucket b;
    b.size = static_cast<std::size_t>(r.u64());
    b.count = static_cast<std::size_t>(r.u64());
    b.duration_s = read_summary(r);
    b.worst_per_hop_s = r.f64();
    s.by_size.push_back(std::move(b));
  }
  s.active_time_s = r.f64();
  s.max_concurrent = static_cast<std::size_t>(r.u64());
  return s;
}

void write_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> read_u64_vec(Reader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

/// Decode a frame payload with the shape check every schema shares: the
/// frame type must match and the payload must be fully consumed.
Reader payload_reader(const Frame& frame, FrameType expect) {
  if (frame.type != expect) {
    throw FormatError{"svc frame type mismatch: expected " +
                      std::to_string(static_cast<int>(expect)) + ", got " +
                      std::to_string(static_cast<int>(frame.type))};
  }
  return Reader{frame.payload};
}

}  // namespace

std::uint32_t protocol_version() { return kProtocolVersion; }

void check_protocol_version(std::uint32_t seen, const std::string& context) {
  if (seen != kProtocolVersion) {
    throw FormatError{"unsupported svc protocol version " +
                      std::to_string(seen) + " in " + context +
                      " (this build speaks " +
                      std::to_string(kProtocolVersion) + ")"};
  }
}

std::vector<std::uint8_t> encode_frame(const Frame& frame,
                                       std::uint32_t version) {
  Writer w;
  w.u64(kMagic);
  w.u32(version);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u64(frame.payload.size());
  std::vector<std::uint8_t> bytes = std::move(w).take();
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  const std::uint64_t hash = snap::fnv1a(bytes);
  Writer trailer;
  trailer.u64(hash);
  const std::vector<std::uint8_t>& t = trailer.bytes();
  bytes.insert(bytes.end(), t.begin(), t.end());
  return bytes;
}

FrameType decode_frame_header(std::span<const std::uint8_t> header,
                              std::uint64_t& payload_len) {
  if (header.size() < kHeaderSize) {
    throw FormatError{"svc frame truncated: header needs " +
                      std::to_string(kHeaderSize) + " byte(s), have " +
                      std::to_string(header.size())};
  }
  Reader r{header.first(kHeaderSize)};
  if (r.u64() != kMagic) {
    throw FormatError{"svc frame: bad magic (not a bgpsvc frame)"};
  }
  check_protocol_version(r.u32(), "frame header");
  const std::uint8_t raw_type = r.u8();
  if (raw_type < static_cast<std::uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    throw FormatError{"svc frame: unknown frame type " +
                      std::to_string(raw_type)};
  }
  payload_len = r.u64();
  if (payload_len > kMaxPayload) {
    throw FormatError{"svc frame: payload length " +
                      std::to_string(payload_len) + " exceeds the " +
                      std::to_string(kMaxPayload) + "-byte limit"};
  }
  return static_cast<FrameType>(raw_type);
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  std::uint64_t payload_len = 0;
  Frame frame;
  frame.type = decode_frame_header(bytes, payload_len);
  const std::uint64_t total = kHeaderSize + payload_len + 8;
  if (bytes.size() < total) {
    throw FormatError{"svc frame truncated: need " + std::to_string(total) +
                      " byte(s), have " + std::to_string(bytes.size())};
  }
  if (bytes.size() > total) {
    throw FormatError{"svc frame: " + std::to_string(bytes.size() - total) +
                      " trailing byte(s) after the integrity trailer"};
  }
  const std::span<const std::uint8_t> hashed =
      bytes.first(kHeaderSize + static_cast<std::size_t>(payload_len));
  Reader trailer{bytes.subspan(hashed.size())};
  const std::uint64_t declared = trailer.u64();
  const std::uint64_t actual = snap::fnv1a(hashed);
  if (declared != actual) {
    throw FormatError{"svc frame: integrity trailer mismatch (frame "
                      "corrupted in transit)"};
  }
  frame.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
                       bytes.begin() + static_cast<std::ptrdiff_t>(hashed.size()));
  return frame;
}

Frame encode_hello(const Hello& hello) {
  Writer w;
  w.u64(hello.worker_id);
  w.u64(hello.pid);
  return {FrameType::kHello, std::move(w).take()};
}

Hello decode_hello(const Frame& frame) {
  Reader r = payload_reader(frame, FrameType::kHello);
  Hello h;
  h.worker_id = r.u64();
  h.pid = r.u64();
  r.finish();
  return h;
}

Frame encode_work(const WorkUnit& unit) {
  Writer w;
  w.u64(unit.unit_id);
  w.u64(unit.scenario_index);
  w.u64(unit.trial_begin);
  w.u64(unit.trial_count);
  write_scenario(w, unit.scenario);
  return {FrameType::kWork, std::move(w).take()};
}

WorkUnit decode_work(const Frame& frame) {
  Reader r = payload_reader(frame, FrameType::kWork);
  WorkUnit u;
  u.unit_id = r.u64();
  u.scenario_index = r.u64();
  u.trial_begin = r.u64();
  u.trial_count = r.u64();
  u.scenario = read_scenario(r);
  r.finish();
  return u;
}

Frame encode_result(const UnitResult& result) {
  Writer w;
  w.u64(result.unit_id);
  w.u64(result.scenario_index);
  w.u64(result.trial_begin);
  w.u64(result.outcomes.size());
  for (const core::ExperimentOutcome& o : result.outcomes) write_outcome(w, o);
  return {FrameType::kResult, std::move(w).take()};
}

UnitResult decode_result(const Frame& frame) {
  Reader r = payload_reader(frame, FrameType::kResult);
  UnitResult res;
  res.unit_id = r.u64();
  res.scenario_index = r.u64();
  res.trial_begin = r.u64();
  const std::uint64_t n = r.u64();
  res.outcomes.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) res.outcomes.push_back(read_outcome(r));
  r.finish();
  return res;
}

Frame encode_error(const UnitError& error) {
  Writer w;
  w.u64(error.unit_id);
  w.str(error.message);
  return {FrameType::kError, std::move(w).take()};
}

UnitError decode_error(const Frame& frame) {
  Reader r = payload_reader(frame, FrameType::kError);
  UnitError e;
  e.unit_id = r.u64();
  e.message = r.str();
  r.finish();
  return e;
}

Frame encode_shutdown() { return {FrameType::kShutdown, {}}; }

void write_scenario(Writer& w, const core::Scenario& s) {
  if (s.trace != nullptr || s.oracle != nullptr || s.save_converged != nullptr ||
      s.warm_start != nullptr) {
    throw std::invalid_argument{
        "svc: a scenario with a caller-owned trace/oracle/snapshot hook "
        "cannot be shipped to a worker process (the observer lives in the "
        "coordinator's address space)"};
  }
  if (s.bgp.policy != nullptr) {
    throw std::invalid_argument{
        "svc: a scenario with an explicit bgp.policy table cannot be "
        "shipped to a worker; set policy_routing and let the driver build "
        "the table from the policy-capable topology"};
  }
  w.u8(static_cast<std::uint8_t>(s.topology.kind));
  w.u64(s.topology.size);
  w.u64(s.topology.topo_seed);
  w.str(s.topology.rel_file);
  w.u8(static_cast<std::uint8_t>(s.event));
  w.time(s.bgp.mrai);
  w.f64(s.bgp.jitter_lo);
  w.f64(s.bgp.jitter_hi);
  w.b(s.bgp.ssld);
  w.b(s.bgp.wrate);
  w.b(s.bgp.assertion);
  w.b(s.bgp.ghost_flushing);
  w.time(s.bgp.backup_caution);
  w.time(s.processing.min);
  w.time(s.processing.max);
  w.time(s.traffic.interval);
  w.i64(s.traffic.ttl);
  w.b(s.traffic.stagger);
  w.b(s.policy_routing);
  w.u64(s.seed);
  w.b(s.destination.has_value());
  if (s.destination) w.u32(*s.destination);
  w.b(s.tlong_link.has_value());
  if (s.tlong_link) w.u32(*s.tlong_link);
  w.time(s.flap_interval);
  w.time(s.traffic_lead);
  w.time(s.settle_margin);
  w.time(s.max_sim_time);
  w.u8(static_cast<std::uint8_t>(s.snap_roundtrip));
  w.time(s.snap_roundtrip_after);
  w.u64(s.prefixes);
  w.u64(s.origins.size());
  for (const net::NodeId o : s.origins) w.u32(o);
}

core::Scenario read_scenario(Reader& r) {
  core::Scenario s;
  s.topology.kind = static_cast<core::TopologyKind>(r.u8());
  s.topology.size = static_cast<std::size_t>(r.u64());
  s.topology.topo_seed = r.u64();
  s.topology.rel_file = r.str();
  s.event = static_cast<core::EventKind>(r.u8());
  s.bgp.mrai = r.time();
  s.bgp.jitter_lo = r.f64();
  s.bgp.jitter_hi = r.f64();
  s.bgp.ssld = r.b();
  s.bgp.wrate = r.b();
  s.bgp.assertion = r.b();
  s.bgp.ghost_flushing = r.b();
  s.bgp.backup_caution = r.time();
  s.processing.min = r.time();
  s.processing.max = r.time();
  s.traffic.interval = r.time();
  s.traffic.ttl = static_cast<int>(r.i64());
  s.traffic.stagger = r.b();
  s.policy_routing = r.b();
  s.seed = r.u64();
  if (r.b()) s.destination = r.u32();
  if (r.b()) s.tlong_link = r.u32();
  s.flap_interval = r.time();
  s.traffic_lead = r.time();
  s.settle_margin = r.time();
  s.max_sim_time = r.time();
  s.snap_roundtrip = static_cast<core::SnapRoundtrip>(r.u8());
  s.snap_roundtrip_after = r.time();
  s.prefixes = static_cast<std::size_t>(r.u64());
  const std::uint64_t n_origins = r.u64();
  s.origins.reserve(static_cast<std::size_t>(n_origins));
  for (std::uint64_t i = 0; i < n_origins; ++i) s.origins.push_back(r.u32());
  return s;
}

namespace {

/// The shared outcome body. The wire codec always appends the per-prefix
/// lane section (it is versioned); the digest writer passes
/// `lanes_even_if_empty = false` so a single-prefix outcome hashes to
/// exactly its pre-v3 bytes — every historical campaign digest holds.
void write_outcome_impl(Writer& w, const core::ExperimentOutcome& o,
                        bool lanes_even_if_empty) {
  const metrics::RunMetrics& m = o.metrics;
  w.f64(m.convergence_time_s);
  w.f64(m.looping_duration_s);
  w.u64(m.ttl_exhaustions);
  w.f64(m.looping_ratio);
  w.u64(m.packets_sent_during_convergence);
  w.u64(m.packets_sent_total);
  w.u64(m.packets_delivered);
  w.u64(m.packets_no_route);
  w.u64(m.packets_link_down);
  w.u64(m.updates_sent);
  w.u64(m.updates_sent_total);
  w.u64(m.bgp.announcements_sent);
  w.u64(m.bgp.withdrawals_sent);
  w.u64(m.bgp.updates_received);
  w.u64(m.bgp.poison_reverse_discards);
  w.u64(m.bgp.assertion_removals);
  w.u64(m.bgp.ghost_flushes);
  w.u64(m.bgp.ssld_conversions);
  w.u64(m.bgp.best_path_changes);
  w.u64(m.bgp.caution_holds);
  w.u64(m.loops_formed);
  w.f64(m.max_loop_duration_s);
  w.f64(m.mean_loop_size);
  w.u64(m.max_loop_size);
  w.u64(m.loops.size());
  for (const metrics::LoopRecord& rec : m.loops) write_loop_record(w, rec);
  write_loop_stats(w, m.loop_stats);
  write_u64_vec(w, m.update_activity_1s);
  write_u64_vec(w, m.exhaustion_activity_1s);
  w.time(m.event_at);
  w.time(m.last_update_at);
  w.time(m.first_exhaustion_at);
  w.time(m.last_exhaustion_at);
  w.u32(o.destination);
  w.b(o.failed_link.has_value());
  if (o.failed_link) w.u32(*o.failed_link);
  w.f64(o.initial_convergence_s);
  w.u64(o.events_fired);
  if (lanes_even_if_empty || !m.per_prefix.empty()) {
    w.u64(m.per_prefix.size());
    for (const metrics::RunMetrics::PrefixLane& lane : m.per_prefix) {
      w.u64(lane.loops_formed);
      w.f64(lane.max_loop_duration_s);
      w.u64(lane.ttl_exhaustions);
      w.u64(lane.packets_sent);
      w.u64(lane.packets_delivered);
    }
  }
}

}  // namespace

void write_outcome(Writer& w, const core::ExperimentOutcome& o) {
  write_outcome_impl(w, o, /*lanes_even_if_empty=*/true);
}

core::ExperimentOutcome read_outcome(Reader& r) {
  core::ExperimentOutcome o;
  metrics::RunMetrics& m = o.metrics;
  m.convergence_time_s = r.f64();
  m.looping_duration_s = r.f64();
  m.ttl_exhaustions = r.u64();
  m.looping_ratio = r.f64();
  m.packets_sent_during_convergence = r.u64();
  m.packets_sent_total = r.u64();
  m.packets_delivered = r.u64();
  m.packets_no_route = r.u64();
  m.packets_link_down = r.u64();
  m.updates_sent = r.u64();
  m.updates_sent_total = r.u64();
  m.bgp.announcements_sent = r.u64();
  m.bgp.withdrawals_sent = r.u64();
  m.bgp.updates_received = r.u64();
  m.bgp.poison_reverse_discards = r.u64();
  m.bgp.assertion_removals = r.u64();
  m.bgp.ghost_flushes = r.u64();
  m.bgp.ssld_conversions = r.u64();
  m.bgp.best_path_changes = r.u64();
  m.bgp.caution_holds = r.u64();
  m.loops_formed = r.u64();
  m.max_loop_duration_s = r.f64();
  m.mean_loop_size = r.f64();
  m.max_loop_size = static_cast<std::size_t>(r.u64());
  const std::uint64_t n_loops = r.u64();
  m.loops.reserve(static_cast<std::size_t>(n_loops));
  for (std::uint64_t i = 0; i < n_loops; ++i) {
    m.loops.push_back(read_loop_record(r));
  }
  m.loop_stats = read_loop_stats(r);
  m.update_activity_1s = read_u64_vec(r);
  m.exhaustion_activity_1s = read_u64_vec(r);
  m.event_at = r.time();
  m.last_update_at = r.time();
  m.first_exhaustion_at = r.time();
  m.last_exhaustion_at = r.time();
  o.destination = r.u32();
  if (r.b()) o.failed_link = r.u32();
  o.initial_convergence_s = r.f64();
  o.events_fired = r.u64();
  const std::uint64_t n_lanes = r.u64();
  m.per_prefix.resize(static_cast<std::size_t>(n_lanes));
  for (metrics::RunMetrics::PrefixLane& lane : m.per_prefix) {
    lane.loops_formed = r.u64();
    lane.max_loop_duration_s = r.f64();
    lane.ttl_exhaustions = r.u64();
    lane.packets_sent = r.u64();
    lane.packets_delivered = r.u64();
  }
  return o;
}

std::uint64_t trialset_digest(const core::TrialSet& set) {
  Writer w;
  w.u64(set.runs.size());
  for (const core::ExperimentOutcome& o : set.runs) {
    write_outcome_impl(w, o, /*lanes_even_if_empty=*/false);
  }
  write_summary(w, set.convergence_time_s);
  write_summary(w, set.looping_duration_s);
  write_summary(w, set.ttl_exhaustions);
  write_summary(w, set.looping_ratio);
  write_summary(w, set.loops_formed);
  write_summary(w, set.max_loop_duration_s);
  return snap::fnv1a(w.bytes());
}

std::uint64_t campaign_digest(const std::vector<core::TrialSet>& sets) {
  snap::Hasher h;
  h.mix(sets.size());
  for (const core::TrialSet& set : sets) h.mix(trialset_digest(set));
  return h.value();
}

}  // namespace bgpsim::svc
