#include "svc/worker.hpp"

#include <unistd.h>

#include <cstdio>
#include <exception>
#include <string>
#include <utility>

#include "core/sweep.hpp"
#include "sim/logging.hpp"

namespace bgpsim::svc {

int worker_loop(Connection conn, std::uint64_t worker_id) {
  sim::Log::set_instance_tag("w" + std::to_string(worker_id));
  try {
    Hello hello;
    hello.worker_id = worker_id;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    if (!conn.send_frame(encode_hello(hello))) return 1;

    for (;;) {
      std::optional<Frame> frame = conn.recv_frame();
      // EOF at a frame boundary: the coordinator is gone (or closed us
      // out deliberately); either way there is no one to serve.
      if (!frame) return 0;
      if (frame->type == FrameType::kShutdown) return 0;
      if (frame->type != FrameType::kWork) {
        std::fprintf(stderr, "bgpsim_worker %llu: unexpected frame type %d\n",
                     static_cast<unsigned long long>(worker_id),
                     static_cast<int>(frame->type));
        return 1;
      }

      const WorkUnit unit = decode_work(*frame);
      sim::LogLine{sim::LogLevel::kDebug, "svc", sim::SimTime::zero()}
          << "unit " << unit.unit_id << ": scenario " << unit.scenario_index
          << " trials [" << unit.trial_begin << ", "
          << unit.trial_begin + unit.trial_count << ")";
      try {
        UnitResult result;
        result.unit_id = unit.unit_id;
        result.scenario_index = unit.scenario_index;
        result.trial_begin = unit.trial_begin;
        result.outcomes.reserve(static_cast<std::size_t>(unit.trial_count));
        for (std::uint64_t i = 0; i < unit.trial_count; ++i) {
          result.outcomes.push_back(core::run_single_trial(
              unit.scenario,
              static_cast<std::size_t>(unit.trial_begin + i)));
        }
        if (!conn.send_frame(encode_result(result))) return 1;
      } catch (const std::exception& e) {
        // The unit failed inside the experiment driver (e.g. convergence
        // timeout). That is the campaign's problem to arbitrate, not a
        // reason for this process to die — report and keep serving.
        UnitError err;
        err.unit_id = unit.unit_id;
        err.message = e.what();
        if (!conn.send_frame(encode_error(err))) return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpsim_worker %llu: %s\n",
                 static_cast<unsigned long long>(worker_id), e.what());
    return 1;
  }
}

}  // namespace bgpsim::svc
