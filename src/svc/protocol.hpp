// Wire protocol of the campaign execution service.
//
// Everything that crosses a process boundary — work units going out to
// workers, trial results coming back — travels as a *frame*: a versioned,
// length-prefixed, integrity-checked envelope built on the same
// snap::Writer/Reader/Hasher codec the snapshot subsystem uses, so one
// binary idiom (little-endian fixed-width fields, length-prefixed
// containers, FNV-1a trailers, FormatError on anything malformed) serves
// both persistence and transport.
//
// Frame layout (all little-endian):
//   offset 0   u64  magic "bgpsvc\0\0"
//   offset 8   u32  protocol version (kProtocolVersion)
//   offset 12  u8   frame type (FrameType)
//   offset 13  u64  payload length (rejected above kMaxPayload)
//   offset 21  ...  payload bytes
//   trailer    u64  FNV-1a over everything before the trailer
//
// The version sits at a fixed offset so a reader can reject a frame from
// a future protocol before trusting any field behind it, mirroring
// snap::Snapshot's format-version discipline. Truncation, bad magic,
// version mismatch, an oversized length prefix, an unknown frame type,
// and a corrupt trailer all throw snap::FormatError with a precise
// message — never undefined behavior, never a silent misparse.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "snap/codec.hpp"

namespace bgpsim::svc {

/// "bgpsvc\0\0" read as a little-endian u64.
inline constexpr std::uint64_t kMagic = 0x0000637673706762ULL;

/// Bump on any change to the frame envelope or any payload layout.
/// v2: TopologySpec::rel_file added to the scenario payload.
/// v3: multi-prefix — the scenario payload carries prefixes + origins and
///     the outcome payload carries the per-prefix metric lanes.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// The version this build speaks — what goes into every frame header, the
/// svcd journal file header, and admin STATUS lines. One accessor so the
/// coordinator, the worker loop, and the daemon cannot drift apart.
[[nodiscard]] std::uint32_t protocol_version();

/// The one place a version field from any source (frame header, journal
/// header) is validated. Throws snap::FormatError naming `context` when
/// `seen` is not the version this build speaks — a peer or file from a
/// different build fails precisely and immediately, never hangs.
void check_protocol_version(std::uint32_t seen, const std::string& context);

/// Fixed size of the frame header (magic + version + type + payload
/// length); the payload and the u64 trailer follow.
inline constexpr std::size_t kHeaderSize = 8 + 4 + 1 + 8;

/// Upper bound on a frame payload. Work units are a few hundred bytes and
/// even pathological results (every packet in a loop record) stay far
/// below this; anything larger is a corrupt or hostile length prefix.
inline constexpr std::uint64_t kMaxPayload = 64ULL * 1024 * 1024;

enum class FrameType : std::uint8_t {
  kHello = 1,     // worker -> coordinator: pid + worker id, sent once
  kWork = 2,      // coordinator -> worker: one WorkUnit
  kResult = 3,    // worker -> coordinator: one UnitResult
  kError = 4,     // worker -> coordinator: unit failed with a message
  kShutdown = 5,  // coordinator -> worker: drain and exit
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Envelope a payload: header, payload, FNV-1a trailer. `version` is the
/// header's protocol-version field; overriding it builds a frame a v2
/// reader must reject (the cross-version handshake tests speak "v3" this
/// way — production callers never pass it).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const Frame& frame, std::uint32_t version = kProtocolVersion);

/// Parse and validate a frame header. Throws snap::FormatError on short
/// input, bad magic, protocol-version mismatch, unknown frame type, or a
/// payload length above kMaxPayload. Returns the declared payload length
/// through `payload_len` so a stream reader knows how many more bytes to
/// collect (payload + 8-byte trailer) before calling decode_frame.
[[nodiscard]] FrameType decode_frame_header(
    std::span<const std::uint8_t> header, std::uint64_t& payload_len);

/// Parse one complete frame (header + payload + trailer). Performs every
/// header check plus truncation, trailing-byte, and integrity-trailer
/// validation. Throws snap::FormatError on any violation.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes);

// ---- payload schemas -------------------------------------------------------

/// First frame on every worker connection: identifies the worker.
struct Hello {
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
};

/// One unit of campaign work: run trials [trial_begin, trial_begin +
/// trial_count) of `scenario`, exactly as core::run_single_trial derives
/// them. scenario_index routes the result back to the right sweep slot.
struct WorkUnit {
  std::uint64_t unit_id = 0;
  std::uint64_t scenario_index = 0;
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_count = 0;
  core::Scenario scenario;
};

/// A completed unit: trial-ordered outcomes for the unit's range.
struct UnitResult {
  std::uint64_t unit_id = 0;
  std::uint64_t scenario_index = 0;
  std::uint64_t trial_begin = 0;
  std::vector<core::ExperimentOutcome> outcomes;
};

/// A unit that threw inside a worker (e.g. convergence timeout).
struct UnitError {
  std::uint64_t unit_id = 0;
  std::string message;
};

[[nodiscard]] Frame encode_hello(const Hello& hello);
[[nodiscard]] Hello decode_hello(const Frame& frame);
[[nodiscard]] Frame encode_work(const WorkUnit& unit);
[[nodiscard]] WorkUnit decode_work(const Frame& frame);
[[nodiscard]] Frame encode_result(const UnitResult& result);
[[nodiscard]] UnitResult decode_result(const Frame& frame);
[[nodiscard]] Frame encode_error(const UnitError& error);
[[nodiscard]] UnitError decode_error(const Frame& frame);
[[nodiscard]] Frame encode_shutdown();

// ---- value codecs ----------------------------------------------------------

/// Serialize every value field of a Scenario (topology, event, protocol
/// config, processing/traffic parameters, seeds, overrides, timing knobs,
/// snapshot-probe mode). Caller-owned observation hooks (trace, oracle,
/// save_converged, warm_start) and a non-null bgp.policy table cannot
/// cross a process boundary; write_scenario throws std::invalid_argument
/// if any is set, so a campaign never silently drops an observer.
void write_scenario(snap::Writer& w, const core::Scenario& s);
[[nodiscard]] core::Scenario read_scenario(snap::Reader& r);

/// Lossless ExperimentOutcome codec: all metrics (including per-loop
/// records, loop statistics, activity profiles, and timeline fields) with
/// doubles carried as raw bit patterns, so a merged campaign aggregate is
/// bit-identical to an in-process run.
void write_outcome(snap::Writer& w, const core::ExperimentOutcome& o);
[[nodiscard]] core::ExperimentOutcome read_outcome(snap::Reader& r);

/// Content hash of a TrialSet's results: FNV-1a over the codec encoding
/// of every run plus the six summaries. Two TrialSets with equal digests
/// are bit-identical in everything the runs produced — this is the check
/// that a merged campaign equals core::run_trials_parallel.
[[nodiscard]] std::uint64_t trialset_digest(const core::TrialSet& set);

/// Campaign-wide digest: trialset_digest of each set, folded in order.
[[nodiscard]] std::uint64_t campaign_digest(
    const std::vector<core::TrialSet>& sets);

}  // namespace bgpsim::svc
