#include "svc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace bgpsim::svc {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

/// Blocking exact read. Returns false on EOF before the first byte;
/// throws on EOF mid-buffer or I/O error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n,
                const char* context) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw snap::FormatError{std::string{context} +
                              ": connection closed mid-frame"};
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno(std::string{context} + ": read");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Connection::Connection(Connection&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, inbuf_{std::move(other.inbuf_)} {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("svc: fcntl(O_NONBLOCK)");
  }
}

bool Connection::send_frame(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full socket buffer: wait for drain.
        struct pollfd pfd {fd_, POLLOUT, 0};
        (void)::poll(&pfd, 1, -1);
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("svc: send");
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

std::optional<Frame> Connection::recv_frame() {
  std::uint8_t header[kHeaderSize];
  if (!read_exact(fd_, header, sizeof header, "svc frame header")) {
    return std::nullopt;
  }
  std::uint64_t payload_len = 0;
  (void)decode_frame_header({header, sizeof header}, payload_len);
  std::vector<std::uint8_t> whole(kHeaderSize +
                                  static_cast<std::size_t>(payload_len) + 8);
  std::memcpy(whole.data(), header, sizeof header);
  if (!read_exact(fd_, whole.data() + kHeaderSize,
                  whole.size() - kHeaderSize, "svc frame body")) {
    throw snap::FormatError{"svc frame body: connection closed mid-frame"};
  }
  return decode_frame(whole);
}

Connection::Pump Connection::pump() {
  if (fd_ < 0) return Pump::kClosed;
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t r = ::read(fd_, chunk, sizeof chunk);
    if (r > 0) {
      inbuf_.insert(inbuf_.end(), chunk, chunk + r);
      if (static_cast<std::size_t>(r) < sizeof chunk) return Pump::kOk;
      continue;
    }
    if (r == 0) return Pump::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Pump::kOk;
    return Pump::kEof;  // ECONNRESET etc.: treat as a dead peer
  }
}

std::optional<Frame> Connection::next_frame() {
  if (inbuf_.size() < kHeaderSize) return std::nullopt;
  std::uint64_t payload_len = 0;
  (void)decode_frame_header({inbuf_.data(), kHeaderSize}, payload_len);
  const std::size_t total =
      kHeaderSize + static_cast<std::size_t>(payload_len) + 8;
  if (inbuf_.size() < total) return std::nullopt;
  Frame frame = decode_frame({inbuf_.data(), total});
  inbuf_.erase(inbuf_.begin(), inbuf_.begin() + static_cast<std::ptrdiff_t>(total));
  return frame;
}

SocketPair make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw_errno("svc: socketpair");
  }
  return {Connection{fds[0]}, Connection{fds[1]}};
}

TcpListener TcpListener::bind_localhost(std::uint16_t port) {
  TcpListener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd_ < 0) throw_errno("svc: socket");
  const int one = 1;
  (void)::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("svc: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(l.fd_, SOMAXCONN) < 0) throw_errno("svc: listen");
  socklen_t len = sizeof addr;
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("svc: getsockname");
  }
  l.port_ = ntohs(addr.sin_port);
  return l;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, port_{std::exchange(other.port_, 0)} {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Connection TcpListener::accept_one(int timeout_ms) {
  struct pollfd pfd {fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("svc: poll(accept)");
    }
    if (r == 0) return Connection{};
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("svc: accept");
    }
    const int one = 1;
    (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Connection{conn};
  }
}

Connection connect_localhost(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("svc: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("svc: connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Connection{fd};
}

}  // namespace bgpsim::svc
