#include "svc/units.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"
#include "snap/codec.hpp"

namespace bgpsim::svc {
namespace {

void log_svc(const std::string& message) {
  sim::LogLine{sim::LogLevel::kInfo, "svc", sim::SimTime::zero()} << message;
}

}  // namespace

std::string UnitFailure::to_string() const {
  return "unit " + std::to_string(unit_id) + " (scenario " +
         std::to_string(scenario_index) + ", trials [" +
         std::to_string(trial_begin) + ", " +
         std::to_string(trial_begin + trial_count) + ")) failed after " +
         std::to_string(attempts) + " attempt(s): " + last_error;
}

std::string CampaignError::render(const std::string& headline,
                                  const std::vector<UnitFailure>& failures) {
  std::string out = headline;
  for (const UnitFailure& f : failures) {
    out += "\n  ";
    out += f.to_string();
  }
  return out;
}

CampaignError::CampaignError(const std::string& headline,
                             std::vector<UnitFailure> failures)
    : std::runtime_error{render(headline, failures)},
      failures_{std::move(failures)} {}

UnitLedger::UnitLedger(CampaignSpec spec, std::size_t max_attempts)
    : spec_{std::move(spec)}, max_attempts_{max_attempts} {
  if (spec_.scenarios.empty()) {
    throw std::invalid_argument{"svc: campaign has no scenarios"};
  }
  // Validate shippability up front (and fail at submission, not on a
  // worker): encode each scenario once.
  for (const core::Scenario& s : spec_.scenarios) {
    snap::Writer probe;
    write_scenario(probe, s);
  }
  merged_.resize(spec_.scenarios.size());
  for (auto& slots : merged_) slots.resize(spec_.run.trials);
  for (std::size_t si = 0; si < spec_.scenarios.size(); ++si) {
    for (const core::TrialRange& range :
         core::decompose_trials(spec_.run.trials, spec_.unit_trials)) {
      Unit u;
      u.scenario_index = si;
      u.trial_begin = range.begin;
      u.trial_count = range.count;
      pending_.push_back(units_.size());
      units_.push_back(std::move(u));
    }
  }
}

std::optional<WorkUnit> UnitLedger::acquire(std::uint64_t worker_key) {
  if (pending_.empty()) return std::nullopt;
  // Oldest pending unit this worker is not excluded from.
  std::size_t pick = pending_.size();
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    const Unit& u = units_[pending_[p]];
    if (std::find(u.excluded.begin(), u.excluded.end(), worker_key) ==
        u.excluded.end()) {
      pick = p;
      break;
    }
  }
  if (pick == pending_.size()) {
    // Every pending unit has failed on this worker before. If other
    // workers are still making progress, leave it idle; if nothing at all
    // is in flight, an excluded retry is the only move left.
    if (inflight_ != 0) return std::nullopt;
    pick = 0;
    log_svc("worker key " + std::to_string(worker_key) +
            ": retrying a unit that previously failed on it (no other "
            "in-flight work can unblock it)");
  }

  const std::size_t unit_idx = pending_[pick];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  Unit& u = units_[unit_idx];
  u.state = Unit::State::kInflight;
  ++u.attempts;
  ++inflight_;
  ++dispatched_;

  WorkUnit wire;
  wire.unit_id = unit_idx;
  wire.scenario_index = u.scenario_index;
  wire.trial_begin = u.trial_begin;
  wire.trial_count = u.trial_count;
  wire.scenario = spec_.scenarios[static_cast<std::size_t>(u.scenario_index)];
  return wire;
}

UnitLedger::Release UnitLedger::release(std::uint64_t unit_id,
                                        std::uint64_t worker_key,
                                        const std::string& why) {
  Unit& u = unit_for(unit_id, "release");
  if (u.state == Unit::State::kDone) return Release::kAlreadyDone;
  if (u.state == Unit::State::kInflight) --inflight_;
  u.excluded.push_back(worker_key);
  if (u.attempts >= max_attempts_) {
    UnitFailure f;
    f.unit_id = unit_id;
    f.scenario_index = u.scenario_index;
    f.trial_begin = u.trial_begin;
    f.trial_count = u.trial_count;
    f.attempts = u.attempts;
    f.last_error = why;
    failures_.push_back(std::move(f));
    u.state = Unit::State::kPending;  // parked: abandoned, never requeued
    return Release::kAbandoned;
  }
  u.state = Unit::State::kPending;
  // Front of the queue: a requeued unit is the oldest work there is.
  pending_.insert(pending_.begin(), unit_id);
  ++requeues_;
  log_svc("requeued unit " + std::to_string(unit_id) + " (" + why +
          "), attempt " + std::to_string(u.attempts + 1) + ", worker key " +
          std::to_string(worker_key) + " excluded");
  return Release::kRequeued;
}

void UnitLedger::fail_deterministic(std::uint64_t unit_id,
                                    const std::string& message) {
  Unit& u = unit_for(unit_id, "error");
  if (u.state == Unit::State::kDone) return;  // late error for a merged unit
  if (u.state == Unit::State::kInflight) --inflight_;
  pending_.erase(std::remove(pending_.begin(), pending_.end(), unit_id),
                 pending_.end());
  UnitFailure f;
  f.unit_id = unit_id;
  f.scenario_index = u.scenario_index;
  f.trial_begin = u.trial_begin;
  f.trial_count = u.trial_count;
  f.attempts = u.attempts;
  f.last_error = message;
  failures_.push_back(std::move(f));
  u.state = Unit::State::kPending;  // parked: abandoned, never requeued
}

UnitLedger::Accept UnitLedger::accept(const UnitResult& result) {
  Unit& u = unit_for(result.unit_id, "result");
  if (u.state == Unit::State::kDone) return Accept::kDuplicate;
  if (result.scenario_index != u.scenario_index ||
      result.trial_begin != u.trial_begin ||
      result.outcomes.size() != u.trial_count) {
    throw snap::FormatError{"svc: result shape mismatch for unit " +
                            std::to_string(result.unit_id)};
  }
  if (u.state == Unit::State::kInflight) --inflight_;
  mark_done(u, result);
  return Accept::kMerged;
}

void UnitLedger::restore_completed(const UnitResult& result) {
  Unit& u = unit_for(result.unit_id, "restore");
  if (result.scenario_index != u.scenario_index ||
      result.trial_begin != u.trial_begin ||
      result.outcomes.size() != u.trial_count) {
    throw snap::FormatError{"svc: result shape mismatch for unit " +
                            std::to_string(result.unit_id)};
  }
  if (u.state == Unit::State::kDone) return;  // replay idempotence
  pending_.erase(std::remove(pending_.begin(), pending_.end(), result.unit_id),
                 pending_.end());
  mark_done(u, result);
}

void UnitLedger::mark_done(Unit& u, const UnitResult& result) {
  auto& slots = merged_[static_cast<std::size_t>(u.scenario_index)];
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    slots[static_cast<std::size_t>(u.trial_begin) + i] = result.outcomes[i];
  }
  u.state = Unit::State::kDone;
  ++done_;
}

std::vector<core::TrialSet> UnitLedger::assemble() {
  if (!complete()) {
    throw std::logic_error{"svc: assemble() before the campaign completed"};
  }
  std::vector<core::TrialSet> sets;
  sets.reserve(spec_.scenarios.size());
  for (std::size_t si = 0; si < spec_.scenarios.size(); ++si) {
    sets.push_back(
        core::assemble_trials(spec_.scenarios[si], std::move(merged_[si])));
  }
  merged_.clear();
  return sets;
}

UnitLedger::UnitInfo UnitLedger::info(std::uint64_t unit_id) const {
  const Unit& u =
      const_cast<UnitLedger*>(this)->unit_for(unit_id, "info");
  UnitInfo out;
  out.scenario_index = u.scenario_index;
  out.trial_begin = u.trial_begin;
  out.trial_count = u.trial_count;
  out.attempts = u.attempts;
  return out;
}

UnitLedger::Unit& UnitLedger::unit_for(std::uint64_t unit_id,
                                       const char* context) {
  if (unit_id >= units_.size()) {
    throw snap::FormatError{std::string{"svc: "} + context +
                            " for unknown unit " + std::to_string(unit_id)};
  }
  return units_[static_cast<std::size_t>(unit_id)];
}

}  // namespace bgpsim::svc
