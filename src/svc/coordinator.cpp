#include "svc/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/logging.hpp"
#include "svc/worker.hpp"

namespace bgpsim::svc {
namespace {

using Clock = std::chrono::steady_clock;

void log_svc(const std::string& message) {
  sim::LogLine{sim::LogLevel::kInfo, "svc", sim::SimTime::zero()} << message;
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace

struct Coordinator::Worker {
  Connection conn;
  int stderr_fd = -1;
  pid_t pid = -1;          // fork-known pid; the only pid this process kills
  std::uint64_t id = 0;
  bool alive = true;
  // Unit index in flight on this worker, or npos.
  std::size_t inflight = npos;
  Clock::time_point deadline{};
  std::string stderr_partial;  // unterminated tail of relayed stderr

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

Coordinator::Coordinator(CampaignSpec spec, CampaignOptions options)
    : options_{std::move(options)},
      ledger_{std::move(spec), options_.max_attempts} {}

Coordinator::~Coordinator() { shutdown_workers(); }

void Coordinator::spawn_fork_worker() {
  SocketPair pair = make_socketpair();
  const std::uint64_t id = workers_.size();
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error{"svc: fork failed"};
  if (pid == 0) {
    // Child: drop every coordinator-side fd (ours and earlier workers'),
    // serve the socketpair, and leave without running atexit handlers.
    pair.coordinator.close();
    for (Worker& w : workers_) {
      w.conn.close();
      if (w.stderr_fd >= 0) ::close(w.stderr_fd);
    }
    ::_exit(worker_loop(std::move(pair.worker), id));
  }
  pair.worker.close();
  add_worker(std::move(pair.coordinator), pid, -1);
}

void Coordinator::spawn_exec_worker(const std::string& worker_bin) {
  SocketPair pair = make_socketpair();
  int errpipe[2];
  if (::pipe(errpipe) < 0) throw std::runtime_error{"svc: pipe failed"};
  const std::uint64_t id = workers_.size();
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error{"svc: fork failed"};
  if (pid == 0) {
    ::dup2(pair.worker.fd(), 0);
    ::dup2(errpipe[1], 2);
    pair.worker.close();
    pair.coordinator.close();
    ::close(errpipe[0]);
    ::close(errpipe[1]);
    for (Worker& w : workers_) {
      w.conn.close();
      if (w.stderr_fd >= 0) ::close(w.stderr_fd);
    }
    const std::string id_str = std::to_string(id);
    ::execl(worker_bin.c_str(), "bgpsim_worker", "--fd", "0", "--id",
            id_str.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "svc: exec %s failed: %s\n", worker_bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  pair.worker.close();
  ::close(errpipe[1]);
  add_worker(std::move(pair.coordinator), pid, errpipe[0]);
}

pid_t Coordinator::spawn_exec_worker_tcp(const std::string& worker_bin,
                                         std::uint16_t port) {
  const std::uint64_t id = workers_.size();
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error{"svc: fork failed"};
  if (pid == 0) {
    for (Worker& w : workers_) {
      w.conn.close();
      if (w.stderr_fd >= 0) ::close(w.stderr_fd);
    }
    const std::string addr = "127.0.0.1:" + std::to_string(port);
    const std::string id_str = std::to_string(id);
    ::execl(worker_bin.c_str(), "bgpsim_worker", "--connect", addr.c_str(),
            "--id", id_str.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "svc: exec %s failed: %s\n", worker_bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

void Coordinator::add_worker(Connection conn, pid_t pid, int stderr_fd) {
  conn.set_nonblocking();
  if (stderr_fd >= 0) {
    // The relay must never block on a live child's open pipe.
    const int flags = ::fcntl(stderr_fd, F_GETFL, 0);
    (void)::fcntl(stderr_fd, F_SETFL, flags | O_NONBLOCK);
  }
  Worker w;
  w.conn = std::move(conn);
  w.pid = pid;
  w.stderr_fd = stderr_fd;
  w.id = workers_.size();
  workers_.push_back(std::move(w));
}

std::size_t Coordinator::worker_count() const { return workers_.size(); }

pid_t Coordinator::worker_pid(std::size_t index) const {
  if (index >= workers_.size() || !workers_[index].alive) return -1;
  return workers_[index].pid;
}

std::size_t Coordinator::live_workers() const {
  std::size_t n = 0;
  for (const Worker& w : workers_) {
    if (w.alive) ++n;
  }
  return n;
}

void Coordinator::dispatch_idle_workers() {
  for (std::size_t widx = 0; widx < workers_.size(); ++widx) {
    Worker& w = workers_[widx];
    if (!w.alive || w.inflight != Worker::npos) continue;
    std::optional<WorkUnit> wire = ledger_.acquire(widx);
    if (!wire) continue;
    // Mark the unit in flight before sending so a failed send releases it
    // through the normal fail_worker path (the attempt is already counted;
    // a worker whose socket rejects a send is a dead worker).
    w.inflight = static_cast<std::size_t>(wire->unit_id);
    if (options_.deadline_s > 0) {
      w.deadline = Clock::now() + std::chrono::microseconds(static_cast<long long>(
                                      options_.deadline_s * 1e6));
    }
    if (!w.conn.send_frame(encode_work(*wire))) {
      fail_worker(widx, "send failed (worker gone)");
    }
  }
}

void Coordinator::fail_worker(std::size_t widx, const std::string& why) {
  Worker& w = workers_[widx];
  if (!w.alive) return;
  w.alive = false;
  log_svc("worker " + std::to_string(w.id) + " lost: " + why);
  if (w.stderr_fd >= 0) {
    relay_stderr_bytes(widx);
    ::close(w.stderr_fd);
    w.stderr_fd = -1;
  }
  w.conn.close();
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);  // no-op if it is already dead
    reap(w.pid);
    w.pid = -1;
  }
  ++stats_.workers_lost;
  if (w.inflight != Worker::npos) {
    const std::size_t unit_idx = std::exchange(w.inflight, Worker::npos);
    (void)ledger_.release(unit_idx, widx, why);
  }
}

void Coordinator::relay_stderr_bytes(std::size_t widx) {
  Worker& w = workers_[widx];
  if (w.stderr_fd < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(w.stderr_fd, buf, sizeof buf);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;  // EAGAIN, EOF, or error: relay whatever we have so far
    }
    w.stderr_partial.append(buf, static_cast<std::size_t>(r));
    std::size_t nl;
    while ((nl = w.stderr_partial.find('\n')) != std::string::npos) {
      if (options_.relay_stderr) {
        std::fprintf(stderr, "[worker %llu] %.*s\n",
                     static_cast<unsigned long long>(w.id),
                     static_cast<int>(nl), w.stderr_partial.data());
      }
      w.stderr_partial.erase(0, nl + 1);
    }
    if (static_cast<std::size_t>(r) < sizeof buf) break;
  }
}

void Coordinator::handle_frame(std::size_t widx, const Frame& frame) {
  Worker& w = workers_[widx];
  switch (frame.type) {
    case FrameType::kHello: {
      const Hello hello = decode_hello(frame);
      log_svc("worker " + std::to_string(hello.worker_id) + " up (pid " +
              std::to_string(hello.pid) + ")");
      return;
    }
    case FrameType::kResult: {
      const UnitResult result = decode_result(frame);
      // accept() throws FormatError on an unknown unit or shape mismatch;
      // w.inflight stays set so fail_worker requeues the real unit.
      const UnitLedger::Accept accepted = ledger_.accept(result);
      w.inflight = Worker::npos;
      if (accepted == UnitLedger::Accept::kDuplicate) {
        // A late answer to a unit that was requeued after a deadline and
        // completed elsewhere. Determinism makes both answers identical;
        // the slot is already filled, so drop it.
        log_svc("dropping duplicate result for unit " +
                std::to_string(result.unit_id));
        return;
      }
      if (options_.on_unit_done) options_.on_unit_done(*this, ledger_.done());
      return;
    }
    case FrameType::kError: {
      const UnitError err = decode_error(frame);
      w.inflight = Worker::npos;
      // Experiment drivers are deterministic: a throw inside a trial would
      // recur on every worker, so fail the campaign with the worker's
      // message instead of burning retries (serial-runner semantics).
      ledger_.fail_deterministic(err.unit_id, "worker " + std::to_string(w.id) +
                                                  " reported: " + err.message);
      return;
    }
    default:
      throw snap::FormatError{"svc: unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)) +
                              " from worker"};
  }
}

CampaignResult Coordinator::run() {
  if (workers_.empty()) {
    throw std::invalid_argument{"svc: campaign has no workers"};
  }

  while (!ledger_.complete() && ledger_.failures().empty()) {
    dispatch_idle_workers();
    if (ledger_.complete() || !ledger_.failures().empty()) break;
    if (live_workers() == 0) {
      shutdown_workers();
      throw std::runtime_error{
          "svc: campaign failed — every worker died with " +
          std::to_string(ledger_.unit_count() - ledger_.done()) +
          " unit(s) outstanding"};
    }

    std::vector<struct pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> owners;  // (widx, is_stderr)
    for (std::size_t widx = 0; widx < workers_.size(); ++widx) {
      const Worker& w = workers_[widx];
      if (!w.alive) continue;
      fds.push_back({w.conn.fd(), POLLIN, 0});
      owners.emplace_back(widx, false);
      if (w.stderr_fd >= 0) {
        fds.push_back({w.stderr_fd, POLLIN, 0});
        owners.emplace_back(widx, true);
      }
    }

    int timeout_ms = -1;
    if (options_.deadline_s > 0) {
      const Clock::time_point now = Clock::now();
      for (const Worker& w : workers_) {
        if (!w.alive || w.inflight == Worker::npos) continue;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(w.deadline -
                                                                  now)
                .count();
        const int ms = left <= 0 ? 0 : static_cast<int>(std::min<long long>(
                                           left + 1, 60'000));
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error{"svc: poll failed"};
    }

    // Blown deadlines first: a wedged worker must not hold its unit while
    // the queue drains around it.
    if (options_.deadline_s > 0) {
      const Clock::time_point now = Clock::now();
      for (std::size_t widx = 0; widx < workers_.size(); ++widx) {
        Worker& w = workers_[widx];
        if (w.alive && w.inflight != Worker::npos && now >= w.deadline) {
          fail_worker(widx, "unit deadline (" +
                                std::to_string(options_.deadline_s) +
                                " s) exceeded");
        }
      }
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto [widx, is_stderr] = owners[i];
      Worker& w = workers_[widx];
      if (!w.alive) continue;
      if (is_stderr) {
        relay_stderr_bytes(widx);
        continue;
      }
      const Connection::Pump status = w.conn.pump();
      try {
        for (;;) {
          std::optional<Frame> frame = w.conn.next_frame();
          if (!frame) break;
          handle_frame(widx, *frame);
        }
      } catch (const snap::FormatError& e) {
        // A corrupt stream cannot be resynchronized; drop the worker and
        // let the requeue machinery recover its unit.
        fail_worker(widx, std::string{"protocol violation: "} + e.what());
        continue;
      }
      if (status == Connection::Pump::kEof) {
        fail_worker(widx, "connection closed (worker died?)");
      }
    }
  }

  shutdown_workers();
  if (!ledger_.failures().empty()) {
    throw CampaignError{
        "svc: campaign failed — " + std::to_string(ledger_.failures().size()) +
            " unit(s) failed permanently",
        ledger_.failures()};
  }

  stats_.sets = ledger_.assemble();
  stats_.digest = campaign_digest(stats_.sets);
  stats_.units_dispatched = ledger_.dispatched();
  stats_.requeues = ledger_.requeues();
  return std::move(stats_);
}

void Coordinator::shutdown_workers() {
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    (void)w.conn.send_frame(encode_shutdown());
    if (w.stderr_fd >= 0) {
      relay_stderr_bytes(w.id);
    }
    w.conn.close();
  }
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    w.alive = false;
    if (w.stderr_fd >= 0) {
      ::close(w.stderr_fd);
      w.stderr_fd = -1;
    }
    if (w.pid > 0) {
      reap(w.pid);
      w.pid = -1;
    }
  }
}

CampaignResult run_campaign(const CampaignSpec& spec, std::size_t workers,
                            CampaignOptions options) {
  if (workers == 0) workers = core::default_jobs();
  Coordinator coordinator{spec, std::move(options)};
  for (std::size_t i = 0; i < workers; ++i) coordinator.spawn_fork_worker();
  return coordinator.run();
}

}  // namespace bgpsim::svc
