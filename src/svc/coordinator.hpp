// Campaign coordinator: decompose a sweep into work units, dispatch them
// to worker processes, survive worker failure, merge bit-identically.
//
// Execution model — a single-threaded poll() loop:
//   - Decompose every (scenario, trials) pair into (scenario, trial-range)
//     units via core::decompose_trials.
//   - Dispatch is pull-based work stealing: whenever a worker is idle, it
//     is handed the oldest pending unit it is not excluded from, so fast
//     workers naturally take more units and a straggler never stalls the
//     queue behind it.
//   - Worker death (EOF on its connection, detected the instant the
//     kernel closes the socket — including SIGKILL) or a blown per-unit
//     deadline requeues the in-flight unit with the failed worker
//     excluded, kills the process if it is local and still running, and
//     carries on with the survivors.
//   - Results are merged by trial index into per-scenario slots; the
//     final aggregate is assembled by core::assemble_trials — the same
//     aggregation code as run_trials — so a campaign's TrialSet is
//     bit-identical to core::run_trials_parallel at any worker count and
//     over any transport (verified by svc::campaign_digest in tests and
//     the svc_smoke CTest entry).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "svc/protocol.hpp"
#include "svc/transport.hpp"
#include "svc/units.hpp"

namespace bgpsim::svc {

struct CampaignResult {
  std::vector<core::TrialSet> sets;  // one per spec scenario, in order
  std::uint64_t digest = 0;          // svc::campaign_digest(sets)
  std::size_t units_dispatched = 0;  // includes requeues
  std::size_t requeues = 0;
  std::size_t workers_lost = 0;
};

class Coordinator;

struct CampaignOptions {
  /// Per-unit wall-clock deadline in seconds; a worker that holds a unit
  /// longer is presumed wedged, killed (if local), and the unit requeued
  /// elsewhere. <= 0 disables deadlines.
  double deadline_s = 0;

  /// A unit is abandoned (campaign fails) after this many attempts; keeps
  /// a unit that deterministically kills workers from cycling forever.
  std::size_t max_attempts = 3;

  /// Relay worker stderr through the coordinator's stderr, each line
  /// prefixed with "[worker N] " (only for exec-spawned workers, which
  /// get a stderr pipe).
  bool relay_stderr = true;

  /// Test/progress hook: called after every completed unit with the
  /// coordinator and the number of units completed so far. Fault-tolerance
  /// tests use it to kill workers at a deterministic point mid-campaign.
  std::function<void(Coordinator&, std::size_t units_done)> on_unit_done;
};

class Coordinator {
 public:
  Coordinator(CampaignSpec spec, CampaignOptions options = {});
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawn a worker by fork(): the child runs svc::worker_loop in-process
  /// over one end of a socketpair and _exits. No binary path needed —
  /// this is the library/test path.
  void spawn_fork_worker();

  /// Spawn a worker by fork()+exec of `worker_bin` (the examples/
  /// bgpsim_worker binary), talking over a socketpair on fd 0, stderr
  /// captured through a relay pipe.
  void spawn_exec_worker(const std::string& worker_bin);

  /// Spawn a worker by fork()+exec of `worker_bin` told to connect back
  /// over localhost TCP to `port` (exercises the TCP transport end to
  /// end); the connection must then be handed in via accept + add_worker.
  pid_t spawn_exec_worker_tcp(const std::string& worker_bin,
                              std::uint16_t port);

  /// Attach an already-connected worker (e.g. accepted from a
  /// TcpListener). pid < 0 marks a worker this process cannot signal;
  /// stderr_fd < 0 means no stderr relay.
  void add_worker(Connection conn, pid_t pid, int stderr_fd);

  [[nodiscard]] std::size_t worker_count() const;

  /// pid of the i-th *live* worker, or -1 (TCP-attached / already gone).
  [[nodiscard]] pid_t worker_pid(std::size_t index) const;

  /// Run the campaign to completion. Throws std::runtime_error if every
  /// worker dies; throws CampaignError (a runtime_error carrying
  /// structured per-unit records) when any unit exhausts max_attempts or
  /// fails with a deterministic in-driver error. Workers are shut down and
  /// reaped before returning or throwing.
  [[nodiscard]] CampaignResult run();

 private:
  struct Worker;

  void dispatch_idle_workers();
  void handle_frame(std::size_t widx, const Frame& frame);
  void fail_worker(std::size_t widx, const std::string& why);
  void relay_stderr_bytes(std::size_t widx);
  void shutdown_workers();
  [[nodiscard]] std::size_t live_workers() const;

  CampaignOptions options_;
  // Unit dispatch/merge state machine, shared with the svcd daemon. The
  // coordinator's worker slots are stable, so the slot index doubles as
  // the ledger's worker key.
  UnitLedger ledger_;
  std::vector<Worker> workers_;
  CampaignResult stats_;
};

/// Convenience entry point: spawn `workers` fork-workers (default:
/// core::default_jobs()), run the campaign, return the merged result.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          std::size_t workers = 0,
                                          CampaignOptions options = {});

}  // namespace bgpsim::svc
