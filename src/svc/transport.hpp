// Byte-stream transport for svc frames: socketpairs for locally spawned
// workers, localhost TCP for attached ones. Both endpoints are plain file
// descriptors, so one Connection type serves every transport.
//
// Two read models share the same wire format:
//   - Workers block: recv_frame() reads header, payload, trailer.
//   - The coordinator multiplexes: fds are non-blocking, pump() drains
//     whatever the kernel has into a per-connection buffer, and
//     next_frame() peels complete frames off it.
//
// All writes go through ::send with MSG_NOSIGNAL, so a dead peer surfaces
// as an error return instead of SIGPIPE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace bgpsim::svc {

/// One framed, bidirectional byte stream. Owns the fd.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_{fd} {}
  ~Connection() { close(); }
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Switch the fd to non-blocking mode (coordinator side).
  void set_nonblocking();

  /// Encode and write a whole frame. Returns false if the peer is gone
  /// (EPIPE/ECONNRESET); throws std::runtime_error on other I/O errors.
  bool send_frame(const Frame& frame);

  /// Blocking read of one frame (worker side). Returns nullopt on clean
  /// EOF at a frame boundary; throws snap::FormatError on a malformed
  /// frame or mid-frame EOF, std::runtime_error on I/O errors.
  [[nodiscard]] std::optional<Frame> recv_frame();

  /// Non-blocking drain (coordinator side, after poll() reported
  /// readability). Appends available bytes to the internal buffer.
  enum class Pump { kOk, kEof, kClosed };
  Pump pump();

  /// Extract the next complete frame from the buffer, if any. Throws
  /// snap::FormatError on malformed bytes (the caller should drop the
  /// connection: a corrupt stream cannot be resynchronized).
  [[nodiscard]] std::optional<Frame> next_frame();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> inbuf_;
};

/// A connected socketpair: one end for the coordinator, one for a worker
/// child process.
struct SocketPair {
  Connection coordinator;
  Connection worker;
};
[[nodiscard]] SocketPair make_socketpair();

/// Listening TCP socket bound to 127.0.0.1 (campaigns are a localhost
/// scale-out; cross-host transport would need authentication first).
class TcpListener {
 public:
  /// Bind and listen; port 0 picks an ephemeral port.
  static TcpListener bind_localhost(std::uint16_t port);

  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening fd, for callers that multiplex accepts through their
  /// own event loop (svcd) or must close the listener in a forked child.
  [[nodiscard]] int fd() const { return fd_; }

  /// Accept one connection; timeout_ms < 0 waits forever. Returns an
  /// invalid Connection on timeout.
  [[nodiscard]] Connection accept_one(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a coordinator's TCP listener on 127.0.0.1.
[[nodiscard]] Connection connect_localhost(std::uint16_t port);

}  // namespace bgpsim::svc
