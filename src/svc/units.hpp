// The campaign unit ledger: one campaign's (scenario, trial-range) work
// units as a dispatchable, fault-tolerant, resumable state machine.
//
// PR 4's coordinator carried this logic inline (pending queue, in-flight
// bookkeeping, requeue-on-different-worker, trial-slot merge). The always-on
// daemon (src/svcd/) needs the same machinery under a different event loop
// and with worker *churn* — workers joining and dying mid-campaign, each
// incarnation distinct — so the ledger is factored out here and keyed by
// opaque 64-bit worker keys instead of coordinator slot indices. A key is
// one worker incarnation: a worker that dies and a worker that joins later
// never share a key, which is what makes the exclusion sets (a unit never
// retries on a worker that already failed it) churn-tolerant.
//
// Determinism contract: the ledger only routes and merges. Trial outcomes
// land in per-trial slots keyed by (scenario index, trial index), and
// assemble() feeds them through core::assemble_trials — the same
// aggregation code as the in-process runners — so the final TrialSets are
// bit-identical to core::run_trials no matter which workers ran what, in
// what order, with how many retries, or across how many crash/resume
// cycles (completed units restored from a journal merge through the very
// same slot path).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "svc/protocol.hpp"

namespace bgpsim::svc {

/// What to run: a sweep of scenarios, each repeated run.trials times with
/// the run_trials seed layout. unit_trials sets work-unit granularity
/// (trials per unit; smaller units steal better, larger units amortize
/// dispatch and share prelude-cache hits within a worker).
///
/// `run` is the same core::RunOptions the in-process runners take; the
/// campaign machinery consumes run.trials directly and uses the full
/// struct for serial cross-checks (run_campaign --check-serial replays the
/// campaign through core::run_trials(s, spec.run)). Fields that configure
/// *in-process* execution (jobs, snap_cache, path_interning, trace,
/// oracle) do not travel to worker processes — workers follow their own
/// environment defaults — which is safe precisely because every one of
/// those knobs is output-invariant (digests are bit-identical regardless).
struct CampaignSpec {
  std::vector<core::Scenario> scenarios;
  core::RunOptions run;
  std::size_t unit_trials = 1;
};

/// One unit that permanently failed: it exhausted its attempt cap across
/// distinct workers, or a worker reported a deterministic in-driver error.
struct UnitFailure {
  std::uint64_t unit_id = 0;
  std::uint64_t scenario_index = 0;
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_count = 0;
  std::size_t attempts = 0;
  std::string last_error;

  /// "unit 3 (scenario 1, trials [2, 3)) failed after 3 attempt(s): ..."
  [[nodiscard]] std::string to_string() const;
};

/// A campaign that cannot complete. what() is the full multi-line report
/// (headline plus one UnitFailure::to_string() line per failed unit);
/// failures() carries the same records structured, so callers can report
/// a precise per-unit summary and a non-zero exit code instead of relying
/// on exception text alone.
class CampaignError : public std::runtime_error {
 public:
  CampaignError(const std::string& headline, std::vector<UnitFailure> failures);

  [[nodiscard]] const std::vector<UnitFailure>& failures() const {
    return failures_;
  }

 private:
  static std::string render(const std::string& headline,
                            const std::vector<UnitFailure>& failures);
  std::vector<UnitFailure> failures_;
};

class UnitLedger {
 public:
  /// Decompose spec into (scenario, trial-range) units via
  /// core::decompose_trials; all start pending. max_attempts caps how many
  /// workers a unit may fail on before it is abandoned (recorded in
  /// failures(), never retried again).
  UnitLedger(CampaignSpec spec, std::size_t max_attempts);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t unit_count() const { return units_.size(); }
  [[nodiscard]] std::size_t done() const { return done_; }
  [[nodiscard]] bool complete() const { return done_ == units_.size(); }
  /// True when no unit is in flight on any worker.
  [[nodiscard]] bool idle() const { return inflight_ == 0; }

  /// Pick the oldest pending unit `worker_key` is not excluded from, mark
  /// it in flight on that worker, and count the attempt. When every
  /// pending unit has already failed on this worker, an excluded retry is
  /// handed out only if nothing at all is in flight (no other worker is
  /// making progress, so a retry is the only move left — logged). Returns
  /// nullopt when there is nothing this worker can take right now.
  [[nodiscard]] std::optional<WorkUnit> acquire(std::uint64_t worker_key);

  /// The worker holding `unit_id` failed (died, blew its lease, corrupted
  /// its stream): release the unit with the worker excluded. kRequeued
  /// puts it at the front of the queue (a requeued unit is the oldest work
  /// there is); kAbandoned records a UnitFailure — the attempt cap is
  /// spent and the campaign cannot complete.
  enum class Release { kRequeued, kAbandoned, kAlreadyDone };
  Release release(std::uint64_t unit_id, std::uint64_t worker_key,
                  const std::string& why);

  /// A worker reported a deterministic in-driver error for `unit_id`
  /// (e.g. a convergence timeout). Experiment drivers are deterministic, so
  /// the throw would recur on every retry; the unit is abandoned
  /// immediately with the worker's message (serial-runner semantics).
  void fail_deterministic(std::uint64_t unit_id, const std::string& message);

  /// A result frame arrived. Throws snap::FormatError on an unknown unit
  /// id or a shape mismatch (wrong scenario/trial range/outcome count);
  /// kDuplicate means the unit already completed elsewhere (a late answer
  /// after a requeue — determinism makes both answers identical, so it is
  /// dropped). kMerged fills the unit's trial slots exactly once.
  enum class Accept { kMerged, kDuplicate };
  Accept accept(const UnitResult& result);

  /// Journal replay: mark a unit completed from a persisted UnitResult
  /// without counting a dispatch or an attempt. Validates like accept();
  /// duplicates are tolerated (replay idempotence).
  void restore_completed(const UnitResult& result);

  /// Assemble the final per-scenario TrialSets from the merged slots.
  /// Requires complete(); moves the outcomes out.
  [[nodiscard]] std::vector<core::TrialSet> assemble();

  /// Permanently failed units, in the order they were abandoned.
  [[nodiscard]] const std::vector<UnitFailure>& failures() const {
    return failures_;
  }

  /// Dispatch counters for campaign stats (dispatched includes requeues).
  [[nodiscard]] std::size_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::size_t requeues() const { return requeues_; }

  /// Trial range / scenario info of a unit (for failure reports).
  struct UnitInfo {
    std::uint64_t scenario_index = 0;
    std::uint64_t trial_begin = 0;
    std::uint64_t trial_count = 0;
    std::size_t attempts = 0;
  };
  [[nodiscard]] UnitInfo info(std::uint64_t unit_id) const;

 private:
  struct Unit {
    enum class State { kPending, kInflight, kDone };
    std::uint64_t scenario_index = 0;
    std::uint64_t trial_begin = 0;
    std::uint64_t trial_count = 0;
    State state = State::kPending;
    std::size_t attempts = 0;
    std::vector<std::uint64_t> excluded;  // worker keys that failed it
  };

  Unit& unit_for(std::uint64_t unit_id, const char* context);
  void mark_done(Unit& u, const UnitResult& result);

  CampaignSpec spec_;
  std::size_t max_attempts_;
  std::vector<Unit> units_;
  std::vector<std::size_t> pending_;  // unit indices awaiting dispatch
  std::size_t done_ = 0;
  std::size_t inflight_ = 0;
  std::size_t dispatched_ = 0;
  std::size_t requeues_ = 0;
  // merged_[scenario][trial]: outcome slots, filled exactly once per trial.
  std::vector<std::vector<core::ExperimentOutcome>> merged_;
  std::vector<UnitFailure> failures_;
};

}  // namespace bgpsim::svc
