#include "topo/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace bgpsim::topo {

using net::NodeId;
using net::Topology;

Topology make_clique(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_clique: need n >= 2"};
  Topology t{n};
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) t.add_link(a, b, kDefaultLinkDelay);
  }
  return t;
}

Topology make_chain(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_chain: need n >= 2"};
  Topology t{n};
  for (NodeId a = 0; a + 1 < n; ++a) t.add_link(a, a + 1, kDefaultLinkDelay);
  return t;
}

Topology make_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument{"make_ring: need n >= 3"};
  Topology t = make_chain(n);
  t.add_link(static_cast<NodeId>(n - 1), 0, kDefaultLinkDelay);
  return t;
}

Topology make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_star: need n >= 2"};
  Topology t{n};
  for (NodeId spoke = 1; spoke < n; ++spoke) {
    t.add_link(0, spoke, kDefaultLinkDelay);
  }
  return t;
}

Topology make_tree(std::size_t n) {
  if (n < 1) throw std::invalid_argument{"make_tree: need n >= 1"};
  Topology t{n};
  for (NodeId child = 1; child < n; ++child) {
    t.add_link((child - 1) / 2, child, kDefaultLinkDelay);
  }
  return t;
}

Topology make_grid(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument{"make_grid: empty"};
  Topology t{rows * cols};
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(at(r, c), at(r, c + 1), kDefaultLinkDelay);
      if (r + 1 < rows) t.add_link(at(r, c), at(r + 1, c), kDefaultLinkDelay);
    }
  }
  return t;
}

Topology make_bclique(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_bclique: need n >= 2"};
  Topology t{2 * n};
  // Chain 0 .. n-1.
  for (NodeId a = 0; a + 1 < n; ++a) t.add_link(a, a + 1, kDefaultLinkDelay);
  // Clique n .. 2n-1.
  for (NodeId a = static_cast<NodeId>(n); a < 2 * n; ++a) {
    for (NodeId b = a + 1; b < 2 * n; ++b) t.add_link(a, b, kDefaultLinkDelay);
  }
  // Edge network attachment: direct link [0, n] plus the backup entry point
  // [n-1, 2n-1] at the far end of the chain.
  t.add_link(0, static_cast<NodeId>(n), kDefaultLinkDelay);
  t.add_link(static_cast<NodeId>(n - 1), static_cast<NodeId>(2 * n - 1),
             kDefaultLinkDelay);
  return t;
}

net::LinkId bclique_tlong_link(const Topology& t, std::size_t n) {
  const auto id = t.link_between(0, static_cast<NodeId>(n));
  if (!id) throw std::invalid_argument{"bclique_tlong_link: no [0,n] link"};
  return *id;
}

AnnotatedTopology make_as_graph(const AsGraphParams& p) {
  if (p.nodes < 16) throw std::invalid_argument{"make_as_graph: need n >= 16"};
  std::size_t core = p.core;
  if (core == 0) {
    core = 5;
    for (std::size_t n = p.nodes; n > 32 && core < 20; n /= 2) ++core;
  }
  const auto transit = static_cast<std::size_t>(
      static_cast<double>(p.nodes) * p.transit_fraction + 0.5);
  const std::size_t transit_bound = core + transit;
  if (core < 3 || transit_bound >= p.nodes) {
    throw std::invalid_argument{"make_as_graph: core/transit exceed nodes"};
  }

  sim::Rng rng{p.seed};
  Topology t{p.nodes};
  net::RelationshipTable rel;

  // Tier-1 core: full mesh of settlement-free peers at the lowest ids (as
  // in make_internet, providers always get smaller ids than customers, so
  // the provider-customer digraph is acyclic and Gao-Rexford converges).
  for (NodeId a = 0; a < core; ++a) {
    for (NodeId b = a + 1; b < core; ++b) {
      t.add_link(a, b, kDefaultLinkDelay);
      rel.set_peering(a, b);
    }
  }

  // Attachment pool for degree-proportional provider sampling: a node
  // appears once when it becomes transit-capable and once more per customer
  // it signs, so a uniform draw from the pool is preferential attachment
  // without any weighted scan.
  std::vector<NodeId> pool;
  pool.reserve(p.nodes * 3);
  for (NodeId c = 0; c < core; ++c) pool.push_back(c);

  const auto pick_provider = [&](NodeId self) -> NodeId {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId cand = pool[rng.next_below(pool.size())];
      if (cand != self && !t.link_between(self, cand)) return cand;
    }
    return net::kInvalidNode;
  };
  // Collision fallback so every node is guaranteed a provider (hence the
  // graph is guaranteed connected): smallest transit-capable id not yet
  // linked. Rarely taken, so the linear scan doesn't matter.
  const auto first_free_provider = [&](NodeId self) -> NodeId {
    const NodeId bound = std::min<NodeId>(self, transit_bound);
    for (NodeId c = 0; c < bound; ++c) {
      if (!t.link_between(self, c)) return c;
    }
    return net::kInvalidNode;
  };
  const auto home_under = [&](NodeId node, NodeId prov) {
    t.add_link(node, prov, kDefaultLinkDelay);
    rel.set_provider_customer(prov, node);
    // Rich-get-richer: providers re-enter the pool per signed customer.
    // Stubs stay out of the pool — they only provide via explicit chains.
    if (prov < transit_bound) pool.push_back(prov);
  };

  // Transit middle tier: multi-homed into the core and earlier transit.
  for (NodeId node = static_cast<NodeId>(core); node < transit_bound; ++node) {
    const auto want = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(p.transit_providers_lo),
        static_cast<std::int64_t>(p.transit_providers_hi)));
    for (std::size_t k = 0; k < want; ++k) {
      NodeId prov = pick_provider(node);
      if (prov == net::kInvalidNode && k == 0) {
        prov = first_free_provider(node);
      }
      if (prov != net::kInvalidNode) home_under(node, prov);
    }
    pool.push_back(node);  // now eligible as a provider for later nodes
  }

  // Lateral transit peering (uniform partner, bounded attempts).
  for (NodeId node = static_cast<NodeId>(core); node < transit_bound; ++node) {
    if (!rng.chance(p.transit_peer_prob)) continue;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId cand = static_cast<NodeId>(
          core + rng.next_below(transit_bound - core));
      if (cand == node || t.link_between(node, cand)) continue;
      t.add_link(node, cand, kDefaultLinkDelay);
      rel.set_peering(node, cand);
      break;
    }
  }

  // Stub majority: homed under core/transit providers, with occasional
  // customer chains below earlier stubs (the long scarce backup paths).
  for (NodeId node = static_cast<NodeId>(transit_bound); node < p.nodes;
       ++node) {
    const auto want = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(p.stub_providers_lo),
        static_cast<std::int64_t>(p.stub_providers_hi)));
    for (std::size_t k = 0; k < want; ++k) {
      NodeId prov = net::kInvalidNode;
      if (node > transit_bound && rng.chance(p.stub_chain_prob)) {
        const NodeId earlier = static_cast<NodeId>(
            transit_bound + rng.next_below(node - transit_bound));
        if (!t.link_between(node, earlier)) prov = earlier;
      }
      if (prov == net::kInvalidNode) prov = pick_provider(node);
      if (prov == net::kInvalidNode && k == 0) {
        prov = first_free_provider(node);
      }
      if (prov != net::kInvalidNode) home_under(node, prov);
    }
  }
  return AnnotatedTopology{std::move(t), std::move(rel)};
}

}  // namespace bgpsim::topo
