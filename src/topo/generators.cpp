#include "topo/generators.hpp"

#include <stdexcept>

namespace bgpsim::topo {

using net::NodeId;
using net::Topology;

Topology make_clique(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_clique: need n >= 2"};
  Topology t{n};
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) t.add_link(a, b, kDefaultLinkDelay);
  }
  return t;
}

Topology make_chain(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_chain: need n >= 2"};
  Topology t{n};
  for (NodeId a = 0; a + 1 < n; ++a) t.add_link(a, a + 1, kDefaultLinkDelay);
  return t;
}

Topology make_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument{"make_ring: need n >= 3"};
  Topology t = make_chain(n);
  t.add_link(static_cast<NodeId>(n - 1), 0, kDefaultLinkDelay);
  return t;
}

Topology make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_star: need n >= 2"};
  Topology t{n};
  for (NodeId spoke = 1; spoke < n; ++spoke) {
    t.add_link(0, spoke, kDefaultLinkDelay);
  }
  return t;
}

Topology make_tree(std::size_t n) {
  if (n < 1) throw std::invalid_argument{"make_tree: need n >= 1"};
  Topology t{n};
  for (NodeId child = 1; child < n; ++child) {
    t.add_link((child - 1) / 2, child, kDefaultLinkDelay);
  }
  return t;
}

Topology make_grid(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument{"make_grid: empty"};
  Topology t{rows * cols};
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(at(r, c), at(r, c + 1), kDefaultLinkDelay);
      if (r + 1 < rows) t.add_link(at(r, c), at(r + 1, c), kDefaultLinkDelay);
    }
  }
  return t;
}

Topology make_bclique(std::size_t n) {
  if (n < 2) throw std::invalid_argument{"make_bclique: need n >= 2"};
  Topology t{2 * n};
  // Chain 0 .. n-1.
  for (NodeId a = 0; a + 1 < n; ++a) t.add_link(a, a + 1, kDefaultLinkDelay);
  // Clique n .. 2n-1.
  for (NodeId a = static_cast<NodeId>(n); a < 2 * n; ++a) {
    for (NodeId b = a + 1; b < 2 * n; ++b) t.add_link(a, b, kDefaultLinkDelay);
  }
  // Edge network attachment: direct link [0, n] plus the backup entry point
  // [n-1, 2n-1] at the far end of the chain.
  t.add_link(0, static_cast<NodeId>(n), kDefaultLinkDelay);
  t.add_link(static_cast<NodeId>(n - 1), static_cast<NodeId>(2 * n - 1),
             kDefaultLinkDelay);
  return t;
}

net::LinkId bclique_tlong_link(const Topology& t, std::size_t n) {
  const auto id = t.link_between(0, static_cast<NodeId>(n));
  if (!id) throw std::invalid_argument{"bclique_tlong_link: no [0,n] link"};
  return *id;
}

}  // namespace bgpsim::topo
