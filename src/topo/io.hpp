// Plain-text serialization for reproducible topologies.
//
// Two formats:
//  - Edge list:
//      line 1:  "<node_count> <link_count>"
//      then one "<a> <b>" pair per link (undirected).
//  - CAIDA AS-relationship CSV (as-rel "serial-1"):
//      one "<as1>|<as2>|<rel>" per line, where rel -1 means as1 is a
//      provider of as2 and rel 0 means as1 and as2 peer. A fourth |-field
//      (serial-2 adds the inference source) is tolerated and ignored.
// In both formats lines starting with '#' and blank lines are ignored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/relationships.hpp"
#include "net/topology.hpp"

namespace bgpsim::topo {

/// Serialize `t` as an edge list (link delays are not stored; readers apply
/// the study's uniform 2 ms delay).
void write_edge_list(std::ostream& out, const net::Topology& t);
[[nodiscard]] std::string to_edge_list(const net::Topology& t);

/// Parse an edge list. Throws std::runtime_error on malformed input.
[[nodiscard]] net::Topology read_edge_list(std::istream& in);
[[nodiscard]] net::Topology from_edge_list(const std::string& text);

/// An AS-relationship file materialized for simulation. AS numbers are
/// remapped to dense node ids by ascending AS number (deterministic and
/// independent of line order), recorded in `as_numbers`.
struct AsRelationshipGraph {
  net::Topology topology;
  net::RelationshipTable relationships;
  std::vector<std::uint32_t> as_numbers;  // NodeId -> original AS number
};

/// Parse a CAIDA-format AS-relationship file. Throws std::runtime_error
/// (with a 1-based line number) on malformed lines, relationship codes
/// other than -1/0, self-loops, duplicate adjacencies (either direction or
/// orientation), and on files with no edges at all. Connectivity is NOT
/// enforced — scenario preparation checks what it needs.
[[nodiscard]] AsRelationshipGraph read_as_relationships(std::istream& in);
[[nodiscard]] AsRelationshipGraph from_as_relationships(
    const std::string& text);
/// Read from a file path (errors are prefixed with the path).
[[nodiscard]] AsRelationshipGraph load_as_relationships(
    const std::string& path);

/// Serialize a classified topology in CAIDA format, one link per line in
/// link-id order, node ids written as AS numbers. Unclassified adjacencies
/// are emitted as peerings — the same default the policy layer applies.
void write_as_relationships(std::ostream& out, const net::Topology& t,
                            const net::RelationshipTable& rel);
[[nodiscard]] std::string to_as_relationships(const net::Topology& t,
                                              const net::RelationshipTable& rel);

}  // namespace bgpsim::topo
