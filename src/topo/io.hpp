// Plain-text edge-list serialization for reproducible topologies.
//
// Format:
//   line 1:  "<node_count> <link_count>"
//   then one "<a> <b>" pair per link (undirected).
// Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "net/topology.hpp"

namespace bgpsim::topo {

/// Serialize `t` as an edge list (link delays are not stored; readers apply
/// the study's uniform 2 ms delay).
void write_edge_list(std::ostream& out, const net::Topology& t);
[[nodiscard]] std::string to_edge_list(const net::Topology& t);

/// Parse an edge list. Throws std::runtime_error on malformed input.
[[nodiscard]] net::Topology read_edge_list(std::istream& in);
[[nodiscard]] net::Topology from_edge_list(const std::string& text);

}  // namespace bgpsim::topo
