// Internet-like AS topologies.
//
// The paper used 29/48/75/110-node AS graphs extracted from real BGP routing
// tables (Premore's SSFNET gallery), which are no longer obtainable. We
// substitute a structural generator that reproduces the properties the
// paper's arguments rely on (see DESIGN.md §2):
//   - a small, densely meshed core (tier-1-like full mesh),
//   - a mid tier multi-homed into the core and each other,
//   - a majority of low-degree stub ASes at the edge,
//   - destination chosen among the lowest-degree nodes, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "net/relationships.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace bgpsim::topo {

struct InternetParams {
  std::size_t nodes = 110;
  /// Fraction of nodes in the fully meshed core (at least 3 nodes).
  double core_fraction = 0.05;
  /// Fraction of nodes in the multi-homed middle tier.
  double mid_fraction = 0.30;
  /// Providers per mid-tier node (uniform in [lo, hi]).
  std::size_t mid_providers_lo = 1;
  std::size_t mid_providers_hi = 2;
  /// Providers per stub node (uniform in [lo, hi]).
  std::size_t stub_providers_lo = 1;
  std::size_t stub_providers_hi = 2;
  /// Probability that a mid-tier node adds one lateral peer link to another
  /// mid-tier node (AS graphs show substantial mid-tier peering; these
  /// links create the longer alternate paths explored after a failure).
  double mid_peer_prob = 0.5;
  /// Probability that a stub homes to an earlier *stub* instead of a
  /// mid/core provider. Real AS graphs contain such customer chains; they
  /// produce the long, scarce backup paths (cf. the paper's B-Clique
  /// motivation) that make Tlong reconvergence withdrawal-heavy.
  double stub_chain_prob = 0.35;
  std::uint64_t seed = 1;
};

/// Generate an Internet-like topology. Always connected.
[[nodiscard]] net::Topology make_internet(const InternetParams& params);

/// Topology plus the business relationships the generator implied while
/// constructing it (core mesh = peering; provider picks and stub chains =
/// provider-customer; lateral mid links = peering). The provider-customer
/// digraph is acyclic by construction (providers always have smaller ids),
/// so Gao-Rexford policy routing over it is guaranteed to converge.
struct AnnotatedTopology {
  net::Topology topology;
  net::RelationshipTable relationships;
};
[[nodiscard]] AnnotatedTopology make_internet_annotated(
    const InternetParams& params);

/// Convenience: generator presets at the paper's sizes {29, 48, 75, 110}.
[[nodiscard]] net::Topology make_internet_preset(std::size_t nodes,
                                                 std::uint64_t seed);

/// All nodes whose degree equals the topology's minimum degree — the paper
/// picks the destination AS "randomly chosen among the nodes with the
/// lowest degrees".
[[nodiscard]] std::vector<net::NodeId> lowest_degree_nodes(
    const net::Topology& t);

}  // namespace bgpsim::topo
