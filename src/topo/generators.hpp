// Parametric topology families used by the study (Figure 3) and the tests.
#pragma once

#include <cstddef>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::topo {

/// Default one-way link propagation delay used throughout the study (2 ms).
inline constexpr auto kDefaultLinkDelay = bgpsim::sim::SimTime::millis(2);

/// Full mesh on n nodes (Figure 3(a)). The destination AS is node 0.
[[nodiscard]] net::Topology make_clique(std::size_t n);

/// Simple path 0—1—...—n-1.
[[nodiscard]] net::Topology make_chain(std::size_t n);

/// Cycle 0—1—...—n-1—0.
[[nodiscard]] net::Topology make_ring(std::size_t n);

/// Hub node 0 with n-1 spokes.
[[nodiscard]] net::Topology make_star(std::size_t n);

/// Complete binary tree on n nodes (node k's children are 2k+1, 2k+2).
[[nodiscard]] net::Topology make_tree(std::size_t n);

/// rows × cols grid with 4-neighborhood.
[[nodiscard]] net::Topology make_grid(std::size_t rows, std::size_t cols);

/// B-Clique of size n (Figure 3(b)): 2n nodes total. Nodes 0..n-1 form a
/// chain; nodes n..2n-1 form a clique; plus links [0, n] and [n-1, 2n-1].
/// The destination AS is node 0; the Tlong event fails link [0, n], forcing
/// the clique to reach node 0 over the chain.
[[nodiscard]] net::Topology make_bclique(std::size_t n);

/// The LinkId of the B-Clique's [0, n] link (the one Tlong fails).
[[nodiscard]] net::LinkId bclique_tlong_link(const net::Topology& t,
                                             std::size_t n);

}  // namespace bgpsim::topo
