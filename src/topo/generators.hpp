// Parametric topology families used by the study (Figure 3) and the tests,
// plus the Internet-scale AS-relationship graph generator (see make_as_graph).
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "topo/internet.hpp"

namespace bgpsim::topo {

/// Default one-way link propagation delay used throughout the study (2 ms).
inline constexpr auto kDefaultLinkDelay = bgpsim::sim::SimTime::millis(2);

/// Full mesh on n nodes (Figure 3(a)). The destination AS is node 0.
[[nodiscard]] net::Topology make_clique(std::size_t n);

/// Simple path 0—1—...—n-1.
[[nodiscard]] net::Topology make_chain(std::size_t n);

/// Cycle 0—1—...—n-1—0.
[[nodiscard]] net::Topology make_ring(std::size_t n);

/// Hub node 0 with n-1 spokes.
[[nodiscard]] net::Topology make_star(std::size_t n);

/// Complete binary tree on n nodes (node k's children are 2k+1, 2k+2).
[[nodiscard]] net::Topology make_tree(std::size_t n);

/// rows × cols grid with 4-neighborhood.
[[nodiscard]] net::Topology make_grid(std::size_t rows, std::size_t cols);

/// B-Clique of size n (Figure 3(b)): 2n nodes total. Nodes 0..n-1 form a
/// chain; nodes n..2n-1 form a clique; plus links [0, n] and [n-1, 2n-1].
/// The destination AS is node 0; the Tlong event fails link [0, n], forcing
/// the clique to reach node 0 over the chain.
[[nodiscard]] net::Topology make_bclique(std::size_t n);

/// The LinkId of the B-Clique's [0, n] link (the one Tlong fails).
[[nodiscard]] net::LinkId bclique_tlong_link(const net::Topology& t,
                                             std::size_t n);

/// Internet-scale AS-relationship graph (1k-75k nodes).
///
/// Same tiered structure as make_internet (tier-1 clique core, a transit
/// middle tier, a stub majority, provider ids always below customer ids so
/// the provider-customer digraph is acyclic), but built for scale: provider
/// choice uses a repeated-endpoint attachment pool — each node re-enters the
/// pool once per customer it acquires — so degree-proportional (preferential)
/// sampling is O(1) per pick instead of an O(n) weighted scan, and a 75k-node
/// graph generates in milliseconds. The pool produces the heavy-tailed
/// customer-degree skew observed in real AS graphs.
struct AsGraphParams {
  std::size_t nodes = 1000;
  std::uint64_t seed = 1;
  /// Tier-1 core size; 0 = auto (~log2(nodes), clamped to [5, 20]).
  std::size_t core = 0;
  /// Fraction of nodes forming the transit middle tier.
  double transit_fraction = 0.15;
  /// Providers per transit node (uniform in [lo, hi]).
  std::size_t transit_providers_lo = 1;
  std::size_t transit_providers_hi = 3;
  /// Providers per stub node (uniform in [lo, hi]).
  std::size_t stub_providers_lo = 1;
  std::size_t stub_providers_hi = 2;
  /// Probability that a transit node adds one lateral peering link.
  double transit_peer_prob = 0.35;
  /// Probability that a stub homes under an earlier stub (customer chains).
  double stub_chain_prob = 0.05;
};

/// Generate an AS graph with business relationships. Deterministic in
/// `params` (same params -> identical graph), always connected, and every
/// adjacency is classified in the relationship table. Throws
/// std::invalid_argument for nodes < 16 or a core that doesn't fit.
[[nodiscard]] AnnotatedTopology make_as_graph(const AsGraphParams& params);

}  // namespace bgpsim::topo
