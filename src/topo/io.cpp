#include "topo/io.hpp"

#include <sstream>
#include <stdexcept>

#include "topo/generators.hpp"

namespace bgpsim::topo {

void write_edge_list(std::ostream& out, const net::Topology& t) {
  out << t.node_count() << ' ' << t.link_count() << '\n';
  for (net::LinkId id = 0; id < t.link_count(); ++id) {
    const auto& l = t.link(id);
    out << l.a << ' ' << l.b << '\n';
  }
}

std::string to_edge_list(const net::Topology& t) {
  std::ostringstream out;
  write_edge_list(out, t);
  return out.str();
}

net::Topology read_edge_list(std::istream& in) {
  std::string line;
  const auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_data_line()) throw std::runtime_error{"edge list: missing header"};
  std::istringstream header{line};
  std::size_t nodes = 0, links = 0;
  if (!(header >> nodes >> links)) {
    throw std::runtime_error{"edge list: malformed header"};
  }

  net::Topology t{nodes};
  for (std::size_t i = 0; i < links; ++i) {
    if (!next_data_line()) throw std::runtime_error{"edge list: truncated"};
    std::istringstream row{line};
    net::NodeId a = 0, b = 0;
    if (!(row >> a >> b)) throw std::runtime_error{"edge list: malformed link"};
    t.add_link(a, b, kDefaultLinkDelay);
  }
  return t;
}

net::Topology from_edge_list(const std::string& text) {
  std::istringstream in{text};
  return read_edge_list(in);
}

}  // namespace bgpsim::topo
