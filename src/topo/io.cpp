#include "topo/io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "topo/generators.hpp"

namespace bgpsim::topo {

void write_edge_list(std::ostream& out, const net::Topology& t) {
  out << t.node_count() << ' ' << t.link_count() << '\n';
  for (net::LinkId id = 0; id < t.link_count(); ++id) {
    const auto& l = t.link(id);
    out << l.a << ' ' << l.b << '\n';
  }
}

std::string to_edge_list(const net::Topology& t) {
  std::ostringstream out;
  write_edge_list(out, t);
  return out.str();
}

net::Topology read_edge_list(std::istream& in) {
  std::string line;
  const auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_data_line()) throw std::runtime_error{"edge list: missing header"};
  std::istringstream header{line};
  std::size_t nodes = 0, links = 0;
  if (!(header >> nodes >> links)) {
    throw std::runtime_error{"edge list: malformed header"};
  }

  net::Topology t{nodes};
  for (std::size_t i = 0; i < links; ++i) {
    if (!next_data_line()) throw std::runtime_error{"edge list: truncated"};
    std::istringstream row{line};
    net::NodeId a = 0, b = 0;
    if (!(row >> a >> b)) throw std::runtime_error{"edge list: malformed link"};
    t.add_link(a, b, kDefaultLinkDelay);
  }
  return t;
}

net::Topology from_edge_list(const std::string& text) {
  std::istringstream in{text};
  return read_edge_list(in);
}

namespace {

struct RelEdge {
  std::uint32_t as1 = 0;
  std::uint32_t as2 = 0;
  int rel = 0;  // -1: as1 provides for as2; 0: peers
  std::size_t line_no = 0;
};

[[noreturn]] void rel_fail(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error{"as-relationships: line " +
                           std::to_string(line_no) + ": " + msg};
}

template <typename T>
bool parse_int(std::string_view field, T& out) {
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !field.empty();
}

}  // namespace

AsRelationshipGraph read_as_relationships(std::istream& in) {
  std::vector<RelEdge> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;

    // Split into |-separated fields; a 4th (serial-2 source) is ignored.
    const std::string_view text{line};
    std::string_view fields[3];
    std::size_t n_fields = 0;
    std::size_t pos = 0;
    while (n_fields < 3) {
      const auto bar = text.find('|', pos);
      if (bar == std::string_view::npos) {
        fields[n_fields++] = text.substr(pos);
        break;
      }
      fields[n_fields++] = text.substr(pos, bar - pos);
      pos = bar + 1;
      if (n_fields == 3) break;
    }
    if (n_fields < 3) rel_fail(line_no, "truncated line '" + line + "'");

    RelEdge e;
    if (!parse_int(fields[0], e.as1) || !parse_int(fields[1], e.as2)) {
      rel_fail(line_no, "malformed AS number in '" + line + "'");
    }
    if (!parse_int(fields[2], e.rel) || (e.rel != -1 && e.rel != 0)) {
      rel_fail(line_no, "bad relationship code '" + std::string{fields[2]} +
                            "' (want -1 or 0)");
    }
    if (e.as1 == e.as2) {
      rel_fail(line_no, "self-loop on AS " + std::to_string(e.as1));
    }
    e.line_no = line_no;
    edges.push_back(e);
  }
  if (edges.empty()) {
    throw std::runtime_error{"as-relationships: no edges in input"};
  }

  // Dense node ids by ascending AS number: deterministic and independent
  // of the file's line order.
  std::map<std::uint32_t, net::NodeId> id_of;
  for (const RelEdge& e : edges) {
    id_of.emplace(e.as1, 0);
    id_of.emplace(e.as2, 0);
  }
  AsRelationshipGraph g;
  g.as_numbers.reserve(id_of.size());
  for (auto& [asn, id] : id_of) {
    id = static_cast<net::NodeId>(g.as_numbers.size());
    g.as_numbers.push_back(asn);
  }

  g.topology.add_nodes(id_of.size());
  for (const RelEdge& e : edges) {
    const net::NodeId a = id_of.at(e.as1);
    const net::NodeId b = id_of.at(e.as2);
    if (g.topology.link_between(a, b)) {
      rel_fail(e.line_no, "duplicate adjacency " + std::to_string(e.as1) +
                              "|" + std::to_string(e.as2) +
                              " (already classified)");
    }
    g.topology.add_link(a, b, kDefaultLinkDelay);
    if (e.rel == -1) {
      g.relationships.set_provider_customer(a, b);
    } else {
      g.relationships.set_peering(a, b);
    }
  }
  return g;
}

AsRelationshipGraph from_as_relationships(const std::string& text) {
  std::istringstream in{text};
  return read_as_relationships(in);
}

AsRelationshipGraph load_as_relationships(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"as-relationships: cannot open '" + path + "'"};
  }
  try {
    return read_as_relationships(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

void write_as_relationships(std::ostream& out, const net::Topology& t,
                            const net::RelationshipTable& rel) {
  for (net::LinkId id = 0; id < t.link_count(); ++id) {
    const auto& l = t.link(id);
    const auto r = rel.relationship(l.a, l.b);  // what b is to a
    if (r == net::Relationship::kCustomer) {
      out << l.a << '|' << l.b << "|-1\n";
    } else if (r == net::Relationship::kProvider) {
      out << l.b << '|' << l.a << "|-1\n";
    } else {
      out << l.a << '|' << l.b << "|0\n";
    }
  }
}

std::string to_as_relationships(const net::Topology& t,
                                const net::RelationshipTable& rel) {
  std::ostringstream out;
  write_as_relationships(out, t, rel);
  return out.str();
}

}  // namespace bgpsim::topo
