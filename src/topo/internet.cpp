#include "topo/internet.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/random.hpp"
#include "topo/generators.hpp"

namespace bgpsim::topo {

using net::NodeId;
using net::Topology;

namespace {

/// Pick a provider for `node` among candidate ids [0, bound) proportionally
/// to degree+1 (preferential attachment), skipping ones already linked.
NodeId pick_provider(const Topology& t, sim::Rng& rng, NodeId node,
                     NodeId bound) {
  std::size_t total = 0;
  for (NodeId c = 0; c < bound; ++c) {
    if (c == node || t.link_between(node, c)) continue;
    total += t.degree(c) + 1;
  }
  if (total == 0) return net::kInvalidNode;
  std::size_t pick = rng.next_below(total);
  for (NodeId c = 0; c < bound; ++c) {
    if (c == node || t.link_between(node, c)) continue;
    const std::size_t w = t.degree(c) + 1;
    if (pick < w) return c;
    pick -= w;
  }
  return net::kInvalidNode;
}

}  // namespace

Topology make_internet(const InternetParams& p) {
  return make_internet_annotated(p).topology;
}

AnnotatedTopology make_internet_annotated(const InternetParams& p) {
  if (p.nodes < 8) throw std::invalid_argument{"make_internet: need n >= 8"};
  const auto core = std::max<std::size_t>(
      3, static_cast<std::size_t>(p.core_fraction * p.nodes + 0.5));
  const auto mid = static_cast<std::size_t>(p.mid_fraction * p.nodes + 0.5);
  if (core + mid >= p.nodes) {
    throw std::invalid_argument{"make_internet: core+mid exceed node count"};
  }

  sim::Rng rng{p.seed};
  Topology t{p.nodes};
  net::RelationshipTable rel;

  // Node numbering deliberately places stubs at high ids and the core at
  // low ids: real AS graphs extracted from routing tables also enumerate
  // the well-connected core first.
  // Core: full mesh among nodes [0, core).
  for (NodeId a = 0; a < core; ++a) {
    for (NodeId b = a + 1; b < core; ++b) {
      t.add_link(a, b, kDefaultLinkDelay);
      rel.set_peering(a, b);
    }
  }

  // Mid tier: nodes [core, core+mid), each multi-homed into the existing
  // graph (core + earlier mids) with degree-preferential provider choice.
  for (NodeId node = static_cast<NodeId>(core);
       node < static_cast<NodeId>(core + mid); ++node) {
    const auto want = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(p.mid_providers_lo),
        static_cast<std::int64_t>(p.mid_providers_hi)));
    for (std::size_t k = 0; k < want; ++k) {
      const NodeId prov = pick_provider(t, rng, node, node);
      if (prov != net::kInvalidNode) {
        t.add_link(node, prov, kDefaultLinkDelay);
        rel.set_provider_customer(prov, node);
      }
    }
  }

  // Lateral mid-tier peering.
  const auto providers_bound = static_cast<NodeId>(core + mid);
  for (NodeId node = static_cast<NodeId>(core); node < providers_bound;
       ++node) {
    if (!rng.chance(p.mid_peer_prob)) continue;
    // Uniform (not preferential) peer choice among the other mids.
    std::vector<NodeId> others;
    for (NodeId c = static_cast<NodeId>(core); c < providers_bound; ++c) {
      if (c != node && !t.link_between(node, c)) others.push_back(c);
    }
    if (!others.empty()) {
      const NodeId peer = others[rng.next_below(others.size())];
      t.add_link(node, peer, kDefaultLinkDelay);
      rel.set_peering(node, peer);
    }
  }

  // Stubs: nodes [core+mid, n), homed to mid/core nodes only (stubs do not
  // provide transit, so they never appear as providers).
  for (NodeId node = providers_bound; node < p.nodes; ++node) {
    const auto want = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(p.stub_providers_lo),
        static_cast<std::int64_t>(p.stub_providers_hi)));
    for (std::size_t k = 0; k < want; ++k) {
      // Customer chains: occasionally home to an earlier stub instead of a
      // transit provider (uniform choice — chains stay thin).
      NodeId prov = net::kInvalidNode;
      if (node > providers_bound && rng.chance(p.stub_chain_prob)) {
        const NodeId earlier = providers_bound +
            static_cast<NodeId>(rng.next_below(node - providers_bound));
        if (!t.link_between(node, earlier)) prov = earlier;
      }
      if (prov == net::kInvalidNode) {
        prov = pick_provider(t, rng, node, providers_bound);
      }
      if (prov != net::kInvalidNode) {
        t.add_link(node, prov, kDefaultLinkDelay);
        rel.set_provider_customer(prov, node);
      }
    }
  }
  return AnnotatedTopology{std::move(t), std::move(rel)};
}

Topology make_internet_preset(std::size_t nodes, std::uint64_t seed) {
  InternetParams p;
  p.nodes = nodes;
  p.seed = seed;
  return make_internet(p);
}

std::vector<NodeId> lowest_degree_nodes(const Topology& t) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (NodeId n = 0; n < t.node_count(); ++n) best = std::min(best, t.degree(n));
  std::vector<NodeId> out;
  for (NodeId n = 0; n < t.node_count(); ++n) {
    if (t.degree(n) == best) out.push_back(n);
  }
  return out;
}

}  // namespace bgpsim::topo
