// The discrete-event simulator core.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {

/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// Components schedule callbacks at absolute times or after delays; run()
/// drains the queue in time order, advancing the clock to each event's
/// firing time. The engine is strictly single-threaded and deterministic:
/// identical schedules produce identical executions.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// The queue backend defaults to the process-wide resolution
  /// (BGPSIM_TIMER_WHEEL / set_queue_backend_override); tests pin one
  /// explicitly for differential runs.
  explicit Simulator(QueueBackend backend = default_queue_backend())
      : queue_{backend} {}

  [[nodiscard]] QueueBackend backend() const { return queue_.backend(); }

  /// True when components should gather coincident timer expiries into one
  /// batched delivery (see next_coincident_event). Tied to the wheel
  /// backend so BGPSIM_TIMER_WHEEL=0 reproduces the strictly sequential
  /// reference execution.
  [[nodiscard]] bool burst_delivery() const {
    return queue_.backend() == QueueBackend::kWheel;
  }

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` after `delay` from now (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// The handle the next schedule_at/schedule_after call will return
  /// (pure observation; see EventQueue::next_push_id). Lets a caller bake
  /// the id into the scheduled closure itself.
  [[nodiscard]] EventId next_schedule_id() const { return queue_.next_push_id(); }

  /// Cancel a pending event; returns false if it already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or the next event lies beyond `limit`.
  /// Events at exactly `limit` do fire. The clock stays at the last fired
  /// event's time (it does not jump to `limit`). Returns the number of
  /// events fired.
  std::uint64_t run_until(SimTime limit);

  /// Run until the queue drains. Returns the number of events fired.
  std::uint64_t run() { return run_until(SimTime::infinity()); }

  /// Fire exactly one event if any is pending. Returns true if one fired.
  bool step();

  /// --- batched same-timestamp delivery ------------------------------
  ///
  /// A component whose handler is currently running (i.e. now() is the
  /// firing time) may consume further events due at this exact instant
  /// without a round trip through the run loop, provided it can re-derive
  /// the work from its own bookkeeping. The contract preserves the
  /// sequential execution order exactly: only the globally next event is
  /// ever offered, so a foreign event (another component's closure, or
  /// the external slot) interleaved between two of the component's timers
  /// stops the batch right there.

  /// Handle of the next pending event iff it is due exactly at now() and
  /// precedes an armed external slot; nullopt otherwise. The caller
  /// checks the handle against its own bookkeeping before consuming.
  [[nodiscard]] std::optional<EventId> next_coincident_event() const;

  /// Consume the event next_coincident_event() just returned: it counts
  /// as fired (the clock is already at its time) but its closure is
  /// discarded unrun. `id` must still be the front of the queue.
  void consume_coincident(EventId id);

  /// --- external event slot ------------------------------------------
  ///
  /// A component that manages many internal timed items behind one
  /// deadline — the data plane keeps its own heap of millions of packet
  /// hops — registers a handler once and arms the slot for its earliest
  /// internal time. Arming draws a FIFO tie-break seq from the same
  /// counter as schedule_at, so the handler fires in exactly the order a
  /// freshly pushed event would — but arming and re-arming are a few
  /// stores, with no queue traffic and no allocation. One slot per
  /// simulator; the run loop merges it with the queue.

  /// Register the external handler (must be set before arm_external; may
  /// only be installed once — the slot has a single owner).
  void set_external_handler(Callback handler);

  /// Arm the slot at absolute time `when` (>= now()), replacing any
  /// previous arming and assigning a fresh tie-break seq — the ordering a
  /// cancel-and-reschedule through the queue would produce.
  void arm_external(SimTime when);

  /// Disarm without firing. No-op if not armed.
  void disarm_external() { ext_armed_ = false; }

  [[nodiscard]] bool external_armed() const { return ext_armed_; }

  /// Number of pending (live) events, counting an armed external slot.
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() + (ext_armed_ ? 1 : 0);
  }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Drop all pending events, including an armed external slot (the
  /// clock is not reset).
  void clear_pending() {
    queue_.clear();
    ext_armed_ = false;
  }

  /// Sequence number the next scheduled event will receive — part of the
  /// deterministic-replay state alongside now() and events_fired().
  [[nodiscard]] std::uint64_t event_seq() const { return queue_.next_seq(); }

  /// Checkpoint restore: set the clock, fired-event count, and event
  /// sequence counter in one step so a restored run continues with
  /// bit-identical timestamps, counts, and FIFO tie-breaks. Does not touch
  /// pending events; the caller is responsible for restoring at a moment
  /// where the queue contents match the checkpoint (e.g. quiescence).
  void restore_clock(SimTime now, std::uint64_t fired, std::uint64_t seq) {
    now_ = now;
    fired_ = fired;
    queue_.set_next_seq(seq);
  }

  /// Sorted (time µs, seq) of every live queued event — the
  /// backend-invariant pending set snapshots serialize and verify. The
  /// external slot is excluded: it is component-owned state, re-armed by
  /// its owner on restore.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
  pending_entries() const {
    return queue_.pending_entries();
  }

 private:
  /// True when the external slot fires before the queue's earliest event
  /// — earlier time, or equal time with the earlier seq. Requires the
  /// slot armed and the queue non-empty.
  [[nodiscard]] bool external_first() const {
    const SimTime qt = queue_.next_time();
    if (ext_time_ != qt) return ext_time_ < qt;
    return ext_seq_ < queue_.next_event_seq();
  }

  void fire_external() {
    ext_armed_ = false;
    now_ = ext_time_;
    ++fired_;
    ext_handler_();
  }

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t fired_ = 0;
  Callback ext_handler_;
  SimTime ext_time_ = SimTime::zero();
  std::uint64_t ext_seq_ = 0;
  bool ext_armed_ = false;
};

}  // namespace bgpsim::sim
