// The discrete-event simulator core.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {

/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// Components schedule callbacks at absolute times or after delays; run()
/// drains the queue in time order, advancing the clock to each event's
/// firing time. The engine is strictly single-threaded and deterministic:
/// identical schedules produce identical executions.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` after `delay` from now (delay must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Cancel a pending event; returns false if it already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or the next event lies beyond `limit`.
  /// Events at exactly `limit` do fire. The clock stays at the last fired
  /// event's time (it does not jump to `limit`). Returns the number of
  /// events fired.
  std::uint64_t run_until(SimTime limit);

  /// Run until the queue drains. Returns the number of events fired.
  std::uint64_t run() { return run_until(SimTime::infinity()); }

  /// Fire exactly one event if any is pending. Returns true if one fired.
  bool step();

  /// Number of pending (live) events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Drop all pending events (the clock is not reset).
  void clear_pending() { queue_.clear(); }

  /// Sequence number the next scheduled event will receive — part of the
  /// deterministic-replay state alongside now() and events_fired().
  [[nodiscard]] std::uint64_t event_seq() const { return queue_.next_seq(); }

  /// Checkpoint restore: set the clock, fired-event count, and event
  /// sequence counter in one step so a restored run continues with
  /// bit-identical timestamps, counts, and FIFO tie-breaks. Does not touch
  /// pending events; the caller is responsible for restoring at a moment
  /// where the queue contents match the checkpoint (e.g. quiescence).
  void restore_clock(SimTime now, std::uint64_t fired, std::uint64_t seq) {
    now_ = now;
    fired_ = fired;
    queue_.set_next_seq(seq);
  }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t fired_ = 0;
};

}  // namespace bgpsim::sim
