// Leveled trace logging for simulation components.
//
// Logging defaults to off so benchmark runs pay nothing; examples flip it on
// to print protocol event traces (see examples/figure1_walkthrough.cpp).
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace bgpsim::sim {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-wide log configuration and sink.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  SimTime when, std::string_view message)>;

  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Replace the sink (default writes to stderr). Passing nullptr restores
  /// the default sink.
  static void set_sink(Sink sink);

  static bool enabled(LogLevel at) {
    return level_ != LogLevel::kOff && at <= level_;
  }

  static void write(LogLevel at, std::string_view component, SimTime when,
                    std::string_view message);

 private:
  static LogLevel level_;
  static Sink sink_;
};

/// Build-a-line helper: LogLine{...} << "text" << value; emits at destruction.
class LogLine {
 public:
  LogLine(LogLevel at, std::string_view component, SimTime when)
      : at_{at}, component_{component}, when_{when}, live_{Log::enabled(at)} {}
  ~LogLine() {
    if (live_) Log::write(at_, component_, when_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (live_) stream_ << v;
    return *this;
  }

 private:
  LogLevel at_;
  std::string component_;
  SimTime when_;
  bool live_;
  std::ostringstream stream_;
};

}  // namespace bgpsim::sim
