// Leveled trace logging for simulation components.
//
// Logging defaults to off so benchmark runs pay nothing; examples flip it on
// to print protocol event traces (see examples/figure1_walkthrough.cpp).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace bgpsim::sim {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-wide log configuration and sink.
///
/// Thread-safe: parallel trial runners (core::run_trials_parallel) emit
/// through one simulation per worker thread but share this static state.
/// The level is atomic (the hot `enabled` check stays lock-free) and the
/// sink is invoked under a mutex, so concurrent writers never interleave
/// within a line and a sink needs no locking of its own.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  SimTime when, std::string_view message)>;

  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Replace the sink (default writes to stderr). Passing nullptr restores
  /// the default sink.
  static void set_sink(Sink sink);

  /// Optional process-instance tag (e.g. a campaign worker id) prepended
  /// to every message as "[tag] ", so interleaved multi-process logs stay
  /// attributable. Applied in write(), ahead of the sink, so custom sinks
  /// see it too. Empty (the default) adds nothing.
  static void set_instance_tag(std::string tag);

  static bool enabled(LogLevel at) {
    const LogLevel l = level();
    return l != LogLevel::kOff && at <= l;
  }

  static void write(LogLevel at, std::string_view component, SimTime when,
                    std::string_view message);

 private:
  static std::atomic<LogLevel> level_;
  static std::mutex mutex_;  // guards sink_, tag_, and serializes write()
  static Sink sink_;
  static std::string tag_;
};

/// Build-a-line helper: LogLine{...} << "text" << value; emits at destruction.
class LogLine {
 public:
  LogLine(LogLevel at, std::string_view component, SimTime when)
      : at_{at}, component_{component}, when_{when}, live_{Log::enabled(at)} {}
  ~LogLine() {
    if (live_) Log::write(at_, component_, when_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (live_) stream_ << v;
    return *this;
  }

 private:
  LogLevel at_;
  std::string component_;
  SimTime when_;
  bool live_;
  std::ostringstream stream_;
};

}  // namespace bgpsim::sim
