#include "sim/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace bgpsim::sim {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock{mutex_};
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock{mutex_};
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock{mutex_};
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bgpsim::sim
