// Small-buffer, move-only callable for scheduler events.
//
// The discrete-event hot loop schedules millions of tiny closures (a node
// pointer plus a couple of ids). `std::function` heap-allocates almost all
// of them; this type stores any callable up to kInlineSize bytes inline in
// the event-queue slot and only falls back to the heap for oversized or
// throwing-move captures. Move-only (an event fires exactly once), so
// move-only captures work too and no copy support is carried around.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bgpsim::sim {

class Callback {
 public:
  /// Inline capture budget. 64 bytes holds a `std::function` (32 bytes on
  /// libstdc++), a this-pointer plus several ids, and — the sizing case —
  /// the transport's delivery closure (this + Envelope with its 24-byte
  /// inline Payload + EventId + LinkId, 60 bytes); measured on the
  /// convergence hot loop this covers every closure the engine schedules.
  static constexpr std::size_t kInlineSize = 64;

  Callback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &heap_vtable<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into dst from src, then destroy src's object.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* s) { (*std::launder(static_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* f = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { std::launder(static_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* s) { (**std::launder(static_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(static_cast<Fn**>(s)); },
  };

  void move_from(Callback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(kAlign) std::byte buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace bgpsim::sim
