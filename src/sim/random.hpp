// Deterministic random-number generation for reproducible simulations.
//
// Components must not share one generator through ad-hoc call interleaving:
// that would make every draw depend on unrelated code paths. Instead a
// single root seed derives *named streams* (one per component/purpose) via
// SplitMix64 hashing, so adding a draw in one component never perturbs
// another component's sequence.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace bgpsim::sim {

/// xoshiro256** engine seeded via SplitMix64 (Blackman & Vigna).
/// Small, fast, and with far better statistical behavior than LCGs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform duration in [lo, hi).
  SimTime uniform_time(SimTime lo, SimTime hi);

  /// Bernoulli draw with probability p.
  bool chance(double p);

  /// Derive an independent child stream named by (label, index). The child
  /// sequence is a pure function of (root seed, label, index).
  [[nodiscard]] Rng child(std::string_view label, std::uint64_t index = 0) const;

  /// Raw engine state, for checkpoint/restore (snap/). The retained root
  /// seed is part of the state because child() derives from it.
  struct State {
    std::uint64_t s[4] = {};
    std::uint64_t seed = 0;
  };
  [[nodiscard]] State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, seed_};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    seed_ = st.seed;
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so child() derives from the root seed
};

}  // namespace bgpsim::sim
