#include "sim/time.hpp"

#include <cstdio>

namespace bgpsim::sim {

std::string to_string(SimTime t) {
  if (t.is_infinite()) return "inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6fs", t.as_seconds());
  return buf;
}

}  // namespace bgpsim::sim
