#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace bgpsim::sim {

namespace {

/// Strict (time, seq) order — the heap's pop order, reproduced exactly.
bool entry_before(const TimerWheel::Entry& a, const TimerWheel::Entry& b) {
  if (a.time_us != b.time_us) return a.time_us < b.time_us;
  return a.seq < b.seq;
}

}  // namespace

void TimerWheel::insert(const Entry& entry) {
  ++count_;
  place(entry);
}

void TimerWheel::place(const Entry& entry) {
  const std::uint64_t tick = tick_of(entry.time_us);
  if (tick <= cur_tick_) {
    // Due now (or the owner peeked ahead of the clock): keep the ready
    // batch sorted so its front stays the global minimum.
    const auto it = std::lower_bound(ready_.begin() + ready_pos_,
                                     ready_.end(), entry, entry_before);
    ready_.insert(it, entry);
    return;
  }
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint32_t above = kLevelBits * (level + 1);
    if ((tick >> above) != (cur_tick_ >> above)) continue;
    const auto index =
        static_cast<std::uint32_t>((tick >> (kLevelBits * level)) & kSlotMask);
    slots_[level][index].push_back(entry);
    occupied_[level] |= std::uint64_t{1} << index;
    return;
  }
  overflow_.push_back(entry);
}

const TimerWheel::Entry* TimerWheel::peek(StaleFn stale, const void* ctx) {
  for (;;) {
    while (ready_pos_ < ready_.size()) {
      const Entry& front = ready_[ready_pos_];
      if (!stale(ctx, front)) return &front;
      ++ready_pos_;
      assert(count_ > 0);
      --count_;
    }
    ready_.clear();
    ready_pos_ = 0;
    if (count_ == 0) return nullptr;
    advance();
  }
}

void TimerWheel::pop_front() {
  assert(ready_pos_ < ready_.size());
  ++ready_pos_;
  assert(count_ > 0);
  --count_;
  if (ready_pos_ == ready_.size()) {
    ready_.clear();
    ready_pos_ = 0;
  }
}

void TimerWheel::advance() {
  // Precondition: ready batch empty, count_ > 0 (entries exist in some
  // slot or in overflow).
  for (;;) {
    // Level 0: the next occupied slot in the current 64-tick window. The
    // bit at cur_tick_'s own position is structurally clear (an entry due
    // at the current tick goes straight to the ready batch), so the mask
    // may include it.
    const std::uint64_t mask0 =
        occupied_[0] & (~std::uint64_t{0} << (cur_tick_ & kSlotMask));
    if (mask0 != 0) {
      const auto index = static_cast<std::uint32_t>(std::countr_zero(mask0));
      cur_tick_ = (cur_tick_ & ~kSlotMask) | index;
      std::vector<Entry>& bucket = slots_[0][index];
      ready_.insert(ready_.end(), bucket.begin(), bucket.end());
      bucket.clear();
      occupied_[0] &= ~(std::uint64_t{1} << index);
      std::sort(ready_.begin(), ready_.end(), entry_before);
      return;
    }

    // Climb: find the lowest level with an occupied slot at or beyond the
    // current position and cascade it down. The slot at the current
    // position itself is structurally clear at every level (its entries
    // would have been placed lower), so countr_zero lands strictly ahead.
    bool cascaded = false;
    for (std::uint32_t level = 1; level < kLevels; ++level) {
      const std::uint32_t shift = kLevelBits * level;
      const std::uint64_t pos = (cur_tick_ >> shift) & kSlotMask;
      const std::uint64_t mask = occupied_[level] & (~std::uint64_t{0} << pos);
      if (mask == 0) continue;
      const auto index = static_cast<std::uint32_t>(std::countr_zero(mask));
      // Jump to the base tick of that slot's window; lower-level positions
      // reset to zero.
      const std::uint64_t window = (std::uint64_t{1} << (shift + kLevelBits)) - 1;
      cur_tick_ = (cur_tick_ & ~window) |
                  (static_cast<std::uint64_t>(index) << shift);
      cascade(level, index);
      cascaded = true;
      break;
    }
    if (cascaded) {
      // Entries due exactly at the window base landed in the ready batch
      // (already sorted by place()); anything else went to lower levels
      // and the next iteration finds it.
      if (!ready_.empty()) return;
      continue;
    }

    // Wheels empty: pull the overflow horizon in. Jump to the earliest
    // overflow tick and re-place everything relative to it; at least the
    // earliest entry leaves overflow, so this terminates.
    assert(!overflow_.empty());
    std::uint64_t min_tick = tick_of(overflow_.front().time_us);
    for (const Entry& e : overflow_) {
      min_tick = std::min(min_tick, tick_of(e.time_us));
    }
    assert(min_tick > cur_tick_);
    cur_tick_ = min_tick;
    std::vector<Entry> spill;
    spill.swap(overflow_);
    for (const Entry& e : spill) place(e);
    if (!ready_.empty()) {
      std::sort(ready_.begin(), ready_.end(), entry_before);
      return;
    }
  }
}

void TimerWheel::cascade(std::uint32_t level, std::uint32_t index) {
  occupied_[level] &= ~(std::uint64_t{1} << index);
  std::vector<Entry> spill;
  spill.swap(slots_[level][index]);
  for (const Entry& e : spill) place(e);
}

void TimerWheel::clear() {
  for (auto& level : slots_) {
    for (auto& bucket : level) bucket.clear();
  }
  for (std::uint64_t& bits : occupied_) bits = 0;
  overflow_.clear();
  ready_.clear();
  ready_pos_ = 0;
  count_ = 0;
}

void TimerWheel::collect(StaleFn stale, const void* ctx,
                         std::vector<Entry>& out) const {
  const auto keep = [&](const Entry& e) {
    if (!stale(ctx, e)) out.push_back(e);
  };
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i) keep(ready_[i]);
  for (const auto& level : slots_) {
    for (const auto& bucket : level) {
      for (const Entry& e : bucket) keep(e);
    }
  }
  for (const Entry& e : overflow_) keep(e);
}

}  // namespace bgpsim::sim
