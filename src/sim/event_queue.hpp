// Pending-event set for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace bgpsim::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Priority queue of (time, callback) pairs.
///
/// Ordering is by time, with insertion order (a monotonically increasing
/// sequence number) breaking ties, so simultaneous events fire FIFO — a
/// property several protocol tests rely on. Cancellation is O(1) via a
/// tombstone set; tombstoned entries are skipped (and reclaimed) on pop.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Insert `cb` to fire at `when`. Returns a handle for cancel().
  EventId push(SimTime when, Callback cb);

  /// Cancel a pending event. Returns false if the event already fired,
  /// was popped, or was cancelled before.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest live event's callback, along with its
  /// firing time. Requires !empty().
  struct Fired {
    SimTime time;
    Callback callback;
    EventId id;
  };
  Fired pop();

  /// Drop all pending events.
  void clear();

  /// Sequence number the next push() will use. Checkpointed so a restored
  /// run assigns the same EventIds (and FIFO tie-breaks) as the original.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Restore the push counter (checkpoint restore only; requires empty()).
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // doubles as the EventId value
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_prefix();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace bgpsim::sim
