// Pending-event set for the discrete-event engine.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace bgpsim::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Encodes (slot index, per-slot generation); 0 is never a valid handle.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Which index structure orders pending events. Both deliver the exact
/// same (time, seq) pop order and the same EventId stream for the same
/// schedule history; the wheel additionally enables batched same-tick
/// delivery (Simulator::burst_delivery). kHeap is the A/B reference.
enum class QueueBackend : int { kHeap = 0, kWheel = 1 };

/// Backend a default-constructed EventQueue (and Simulator) uses: the
/// process-wide override when set, else the BGPSIM_TIMER_WHEEL env knob
/// (default: the wheel).
[[nodiscard]] QueueBackend default_queue_backend();

/// Process-wide backend override for RunOptions-driven A/B runs: 0 forces
/// the heap, 1 the wheel, -1 clears back to the env knob. Applied by
/// core::detail::TimerWheelGuard around a run.
void set_queue_backend_override(int backend);
[[nodiscard]] int queue_backend_override();

/// Priority queue of (time, callback) pairs.
///
/// Ordering is by time, with insertion order (a monotonically increasing
/// sequence number) breaking ties, so simultaneous events fire FIFO — a
/// property several protocol tests rely on.
///
/// Storage is a slot pool recycled through a free list: a callback lives
/// inline in its slot (sim::Callback small-buffer storage), and the
/// pending set is indexed by lightweight (time, seq, slot) entries in one
/// of two backends — a binary heap ordered by std::push_heap/std::pop_heap,
/// or a hierarchical timer wheel (sim/timer_wheel.hpp) whose steady state
/// is O(1) per push/pop. Once the pool has grown to the schedule's
/// high-water mark, push/pop/cancel perform no allocation at all.
/// Cancellation is O(1) under both backends: the slot is freed immediately
/// and the orphaned index entry is skipped (and reclaimed) when it reaches
/// the front, recognized by its stale seq.
///
/// Determinism: slot assignment (LIFO free list), generations, and seqs
/// are pure functions of the push/cancel/pop history, so identical
/// operation histories produce identical EventIds and identical FIFO
/// tie-breaks — under either backend.
class EventQueue {
 public:
  using Callback = sim::Callback;

  explicit EventQueue(QueueBackend backend = default_queue_backend());

  [[nodiscard]] QueueBackend backend() const {
    return wheel_ ? QueueBackend::kWheel : QueueBackend::kHeap;
  }

  /// Insert `cb` to fire at `when`. Returns a handle for cancel().
  EventId push(SimTime when, Callback cb);

  /// The handle the next push() will return (pure observation). Lets a
  /// caller bake the id into the scheduled closure itself instead of
  /// routing it through shared heap state.
  [[nodiscard]] EventId next_push_id() const;

  /// Cancel a pending event. Returns false if the event already fired,
  /// was popped, or was cancelled before.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// FIFO tie-break seq of the earliest live event. Requires !empty().
  /// The simulator compares it against its external slot's seq to decide
  /// which fires first at equal times.
  [[nodiscard]] std::uint64_t next_event_seq() const;

  /// Handle of the earliest live event. Requires !empty(). Burst
  /// consumers match it against their own bookkeeping before consuming.
  [[nodiscard]] EventId next_event_id() const;

  /// The earliest live event as one raw (time µs, seq, slot) observation.
  /// Requires !empty(). The run loop uses this to read the firing time and
  /// FIFO tie-break together instead of paying one front lookup per field.
  [[nodiscard]] TimerWheel::Entry front_entry() const;

  /// Consume one sequence number without pushing an event. Used by the
  /// simulator's external event slot so that arming it orders against
  /// queued events exactly as a push at the same moment would.
  std::uint64_t take_seq() { return next_seq_++; }

  /// Remove and return the earliest live event's callback, along with its
  /// firing time. Requires !empty().
  struct Fired {
    SimTime time;
    Callback callback;
    EventId id;
  };
  Fired pop();

  /// Remove the earliest live event, discarding its callback unrun. The
  /// batched-delivery path consumes coincident timer events this way: the
  /// owner re-derives the work from its own bookkeeping, so the closure
  /// is dead weight. Requires !empty().
  void consume_next();

  /// Drop all pending events. Slot storage (and outstanding EventId
  /// generations) are retained so stale handles can never alias a new
  /// event.
  void clear();

  /// Sequence number the next push() will use. Checkpointed so a restored
  /// run assigns the same FIFO tie-breaks as the original.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Restore the push counter (checkpoint restore only; requires empty()).
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

  /// Sorted (time µs, seq) of every live event — the backend-invariant
  /// view of the pending set. Snapshots serialize exactly this: slot ids,
  /// generations, and free-list order are allocation artifacts that may
  /// legitimately differ between backends (batched consumption permutes
  /// slot recycling), so they never enter the byte stream.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
  pending_entries() const;

 private:
  static constexpr std::uint32_t kGenBits = 32;

  struct Slot {
    Callback cb;
    std::uint64_t seq = 0;  // seq of current occupant; 0 = slot free
    std::uint32_t gen = 0;  // bumped on every occupancy; EventId disambiguator
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // std::push_heap builds a max-heap; invert to get earliest-(time, seq)
  // at the front.
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return b.time < a.time;
    return b.seq < a.seq;
  }

  [[nodiscard]] bool stale_seq(std::uint32_t slot, std::uint64_t seq) const {
    return slots_[slot].seq != seq;
  }
  [[nodiscard]] bool stale(const HeapEntry& e) const {
    return stale_seq(e.slot, e.seq);
  }
  static bool wheel_stale(const void* ctx, const TimerWheel::Entry& e) {
    return static_cast<const EventQueue*>(ctx)->stale_seq(e.slot, e.seq);
  }

  void drop_dead_prefix();
  void release_slot(std::uint32_t slot);

  /// Remove the front index entry (the one front_entry() returned).
  void drop_front();

  std::vector<HeapEntry> heap_;
  std::unique_ptr<TimerWheel> wheel_;  // non-null iff backend is kWheel
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // LIFO recycled slot indices
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  // Memoized front_entry(): valid until a mutation that can move the front
  // (pushing an earlier event, cancelling the front's slot, popping,
  // clearing). Packet-heavy runs observe the front once per fired event,
  // usually unchanged, so this turns the common lookup into one branch.
  mutable TimerWheel::Entry front_cache_{};
  mutable bool front_cached_ = false;
};

}  // namespace bgpsim::sim
