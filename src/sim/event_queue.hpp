// Pending-event set for the discrete-event engine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Encodes (slot index, per-slot generation); 0 is never a valid handle.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Priority queue of (time, callback) pairs.
///
/// Ordering is by time, with insertion order (a monotonically increasing
/// sequence number) breaking ties, so simultaneous events fire FIFO — a
/// property several protocol tests rely on.
///
/// Storage is a slot pool recycled through a free list: a callback lives
/// inline in its slot (sim::Callback small-buffer storage) and the heap
/// orders lightweight (time, seq, slot) entries with std::push_heap /
/// std::pop_heap. Once the pool has grown to the schedule's high-water
/// mark, push/pop/cancel perform no allocation at all. Cancellation is
/// O(1): the slot is freed immediately and the orphaned heap entry is
/// skipped (and reclaimed) on pop, recognized by its stale seq.
///
/// Determinism: slot assignment (LIFO free list), generations, and seqs
/// are pure functions of the push/cancel/pop history, so identical
/// schedules produce identical EventIds and identical FIFO tie-breaks.
class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Insert `cb` to fire at `when`. Returns a handle for cancel().
  EventId push(SimTime when, Callback cb);

  /// The handle the next push() will return (pure observation). Lets a
  /// caller bake the id into the scheduled closure itself instead of
  /// routing it through shared heap state.
  [[nodiscard]] EventId next_push_id() const;

  /// Cancel a pending event. Returns false if the event already fired,
  /// was popped, or was cancelled before.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// FIFO tie-break seq of the earliest live event. Requires !empty().
  /// The simulator compares it against its external slot's seq to decide
  /// which fires first at equal times.
  [[nodiscard]] std::uint64_t next_event_seq() const;

  /// Consume one sequence number without pushing an event. Used by the
  /// simulator's external event slot so that arming it orders against
  /// queued events exactly as a push at the same moment would.
  std::uint64_t take_seq() { return next_seq_++; }

  /// Remove and return the earliest live event's callback, along with its
  /// firing time. Requires !empty().
  struct Fired {
    SimTime time;
    Callback callback;
    EventId id;
  };
  Fired pop();

  /// Drop all pending events. Slot storage (and outstanding EventId
  /// generations) are retained so stale handles can never alias a new
  /// event.
  void clear();

  /// Sequence number the next push() will use. Checkpointed so a restored
  /// run assigns the same FIFO tie-breaks as the original.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Restore the push counter (checkpoint restore only; requires empty()).
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

 private:
  static constexpr std::uint32_t kGenBits = 32;

  struct Slot {
    Callback cb;
    std::uint64_t seq = 0;  // seq of current occupant; 0 = slot free
    std::uint32_t gen = 0;  // bumped on every occupancy; EventId disambiguator
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // std::push_heap builds a max-heap; invert to get earliest-(time, seq)
  // at the front.
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return b.time < a.time;
    return b.seq < a.seq;
  }

  [[nodiscard]] bool stale(const HeapEntry& e) const {
    return slots_[e.slot].seq != e.seq;
  }

  void drop_dead_prefix();
  void release_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // LIFO recycled slot indices
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace bgpsim::sim
