// Low-level environment-knob parsing.
//
// This is the single parser behind every BGPSIM_* knob. It lives at the
// sim layer — the bottom of the library stack — so every layer (including
// snap/, which sits below core/) reads knobs through the same code and the
// same misconfiguration contract: a set-but-garbled value warns on stderr
// and falls back, so a misspelled knob is never silently ignored.
//
// The documented knob registry and the typed accessors live in
// core/env.hpp; use those unless you are below core in the link order.
#pragma once

#include <cstddef>

namespace bgpsim::sim {

/// Raw value of `name`, or nullptr when unset or empty.
[[nodiscard]] const char* env_raw(const char* name);

/// Unsigned-integer knob: `fallback` when unset; a set-but-unparsable
/// value ("8x", "two") warns on stderr and falls back.
[[nodiscard]] std::size_t env_u64_or(const char* name, std::size_t fallback);

}  // namespace bgpsim::sim
