// A small fixed-size worker pool for running independent jobs.
//
// The simulator itself is strictly single-threaded; this pool exists one
// level up, where *whole simulations* (trials of core::run_experiment) are
// independent and can run side by side. Tasks execute FIFO on `workers`
// threads; `wait_idle` blocks until every submitted task has finished, so
// the pool can be reused across submission rounds.
//
// Tasks must not let exceptions escape (capture them into a slot instead,
// as core::run_trials_parallel does) — an escaping exception terminates.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgpsim::sim {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Safe to call from any thread.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static std::size_t default_workers();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals wait_idle: pool drained
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bgpsim::sim
