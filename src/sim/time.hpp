// Simulation time: a strong type over integer microseconds.
//
// The engine uses integer microseconds rather than floating-point seconds so
// that event ordering is exact and runs are bit-reproducible across
// platforms. Microsecond granularity is three orders of magnitude below the
// smallest delay in the reproduced study (2 ms link propagation), so
// quantization is never observable.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace bgpsim::sim {

/// A point in simulation time (or a duration), in integer microseconds.
///
/// `SimTime` is totally ordered and supports the usual affine arithmetic
/// (time + duration, time - time). Factory helpers accept seconds,
/// milliseconds and microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) {
    return SimTime{us};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return us_ / 1e6; }
  [[nodiscard]] constexpr double as_millis() const { return us_ / 1e3; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return us_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  constexpr SimTime& operator+=(SimTime d) {
    us_ += d.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    us_ -= d.us_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.us_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }

 private:
  explicit constexpr SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Render a time as e.g. "12.345s" for logs and reports.
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace bgpsim::sim
