#include "sim/logging.hpp"

#include <cstdio>
#include <utility>

namespace bgpsim::sim {
namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
    default:
      return "?    ";
  }
}

void default_sink(LogLevel at, std::string_view component, SimTime when,
                  std::string_view message) {
  std::fprintf(stderr, "[%s %10.4fs %-10.*s] %.*s\n", level_name(at),
               when.as_seconds(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace

std::atomic<LogLevel> Log::level_{LogLevel::kOff};
std::mutex Log::mutex_;
Log::Sink Log::sink_ = default_sink;
std::string Log::tag_;

void Log::set_sink(Sink sink) {
  std::scoped_lock lock{mutex_};
  sink_ = sink ? std::move(sink) : default_sink;
}

void Log::set_instance_tag(std::string tag) {
  std::scoped_lock lock{mutex_};
  tag_ = std::move(tag);
}

void Log::write(LogLevel at, std::string_view component, SimTime when,
                std::string_view message) {
  // Holding the lock across the sink call keeps whole lines atomic with
  // respect to other writers; logging defaults to off, so contention only
  // exists when traces were explicitly requested.
  std::scoped_lock lock{mutex_};
  if (tag_.empty()) {
    sink_(at, component, when, message);
  } else {
    std::string tagged;
    tagged.reserve(tag_.size() + message.size() + 3);
    tagged.append("[").append(tag_).append("] ").append(message);
    sink_(at, component, when, tagged);
  }
}

}  // namespace bgpsim::sim
