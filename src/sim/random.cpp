#include "sim/random.hpp"

#include <cassert>

namespace bgpsim::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to fold stream names into seeds.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_{seed} {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

SimTime Rng::uniform_time(SimTime lo, SimTime hi) {
  return SimTime::micros(uniform_int(lo.as_micros(), hi.as_micros() - 1));
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::child(std::string_view label, std::uint64_t index) const {
  std::uint64_t mix = seed_;
  mix ^= hash_label(label) + 0x9e3779b97f4a7c15ULL + (mix << 6) + (mix >> 2);
  mix ^= index + 0x9e3779b97f4a7c15ULL + (mix << 6) + (mix >> 2);
  return Rng{mix};
}

}  // namespace bgpsim::sim
