// Hierarchical timer wheel: the EventQueue's steady-state index.
//
// The (time, seq) binary heap pays O(log n) per push/pop with a
// data-dependent comparison chain; MRAI-dominated runs spend most of the
// hot loop there (ROADMAP item 5). The wheel replaces the heap's ordering
// work with O(1) bucket placement: time is quantized into 1.024 ms ticks
// (kTickShift), and six levels of 64 slots each (kLevelBits/kLevels) cover
// a horizon of 2^36 ticks (~2.2 simulated years) before spilling into an
// unsorted overflow vector. Events due at or before the wheel's current
// tick sit in a small sorted "ready" batch that pops from the front.
//
// Determinism argument (docs/DESIGN.md §5): the wheel must reproduce the
// heap's exact (time, seq) pop order, not merely per-tick order. Two
// invariants deliver that:
//   1. Every entry stored in a wheel slot or in overflow has a tick
//      strictly greater than cur_tick_, while every ready entry has a tick
//      at most cur_tick_ — so whenever the ready batch is non-empty its
//      front (the batch is kept sorted by (time, seq)) is the global
//      minimum.
//   2. advance() moves cur_tick_ forward only to the next occupied slot,
//      cascading higher-level slots down through lower levels until the
//      earliest pending entries land in the ready batch — so entries are
//      surfaced in exact tick order and sorted by (time, seq) within.
// Ticks never order events: two events in different ticks already differ
// in time, and events within one tick are sorted exactly. Quantization is
// therefore invisible to pop order.
//
// Cancellation is the EventQueue's lazy scheme: the owner invalidates the
// slot-pool entry and the wheel drops the stale index entry when it
// reaches the ready front (stale_fn). The wheel never owns callbacks —
// it indexes (time, seq, pool slot) triples only.
#pragma once

#include <cstdint>
#include <vector>

namespace bgpsim::sim {

class TimerWheel {
 public:
  /// One index entry: firing time (µs), FIFO tie-break seq, and the
  /// EventQueue pool slot holding the callback.
  struct Entry {
    std::int64_t time_us;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Stale predicate: true when the entry's pool slot was cancelled or
  /// re-occupied since insertion. Passed per call (never stored) so the
  /// wheel stays trivially movable alongside its owning EventQueue.
  using StaleFn = bool (*)(const void* ctx, const Entry& entry);

  /// Insert an entry. O(1) apart from the (rare) sorted insert into the
  /// ready batch for entries at or before the current tick.
  void insert(const Entry& entry);

  /// Earliest live entry, or nullptr when none remain. Advances the wheel
  /// as needed; the pointer is invalidated by any mutation.
  [[nodiscard]] const Entry* peek(StaleFn stale, const void* ctx);

  /// Remove the entry peek() just returned. Requires a preceding peek()
  /// that returned non-null, with no mutation in between.
  void pop_front();

  /// True when no entries (live or stale) are stored.
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Drop every entry. The current tick is retained: the owner's clock
  /// does not rewind, so neither does the wheel.
  void clear();

  /// Append every non-stale entry to `out` (unsorted). Snapshot support:
  /// the live (time, seq) multiset is the backend-invariant view of the
  /// pending set.
  void collect(StaleFn stale, const void* ctx,
               std::vector<Entry>& out) const;

 private:
  static constexpr std::uint32_t kTickShift = 10;  // 1 tick = 1.024 ms
  static constexpr std::uint32_t kLevelBits = 6;   // 64 slots per level
  static constexpr std::uint32_t kLevels = 6;      // horizon: 2^36 ticks
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr std::uint64_t kSlotMask = kSlotsPerLevel - 1;

  [[nodiscard]] static std::uint64_t tick_of(std::int64_t time_us) {
    return static_cast<std::uint64_t>(time_us) >> kTickShift;
  }

  /// Place an entry by its tick: ready batch (tick <= cur_tick_), the
  /// lowest level whose window contains it, or overflow.
  void place(const Entry& entry);

  /// With the ready batch empty, move cur_tick_ to the next occupied slot
  /// and surface its entries. Leaves the ready batch sorted; it stays
  /// empty only when no entries remain anywhere.
  void advance();

  /// Re-distribute a higher-level slot's entries across lower levels (and
  /// the ready batch, for the window base tick).
  void cascade(std::uint32_t level, std::uint32_t index);

  std::vector<Entry> slots_[kLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kLevels] = {};  // bitmap per level
  std::vector<Entry> overflow_;           // beyond the 2^36-tick horizon
  std::vector<Entry> ready_;              // sorted by (time, seq)
  std::size_t ready_pos_ = 0;             // ready_ front index
  std::uint64_t cur_tick_ = 0;
  std::size_t count_ = 0;  // entries stored anywhere, stale included
};

}  // namespace bgpsim::sim
