#include "sim/env.hpp"

#include <cstdio>
#include <cstdlib>

namespace bgpsim::sim {

const char* env_raw(const char* name) {
  const char* raw = std::getenv(name);
  return (raw != nullptr && *raw != '\0') ? raw : nullptr;
}

std::size_t env_u64_or(const char* name, std::size_t fallback) {
  const char* raw = env_raw(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr,
                 "bgpsim: ignoring %s=\"%s\" (not an unsigned integer), "
                 "using %zu\n",
                 name, raw, fallback);
    return fallback;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace bgpsim::sim
