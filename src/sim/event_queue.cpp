#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

EventId EventQueue::push(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  // `drop_dead_prefix` keeps the top live after every mutation, but a
  // cancel() can kill the top entry between calls, so scan here too.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop on empty queue"};
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  assert(it != callbacks_.end());
  Fired fired{top.time, std::move(it->second), EventId{top.seq}};
  callbacks_.erase(it);
  --live_;
  return fired;
}

void EventQueue::clear() {
  heap_ = {};
  callbacks_.clear();
  live_ = 0;
}

}  // namespace bgpsim::sim
