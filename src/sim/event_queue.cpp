#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

EventId EventQueue::next_push_id() const {
  const std::uint32_t slot = free_.empty()
                                 ? static_cast<std::uint32_t>(slots_.size())
                                 : free_.back();
  const std::uint32_t gen = slot < slots_.size() ? slots_[slot].gen + 1 : 1;
  return EventId{(static_cast<std::uint64_t>(slot) << kGenBits) | gen};
}

EventId EventQueue::push(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  ++s.gen;
  heap_.push_back(HeapEntry{when, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slot) << kGenBits) | s.gen};
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback{};
  s.seq = 0;
  free_.push_back(slot);
  assert(live_ > 0);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value >> kGenBits);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.seq == 0 || s.gen != gen) return false;
  // The heap entry is left in place; pop()/next_time() recognize it as
  // stale by its dead seq and drop it.
  release_slot(slot);
  return true;
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  // `drop_dead_prefix` keeps the top live after every mutation, but a
  // cancel() can kill the top entry between calls, so scan here too.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.front().time;
}

std::uint64_t EventQueue::next_event_seq() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_prefix();
  if (heap_.empty()) {
    throw std::logic_error{"EventQueue::next_event_seq on empty queue"};
  }
  return heap_.front().seq;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop on empty queue"};
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  heap_.pop_back();
  Slot& s = slots_[top.slot];
  assert(s.seq == top.seq);
  Fired fired{top.time, std::move(s.cb),
              EventId{(static_cast<std::uint64_t>(top.slot) << kGenBits) | s.gen}};
  release_slot(top.slot);
  return fired;
}

void EventQueue::clear() {
  // Free every live slot but keep the pool (and its generations): a stale
  // EventId from before clear() must keep failing to cancel, even if its
  // slot is recycled afterwards.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].seq != 0) release_slot(slot);
  }
  heap_.clear();
  assert(live_ == 0);
}

}  // namespace bgpsim::sim
