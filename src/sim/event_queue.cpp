#include "sim/event_queue.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/env.hpp"

namespace bgpsim::sim {

namespace {
// -1 = no override (fall back to the BGPSIM_TIMER_WHEEL knob).
std::atomic<int> g_backend_override{-1};
}  // namespace

QueueBackend default_queue_backend() {
  const int v = g_backend_override.load(std::memory_order_acquire);
  if (v >= 0) return v != 0 ? QueueBackend::kWheel : QueueBackend::kHeap;
  return env_u64_or("BGPSIM_TIMER_WHEEL", 1) != 0 ? QueueBackend::kWheel
                                                  : QueueBackend::kHeap;
}

void set_queue_backend_override(int backend) {
  g_backend_override.store(backend, std::memory_order_release);
}

int queue_backend_override() {
  return g_backend_override.load(std::memory_order_acquire);
}

EventQueue::EventQueue(QueueBackend backend) {
  if (backend == QueueBackend::kWheel) {
    wheel_ = std::make_unique<TimerWheel>();
  }
}

EventId EventQueue::next_push_id() const {
  const std::uint32_t slot = free_.empty()
                                 ? static_cast<std::uint32_t>(slots_.size())
                                 : free_.back();
  const std::uint32_t gen = slot < slots_.size() ? slots_[slot].gen + 1 : 1;
  return EventId{(static_cast<std::uint64_t>(slot) << kGenBits) | gen};
}

EventId EventQueue::push(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  // A push can only move the front forward in time if it lands strictly
  // before the cached entry (its seq is always the largest yet).
  if (front_cached_ && when.as_micros() < front_cache_.time_us) {
    front_cached_ = false;
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  ++s.gen;
  if (wheel_) {
    wheel_->insert(TimerWheel::Entry{when.as_micros(), seq, slot});
  } else {
    heap_.push_back(HeapEntry{when, seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  }
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slot) << kGenBits) | s.gen};
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback{};
  s.seq = 0;
  free_.push_back(slot);
  assert(live_ > 0);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value >> kGenBits);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.seq == 0 || s.gen != gen) return false;
  // The index entry (heap or wheel) is left in place; the front-entry
  // helpers recognize it as stale by its dead seq and drop it. Cancelling
  // any slot other than the cached front leaves the front untouched.
  if (front_cached_ && front_cache_.slot == slot) front_cached_ = false;
  release_slot(slot);
  return true;
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }
}

TimerWheel::Entry EventQueue::front_entry() const {
  if (front_cached_) return front_cache_;
  // Both backends prune stale entries lazily, so surfacing the front
  // mutates index bookkeeping (never live state); see next_time().
  auto* self = const_cast<EventQueue*>(this);
  if (wheel_) {
    const TimerWheel::Entry* e = self->wheel_->peek(wheel_stale, this);
    if (e == nullptr) {
      throw std::logic_error{"EventQueue: front_entry on empty queue"};
    }
    front_cache_ = *e;
  } else {
    self->drop_dead_prefix();
    if (heap_.empty()) {
      throw std::logic_error{"EventQueue: front_entry on empty queue"};
    }
    const HeapEntry& top = heap_.front();
    front_cache_ = TimerWheel::Entry{top.time.as_micros(), top.seq, top.slot};
  }
  front_cached_ = true;
  return front_cache_;
}

void EventQueue::drop_front() {
  front_cached_ = false;
  if (wheel_) {
    wheel_->pop_front();
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  heap_.pop_back();
}

SimTime EventQueue::next_time() const {
  return SimTime::micros(front_entry().time_us);
}

std::uint64_t EventQueue::next_event_seq() const { return front_entry().seq; }

EventId EventQueue::next_event_id() const {
  const TimerWheel::Entry top = front_entry();
  return EventId{(static_cast<std::uint64_t>(top.slot) << kGenBits) |
                 slots_[top.slot].gen};
}

EventQueue::Fired EventQueue::pop() {
  const TimerWheel::Entry top = front_entry();
  drop_front();
  Slot& s = slots_[top.slot];
  assert(s.seq == top.seq);
  Fired fired{SimTime::micros(top.time_us), std::move(s.cb),
              EventId{(static_cast<std::uint64_t>(top.slot) << kGenBits) | s.gen}};
  release_slot(top.slot);
  return fired;
}

void EventQueue::consume_next() {
  const TimerWheel::Entry top = front_entry();
  drop_front();
  assert(slots_[top.slot].seq == top.seq);
  release_slot(top.slot);
}

void EventQueue::clear() {
  // Free every live slot but keep the pool (and its generations): a stale
  // EventId from before clear() must keep failing to cancel, even if its
  // slot is recycled afterwards.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].seq != 0) release_slot(slot);
  }
  heap_.clear();
  if (wheel_) wheel_->clear();
  front_cached_ = false;
  assert(live_ == 0);
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
EventQueue::pending_entries() const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  out.reserve(live_);
  if (wheel_) {
    std::vector<TimerWheel::Entry> entries;
    entries.reserve(live_);
    wheel_->collect(wheel_stale, this, entries);
    for (const TimerWheel::Entry& e : entries) out.emplace_back(e.time_us, e.seq);
  } else {
    for (const HeapEntry& e : heap_) {
      if (!stale(e)) out.emplace_back(e.time.as_micros(), e.seq);
    }
  }
  std::sort(out.begin(), out.end());
  assert(out.size() == live_);
  return out;
}

}  // namespace bgpsim::sim
