#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

EventId Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  }
  return queue_.push(when, std::move(cb));
}

EventId Simulator::schedule_after(SimTime delay, Callback cb) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument{"Simulator::schedule_after: negative delay"};
  }
  return queue_.push(now_ + delay, std::move(cb));
}

void Simulator::set_external_handler(Callback handler) {
  if (ext_handler_) {
    throw std::logic_error{
        "Simulator::set_external_handler: slot already owned"};
  }
  ext_handler_ = std::move(handler);
}

void Simulator::arm_external(SimTime when) {
  if (!ext_handler_) {
    throw std::logic_error{"Simulator::arm_external: no handler installed"};
  }
  if (when < now_) {
    throw std::invalid_argument{"Simulator::arm_external: time in the past"};
  }
  ext_time_ = when;
  ext_seq_ = queue_.take_seq();
  ext_armed_ = true;
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  for (;;) {
    const bool has_queue = !queue_.empty();
    if (ext_armed_ && (!has_queue || external_first())) {
      if (ext_time_ > limit) break;
      fire_external();
      ++n;
      continue;
    }
    if (!has_queue || queue_.next_time() > limit) break;
    auto fired = queue_.pop();
    now_ = fired.time;
    ++fired_;
    ++n;
    fired.callback();
  }
  return n;
}

bool Simulator::step() {
  const bool has_queue = !queue_.empty();
  if (ext_armed_ && (!has_queue || external_first())) {
    fire_external();
    return true;
  }
  if (!has_queue) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
  fired.callback();
  return true;
}

}  // namespace bgpsim::sim
