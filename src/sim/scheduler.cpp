#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

EventId Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  }
  return queue_.push(when, std::move(cb));
}

EventId Simulator::schedule_after(SimTime delay, Callback cb) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument{"Simulator::schedule_after: negative delay"};
  }
  return queue_.push(now_ + delay, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= limit) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++fired_;
    ++n;
    fired.callback();
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
  fired.callback();
  return true;
}

}  // namespace bgpsim::sim
