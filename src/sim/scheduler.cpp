#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace bgpsim::sim {

EventId Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  }
  return queue_.push(when, std::move(cb));
}

EventId Simulator::schedule_after(SimTime delay, Callback cb) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument{"Simulator::schedule_after: negative delay"};
  }
  return queue_.push(now_ + delay, std::move(cb));
}

void Simulator::set_external_handler(Callback handler) {
  if (ext_handler_) {
    throw std::logic_error{
        "Simulator::set_external_handler: slot already owned"};
  }
  ext_handler_ = std::move(handler);
}

void Simulator::arm_external(SimTime when) {
  if (!ext_handler_) {
    throw std::logic_error{"Simulator::arm_external: no handler installed"};
  }
  if (when < now_) {
    throw std::invalid_argument{"Simulator::arm_external: time in the past"};
  }
  ext_time_ = when;
  ext_seq_ = queue_.take_seq();
  ext_armed_ = true;
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  for (;;) {
    if (queue_.empty()) {
      if (!ext_armed_ || ext_time_ > limit) break;
      fire_external();
      ++n;
      continue;
    }
    // One front observation per iteration: the merge against the external
    // slot and the limit check read the same (time, seq) pair, so paying
    // a queue-front lookup for each field would triple the per-event cost
    // on packet-heavy runs.
    const TimerWheel::Entry front = queue_.front_entry();
    const SimTime front_time = SimTime::micros(front.time_us);
    if (ext_armed_ && (ext_time_ < front_time ||
                       (ext_time_ == front_time && ext_seq_ < front.seq))) {
      if (ext_time_ > limit) break;
      fire_external();
      ++n;
      continue;
    }
    if (front_time > limit) break;
    auto fired = queue_.pop();
    now_ = fired.time;
    ++fired_;
    ++n;
    fired.callback();
  }
  return n;
}

std::optional<EventId> Simulator::next_coincident_event() const {
  if (queue_.empty() || queue_.next_time() != now_) return std::nullopt;
  // An armed external slot due now with the earlier seq must fire first —
  // it is the globally next event, so the batch stops here.
  if (ext_armed_ && ext_time_ <= now_ &&
      ext_seq_ < queue_.next_event_seq()) {
    return std::nullopt;
  }
  return queue_.next_event_id();
}

void Simulator::consume_coincident(EventId id) {
  if (queue_.empty() || !(queue_.next_event_id() == id)) {
    throw std::logic_error{
        "Simulator::consume_coincident: id is not the front of the queue"};
  }
  // The clock is already at the event's time; it counts as fired so the
  // events_fired ledger (fingerprints, snapshots) matches the sequential
  // execution event for event.
  queue_.consume_next();
  ++fired_;
}

bool Simulator::step() {
  const bool has_queue = !queue_.empty();
  if (ext_armed_ && (!has_queue || external_first())) {
    fire_external();
    return true;
  }
  if (!has_queue) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
  fired.callback();
  return true;
}

}  // namespace bgpsim::sim
