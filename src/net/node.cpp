#include "net/node.hpp"

namespace bgpsim::net {

void ProcessingQueue::accept(Envelope env) {
  queue_.push_back(WorkItem{false, std::move(env), {}});
  if (!busy_) start_next();
}

void ProcessingQueue::accept_session_event(SessionEvent ev) {
  queue_.push_back(WorkItem{true, {}, ev});
  if (!busy_) start_next();
}

void ProcessingQueue::start_next() {
  busy_ = true;
  const sim::SimTime d =
      delay_.min == delay_.max ? delay_.min
                               : rng_.uniform_time(delay_.min, delay_.max);
  sim_.schedule_after(d, [this] {
    // Pop at completion time: the item occupied the routing process for the
    // whole interval, and anything arriving meanwhile queued behind it.
    WorkItem item = std::move(queue_.front());
    queue_.pop_front();
    if (item.is_session_event) {
      if (on_session_) on_session_(item.session);
    } else {
      if (on_message_) on_message_(item.env);
    }
    if (queue_.empty()) {
      busy_ = false;
    } else {
      start_next();
    }
  });
}

}  // namespace bgpsim::net
