#include "net/node.hpp"

namespace bgpsim::net {

void ProcessingQueue::accept(Envelope env) {
  queue_.push_back(WorkItem{false, std::move(env), {}});
  if (!busy_) start_next();
}

void ProcessingQueue::accept_session_event(SessionEvent ev) {
  queue_.push_back(WorkItem{true, {}, ev});
  if (!busy_) start_next();
}

void ProcessingQueue::save_state(snap::Writer& w,
                                 const PayloadSaver& save_payload) const {
  snap::write_rng(w, rng_);
  w.b(busy_);
  w.u64(queue_.size());
  for (const WorkItem& item : queue_) {
    w.b(item.is_session_event);
    if (item.is_session_event) {
      w.u32(item.session.peer);
      w.b(item.session.up);
    } else {
      w.u32(item.env.from);
      w.u32(item.env.to);
      save_payload(w, item.env.payload);
    }
  }
}

void ProcessingQueue::restore_state(snap::Reader& r,
                                    const PayloadLoader& load_payload) {
  snap::read_rng(r, rng_);
  busy_ = r.b();
  const std::uint64_t n = r.u64();
  queue_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    WorkItem item;
    item.is_session_event = r.b();
    if (item.is_session_event) {
      item.session.peer = r.u32();
      item.session.up = r.b();
    } else {
      item.env.from = r.u32();
      item.env.to = r.u32();
      item.env.payload = load_payload(r);
    }
    queue_.push_back(std::move(item));
  }
}

void ProcessingQueue::start_next() {
  busy_ = true;
  const sim::SimTime d =
      delay_.min == delay_.max ? delay_.min
                               : rng_.uniform_time(delay_.min, delay_.max);
  sim_.schedule_after(d, [this] {
    // Pop at completion time: the item occupied the routing process for the
    // whole interval, and anything arriving meanwhile queued behind it.
    WorkItem item = std::move(queue_.front());
    queue_.pop_front();
    if (item.is_session_event) {
      if (on_session_) on_session_(item.session);
    } else {
      if (on_message_) on_message_(item.env);
    }
    if (queue_.empty()) {
      busy_ = false;
    } else {
      start_next();
    }
  });
}

}  // namespace bgpsim::net
