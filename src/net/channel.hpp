// Reliable, in-order, point-to-point message delivery (a TCP stand-in).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/payload.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "snap/codec.hpp"

namespace bgpsim::net {

/// A control-plane message in flight or queued for processing.
struct Envelope {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Payload payload;
};

/// Delivers control-plane messages between adjacent nodes.
///
/// Semantics (matching the study's use of BGP-over-TCP):
///  - delivery only over an up link, after the link's propagation delay;
///  - per-(sender, receiver) FIFO ordering (guaranteed here by fixed delay
///    and the event queue's FIFO tie-break);
///  - when a link fails, messages still in flight on it are lost and both
///    endpoints are notified at the failure instant (session reset).
class Transport {
 public:
  using DeliveryHandler = std::function<void(Envelope)>;
  /// self noticed that its session to peer went down/up.
  using SessionHandler = std::function<void(NodeId self, NodeId peer, bool up)>;

  Transport(sim::Simulator& simulator, Topology& topology)
      : sim_{simulator}, topo_{topology} {}

  /// Receiver-side hook: invoked at delivery time (propagation complete).
  void set_delivery_handler(DeliveryHandler h) { on_deliver_ = std::move(h); }

  /// Invoked synchronously from fail_link/restore_link for both endpoints.
  void set_session_handler(SessionHandler h) { on_session_ = std::move(h); }

  /// Send `payload` from `from` to adjacent `to`. Returns false (drops the
  /// message) if there is no up link between them.
  bool send(NodeId from, NodeId to, Payload payload);

  /// Take the link down: drop in-flight messages on it and notify both
  /// endpoints. No-op (returns false) if already down.
  bool fail_link(LinkId id);

  /// Bring the link back up and notify both endpoints.
  bool restore_link(LinkId id);

  /// Fail every link attached to `n` (the Tdown event helper).
  void fail_node(NodeId n);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_lost() const { return lost_; }

  /// Checkpoint the wire counters. Messages physically in flight live in
  /// scheduled delivery closures (which a checkpoint preserves in place,
  /// or which are absent at quiescence), so the counters are the whole
  /// serializable state.
  void save_state(snap::Writer& w) const {
    w.u64(sent_);
    w.u64(delivered_);
    w.u64(lost_);
  }
  void restore_state(snap::Reader& r) {
    sent_ = r.u64();
    delivered_ = r.u64();
    lost_ = r.u64();
  }

 private:
  void deliver(LinkId link, sim::EventId self_id, Envelope env);

  sim::Simulator& sim_;
  Topology& topo_;
  DeliveryHandler on_deliver_;
  SessionHandler on_session_;
  // In-flight events per link so a failure can drop them.
  std::unordered_map<LinkId, std::vector<sim::EventId>> in_flight_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace bgpsim::net
