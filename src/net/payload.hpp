// Type-erased control-plane message payload, without std::any's costs.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace bgpsim::net {

/// The payload slot of an Envelope. std::any heap-allocates every message
/// (libstdc++ keeps only pointer-sized trivially-copyable types inline),
/// which on the convergence hot loop means one malloc/free per BGP update
/// on the wire. A message is moved along the delivery chain and read once,
/// so copyability buys nothing: this type is move-only and stores any
/// payload up to kInlineSize bytes with a noexcept move constructor inline
/// in the envelope itself. bgp::UpdateMsg (24 bytes now that AsPath is one
/// interned-node pointer) and dv::DvUpdate fit; oversized payloads (e.g.
/// the ~64-byte ls::LsaMsg) transparently fall back to one heap node.
class Payload {
 public:
  /// Sized to bgp::UpdateMsg, the only payload on the hot path.
  static constexpr std::size_t kInlineSize = 24;

  Payload() noexcept = default;

  /// Implicit like std::any's converting constructor, so call sites read
  /// transport.send(from, to, UpdateMsg::withdraw(p)).
  template <typename T>
    requires(!std::is_same_v<std::decay_t<T>, Payload>)
  Payload(T&& value) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<T>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<T>(value));
      vt_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) (D*){new D(std::forward<T>(value))};
      vt_ = &heap_vtable<D>;
    }
  }

  Payload(Payload&& other) noexcept { move_from(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  [[nodiscard]] bool has_value() const noexcept { return vt_ != nullptr; }

  /// The stored value. The caller names the concrete type — each network
  /// puts exactly one message type on the wire — and a debug build checks
  /// the claim; there is no std::any-style fallible cast.
  template <typename T>
  [[nodiscard]] const T& get() const noexcept {
    assert(vt_ != nullptr && *vt_->type == typeid(T));
    if constexpr (fits_inline<T>) {
      return *std::launder(reinterpret_cast<const T*>(buf_));
    } else {
      return **std::launder(reinterpret_cast<T* const*>(buf_));
    }
  }

  /// True when the stored value is a T. For the one wire where two message
  /// shapes coexist (bgp::UpdateMsg vs the multi-prefix bgp::UpdateBatch);
  /// everything else keeps using get<T>() directly.
  template <typename T>
  [[nodiscard]] bool is() const noexcept {
    return vt_ != nullptr && *vt_->type == typeid(T);
  }

 private:
  struct VTable {
    const std::type_info* type;
    /// Move-construct dst from src, then destroy src (heap payloads just
    /// steal the pointer). noexcept is what lets Envelope — and therefore
    /// the delivery closure holding one — stay inside sim::Callback's
    /// inline buffer.
    void (*relocate)(std::byte* dst, std::byte* src) noexcept;
    void (*destroy)(std::byte* p) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline =
      sizeof(T) <= kInlineSize && alignof(T) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static constexpr VTable inline_vtable{
      &typeid(T),
      [](std::byte* dst, std::byte* src) noexcept {
        T* s = std::launder(reinterpret_cast<T*>(src));
        ::new (static_cast<void*>(dst)) T(std::move(*s));
        s->~T();
      },
      [](std::byte* p) noexcept {
        std::launder(reinterpret_cast<T*>(p))->~T();
      }};

  template <typename T>
  static constexpr VTable heap_vtable{
      &typeid(T),
      [](std::byte* dst, std::byte* src) noexcept {
        ::new (static_cast<void*>(dst))
            (T*){*std::launder(reinterpret_cast<T**>(src))};
      },
      [](std::byte* p) noexcept {
        delete *std::launder(reinterpret_cast<T**>(p));
      }};

  void move_from(Payload& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(void*) std::byte buf_[kInlineSize];
};

}  // namespace bgpsim::net
