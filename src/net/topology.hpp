// Undirected AS-level topology with per-link state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::net {

/// One undirected link between two distinct nodes.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  sim::SimTime delay = sim::SimTime::millis(2);  // one-way propagation
  bool up = true;

  [[nodiscard]] NodeId other(NodeId self) const { return self == a ? b : a; }
  [[nodiscard]] bool attaches(NodeId n) const { return n == a || n == b; }
};

/// An undirected graph of AS nodes. Node ids are dense: 0 .. node_count()-1.
///
/// The topology owns link up/down state; protocol layers query `link_up`
/// and react to failures via the Transport's notifications.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t node_count) { add_nodes(node_count); }

  /// Append one node; returns its id.
  NodeId add_node();
  /// Append `n` nodes.
  void add_nodes(std::size_t n);

  /// Add an undirected link a—b. Throws on self-loops, unknown nodes, or
  /// duplicate links.
  LinkId add_link(NodeId a, NodeId b,
                  sim::SimTime delay = sim::SimTime::millis(2));

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }

  /// Link between a and b, if any (regardless of up/down state).
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// True if a—b exists and is up.
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// All neighbors of `n` joined by a link (up or down).
  struct Adjacency {
    NodeId neighbor;
    LinkId link;
  };
  [[nodiscard]] const std::vector<Adjacency>& adjacent(NodeId n) const {
    return adjacency_.at(n);
  }

  /// Neighbors of `n` whose connecting link is currently up.
  [[nodiscard]] std::vector<NodeId> up_neighbors(NodeId n) const;

  /// Degree counting all links (up or down).
  [[nodiscard]] std::size_t degree(NodeId n) const {
    return adjacency_.at(n).size();
  }

  /// Mark a link down / up. Returns false if it already was in that state.
  bool set_link_state(LinkId id, bool up);

  /// Monotonic counter bumped by every mutation that can change a
  /// forwarding decision (adding a link, flipping link state). Readers —
  /// the data plane's decision cache — compare stamps; the value is a
  /// process-local cache artifact and is never serialized.
  [[nodiscard]] std::uint64_t state_version() const { return version_; }

  /// All links attached to `n`.
  [[nodiscard]] std::vector<LinkId> links_of(NodeId n) const;

  /// BFS hop distances over *up* links from `src`; unreachable = SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> bfs_distances(NodeId src) const;

  /// True if every node can reach every other over up links.
  [[nodiscard]] bool connected() const;

  /// Human-readable summary ("n=10 links=45 (2 down)").
  [[nodiscard]] std::string summary() const;

 private:
  /// Rebuild the link-lookup index from adjacency_ (after adding nodes).
  void rebuild_index();

  [[nodiscard]] bool dense() const {
    return adjacency_.size() <= kDenseNodeLimit;
  }

  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  /// link_between is called once per packet hop — tens of millions of times
  /// per scenario — so it cannot be a linear scan. Two regimes:
  ///   - n <= kDenseNodeLimit: dense (node, node) -> link matrix (array
  ///     index; 64 MB at the 4096-node limit).
  ///   - n  > kDenseNodeLimit: per-node adjacency sorted by neighbor id,
  ///     binary search (a 75k-node dense matrix would need 22 GB).
  static constexpr std::size_t kDenseNodeLimit = 4096;
  static constexpr std::int32_t kNoLink = -1;
  std::vector<std::int32_t> matrix_;          // dense regime; stride = n
  std::vector<std::vector<Adjacency>> sorted_;  // sparse regime
  /// Starts above 0 so a zero-initialized cache stamp can never validate.
  std::uint64_t version_ = 1;
};

}  // namespace bgpsim::net
