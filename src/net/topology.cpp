#include "net/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>
#include <stdexcept>

namespace bgpsim::net {

NodeId Topology::add_node() {
  adjacency_.emplace_back();
  rebuild_index();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Topology::add_nodes(std::size_t n) {
  adjacency_.resize(adjacency_.size() + n);
  rebuild_index();
}

void Topology::rebuild_index() {
  const std::size_t n = adjacency_.size();
  if (dense()) {
    sorted_.clear();
    matrix_.assign(n * n, kNoLink);
    for (NodeId a = 0; a < n; ++a) {
      for (const Adjacency& adj : adjacency_[a]) {
        matrix_[a * n + adj.neighbor] = static_cast<std::int32_t>(adj.link);
      }
    }
    return;
  }
  matrix_.clear();
  matrix_.shrink_to_fit();
  sorted_.assign(adjacency_.begin(), adjacency_.end());
  for (auto& row : sorted_) {
    std::ranges::sort(row, {}, &Adjacency::neighbor);
  }
}

LinkId Topology::add_link(NodeId a, NodeId b, sim::SimTime delay) {
  if (a == b) throw std::invalid_argument{"Topology::add_link: self-loop"};
  if (a >= node_count() || b >= node_count()) {
    throw std::invalid_argument{"Topology::add_link: unknown node"};
  }
  if (link_between(a, b)) {
    throw std::invalid_argument{"Topology::add_link: duplicate link"};
  }
  const auto id = static_cast<LinkId>(links_.size());
  ++version_;
  links_.push_back(Link{a, b, delay, true});
  adjacency_[a].push_back(Adjacency{b, id});
  adjacency_[b].push_back(Adjacency{a, id});
  if (dense()) {
    const std::size_t n = adjacency_.size();
    matrix_[a * n + b] = static_cast<std::int32_t>(id);
    matrix_[b * n + a] = static_cast<std::int32_t>(id);
  } else {
    const auto insert_sorted = [&](NodeId self, NodeId neighbor) {
      auto& row = sorted_[self];
      const auto pos =
          std::ranges::lower_bound(row, neighbor, {}, &Adjacency::neighbor);
      row.insert(pos, Adjacency{neighbor, id});
    };
    insert_sorted(a, b);
    insert_sorted(b, a);
  }
  return id;
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  const std::size_t n = node_count();
  if (a >= n || b >= n) return std::nullopt;
  if (dense()) {
    const std::int32_t id = matrix_[a * n + b];
    if (id == kNoLink) return std::nullopt;
    return static_cast<LinkId>(id);
  }
  const auto& row = sorted_[a];
  const auto it = std::ranges::lower_bound(row, b, {}, &Adjacency::neighbor);
  if (it == row.end() || it->neighbor != b) return std::nullopt;
  return it->link;
}

bool Topology::link_up(NodeId a, NodeId b) const {
  const auto id = link_between(a, b);
  return id && links_[*id].up;
}

std::vector<NodeId> Topology::up_neighbors(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(adjacency_.at(n).size());
  for (const auto& adj : adjacency_[n]) {
    if (links_[adj.link].up) out.push_back(adj.neighbor);
  }
  return out;
}

bool Topology::set_link_state(LinkId id, bool up) {
  Link& l = links_.at(id);
  if (l.up == up) return false;
  l.up = up;
  ++version_;
  return true;
}

std::vector<LinkId> Topology::links_of(NodeId n) const {
  std::vector<LinkId> out;
  for (const auto& adj : adjacency_.at(n)) out.push_back(adj.link);
  return out;
}

std::vector<std::size_t> Topology::bfs_distances(NodeId src) const {
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(node_count(), kUnreached);
  if (src >= node_count()) return dist;
  std::deque<NodeId> frontier{src};
  dist[src] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& adj : adjacency_[u]) {
      if (!links_[adj.link].up) continue;
      if (dist[adj.neighbor] == kUnreached) {
        dist[adj.neighbor] = dist[u] + 1;
        frontier.push_back(adj.neighbor);
      }
    }
  }
  return dist;
}

bool Topology::connected() const {
  if (node_count() == 0) return true;
  const auto dist = bfs_distances(0);
  return std::ranges::none_of(dist, [](std::size_t d) {
    return d == std::numeric_limits<std::size_t>::max();
  });
}

std::string Topology::summary() const {
  const auto down = static_cast<std::size_t>(
      std::ranges::count_if(links_, [](const Link& l) { return !l.up; }));
  char buf[96];
  std::snprintf(buf, sizeof buf, "n=%zu links=%zu (%zu down)", node_count(),
                link_count(), down);
  return buf;
}

}  // namespace bgpsim::net
