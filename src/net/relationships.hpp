// AS business relationships (customer / provider / peer).
//
// The paper evaluates shortest-path routing ("for clarity of description
// ... assume a shortest-path routing policy"), but frames the problem as
// "topology (or policy) changes" causing inconsistent state. This table
// lets the BGP layer optionally run the standard Gao-Rexford policy model
// (prefer customer routes; no-valley export), so policy-induced looping
// can be studied too (see bench/ablation_policy).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "net/types.hpp"

namespace bgpsim::net {

/// What the *other* AS is to me, for one adjacency.
enum class Relationship : std::uint8_t {
  kCustomer,  // they pay me: routes via them are revenue (most preferred)
  kPeer,      // settlement-free: exchanged for our mutual customers only
  kProvider,  // I pay them: least preferred, usable for everything
};

[[nodiscard]] constexpr const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kProvider:
      return "provider";
  }
  return "?";
}

/// Symmetric-by-construction relationship table for an AS topology.
class RelationshipTable {
 public:
  /// Record a transit contract: `customer` buys from `provider`.
  void set_provider_customer(NodeId provider, NodeId customer);

  /// Record settlement-free peering between a and b.
  void set_peering(NodeId a, NodeId b);

  /// What `other` is to `self`, if the adjacency is classified.
  [[nodiscard]] std::optional<Relationship> relationship(NodeId self,
                                                         NodeId other) const;

  [[nodiscard]] std::size_t size() const { return rel_.size() / 2; }
  [[nodiscard]] bool empty() const { return rel_.empty(); }

  /// Gao-Rexford local preference: customer(2) > peer(1) > provider(0).
  [[nodiscard]] static int local_pref(Relationship r) {
    switch (r) {
      case Relationship::kCustomer:
        return 2;
      case Relationship::kPeer:
        return 1;
      case Relationship::kProvider:
        return 0;
    }
    return 0;
  }

 private:
  // (self, other) -> what `other` is to `self`. Both directions stored.
  std::map<std::pair<NodeId, NodeId>, Relationship> rel_;
};

}  // namespace bgpsim::net
