// AS business relationships (customer / provider / peer).
//
// The paper evaluates shortest-path routing ("for clarity of description
// ... assume a shortest-path routing policy"), but frames the problem as
// "topology (or policy) changes" causing inconsistent state. This table
// lets the BGP layer optionally run the standard Gao-Rexford policy model
// (prefer customer routes; no-valley export), so policy-induced looping
// can be studied too (see bench/ablation_policy, bench/headline_policy_scale).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace bgpsim::net {

/// What the *other* AS is to me, for one adjacency.
enum class Relationship : std::uint8_t {
  kCustomer,  // they pay me: routes via them are revenue (most preferred)
  kPeer,      // settlement-free: exchanged for our mutual customers only
  kProvider,  // I pay them: least preferred, usable for everything
};

[[nodiscard]] constexpr const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kProvider:
      return "provider";
  }
  return "?";
}

/// Symmetric-by-construction relationship table for an AS topology.
///
/// Stored as per-node adjacency sorted by the other endpoint's id: the BGP
/// decision process queries `relationship` once per Adj-RIB-In entry per
/// best-path selection, so lookup is a binary search over one node's
/// (typically small) classified neighborhood rather than a tree walk over
/// the whole table.
class RelationshipTable {
 public:
  /// Record a transit contract: `customer` buys from `provider`.
  void set_provider_customer(NodeId provider, NodeId customer);

  /// Record settlement-free peering between a and b.
  void set_peering(NodeId a, NodeId b);

  /// What `other` is to `self`, if the adjacency is classified.
  [[nodiscard]] std::optional<Relationship> relationship(NodeId self,
                                                         NodeId other) const;

  /// Number of classified adjacencies (each counted once, not per side).
  [[nodiscard]] std::size_t size() const { return entries_ / 2; }
  [[nodiscard]] bool empty() const { return entries_ == 0; }

  /// Visit every classified adjacency exactly once, in ascending (a, b)
  /// order with a < b. `fn(a, b, rel)` receives what `b` is to `a`.
  template <typename Fn>
  void for_each_pair(Fn&& fn) const {
    for (NodeId a = 0; a < by_node_.size(); ++a) {
      for (const auto& [b, rel] : by_node_[a]) {
        if (b > a) fn(a, b, rel);
      }
    }
  }

  /// Gao-Rexford local preference: customer(2) > peer(1) > provider(0).
  [[nodiscard]] static int local_pref(Relationship r) {
    switch (r) {
      case Relationship::kCustomer:
        return 2;
      case Relationship::kPeer:
        return 1;
      case Relationship::kProvider:
        return 0;
    }
    return 0;
  }

 private:
  /// Set the directed classification (self, other) -> r, overwriting any
  /// previous one (the public setters keep the two directions consistent).
  void set(NodeId self, NodeId other, Relationship r);

  // by_node_[self] = classified neighbors of self, sorted by neighbor id.
  std::vector<std::vector<std::pair<NodeId, Relationship>>> by_node_;
  std::size_t entries_ = 0;  // directed entries; always even
};

}  // namespace bgpsim::net
