// Serialized control-plane message processing with per-message CPU delay.
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "net/channel.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace bgpsim::net {

/// Bounds for the per-message routing-process CPU time. The study sets this
/// uniformly in [0.1 s, 0.5 s] — two orders of magnitude above the 2 ms
/// propagation delay — so processing, not propagation, dominates nodal delay.
struct ProcessingDelay {
  sim::SimTime min = sim::SimTime::millis(100);
  sim::SimTime max = sim::SimTime::millis(500);
};

/// One node's control-plane work queue.
///
/// Arriving messages (and session up/down notices) queue FIFO; the node
/// processes them one at a time, each occupying the routing process for a
/// uniformly drawn delay before its handler runs. This serialization is what
/// makes a flood of withdrawals delay useful path information — the effect
/// the paper identifies as Ghost Flushing's cost in large cliques.
class ProcessingQueue {
 public:
  /// An internal work item: a message, or a locally observed session event.
  struct SessionEvent {
    NodeId peer = kInvalidNode;
    bool up = false;
  };

  /// A queued unit of work: a message, or a locally observed session event.
  struct WorkItem {
    bool is_session_event;
    Envelope env;           // valid when !is_session_event
    SessionEvent session;   // valid when is_session_event
  };

  using MessageHandler = std::function<void(const Envelope&)>;
  using SessionEventHandler = std::function<void(const SessionEvent&)>;
  /// Payload codecs for checkpointing: the queue stores protocol messages
  /// type-erased as net::Payload, so the owning network supplies the
  /// concrete encoding.
  using PayloadSaver = std::function<void(snap::Writer&, const Payload&)>;
  using PayloadLoader = std::function<Payload(snap::Reader&)>;

  ProcessingQueue(sim::Simulator& simulator, sim::Rng rng, ProcessingDelay d)
      : sim_{simulator}, rng_{std::move(rng)}, delay_{d} {}

  void set_message_handler(MessageHandler h) { on_message_ = std::move(h); }
  void set_session_handler(SessionEventHandler h) { on_session_ = std::move(h); }

  /// Enqueue an inbound message (called at its delivery time).
  void accept(Envelope env);

  /// Enqueue a locally observed session state change.
  void accept_session_event(SessionEvent ev);

  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_; }

  /// Checkpoint the delay RNG, the busy flag, and every queued item.
  /// The completion event of an in-progress item is a scheduled closure —
  /// preserved in place by an in-run checkpoint, absent at quiescence.
  void save_state(snap::Writer& w, const PayloadSaver& save_payload) const;

  /// Inverse of save_state. Replaces the queue contents; does not schedule
  /// anything (the in-progress completion closure, if any, must already be
  /// live — true for in-place restore, vacuous at quiescence).
  void restore_state(snap::Reader& r, const PayloadLoader& load_payload);

 private:
  void start_next();

  sim::Simulator& sim_;
  sim::Rng rng_;
  ProcessingDelay delay_;
  MessageHandler on_message_;
  SessionEventHandler on_session_;
  std::deque<WorkItem> queue_;
  bool busy_ = false;
};

}  // namespace bgpsim::net
