// Fundamental identifier types for the network substrate.
#pragma once

#include <cstdint>
#include <limits>

namespace bgpsim::net {

/// An autonomous system / node identifier. The reproduced study models one
/// router per AS, so node == AS.
using NodeId = std::uint32_t;

/// An undirected link identifier (index into the topology's link table).
using LinkId = std::uint32_t;

/// A destination prefix identifier. The study uses a single destination
/// prefix per scenario; the protocol machinery is nonetheless keyed by
/// prefix so multi-destination scenarios work.
using Prefix = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

}  // namespace bgpsim::net
