#include "net/relationships.hpp"

namespace bgpsim::net {

void RelationshipTable::set_provider_customer(NodeId provider,
                                              NodeId customer) {
  rel_[{provider, customer}] = Relationship::kCustomer;  // customer to them
  rel_[{customer, provider}] = Relationship::kProvider;
}

void RelationshipTable::set_peering(NodeId a, NodeId b) {
  rel_[{a, b}] = Relationship::kPeer;
  rel_[{b, a}] = Relationship::kPeer;
}

std::optional<Relationship> RelationshipTable::relationship(
    NodeId self, NodeId other) const {
  auto it = rel_.find({self, other});
  if (it == rel_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bgpsim::net
