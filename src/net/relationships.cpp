#include "net/relationships.hpp"

#include <algorithm>

namespace bgpsim::net {

void RelationshipTable::set(NodeId self, NodeId other, Relationship r) {
  const std::size_t need = static_cast<std::size_t>(std::max(self, other)) + 1;
  if (by_node_.size() < need) by_node_.resize(need);
  auto& row = by_node_[self];
  const auto pos = std::ranges::lower_bound(
      row, other, {}, &std::pair<NodeId, Relationship>::first);
  if (pos != row.end() && pos->first == other) {
    pos->second = r;
    return;
  }
  row.insert(pos, {other, r});
  ++entries_;
}

void RelationshipTable::set_provider_customer(NodeId provider,
                                              NodeId customer) {
  set(provider, customer, Relationship::kCustomer);  // customer to them
  set(customer, provider, Relationship::kProvider);
}

void RelationshipTable::set_peering(NodeId a, NodeId b) {
  set(a, b, Relationship::kPeer);
  set(b, a, Relationship::kPeer);
}

std::optional<Relationship> RelationshipTable::relationship(
    NodeId self, NodeId other) const {
  if (self >= by_node_.size()) return std::nullopt;
  const auto& row = by_node_[self];
  const auto it = std::ranges::lower_bound(
      row, other, {}, &std::pair<NodeId, Relationship>::first);
  if (it == row.end() || it->first != other) return std::nullopt;
  return it->second;
}

}  // namespace bgpsim::net
