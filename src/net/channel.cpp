#include "net/channel.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace bgpsim::net {

bool Transport::send(NodeId from, NodeId to, Payload payload) {
  const auto link_id = topo_.link_between(from, to);
  if (!link_id || !topo_.link(*link_id).up) return false;

  ++sent_;
  const Link& link = topo_.link(*link_id);
  auto& pending = in_flight_[*link_id];

  // The event needs its own id to unregister itself from in_flight_; the
  // scheduler exposes the id the next schedule call will assign, so the
  // closure carries it by value — no shared heap state per message.
  const sim::EventId id = sim_.next_schedule_id();
  Envelope env{from, to, std::move(payload)};
  const sim::EventId scheduled = sim_.schedule_after(
      link.delay,
      [this, env = std::move(env), id, link = *link_id]() mutable {
        deliver(link, id, std::move(env));
      });
  assert(scheduled == id);
  (void)scheduled;
  pending.push_back(id);
  return true;
}

void Transport::deliver(LinkId link, sim::EventId self_id, Envelope env) {
  auto it = in_flight_.find(link);
  if (it != in_flight_.end()) {
    std::erase(it->second, self_id);
  }
  ++delivered_;
  if (on_deliver_) on_deliver_(std::move(env));
}

bool Transport::fail_link(LinkId id) {
  if (!topo_.set_link_state(id, false)) return false;
  auto it = in_flight_.find(id);
  if (it != in_flight_.end()) {
    for (sim::EventId ev : it->second) {
      if (sim_.cancel(ev)) ++lost_;
    }
    it->second.clear();
  }
  const Link& l = topo_.link(id);
  if (on_session_) {
    on_session_(l.a, l.b, false);
    on_session_(l.b, l.a, false);
  }
  return true;
}

bool Transport::restore_link(LinkId id) {
  if (!topo_.set_link_state(id, true)) return false;
  const Link& l = topo_.link(id);
  if (on_session_) {
    on_session_(l.a, l.b, true);
    on_session_(l.b, l.a, true);
  }
  return true;
}

void Transport::fail_node(NodeId n) {
  for (LinkId id : topo_.links_of(n)) fail_link(id);
}

}  // namespace bgpsim::net
