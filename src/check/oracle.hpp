// The oracle: owns a set of invariants, fans speaker/FIB callbacks out to
// them, and collects every violation.
//
// Wiring: the experiment drivers forward their hook callbacks into the
// dispatch methods (core::run_experiment does this when Scenario::oracle
// is set); tests and custom harnesses can call them directly. observe_fibs
// adds FIB observers *alongside* whatever is already attached (the metrics
// loop detector keeps working).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "fwd/fib.hpp"
#include "sim/scheduler.hpp"

namespace bgpsim::check {

class Oracle {
 public:
  Oracle() = default;
  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;
  Oracle(Oracle&&) = default;
  Oracle& operator=(Oracle&&) = default;

  /// An oracle pre-loaded with the full standard invariant set
  /// (check/invariants.hpp).
  [[nodiscard]] static Oracle standard();

  /// Register an invariant; the oracle wires its report sink. Returns the
  /// registered instance for test-side configuration.
  Invariant& add(std::unique_ptr<Invariant> invariant);

  /// Fix the per-run facts and forward them to every invariant. Also
  /// clears violations, so one oracle can observe several runs in turn.
  void arm(const Context& context);

  [[nodiscard]] const Context& context() const { return context_; }

  // ---- dispatch (hook-shaped; see Invariant for semantics) -------------
  void on_route_installed(net::NodeId node, net::Prefix prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at);
  void on_update_sent(net::NodeId from, net::NodeId to,
                      const bgp::UpdateMsg& msg, sim::SimTime at);
  void on_update_received(net::NodeId node, net::NodeId from,
                          const bgp::UpdateMsg& msg, sim::SimTime at);
  void on_session_changed(net::NodeId node, net::NodeId peer, bool up,
                          sim::SimTime at);
  void on_mrai_expired(net::NodeId node, net::NodeId peer, net::Prefix prefix,
                       bool was_pending, sim::SimTime at);
  void on_fib_changed(net::NodeId node, net::Prefix prefix,
                      std::optional<net::NodeId> previous,
                      std::optional<net::NodeId> current, sim::SimTime at);
  void at_quiescence(const QuiescentView& view, sim::SimTime at);
  void on_restored(std::uint64_t snapshot_hash, std::uint64_t live_hash,
                   sim::SimTime at);

  /// Subscribe to every node's FIB, in addition to observers already
  /// installed (e.g. the metrics loop detector).
  void observe_fibs(sim::Simulator& simulator, std::vector<fwd::Fib>& fibs);

  // ---- results ---------------------------------------------------------
  [[nodiscard]] bool ok() const { return violations_seen_ == 0; }
  /// Stored violations (capped at kMaxStored; see violations_seen()).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Total violations observed, including any beyond the storage cap.
  [[nodiscard]] std::uint64_t violations_seen() const {
    return violations_seen_;
  }
  /// Callbacks dispatched since arm() — a vacuity guard: a run that never
  /// fed the oracle proves nothing, whatever ok() says.
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

  /// At most `max_lines` one-line violation reports (plus a truncation
  /// note); empty string when ok().
  [[nodiscard]] std::string summary(std::size_t max_lines = 8) const;

  /// Throw std::runtime_error carrying summary() if any violation exists.
  void throw_if_violated() const;

  /// Storage cap for violation details (total count is always exact).
  static constexpr std::size_t kMaxStored = 64;

 private:
  void record(Violation v);

  std::vector<std::unique_ptr<Invariant>> invariants_;
  Context context_;
  std::vector<Violation> violations_;
  std::uint64_t violations_seen_ = 0;
  std::uint64_t observations_ = 0;
};

}  // namespace bgpsim::check
