// Concrete invariants over the paper's claims. Each one is independent;
// standard_invariants() bundles the full set for the Oracle.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "check/invariant.hpp"
#include "metrics/loop_detector.hpp"

namespace bgpsim::check {

/// Every adopted path starts at the adopting node, contains no AS twice
/// (in particular never the adopter again — path-based poison reverse,
/// the paper's §2 correctness property), follows existing topology edges
/// (down links are allowed: adopting *obsolete* paths over failed links
/// is exactly the transient the paper studies), and ends at the origin.
class PathSanityInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "path-sanity";
  }
  void arm(const Context& ctx) override { ctx_ = ctx; }
  void on_route_installed(net::NodeId node, net::Prefix prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at) override;

 private:
  Context ctx_;
};

/// The FIB mirrors the Loc-RIB at every instant: next hop == second hop of
/// the selected path; no FIB route when unreachable or when the node's
/// path is just itself (the origin).
class RibFibConsistencyInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "rib-fib"; }
  void on_fib_changed(net::NodeId node, net::Prefix prefix,
                      std::optional<net::NodeId> previous,
                      std::optional<net::NodeId> current,
                      sim::SimTime at) override;
  void on_route_installed(net::NodeId node, net::Prefix prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at) override;

 private:
  // Mirrored FIB state, maintained from on_fib_changed.
  std::map<std::pair<net::NodeId, net::Prefix>, net::NodeId> fib_;
};

/// RFC 1771 MRAI legality: two consecutive *announcements* from one node
/// to one peer for one prefix are at least mrai × jitter_lo apart.
/// Withdrawals are exempt unless WRATE applies MRAI to them too. A session
/// reset legally restarts the clock (timers are cancelled at session-down
/// and a fresh table exchange follows session-up).
class MraiLegalityInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "mrai-legality";
  }
  void arm(const Context& ctx) override;
  void on_update_sent(net::NodeId from, net::NodeId to,
                      const bgp::UpdateMsg& msg, sim::SimTime at) override;
  void on_session_changed(net::NodeId node, net::NodeId peer, bool up,
                          sim::SimTime at) override;

 private:
  Context ctx_;
  sim::SimTime min_gap_ = sim::SimTime::zero();
  std::map<std::pair<std::pair<net::NodeId, net::NodeId>, net::Prefix>,
           sim::SimTime>
      last_sent_;
};

/// §3.2 analytical bound: an m-node forwarding loop resolves within
/// (m-1) × MRAI plus per-hop processing/propagation slack. Tracks the
/// forwarding graph through FIB callbacks with its own loop detector.
class LoopDurationBoundInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "loop-duration-bound";
  }
  void arm(const Context& ctx) override;
  void on_fib_changed(net::NodeId node, net::Prefix prefix,
                      std::optional<net::NodeId> previous,
                      std::optional<net::NodeId> current,
                      sim::SimTime at) override;
  void at_quiescence(const QuiescentView& view, sim::SimTime at) override;

 private:
  void check_record(const metrics::LoopRecord& record, sim::SimTime end);
  /// The per-prefix detector, created on first sight of the prefix
  /// (multi-prefix runs track each prefix's forwarding graph separately).
  metrics::LoopDetector* detector_for(net::Prefix prefix);

  Context ctx_;
  std::map<net::Prefix, std::unique_ptr<metrics::LoopDetector>> detectors_;
};

/// At quiescence: the forwarding graph is loop-free and the RIB/FIB state
/// equals the offline fixed point (check/reference.hpp).
class ConvergedReferenceInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "converged-reference";
  }
  void arm(const Context& ctx) override { ctx_ = ctx; }
  void at_quiescence(const QuiescentView& view, sim::SimTime at) override;

 private:
  Context ctx_;
};

/// Gao-Rexford policy runs: every adopted path is valley-free (up* peer?
/// down* over the relationship table). This holds even *transiently*: the
/// no-valley export filter means only valley-free paths are ever put on
/// the wire, a stale adopted path was valley-free when learned, and the
/// relationship table never changes mid-run — so any valley is a policy-
/// plumbing bug, not an artifact of convergence. No-op when the context
/// carries no relationship table.
class ValleyFreeInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "valley-free";
  }
  void arm(const Context& ctx) override { ctx_ = ctx; }
  void on_route_installed(net::NodeId node, net::Prefix prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at) override;
  void at_quiescence(const QuiescentView& view, sim::SimTime at) override;

 private:
  Context ctx_;
};

/// Flags persistent oscillation instead of assuming convergence: a node
/// whose best path changes more than the flip budget between two quiescent
/// states looks like a dispute wheel (policy-induced non-convergence, cf.
/// Griffin's "Bad Gadget"), and is reported long before the run would die
/// on max_sim_time. The default budget is far above anything the paper's
/// path-exploration workloads reach; tune with set_flip_budget in tests.
class OscillationInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "oscillation";
  }
  void set_flip_budget(std::uint64_t budget) { budget_ = budget; }
  void arm(const Context& ctx) override;
  void on_route_installed(net::NodeId node, net::Prefix prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at) override;
  void at_quiescence(const QuiescentView& view, sim::SimTime at) override;

 private:
  Context ctx_;
  std::uint64_t budget_ = 2048;
  /// Sparse, keyed per (node, prefix): the flip budget is per prefix, so a
  /// multi-prefix run's legitimate P-fold exploration does not trip it.
  std::map<std::pair<net::NodeId, net::Prefix>, std::uint64_t> flips_;
  std::map<std::pair<net::NodeId, net::Prefix>, bool> reported_;
};

/// A checkpoint restore must be bit-exact: re-serializing the restored
/// network yields the same content hash as the snapshot that was applied.
/// Fed by the experiment drivers' restore paths (warm starts and in-place
/// round-trip probes).
class RestoreEquivalenceInvariant final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "restore-equivalence";
  }
  void on_restored(std::uint64_t snapshot_hash, std::uint64_t live_hash,
                   sim::SimTime at) override;
};

/// The full standard set, one of each, unarmed.
[[nodiscard]] std::vector<std::unique_ptr<Invariant>> standard_invariants();

}  // namespace bgpsim::check
