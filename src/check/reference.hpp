// Offline convergence reference.
//
// Independently of the protocol machinery, the converged fixed point of
// the paper's shortest-path policy is computable directly from the
// topology: node v's path length is bfs_distance(v, destination)+1 over
// *up* links, its FIB next hop lies on a shortest path, and after a Tdown
// every node is unreachable. diff_against_reference() compares a quiescent
// network against that fixed point — a differential check that shares no
// code with the decision process it validates.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "check/invariant.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace bgpsim::check {

/// The shortest-path fixed point from the topology alone.
struct ReferenceRouting {
  /// BFS hop distance to the destination over up links; SIZE_MAX when
  /// disconnected.
  std::vector<std::size_t> distance;

  [[nodiscard]] bool reachable(net::NodeId n) const;
  /// Expected Loc-RIB path length (distance + 1; the paper's paths include
  /// the node itself). Requires reachable(n).
  [[nodiscard]] std::size_t expected_path_length(net::NodeId n) const;
};

[[nodiscard]] ReferenceRouting compute_reference(const net::Topology& topo,
                                                 net::NodeId destination);

/// All cycles of a forwarding graph (each node has at most one next hop,
/// so cycles are disjoint; enumeration is O(n)).
[[nodiscard]] std::vector<std::vector<net::NodeId>> forwarding_cycles(
    std::size_t node_count,
    const std::function<std::optional<net::NodeId>(net::NodeId)>& next_hop);

/// Differentially check a quiescent network against the reference:
/// loop-freedom always; reachability, path lengths, and distance-decreasing
/// FIB next hops unless ctx.policy_routing (Gao-Rexford fixed points are
/// not hop-count-shortest). Returns every discrepancy found.
[[nodiscard]] std::vector<Violation> diff_against_reference(
    const Context& ctx, const QuiescentView& view, sim::SimTime at);

}  // namespace bgpsim::check
