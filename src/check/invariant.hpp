// Runtime invariant checking: observer interface and violation record.
//
// The paper's claims are invariants over *transient* state — a speaker
// never adopts a path containing itself, an m-node loop persists at most
// (m-1)×MRAI, quiescent routing equals the policy-shortest-path fixed
// point. Invariants subscribe to speaker/FIB callbacks at event
// granularity and report every state that contradicts a claim, turning
// any simulation run into its own correctness oracle (see check::Oracle).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/config.hpp"
#include "bgp/messages.hpp"
#include "net/relationships.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace bgpsim::check {

/// One observed contradiction of an armed invariant.
struct Violation {
  std::string invariant;  // Invariant::name() of the reporter
  sim::SimTime at;        // simulation time of the observation
  net::NodeId node = net::kInvalidNode;  // kInvalidNode: network-wide
  std::string detail;

  /// "[mrai-legality] t=12.345s node 3: ..." — one line per violation.
  [[nodiscard]] std::string to_string() const;
};

/// Per-run facts fixed at arm time.
struct Context {
  const net::Topology* topology = nullptr;
  bgp::BgpConfig bgp;  // MRAI / jitter / enhancement flags
  net::Prefix prefix = 0;
  net::NodeId destination = net::kInvalidNode;
  /// Gao-Rexford policy routing: the hop-count-shortest reference does not
  /// apply (valley-free fixed points are longer); only loop-freedom is
  /// checked at quiescence then.
  bool policy_routing = false;
  /// Business relationships for policy runs (owned by the caller, alive
  /// for the whole run). Enables the valley-free path check; null for
  /// shortest-path runs.
  const net::RelationshipTable* relationships = nullptr;
  /// Multi-prefix runs: prefixes 0..prefix_count-1 are live; `origins[p]`
  /// names prefix p's origin AS. Both default to the single-prefix shape
  /// (count 1, empty origins → everything originates at `destination`).
  std::size_t prefix_count = 1;
  std::vector<net::NodeId> origins;

  /// The origin AS of `p`: origins[p] when provided, else `destination`
  /// for every prefix in range, else kInvalidNode (origin unknown —
  /// origin-sensitive checks skip the prefix).
  [[nodiscard]] net::NodeId origin_of(net::Prefix p) const {
    if (p < origins.size()) return origins[p];
    if (p < prefix_count || p == prefix) return destination;
    return net::kInvalidNode;
  }
};

/// Read-only view of a quiescent network for the convergence checks.
/// Accessors are std::function so BGP and DV networks (and tests) can be
/// viewed without this layer depending on either network class.
struct QuiescentView {
  /// Selected Loc-RIB path of a node; nullptr = unreachable. Leave empty
  /// for protocols without AS paths (DV) — path checks are skipped then.
  std::function<const bgp::AsPath*(net::NodeId)> loc_path;
  /// FIB next hop of a node for the armed prefix.
  std::function<std::optional<net::NodeId>(net::NodeId)> fib_next_hop;
  /// Does the destination currently originate the prefix?
  bool origin_up = true;

  // ---- per-prefix accessors (multi-prefix runs; optional) ----
  /// When set, the quiescence checks run once per prefix in
  /// [0, Context::prefix_count) through these instead of the
  /// single-prefix accessors above.
  std::function<const bgp::AsPath*(net::NodeId, net::Prefix)> loc_path_for;
  std::function<std::optional<net::NodeId>(net::NodeId, net::Prefix)>
      fib_next_hop_for;
  /// Per-prefix origin-up flag; unset means origin_up applies to all.
  std::function<bool(net::Prefix)> origin_up_for;
};

/// Observer interface. Callbacks mirror the speaker/FIB hook points and
/// default to no-ops, so each invariant overrides only what it watches.
/// Violations flow through report(), whose sink the owning Oracle wires.
class Invariant {
 public:
  virtual ~Invariant() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before the run with the per-run facts.
  virtual void arm(const Context&) {}

  /// Loc-RIB best path changed (nullopt = destination now unreachable).
  virtual void on_route_installed(net::NodeId /*node*/, net::Prefix,
                                  const std::optional<bgp::AsPath>& /*best*/,
                                  sim::SimTime /*at*/) {}
  /// UPDATE handed to the transport.
  virtual void on_update_sent(net::NodeId /*from*/, net::NodeId /*to*/,
                              const bgp::UpdateMsg&, sim::SimTime /*at*/) {}
  /// UPDATE processed by the receiving speaker.
  virtual void on_update_received(net::NodeId /*node*/, net::NodeId /*from*/,
                                  const bgp::UpdateMsg&, sim::SimTime /*at*/) {
  }
  /// `node` observed its session to `peer` go up/down.
  virtual void on_session_changed(net::NodeId /*node*/, net::NodeId /*peer*/,
                                  bool /*up*/, sim::SimTime /*at*/) {}
  /// An MRAI timer fired at `node` toward `peer`.
  virtual void on_mrai_expired(net::NodeId /*node*/, net::NodeId /*peer*/,
                               net::Prefix, bool /*was_pending*/,
                               sim::SimTime /*at*/) {}
  /// `node`'s FIB entry for `prefix` changed.
  virtual void on_fib_changed(net::NodeId /*node*/, net::Prefix,
                              std::optional<net::NodeId> /*previous*/,
                              std::optional<net::NodeId> /*current*/,
                              sim::SimTime /*at*/) {}
  /// Control plane reached quiescence (after initial convergence and again
  /// at the end of the run).
  virtual void at_quiescence(const QuiescentView&, sim::SimTime /*at*/) {}
  /// A checkpoint restore completed. `snapshot_hash` is the content hash of
  /// the snapshot that was applied, `live_hash` the hash of the state
  /// re-serialized from the restored network — equal iff the round trip is
  /// bit-exact.
  virtual void on_restored(std::uint64_t /*snapshot_hash*/,
                           std::uint64_t /*live_hash*/, sim::SimTime /*at*/) {}

  void set_report_sink(std::function<void(Violation)> sink) {
    report_ = std::move(sink);
  }

 protected:
  /// Report one violation to the owning oracle.
  void report(sim::SimTime at, net::NodeId node, std::string detail) const;

 private:
  std::function<void(Violation)> report_;
};

}  // namespace bgpsim::check
