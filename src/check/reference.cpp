#include "check/reference.hpp"

#include <limits>
#include <map>
#include <string>

namespace bgpsim::check {
namespace {

constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
constexpr std::string_view kName = "converged-reference";

void add(std::vector<Violation>& out, sim::SimTime at, net::NodeId node,
         std::string detail) {
  out.push_back(Violation{std::string{kName}, at, node, std::move(detail)});
}

}  // namespace

bool ReferenceRouting::reachable(net::NodeId n) const {
  return distance.at(n) != kUnreached;
}

std::size_t ReferenceRouting::expected_path_length(net::NodeId n) const {
  return distance.at(n) + 1;
}

ReferenceRouting compute_reference(const net::Topology& topo,
                                   net::NodeId destination) {
  return ReferenceRouting{topo.bfs_distances(destination)};
}

std::vector<std::vector<net::NodeId>> forwarding_cycles(
    std::size_t node_count,
    const std::function<std::optional<net::NodeId>(net::NodeId)>& next_hop) {
  // Color walk over the functional graph: 0 unvisited, 1 on the current
  // walk, 2 finished.
  std::vector<std::uint8_t> color(node_count, 0);
  std::vector<std::size_t> walk_pos(node_count, 0);
  std::vector<std::vector<net::NodeId>> cycles;
  std::vector<net::NodeId> walk;
  for (net::NodeId start = 0; start < node_count; ++start) {
    if (color[start] != 0) continue;
    walk.clear();
    net::NodeId v = start;
    while (true) {
      color[v] = 1;
      walk_pos[v] = walk.size();
      walk.push_back(v);
      const auto next = next_hop(v);
      if (!next || *next >= node_count || color[*next] == 2) break;
      if (color[*next] == 1) {  // closed a cycle within this walk
        cycles.emplace_back(walk.begin() + walk_pos[*next], walk.end());
        break;
      }
      v = *next;
    }
    for (net::NodeId n : walk) color[n] = 2;
  }
  return cycles;
}

namespace {

/// The single-prefix differential body, parameterized over one prefix's
/// accessors. `tag` suffixes each detail ("" in single-prefix runs, so the
/// historical messages are byte-identical; " for prefix p" otherwise).
/// `ref` is null under policy routing (loop-freedom only).
void diff_one_prefix(
    const net::Topology& topo,
    const std::function<const bgp::AsPath*(net::NodeId)>& loc_path,
    const std::function<std::optional<net::NodeId>(net::NodeId)>& fib_next_hop,
    bool origin_up, net::NodeId origin, const ReferenceRouting* ref,
    const std::string& tag, sim::SimTime at, std::vector<Violation>& out) {
  const std::size_t n = topo.node_count();

  // Quiescent loop-freedom holds under every policy.
  for (const auto& cycle : forwarding_cycles(n, fib_next_hop)) {
    std::string members;
    for (net::NodeId m : cycle) {
      if (!members.empty()) members += ' ';
      members += std::to_string(m);
    }
    add(out, at, cycle.front(),
        "forwarding loop {" + members + "} persists at quiescence" + tag);
  }
  if (ref == nullptr) return;  // shortest-path reference n/a

  for (net::NodeId v = 0; v < n; ++v) {
    const bgp::AsPath* path = loc_path ? loc_path(v) : nullptr;
    const auto hop = fib_next_hop(v);
    const bool expect_route = origin_up && ref->reachable(v) && v != origin;

    if (!origin_up || !ref->reachable(v)) {
      // Fixed point: no route anywhere (Tdown) / on disconnected nodes.
      if (loc_path && path) {
        add(out, at, v,
            "expected unreachable but Loc-RIB holds " + path->to_string() +
                tag);
      }
      if (hop) {
        add(out, at, v,
            "expected no route but FIB forwards to " + std::to_string(*hop) +
                tag);
      }
      continue;
    }
    if (v == origin) {
      // The origin reaches itself; it must not forward the prefix.
      if (hop) {
        add(out, at, v,
            "destination FIB forwards to " + std::to_string(*hop) + tag);
      }
      continue;
    }
    if (expect_route && loc_path) {
      if (!path) {
        add(out, at, v,
            "expected a route at distance " + std::to_string(ref->distance[v]) +
                " but Loc-RIB is empty" + tag);
      } else if (path->length() != ref->expected_path_length(v)) {
        add(out, at, v,
            "Loc-RIB path " + path->to_string() + " has length " +
                std::to_string(path->length()) + ", shortest-path fixed point "
                "requires " + std::to_string(ref->expected_path_length(v)) +
                tag);
      }
    }
    if (!hop) {
      add(out, at, v, "reachable node has no FIB next hop" + tag);
      continue;
    }
    // The next hop must be a neighbor over an up link and lie on a
    // shortest path (distance strictly decreasing toward the destination).
    if (!topo.link_up(v, *hop)) {
      add(out, at, v,
          "FIB next hop " + std::to_string(*hop) + " is not an up neighbor" +
              tag);
    } else if (ref->distance[*hop] + 1 != ref->distance[v]) {
      add(out, at, v,
          "FIB next hop " + std::to_string(*hop) + " at distance " +
              std::to_string(ref->distance[*hop]) +
              " is not on a shortest path (own distance " +
              std::to_string(ref->distance[v]) + ")" + tag);
    }
  }
}

}  // namespace

std::vector<Violation> diff_against_reference(const Context& ctx,
                                              const QuiescentView& view,
                                              sim::SimTime at) {
  std::vector<Violation> out;
  if (!ctx.topology) return out;
  const net::Topology& topo = *ctx.topology;

  if (ctx.prefix_count > 1 && view.fib_next_hop_for) {
    // Multi-prefix run: diff every prefix against its own origin's fixed
    // point. References are cached per origin node — prefixes sharing an
    // origin share one BFS.
    std::map<net::NodeId, ReferenceRouting> cache;
    for (net::Prefix p = 0; p < ctx.prefix_count; ++p) {
      const net::NodeId origin = ctx.origin_of(p);
      if (origin == net::kInvalidNode) continue;
      const ReferenceRouting* ref = nullptr;
      if (!ctx.policy_routing) {
        auto it = cache.find(origin);
        if (it == cache.end()) {
          it = cache.emplace(origin, compute_reference(topo, origin)).first;
        }
        ref = &it->second;
      }
      std::function<const bgp::AsPath*(net::NodeId)> loc_path;
      if (view.loc_path_for) {
        loc_path = [&view, p](net::NodeId v) { return view.loc_path_for(v, p); };
      }
      const std::function<std::optional<net::NodeId>(net::NodeId)>
          fib_next_hop =
              [&view, p](net::NodeId v) { return view.fib_next_hop_for(v, p); };
      const bool up =
          view.origin_up_for ? view.origin_up_for(p) : view.origin_up;
      diff_one_prefix(topo, loc_path, fib_next_hop, up, origin, ref,
                      " for prefix " + std::to_string(p), at, out);
    }
    return out;
  }

  const ReferenceRouting* ref = nullptr;
  ReferenceRouting single;
  if (!ctx.policy_routing) {
    single = compute_reference(topo, ctx.destination);
    ref = &single;
  }
  diff_one_prefix(topo, view.loc_path, view.fib_next_hop, view.origin_up,
                  ctx.destination, ref, std::string{}, at, out);
  return out;
}

}  // namespace bgpsim::check
