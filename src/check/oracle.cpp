#include "check/oracle.hpp"

#include <stdexcept>
#include <utility>

#include "check/invariants.hpp"

namespace bgpsim::check {

std::string Violation::to_string() const {
  std::string line = "[" + invariant + "] t=" + sim::to_string(at);
  if (node != net::kInvalidNode) line += " node " + std::to_string(node);
  return line + ": " + detail;
}

void Invariant::report(sim::SimTime at, net::NodeId node,
                       std::string detail) const {
  if (report_) report_(Violation{std::string{name()}, at, node,
                                 std::move(detail)});
}

Oracle Oracle::standard() {
  Oracle oracle;
  for (auto& invariant : standard_invariants()) {
    oracle.add(std::move(invariant));
  }
  return oracle;
}

Invariant& Oracle::add(std::unique_ptr<Invariant> invariant) {
  invariant->set_report_sink([this](Violation v) { record(std::move(v)); });
  invariants_.push_back(std::move(invariant));
  return *invariants_.back();
}

void Oracle::arm(const Context& context) {
  context_ = context;
  violations_.clear();
  violations_seen_ = 0;
  observations_ = 0;
  for (auto& invariant : invariants_) invariant->arm(context);
}

void Oracle::record(Violation v) {
  ++violations_seen_;
  if (violations_.size() < kMaxStored) violations_.push_back(std::move(v));
}

void Oracle::on_route_installed(net::NodeId node, net::Prefix prefix,
                                const std::optional<bgp::AsPath>& best,
                                sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->on_route_installed(node, prefix, best, at);
}

void Oracle::on_update_sent(net::NodeId from, net::NodeId to,
                            const bgp::UpdateMsg& msg, sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->on_update_sent(from, to, msg, at);
}

void Oracle::on_update_received(net::NodeId node, net::NodeId from,
                                const bgp::UpdateMsg& msg, sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->on_update_received(node, from, msg, at);
}

void Oracle::on_session_changed(net::NodeId node, net::NodeId peer, bool up,
                                sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->on_session_changed(node, peer, up, at);
}

void Oracle::on_mrai_expired(net::NodeId node, net::NodeId peer,
                             net::Prefix prefix, bool was_pending,
                             sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) {
    i->on_mrai_expired(node, peer, prefix, was_pending, at);
  }
}

void Oracle::on_fib_changed(net::NodeId node, net::Prefix prefix,
                            std::optional<net::NodeId> previous,
                            std::optional<net::NodeId> current,
                            sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) {
    i->on_fib_changed(node, prefix, previous, current, at);
  }
}

void Oracle::at_quiescence(const QuiescentView& view, sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->at_quiescence(view, at);
}

void Oracle::on_restored(std::uint64_t snapshot_hash, std::uint64_t live_hash,
                         sim::SimTime at) {
  ++observations_;
  for (auto& i : invariants_) i->on_restored(snapshot_hash, live_hash, at);
}

void Oracle::observe_fibs(sim::Simulator& simulator,
                          std::vector<fwd::Fib>& fibs) {
  for (net::NodeId node = 0; node < fibs.size(); ++node) {
    fibs[node].add_observer(
        [this, node, &simulator](net::Prefix prefix,
                                 std::optional<net::NodeId> previous,
                                 std::optional<net::NodeId> current) {
          on_fib_changed(node, prefix, previous, current, simulator.now());
        });
  }
}

std::string Oracle::summary(std::size_t max_lines) const {
  if (ok()) return "";
  std::string out = std::to_string(violations_seen_) + " invariant violation" +
                    (violations_seen_ == 1 ? "" : "s");
  std::size_t shown = 0;
  for (const auto& v : violations_) {
    if (shown == max_lines) break;
    out += "\n  " + v.to_string();
    ++shown;
  }
  if (violations_seen_ > shown) {
    out += "\n  ... and " + std::to_string(violations_seen_ - shown) + " more";
  }
  return out;
}

void Oracle::throw_if_violated() const {
  if (!ok()) throw std::runtime_error{summary()};
}

}  // namespace bgpsim::check
