#include "check/invariants.hpp"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "bgp/policy.hpp"
#include "check/reference.hpp"

namespace bgpsim::check {
namespace {

/// Timer durations are drawn in seconds and rounded to the microsecond
/// tick; allow that rounding when comparing against analytical bounds.
constexpr auto kTickSlack = sim::SimTime::millis(1);

std::string node_str(net::NodeId n) { return std::to_string(n); }

}  // namespace

// ---- PathSanityInvariant -------------------------------------------------

void PathSanityInvariant::on_route_installed(
    net::NodeId node, net::Prefix prefix,
    const std::optional<bgp::AsPath>& best, sim::SimTime at) {
  if (!best) return;  // unreachable is always a sane decision
  const auto hops = best->hops();
  if (hops.empty()) {
    report(at, node, "adopted an empty path");
    return;
  }
  if (best->first_hop() != node) {
    report(at, node, "adopted path " + best->to_string() +
                         " does not start at the adopter");
  }
  for (auto it = hops.begin(); it != hops.end(); ++it) {
    for (auto jt = std::next(it); jt != hops.end(); ++jt) {
      if (*it == *jt) {
        report(at, node,
               "AS " + node_str(*it) + " appears twice in adopted path " +
                   best->to_string() +
                   (*it == node ? " (poison-reverse breach)" : ""));
      }
    }
  }
  if (ctx_.topology) {
    for (auto it = hops.begin(); it != hops.end();) {
      const net::NodeId a = *it;
      if (++it == hops.end()) break;
      if (!ctx_.topology->link_between(a, *it)) {
        report(at, node, "adopted path " + best->to_string() +
                             " crosses the non-edge " + node_str(a) + "—" +
                             node_str(*it));
      }
    }
  }
  const net::NodeId origin = ctx_.origin_of(prefix);
  if (origin != net::kInvalidNode && best->origin() != origin) {
    report(at, node, "adopted path " + best->to_string() +
                         " for prefix " + std::to_string(prefix) +
                         " does not originate at its origin AS " +
                         node_str(origin));
  }
}

// ---- RibFibConsistencyInvariant ------------------------------------------

void RibFibConsistencyInvariant::on_fib_changed(
    net::NodeId node, net::Prefix prefix, std::optional<net::NodeId> previous,
    std::optional<net::NodeId> current, sim::SimTime at) {
  const auto key = std::make_pair(node, prefix);
  const auto it = fib_.find(key);
  const std::optional<net::NodeId> mirrored =
      it == fib_.end() ? std::nullopt : std::optional{it->second};
  if (mirrored != previous) {
    report(at, node,
           "FIB change reported previous hop " +
               (previous ? node_str(*previous) : "none") +
               " but the observed history says " +
               (mirrored ? node_str(*mirrored) : "none"));
  }
  if (current) {
    fib_[key] = *current;
  } else {
    fib_.erase(key);
  }
}

void RibFibConsistencyInvariant::on_route_installed(
    net::NodeId node, net::Prefix prefix,
    const std::optional<bgp::AsPath>& best, sim::SimTime at) {
  // The speaker updates Loc-RIB then FIB before announcing the change, so
  // the mirror must already agree here.
  const auto it = fib_.find({node, prefix});
  const std::optional<net::NodeId> hop =
      it == fib_.end() ? std::nullopt : std::optional{it->second};
  const std::optional<net::NodeId> expected =
      best && best->length() >= 2 ? std::optional{best->hops()[1]}
                                  : std::nullopt;
  if (hop != expected) {
    report(at, node,
           "Loc-RIB selected " + (best ? best->to_string() : "(unreachable)") +
               " but the FIB forwards to " + (hop ? node_str(*hop) : "none") +
               " (expected " + (expected ? node_str(*expected) : "none") +
               ")");
  }
}

// ---- MraiLegalityInvariant -----------------------------------------------

void MraiLegalityInvariant::arm(const Context& ctx) {
  ctx_ = ctx;
  min_gap_ =
      sim::SimTime::seconds(ctx.bgp.mrai.as_seconds() * ctx.bgp.jitter_lo);
  last_sent_.clear();
}

void MraiLegalityInvariant::on_update_sent(net::NodeId from, net::NodeId to,
                                           const bgp::UpdateMsg& msg,
                                           sim::SimTime at) {
  // RFC 1771 rate-limits route *advertisement*; withdrawals bypass unless
  // the WRATE variant applies MRAI to them too.
  if (msg.is_withdrawal() && !ctx_.bgp.wrate) return;
  const auto key = std::make_pair(std::make_pair(from, to), msg.prefix);
  const auto it = last_sent_.find(key);
  if (it != last_sent_.end() && at - it->second + kTickSlack < min_gap_) {
    report(at, from,
           "sent " + msg.to_string() + " to peer " + node_str(to) + " only " +
               sim::to_string(at - it->second) + " after the previous one " +
               "(MRAI window is " + sim::to_string(min_gap_) + ")");
  }
  last_sent_[key] = at;
}

void MraiLegalityInvariant::on_session_changed(net::NodeId node,
                                               net::NodeId peer, bool /*up*/,
                                               sim::SimTime /*at*/) {
  // A session reset restarts the advertisement clock for this direction
  // (timers toward the peer are cancelled; a fresh table exchange follows).
  for (auto it = last_sent_.begin(); it != last_sent_.end();) {
    if (it->first.first == std::make_pair(node, peer)) {
      it = last_sent_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- LoopDurationBoundInvariant ------------------------------------------

void LoopDurationBoundInvariant::arm(const Context& ctx) {
  ctx_ = ctx;
  detectors_.clear();
  detector_for(ctx.prefix);
}

metrics::LoopDetector* LoopDurationBoundInvariant::detector_for(
    net::Prefix prefix) {
  auto it = detectors_.find(prefix);
  if (it == detectors_.end()) {
    auto detector = std::make_unique<metrics::LoopDetector>(
        ctx_.topology ? ctx_.topology->node_count() : 0);
    detector->set_observer(
        [this](const metrics::LoopRecord& record, bool formed) {
          if (!formed) check_record(record, *record.resolved_at);
        });
    it = detectors_.emplace(prefix, std::move(detector)).first;
  }
  return it->second.get();
}

void LoopDurationBoundInvariant::check_record(
    const metrics::LoopRecord& record, sim::SimTime end) {
  const auto m = static_cast<double>(record.size());
  // (m-1)×M for the MRAI-delayed correction around the loop (§3.2; M is
  // the longest possible timer draw), plus one processing+propagation
  // allowance per member — each correcting message can wait ≲0.5 s of CPU
  // and queue behind a handful of other updates. Multi-prefix runs share
  // every processing queue across the whole table, so a correction can
  // queue behind ~P× as many updates per hop: the queueing allowance
  // scales with the prefix count (P = 1 reproduces the paper's bound).
  const double mrai_s = ctx_.bgp.mrai.as_seconds() * ctx_.bgp.jitter_hi;
  const auto queue_scale =
      static_cast<double>(std::max<std::size_t>(ctx_.prefix_count, 1));
  const double bound_s = (m - 1.0) * mrai_s + m * 3.0 * queue_scale + 2.0;
  const double lived_s = (end - record.formed_at).as_seconds();
  if (lived_s > bound_s) {
    std::string members;
    for (net::NodeId n : record.members) {
      if (!members.empty()) members += ' ';
      members += node_str(n);
    }
    report(end, record.members.front(),
           "loop {" + members + "} of size " + std::to_string(record.size()) +
               " lived " + std::to_string(lived_s) + " s, exceeding the (m-1)"
               "×MRAI bound of " + std::to_string(bound_s) + " s");
  }
}

void LoopDurationBoundInvariant::on_fib_changed(
    net::NodeId node, net::Prefix prefix, std::optional<net::NodeId>,
    std::optional<net::NodeId> current, sim::SimTime at) {
  if (prefix != ctx_.prefix && prefix >= ctx_.prefix_count) return;
  detector_for(prefix)->on_next_hop_change(node, current, at);
}

void LoopDurationBoundInvariant::at_quiescence(const QuiescentView&,
                                               sim::SimTime at) {
  // A loop still unresolved at quiescence is a converged loop (reported by
  // the reference check); here we still flag it once it outlives the bound.
  for (const auto& [prefix, detector] : detectors_) {
    for (const auto& record : detector->records()) {
      if (!record.resolved_at) check_record(record, at);
    }
  }
}

// ---- ConvergedReferenceInvariant -----------------------------------------

void ConvergedReferenceInvariant::at_quiescence(const QuiescentView& view,
                                                sim::SimTime at) {
  for (const auto& v : diff_against_reference(ctx_, view, at)) {
    report(v.at, v.node, v.detail);
  }
}

// ---- ValleyFreeInvariant --------------------------------------------------

void ValleyFreeInvariant::on_route_installed(
    net::NodeId node, net::Prefix prefix,
    const std::optional<bgp::AsPath>& best, sim::SimTime at) {
  if (!ctx_.relationships || !best) return;
  if (prefix != ctx_.prefix && prefix >= ctx_.prefix_count) return;
  if (!bgp::valley_free(*ctx_.relationships, *best)) {
    report(at, node,
           "adopted path " + best->to_string() +
               " contains a valley (breaks the no-free-transit export rule)");
  }
}

void ValleyFreeInvariant::at_quiescence(const QuiescentView& view,
                                        sim::SimTime at) {
  // Sweep every node's selected path once more: catches a path that was
  // installed before the oracle was armed (warm starts restore Loc-RIBs
  // without replaying the installs).
  if (!ctx_.relationships || !ctx_.topology) return;
  const auto sweep = [&](auto&& path_of) {
    for (net::NodeId n = 0; n < ctx_.topology->node_count(); ++n) {
      const bgp::AsPath* path = path_of(n);
      if (path && !bgp::valley_free(*ctx_.relationships, *path)) {
        report(at, n,
               "quiescent path " + path->to_string() + " contains a valley");
      }
    }
  };
  if (ctx_.prefix_count > 1 && view.loc_path_for) {
    for (net::Prefix p = 0; p < ctx_.prefix_count; ++p) {
      sweep([&](net::NodeId n) { return view.loc_path_for(n, p); });
    }
  } else if (view.loc_path) {
    sweep([&](net::NodeId n) { return view.loc_path(n); });
  }
}

// ---- OscillationInvariant -------------------------------------------------

void OscillationInvariant::arm(const Context& ctx) {
  ctx_ = ctx;
  flips_.clear();
  reported_.clear();
}

void OscillationInvariant::on_route_installed(
    net::NodeId node, net::Prefix prefix,
    const std::optional<bgp::AsPath>& /*best*/, sim::SimTime at) {
  if (prefix != ctx_.prefix && prefix >= ctx_.prefix_count) return;
  const auto key = std::make_pair(node, prefix);
  const std::uint64_t flips = ++flips_[key];
  if (flips > budget_ && !std::exchange(reported_[key], true)) {
    report(at, node,
           "best path changed " + std::to_string(flips) +
               " times without reaching quiescence — persistent " +
               "oscillation suspected (policy dispute wheel?)");
  }
}

void OscillationInvariant::at_quiescence(const QuiescentView& /*view*/,
                                         sim::SimTime /*at*/) {
  // Convergence proved the run was progressing; start the next phase's
  // budget from zero so the event's own exploration gets the full window.
  flips_.clear();
  reported_.clear();
}

// ---- RestoreEquivalenceInvariant ------------------------------------------

void RestoreEquivalenceInvariant::on_restored(std::uint64_t snapshot_hash,
                                              std::uint64_t live_hash,
                                              sim::SimTime at) {
  if (snapshot_hash == live_hash) return;
  report(at, net::kInvalidNode,
         "restored state re-serializes to hash " + std::to_string(live_hash) +
             ", snapshot hash was " + std::to_string(snapshot_hash) +
             " (restore is not bit-exact)");
}

// ---- factory -------------------------------------------------------------

std::vector<std::unique_ptr<Invariant>> standard_invariants() {
  std::vector<std::unique_ptr<Invariant>> all;
  all.push_back(std::make_unique<PathSanityInvariant>());
  all.push_back(std::make_unique<RibFibConsistencyInvariant>());
  all.push_back(std::make_unique<MraiLegalityInvariant>());
  all.push_back(std::make_unique<LoopDurationBoundInvariant>());
  all.push_back(std::make_unique<ConvergedReferenceInvariant>());
  all.push_back(std::make_unique<ValleyFreeInvariant>());
  all.push_back(std::make_unique<OscillationInvariant>());
  all.push_back(std::make_unique<RestoreEquivalenceInvariant>());
  return all;
}

}  // namespace bgpsim::check
