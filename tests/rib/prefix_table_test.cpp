// PrefixTable: dense interning is insertion-ordered and stable, origins
// default to invalid, and the checkpoint codec reproduces the exact id
// assignment (warm starts depend on ids matching bit-for-bit).
#include <gtest/gtest.h>

#include <cstdint>

#include "net/types.hpp"
#include "rib/prefix_table.hpp"
#include "snap/codec.hpp"

namespace bgpsim::rib {
namespace {

TEST(PrefixTable, InternAssignsDenseIdsInInsertionOrder) {
  PrefixTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.intern(7), 0u);
  EXPECT_EQ(table.intern(3), 1u);
  EXPECT_EQ(table.intern(900), 2u);
  EXPECT_EQ(table.size(), 3u);
  // Re-interning is idempotent: same id, no growth.
  EXPECT_EQ(table.intern(3), 1u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.prefix_of(0), 7u);
  EXPECT_EQ(table.prefix_of(1), 3u);
  EXPECT_EQ(table.prefix_of(2), 900u);
}

TEST(PrefixTable, IdOfUnknownPrefixIsInvalid) {
  PrefixTable table;
  table.intern(1);
  EXPECT_EQ(table.id_of(1), 0u);
  EXPECT_EQ(table.id_of(2), kInvalidPrefixId);
}

TEST(PrefixTable, OriginDefaultsToInvalidAndIsUpdatable) {
  PrefixTable table;
  table.intern(5);
  EXPECT_EQ(table.origin_of(5), net::kInvalidNode);
  EXPECT_EQ(table.origin_of(6), net::kInvalidNode);  // never interned

  table.set_origin(5, 12);
  EXPECT_EQ(table.origin_of(5), 12u);
  table.set_origin(5, 13);  // update in place
  EXPECT_EQ(table.origin_of(5), 13u);

  // set_origin interns on demand.
  table.set_origin(6, 2);
  EXPECT_EQ(table.id_of(6), 1u);
  EXPECT_EQ(table.origin_of(6), 2u);
}

TEST(PrefixTable, SaveRestoreReproducesIdAssignmentAndOrigins) {
  PrefixTable table;
  table.intern(40);
  table.intern(10);
  table.set_origin(10, 3);
  table.intern(20);
  table.set_origin(20, 7);

  snap::Writer w;
  table.save_state(w);

  PrefixTable restored;
  restored.intern(999);  // pre-existing state must be replaced wholesale
  snap::Reader r{w.bytes()};
  restored.restore_state(r);

  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.id_of(40), 0u);
  EXPECT_EQ(restored.id_of(10), 1u);
  EXPECT_EQ(restored.id_of(20), 2u);
  EXPECT_EQ(restored.id_of(999), kInvalidPrefixId);
  EXPECT_EQ(restored.origin_of(40), net::kInvalidNode);
  EXPECT_EQ(restored.origin_of(10), 3u);
  EXPECT_EQ(restored.origin_of(20), 7u);

  // A second snapshot of the restored table is byte-identical.
  snap::Writer w2;
  restored.save_state(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

}  // namespace
}  // namespace bgpsim::rib
