// Multi-prefix end-to-end invariants: a full-table scenario's trial-set
// digest is identical at any job count, its per-prefix metric lanes
// survive the svc wire codec, a warm start reproduces the cold run, and
// pre-v4 snapshot blobs (no shared prefix table) are rejected by version.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/run_options.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "snap/codec.hpp"
#include "snap/snapshot.hpp"
#include "svc/protocol.hpp"

namespace bgpsim::core {
namespace {

/// An 8-prefix full-table clique: prefix 0 at the event destination, the
/// rest cycled over three scattered origins.
Scenario clique_fulltable(EventKind event = EventKind::kTdown) {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 6;
  s.event = event;
  s.seed = 11;
  s.prefixes = 8;
  s.origins = {1, 3, 4};
  return s;
}

std::uint64_t digest(const Scenario& s, const RunOptions& options) {
  return svc::trialset_digest(run_trials(s, options));
}

std::uint64_t outcome_fingerprint(const ExperimentOutcome& o) {
  snap::Writer w;
  svc::write_outcome(w, o);
  return snap::fnv1a(w.bytes());
}

TEST(MultiPrefixDigest, IdenticalAcrossJobCounts) {
  for (const EventKind event : {EventKind::kTdown, EventKind::kTup}) {
    SCOPED_TRACE(to_string(event));
    const Scenario s = clique_fulltable(event);
    const std::uint64_t serial =
        digest(s, RunOptions{.trials = 4, .jobs = 1});
    EXPECT_EQ(serial, digest(s, RunOptions{.trials = 4, .jobs = 2}));
    EXPECT_EQ(serial, digest(s, RunOptions{.trials = 4, .jobs = 8}));
  }
}

TEST(MultiPrefixDigest, SensitiveToPrefixCountAndOrigins) {
  // Guard the guard: if the lanes or the extra prefixes never reached the
  // digest, the equivalence above would be vacuous.
  const RunOptions options{.trials = 2, .jobs = 1};
  const Scenario base = clique_fulltable();
  Scenario single = base;
  single.prefixes = 1;
  single.origins.clear();
  EXPECT_NE(digest(base, options), digest(single, options));

  Scenario moved = base;
  moved.origins = {2, 3, 4};  // shift one background origin
  EXPECT_NE(digest(base, options), digest(moved, options));
}

TEST(MultiPrefixDigest, PerPrefixLanesSurviveTheWireCodec) {
  const ExperimentOutcome out = run_experiment(clique_fulltable());
  ASSERT_EQ(out.metrics.per_prefix.size(), 8u);
  // The destination prefix saw the Tdown; at least its lane must have
  // routed traffic before the event killed the origin.
  EXPECT_GT(out.metrics.per_prefix[0].packets_sent, 0u);

  snap::Writer w;
  svc::write_outcome(w, out);
  snap::Reader r{w.bytes()};
  const ExperimentOutcome decoded = svc::read_outcome(r);
  ASSERT_EQ(decoded.metrics.per_prefix.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("prefix " + std::to_string(p));
    const auto& a = out.metrics.per_prefix[p];
    const auto& b = decoded.metrics.per_prefix[p];
    EXPECT_EQ(a.loops_formed, b.loops_formed);
    EXPECT_EQ(a.max_loop_duration_s, b.max_loop_duration_s);
    EXPECT_EQ(a.ttl_exhaustions, b.ttl_exhaustions);
    EXPECT_EQ(a.packets_sent, b.packets_sent);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  }
  EXPECT_EQ(outcome_fingerprint(decoded), outcome_fingerprint(out));
}

TEST(MultiPrefixDigest, WarmStartReproducesColdRunBitForBit) {
  Scenario cold = clique_fulltable();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  const ExperimentOutcome cold_out = run_experiment(cold);
  ASSERT_FALSE(converged.empty());
  EXPECT_TRUE(converged.meta().quiescent);

  Scenario warm = clique_fulltable();
  warm.warm_start = &converged;
  const ExperimentOutcome warm_out = run_experiment(warm);
  EXPECT_EQ(warm_out.initial_convergence_s, cold_out.initial_convergence_s);
  EXPECT_EQ(outcome_fingerprint(warm_out), outcome_fingerprint(cold_out));
}

TEST(MultiPrefixDigest, PreV4SnapshotBlobRejectedByVersion) {
  // A current reader must refuse v3 bytes outright (v3 payloads carry no
  // shared prefix table, so decoding them as a later version would misread
  // every section).
  Scenario cold = clique_fulltable();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  (void)run_experiment(cold);

  std::vector<std::uint8_t> blob = converged.encode();
  static_assert(snap::kFormatVersion > 3,
                "the downgrade byte below must predate the prefix table");
  blob[snap::kVersionOffset] = 3;
  try {
    (void)snap::Snapshot::decode(blob);
    FAIL() << "decode accepted a pre-multiprefix snapshot version";
  } catch (const snap::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported snapshot format version 3"),
              std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace bgpsim::core
