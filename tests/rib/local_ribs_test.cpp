// LocalRibs: the flat (speaker × prefix-id) planes must preserve the old
// per-speaker map semantics exactly — set_best change detection, ascending
// peer order in Adj-RIB-In columns, and per-speaker checkpoint codecs —
// because the decision process's tie-breaking and the snapshot digests
// both depend on them.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "bgp/as_path.hpp"
#include "net/types.hpp"
#include "rib/local_ribs.hpp"
#include "snap/codec.hpp"

namespace bgpsim::rib {
namespace {

TEST(LocalRibs, SetBestReportsChangesLikeTheOldLocRib) {
  LocalRibs ribs{2};
  EXPECT_EQ(ribs.best(0, 9), nullptr);

  EXPECT_TRUE(ribs.set_best(0, 9, bgp::AsPath{1, 2}));
  ASSERT_NE(ribs.best(0, 9), nullptr);
  EXPECT_EQ(*ribs.best(0, 9), (bgp::AsPath{1, 2}));

  // Same value again: no change.
  EXPECT_FALSE(ribs.set_best(0, 9, bgp::AsPath{1, 2}));
  // Different value: change.
  EXPECT_TRUE(ribs.set_best(0, 9, bgp::AsPath{1, 3, 2}));
  // Disengage: change once, then a no-op.
  EXPECT_TRUE(ribs.set_best(0, 9, std::nullopt));
  EXPECT_EQ(ribs.best(0, 9), nullptr);
  EXPECT_FALSE(ribs.set_best(0, 9, std::nullopt));

  // Speaker rows are independent.
  EXPECT_TRUE(ribs.set_best(1, 9, bgp::AsPath{4}));
  EXPECT_EQ(ribs.best(0, 9), nullptr);
}

TEST(LocalRibs, BestPrefixesAscendingRegardlessOfInterningOrder) {
  LocalRibs ribs{1};
  ribs.set_best(0, 30, bgp::AsPath{1});
  ribs.set_best(0, 10, bgp::AsPath{1});
  ribs.set_best(0, 20, bgp::AsPath{1});
  EXPECT_EQ(ribs.best_prefixes(0), (std::vector<net::Prefix>{10, 20, 30}));
  ribs.set_best(0, 20, std::nullopt);
  EXPECT_EQ(ribs.best_prefixes(0), (std::vector<net::Prefix>{10, 30}));
}

TEST(LocalRibs, AdjColumnsStaySortedByPeerAscending) {
  LocalRibs ribs{1};
  // Insert peers out of order; iteration must match the old std::map.
  ribs.adj_set(0, 5, /*peer=*/9, bgp::AsPath{9, 1});
  ribs.adj_set(0, 5, /*peer=*/2, bgp::AsPath{2, 1});
  ribs.adj_set(0, 5, /*peer=*/7, bgp::AsPath{7, 1});

  const PeerColumn& column = ribs.adj_entries(0, 5);
  ASSERT_EQ(column.size(), 3u);
  EXPECT_EQ(column[0].first, 2u);
  EXPECT_EQ(column[1].first, 7u);
  EXPECT_EQ(column[2].first, 9u);

  // Replacing an existing peer's route keeps one entry.
  ribs.adj_set(0, 5, /*peer=*/7, bgp::AsPath{7, 3, 1});
  ASSERT_EQ(ribs.adj_entries(0, 5).size(), 3u);
  ASSERT_NE(ribs.adj_get(0, 5, 7), nullptr);
  EXPECT_EQ(*ribs.adj_get(0, 5, 7), (bgp::AsPath{7, 3, 1}));
}

TEST(LocalRibs, AdjWithdrawAndDropPeer) {
  LocalRibs ribs{1};
  ribs.adj_set(0, 1, 4, bgp::AsPath{4});
  ribs.adj_set(0, 2, 4, bgp::AsPath{4});
  ribs.adj_set(0, 2, 5, bgp::AsPath{5});

  EXPECT_TRUE(ribs.adj_withdraw(0, 1, 4));
  EXPECT_FALSE(ribs.adj_withdraw(0, 1, 4));  // already gone
  EXPECT_EQ(ribs.adj_get(0, 1, 4), nullptr);

  // drop_peer reports which prefixes lost an entry (session reset).
  const std::vector<net::Prefix> touched = ribs.adj_drop_peer(0, 4);
  EXPECT_EQ(touched, (std::vector<net::Prefix>{2}));
  EXPECT_EQ(ribs.adj_get(0, 2, 4), nullptr);
  ASSERT_NE(ribs.adj_get(0, 2, 5), nullptr);
  EXPECT_EQ(ribs.adj_prefixes(0), (std::vector<net::Prefix>{2}));
}

TEST(LocalRibs, AdjEraseIfCountsAndFilters) {
  LocalRibs ribs{1};
  ribs.adj_set(0, 3, 1, bgp::AsPath{1, 8});
  ribs.adj_set(0, 3, 2, bgp::AsPath{2, 9});
  ribs.adj_set(0, 3, 6, bgp::AsPath{6, 8});

  // The Assertion enhancement's primitive: drop every column entry whose
  // path crosses node 8.
  const std::size_t erased =
      ribs.adj_erase_if(0, 3, [](net::NodeId, const bgp::AsPath& path) {
        return path.contains(8);
      });
  EXPECT_EQ(erased, 2u);
  const PeerColumn& column = ribs.adj_entries(0, 3);
  ASSERT_EQ(column.size(), 1u);
  EXPECT_EQ(column[0].first, 2u);
  EXPECT_EQ(ribs.adj_erase_if(0, 99, [](net::NodeId, const bgp::AsPath&) {
    return true;
  }),
            0u);  // unknown prefix: nothing to erase
}

TEST(LocalRibs, EnsureSpeakersPreservesExistingRows) {
  LocalRibs ribs{1};
  ribs.set_best(0, 7, bgp::AsPath{1, 2});
  ribs.adj_set(0, 7, 3, bgp::AsPath{3, 2});

  ribs.ensure_speakers(4);
  EXPECT_EQ(ribs.speaker_count(), 4u);
  ASSERT_NE(ribs.best(0, 7), nullptr);
  EXPECT_EQ(*ribs.best(0, 7), (bgp::AsPath{1, 2}));
  ASSERT_NE(ribs.adj_get(0, 7, 3), nullptr);
  EXPECT_EQ(ribs.best(3, 7), nullptr);

  // Shrinking is a no-op.
  ribs.ensure_speakers(2);
  EXPECT_EQ(ribs.speaker_count(), 4u);
}

TEST(LocalRibs, PerSpeakerCodecRoundTripsBothPlanes) {
  LocalRibs ribs{2};
  ribs.set_best(0, 11, bgp::AsPath{1, 5});
  ribs.set_best(0, 22, bgp::AsPath{1, 6, 5});
  ribs.adj_set(0, 11, 6, bgp::AsPath{6, 5});
  ribs.adj_set(0, 11, 2, bgp::AsPath{2, 5});
  ribs.set_best(1, 11, bgp::AsPath{9});

  snap::Writer table_w;
  ribs.save_table(table_w);
  snap::Writer best_w;
  ribs.save_best(0, best_w);
  snap::Writer adj_w;
  ribs.save_adj(0, adj_w);

  // Restore into a store with different contents; the table restore resets
  // both planes, then per-speaker restores reload row 0.
  LocalRibs other{2};
  other.set_best(0, 99, bgp::AsPath{4});
  other.set_best(1, 99, bgp::AsPath{4});
  snap::Reader table_r{table_w.bytes()};
  other.restore_table(table_r);
  EXPECT_EQ(other.best(0, 99), nullptr);
  EXPECT_EQ(other.best(1, 99), nullptr);

  snap::Reader best_r{best_w.bytes()};
  other.restore_best(0, best_r);
  snap::Reader adj_r{adj_w.bytes()};
  other.restore_adj(0, adj_r);

  ASSERT_NE(other.best(0, 11), nullptr);
  EXPECT_EQ(*other.best(0, 11), (bgp::AsPath{1, 5}));
  ASSERT_NE(other.best(0, 22), nullptr);
  const PeerColumn& column = other.adj_entries(0, 11);
  ASSERT_EQ(column.size(), 2u);
  EXPECT_EQ(column[0].first, 2u);
  EXPECT_EQ(column[1].first, 6u);
  // Prefix ids follow the restored table, so a re-save is byte-identical.
  snap::Writer best_w2;
  other.save_best(0, best_w2);
  EXPECT_EQ(best_w.bytes(), best_w2.bytes());
}

}  // namespace
}  // namespace bgpsim::rib
