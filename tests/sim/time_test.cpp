#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace bgpsim::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().as_micros(), 0);
}

TEST(SimTime, FactoryConversions) {
  EXPECT_EQ(SimTime::micros(1500).as_micros(), 1500);
  EXPECT_EQ(SimTime::millis(2).as_micros(), 2000);
  EXPECT_EQ(SimTime::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(30).as_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(SimTime::millis(2).as_millis(), 2.0);
}

TEST(SimTime, SecondsRoundsToNearestMicro) {
  EXPECT_EQ(SimTime::seconds(0.0000014).as_micros(), 1);
  EXPECT_EQ(SimTime::seconds(0.0000016).as_micros(), 2);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LE(SimTime::millis(2), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::millis(100);
  const auto b = SimTime::millis(50);
  EXPECT_EQ(a + b, SimTime::millis(150));
  EXPECT_EQ(a - b, SimTime::millis(50));
  EXPECT_EQ(a * 3, SimTime::millis(300));
  EXPECT_EQ(3 * a, SimTime::millis(300));

  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::millis(150));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTime, Infinity) {
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_FALSE(SimTime::seconds(1e12).is_infinite());
  EXPECT_LT(SimTime::seconds(1e12), SimTime::infinity());
}

TEST(SimTime, ToString) {
  EXPECT_EQ(to_string(SimTime::seconds(1.5)), "1.500000s");
  EXPECT_EQ(to_string(SimTime::infinity()), "inf");
  EXPECT_EQ(to_string(SimTime::zero()), "0.000000s");
}

TEST(SimTime, NegativeDurations) {
  const auto d = SimTime::millis(10) - SimTime::millis(25);
  EXPECT_EQ(d.as_micros(), -15'000);
  EXPECT_LT(d, SimTime::zero());
  EXPECT_EQ(SimTime::seconds(-1.5).as_micros(), -1'500'000);
}

}  // namespace
}  // namespace bgpsim::sim
