#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bgpsim::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(SimTime::millis(10), [&] { seen.push_back(sim.now()); });
  sim.schedule_at(SimTime::millis(25), [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], SimTime::millis(10));
  EXPECT_EQ(seen[1], SimTime::millis(25));
  EXPECT_EQ(sim.now(), SimTime::millis(25));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired;
  sim.schedule_at(SimTime::millis(10), [&] {
    sim.schedule_after(SimTime::millis(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::millis(15));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(10), [&] { ++count; });
  sim.schedule_at(SimTime::millis(20), [&] { ++count; });
  sim.schedule_at(SimTime::millis(30), [&] { ++count; });

  const auto fired = sim.run_until(SimTime::millis(20));
  EXPECT_EQ(fired, 2u);  // events at exactly the limit fire
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ClockStaysAtLastEventWhenQueueDrains) {
  Simulator sim;
  sim.schedule_at(SimTime::millis(7), [] {});
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(sim.now(), SimTime::millis(7));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::millis(5), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(SimTime::millis(-1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, SchedulingAtNowIsAllowed) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(SimTime::millis(10), [&] {
    sim.schedule_at(sim.now(), [&] { ran = true; });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(SimTime::millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(SimTime::millis(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, CascadingEventsAllFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(SimTime::micros(1), chain);
  };
  sim.schedule_at(SimTime::zero(), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::micros(99));
}

TEST(Simulator, ClearPendingStopsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] {
    ++count;
    sim.clear_pending();
  });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilReturnsFiredCount) {
  Simulator sim;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::millis(i), [] {});
  }
  EXPECT_EQ(sim.run_until(SimTime::millis(4)), 4u);
  EXPECT_EQ(sim.run_until(SimTime::millis(100)), 6u);
}

}  // namespace
}  // namespace bgpsim::sim
