#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bgpsim::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(0.1, 0.5);
    EXPECT_GE(v, 0.1);
    EXPECT_LT(v, 0.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{99};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.1, 0.5);
  EXPECT_NEAR(sum / n, 0.3, 0.005);
}

TEST(Rng, NextBelowStaysBelow) {
  Rng rng{13};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng{5};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng{21};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all of -2..3 appear
}

TEST(Rng, UniformTimeWithinBounds) {
  Rng rng{33};
  const auto lo = SimTime::millis(100);
  const auto hi = SimTime::millis(500);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = rng.uniform_time(lo, hi);
    EXPECT_GE(t, lo);
    EXPECT_LT(t, hi);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{77};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ChildStreamsAreIndependentOfDrawOrder) {
  // The child stream is a pure function of (seed, label, index): drawing
  // from the parent must not change what a child produces.
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 10; ++i) b.next_u64();

  Rng child_a = a.child("bgp", 3);
  Rng child_b = b.child("bgp", 3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, ChildStreamsDifferByLabel) {
  Rng root{42};
  Rng a = root.child("proc", 0);
  Rng b = root.child("bgp", 0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ChildStreamsDifferByIndex) {
  Rng root{42};
  Rng a = root.child("proc", 0);
  Rng b = root.child("proc", 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, GrandchildrenAreDeterministic) {
  Rng a = Rng{9}.child("x", 1).child("y", 2);
  Rng b = Rng{9}.child("x", 1).child("y", 2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BitsLookBalanced) {
  // Cheap sanity check, not a statistical test battery: each of the 64 bit
  // positions should be set roughly half the time.
  Rng rng{2024};
  const int n = 4096;
  int counts[64] = {};
  for (int i = 0; i < n; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 64; ++b) {
      counts[b] += (v >> b) & 1;
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(counts[b], n / 2, n / 8) << "bit " << b;
  }
}

}  // namespace
}  // namespace bgpsim::sim
