#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bgpsim::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  q.push(SimTime::millis(20), [&] { order.push_back(2); });

  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::millis(5);
  for (int i = 0; i < 10; ++i) {
    q.push(t, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(SimTime::millis(20), [] {});
  q.push(SimTime::millis(10), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(10));
}

TEST(EventQueue, PopReturnsFiringTime) {
  EventQueue q;
  q.push(SimTime::millis(42), [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.time, SimTime::millis(42));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(SimTime::millis(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  const EventId mid = q.push(SimTime::millis(20), [&] { order.push_back(2); });
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelHeadAdvancesNextTime) {
  EventQueue q;
  const EventId head = q.push(SimTime::millis(10), [] {});
  q.push(SimTime::millis(20), [] {});
  q.cancel(head);
  EXPECT_EQ(q.next_time(), SimTime::millis(20));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(SimTime::micros(1000 - i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);

  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, prev);
    prev = fired.time;
  }
}

}  // namespace
}  // namespace bgpsim::sim
