// Differential property suite: the timer-wheel backend must be
// observationally identical to the binary-heap backend — same pop order,
// same EventIds, same cancel semantics, same pending set — for arbitrary
// interleavings of push/cancel/pop/consume, including same-timestamp
// bursts, cancel-after-fire, and far-future times that exercise every
// cascade level and the overflow horizon.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace bgpsim::sim {
namespace {

// Wheel geometry mirrored from timer_wheel.cpp: 1.024 ms ticks, 6 levels
// of 64 slots. Level l spans 64^(l+1) ticks; the horizon is 2^36 ticks.
constexpr std::int64_t kTickUs = 1 << 10;
constexpr std::int64_t kLevelSpanUs[] = {
    kTickUs * (1LL << 6),  kTickUs * (1LL << 12), kTickUs * (1LL << 18),
    kTickUs * (1LL << 24), kTickUs * (1LL << 30), kTickUs * (1LL << 36),
};
constexpr std::int64_t kHorizonUs = kLevelSpanUs[5];

/// The two backends driven through identical operation histories. Every
/// operation is applied to both queues and its observable results —
/// returned ids, cancel verdicts, front observations — asserted equal.
struct QueuePair {
  EventQueue heap{QueueBackend::kHeap};
  EventQueue wheel{QueueBackend::kWheel};

  EventId push(SimTime when) {
    const EventId predicted_h = heap.next_push_id();
    const EventId predicted_w = wheel.next_push_id();
    EXPECT_EQ(predicted_h.value, predicted_w.value);
    const EventId h = heap.push(when, [] {});
    const EventId w = wheel.push(when, [] {});
    EXPECT_EQ(h.value, w.value);
    EXPECT_EQ(predicted_h.value, h.value);
    return h;
  }

  bool cancel(EventId id) {
    const bool h = heap.cancel(id);
    const bool w = wheel.cancel(id);
    EXPECT_EQ(h, w);
    return h;
  }

  /// Pop one event from both; returns its (time, id) after asserting the
  /// two backends agree on every front observation.
  std::pair<SimTime, EventId> pop() {
    EXPECT_EQ(heap.next_time(), wheel.next_time());
    EXPECT_EQ(heap.next_event_seq(), wheel.next_event_seq());
    EXPECT_EQ(heap.next_event_id().value, wheel.next_event_id().value);
    EventQueue::Fired h = heap.pop();
    EventQueue::Fired w = wheel.pop();
    EXPECT_EQ(h.time, w.time);
    EXPECT_EQ(h.id.value, w.id.value);
    return {h.time, h.id};
  }

  void consume() {
    EXPECT_EQ(heap.next_event_id().value, wheel.next_event_id().value);
    heap.consume_next();
    wheel.consume_next();
  }

  void expect_same_state() const {
    EXPECT_EQ(heap.size(), wheel.size());
    EXPECT_EQ(heap.empty(), wheel.empty());
    EXPECT_EQ(heap.next_seq(), wheel.next_seq());
    EXPECT_EQ(heap.pending_entries(), wheel.pending_entries());
  }
};

/// Times that stress the wheel: same-tick ties, tick boundaries, every
/// cascade level, the overflow horizon, and infinity.
SimTime interesting_time(Rng& rng, std::int64_t base_us) {
  switch (rng.next_below(10)) {
    case 0:
      return SimTime::micros(base_us);  // exact tie with a prior draw
    case 1:
      return SimTime::micros(base_us + rng.uniform_int(0, kTickUs - 1));
    case 2:  // straddle a tick boundary
      return SimTime::micros((base_us / kTickUs + 1) * kTickUs -
                             rng.uniform_int(0, 2));
    case 3:
      return SimTime::micros(base_us + kLevelSpanUs[0] + rng.uniform_int(0, 99));
    case 4:
      return SimTime::micros(base_us + kLevelSpanUs[1] + rng.uniform_int(0, 99));
    case 5:
      return SimTime::micros(base_us + kLevelSpanUs[2] + rng.uniform_int(0, 99));
    case 6:
      return SimTime::micros(base_us + kLevelSpanUs[4] + rng.uniform_int(0, 99));
    case 7:  // beyond the horizon: overflow, then retargeted
      return SimTime::micros(base_us + kHorizonUs + rng.uniform_int(0, 999));
    case 8:
      return SimTime::infinity();
    default:
      return SimTime::micros(base_us + rng.uniform_int(0, 1'000'000));
  }
}

TEST(TimerWheelDifferential, RandomArmCancelPopHistories) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    Rng rng = Rng{41}.child("wheel-diff", round);
    QueuePair q;
    std::vector<EventId> ids;  // live and dead — cancels may target both
    std::int64_t base_us = 0;

    for (int step = 0; step < 400; ++step) {
      switch (rng.next_below(6)) {
        case 0:
        case 1:
        case 2: {
          const SimTime when = interesting_time(rng, base_us);
          ids.push_back(q.push(when));
          break;
        }
        case 3: {
          if (ids.empty()) break;
          const std::size_t pick =
              static_cast<std::size_t>(rng.next_below(ids.size()));
          q.cancel(ids[pick]);  // may be long dead: both must agree
          break;
        }
        case 4: {
          if (q.heap.empty()) break;
          const SimTime time = q.pop().first;
          if (!time.is_infinite()) base_us = time.as_micros();
          break;
        }
        default: {
          if (q.heap.empty()) break;
          q.consume();
          break;
        }
      }
      if (step % 16 == 0) q.expect_same_state();
    }

    // Drain: the full residual order must match exactly.
    SimTime prev = SimTime::zero();
    while (!q.heap.empty()) {
      const SimTime time = q.pop().first;
      EXPECT_LE(prev, time);
      prev = time;
    }
    q.expect_same_state();
  }
}

TEST(TimerWheelDifferential, SameTimestampBurstsPopFifoAcrossBackends) {
  QueuePair q;
  const SimTime t = SimTime::millis(7);
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(q.push(t));
  // Cancel a scattering mid-burst; survivors must still pop FIFO.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  std::uint64_t prev_seq = 0;
  while (!q.heap.empty()) {
    EXPECT_EQ(q.heap.next_time(), t);
    const std::uint64_t seq = q.heap.next_event_seq();
    EXPECT_LT(prev_seq, seq);
    prev_seq = seq;
    q.pop();
  }
}

TEST(TimerWheelDifferential, CancelAfterFireFailsOnBothBackends) {
  QueuePair q;
  const EventId id = q.push(SimTime::millis(1));
  q.push(SimTime::millis(2));
  q.pop();  // fires `id`
  EXPECT_FALSE(q.cancel(id));
  // The slot is recycled by the next push; the old handle must still fail.
  const EventId recycled = q.push(SimTime::millis(3));
  EXPECT_NE(recycled.value, id.value);
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.cancel(recycled));
}

TEST(TimerWheelDifferential, FarFutureCascadeEdges) {
  QueuePair q;
  // One event per cascade level, plus overflow and infinity, pushed in
  // reverse time order so every pop crosses a level boundary.
  std::vector<std::int64_t> times;
  for (int l = 5; l >= 0; --l) times.push_back(kLevelSpanUs[l] + 1);
  times.push_back(kHorizonUs * 3 + 17);  // deep overflow
  for (const std::int64_t t : times) q.push(SimTime::micros(t));
  q.push(SimTime::infinity());

  SimTime prev = SimTime::zero();
  std::size_t popped = 0;
  while (!q.heap.empty()) {
    const SimTime time = q.pop().first;
    EXPECT_LT(prev, time);
    prev = time;
    ++popped;
  }
  EXPECT_EQ(popped, times.size() + 1);
  EXPECT_TRUE(prev.is_infinite());
}

TEST(TimerWheelDifferential, ClearKeepsGenerationsOnBothBackends) {
  QueuePair q;
  const EventId id = q.push(SimTime::millis(1));
  q.push(SimTime::millis(2));
  q.heap.clear();
  q.wheel.clear();
  q.expect_same_state();
  EXPECT_TRUE(q.heap.empty());
  EXPECT_FALSE(q.cancel(id));  // stale handle must not alias new events
  const EventId next = q.push(SimTime::millis(3));
  EXPECT_NE(next.value, id.value);
  const auto [time, popped] = q.pop();
  EXPECT_EQ(time, SimTime::millis(3));
  EXPECT_EQ(popped.value, next.value);
}

TEST(TimerWheelDifferential, EmptyQueueThrowsOnBothBackends) {
  for (const QueueBackend backend : {QueueBackend::kHeap, QueueBackend::kWheel}) {
    EventQueue q{backend};
    EXPECT_THROW((void)q.next_time(), std::logic_error);
    EXPECT_THROW(q.pop(), std::logic_error);
    EXPECT_THROW(q.consume_next(), std::logic_error);
    EXPECT_TRUE(q.pending_entries().empty());
  }
}

// ---- Simulator-level differential ---------------------------------------

/// Run the same self-extending schedule on both backends: event k records
/// its firing time, schedules up to two children at pseudo-random offsets
/// (same-instant children included), and sometimes cancels a remembered
/// event. The recorded (time, marker) streams must match exactly.
TEST(TimerWheelDifferential, SimulatorExecutionsMatchEventForEvent) {
  const auto run = [](QueueBackend backend) {
    Simulator simulator{backend};
    std::vector<std::pair<std::int64_t, int>> fired;
    std::vector<EventId> cancellable;
    int next_marker = 0;

    std::function<void(int)> spawn = [&](int depth) {
      if (next_marker >= 600) return;
      const int marker = next_marker++;
      Rng rng = Rng{977}.child("sim-diff", static_cast<std::uint64_t>(marker));
      constexpr std::int64_t kOffsets[] = {
          0, 1, kTickUs - 1, kTickUs, kLevelSpanUs[0] + 3, 250'000};
      const SimTime delay =
          SimTime::micros(kOffsets[rng.next_below(std::size(kOffsets))]);
      const EventId id =
          simulator.schedule_after(delay, [&, depth, marker, rng] {
            fired.emplace_back(simulator.now().as_micros(), marker);
            Rng r = rng;  // per-event deterministic decisions
            if (depth < 40) {
              spawn(depth + 1);
              if (r.chance(0.5)) spawn(depth + 1);
            }
            if (r.chance(0.3) && !cancellable.empty()) {
              simulator.cancel(cancellable.back());
              cancellable.pop_back();
            }
          });
      if (marker % 5 == 0) cancellable.push_back(id);
    };
    for (int i = 0; i < 4; ++i) spawn(0);
    simulator.run();
    return std::pair{fired, simulator.events_fired()};
  };

  const auto heap = run(QueueBackend::kHeap);
  const auto wheel = run(QueueBackend::kWheel);
  EXPECT_EQ(heap.second, wheel.second);
  ASSERT_EQ(heap.first.size(), wheel.first.size());
  EXPECT_EQ(heap.first, wheel.first);
  EXPECT_GT(heap.first.size(), 100u);
}

// ---- Coincident-event consumption (the burst-delivery contract) ----------

TEST(TimerWheelDifferential, CoincidentConsumptionCountsAsFired) {
  Simulator simulator{QueueBackend::kWheel};
  ASSERT_TRUE(simulator.burst_delivery());
  int handlers_run = 0;
  int consumed = 0;
  const SimTime t = SimTime::millis(3);
  simulator.schedule_at(t, [&] {
    ++handlers_run;
    while (const std::optional<EventId> id = simulator.next_coincident_event()) {
      simulator.consume_coincident(*id);
      ++consumed;
    }
  });
  simulator.schedule_at(t, [&] { ++handlers_run; });
  simulator.schedule_at(t, [&] { ++handlers_run; });
  simulator.schedule_at(t + SimTime::millis(1), [&] { ++handlers_run; });

  simulator.run();
  EXPECT_EQ(handlers_run, 2);  // first coincident handler + the later event
  EXPECT_EQ(consumed, 2);
  // Consumed events count as fired: the ledger matches sequential delivery.
  EXPECT_EQ(simulator.events_fired(), 4u);
}

TEST(TimerWheelDifferential, CoincidentOfferStopsAtLaterTimesAndExternalSlot) {
  Simulator simulator{QueueBackend::kWheel};
  bool external_fired = false;
  simulator.set_external_handler([&] { external_fired = true; });

  const SimTime t = SimTime::millis(2);
  simulator.schedule_at(t, [&] {
    // The external slot is armed at this exact time with an earlier seq
    // than the next queued event: nothing may be offered past it.
    EXPECT_EQ(simulator.next_coincident_event(), std::nullopt);
  });
  simulator.arm_external(t);
  simulator.schedule_at(t, [] {});
  simulator.schedule_at(t + SimTime::micros(1), [] {});
  simulator.run();
  EXPECT_TRUE(external_fired);
  EXPECT_EQ(simulator.events_fired(), 4u);

  // And nothing is offered when the next event is strictly later.
  Simulator s2{QueueBackend::kWheel};
  s2.schedule_at(t, [&] {
    EXPECT_EQ(s2.next_coincident_event(), std::nullopt);
  });
  s2.schedule_at(t + SimTime::micros(1), [] {});
  s2.run();
}

TEST(TimerWheelDifferential, HeapBackendDisablesBurstDelivery) {
  Simulator simulator{QueueBackend::kHeap};
  EXPECT_FALSE(simulator.burst_delivery());
  EXPECT_EQ(simulator.backend(), QueueBackend::kHeap);
}

}  // namespace
}  // namespace bgpsim::sim
