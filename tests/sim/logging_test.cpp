#include "sim/logging.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace bgpsim::sim {
namespace {

struct Captured {
  LogLevel level;
  std::string component;
  SimTime when;
  std::string message;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_level(LogLevel::kTrace);
    Log::set_sink([this](LogLevel l, std::string_view c, SimTime t,
                         std::string_view m) {
      captured_.push_back(Captured{l, std::string{c}, t, std::string{m}});
    });
  }
  void TearDown() override {
    Log::set_level(LogLevel::kOff);
    Log::set_sink(nullptr);
  }
  std::vector<Captured> captured_;
};

TEST_F(LoggingTest, LineReachesSink) {
  LogLine{LogLevel::kInfo, "bgp", SimTime::seconds(1.5)} << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].component, "bgp");
  EXPECT_EQ(captured_[0].message, "hello 42");
  EXPECT_EQ(captured_[0].when, SimTime::seconds(1.5));
}

TEST_F(LoggingTest, LevelFiltering) {
  Log::set_level(LogLevel::kInfo);
  LogLine{LogLevel::kDebug, "x", SimTime::zero()} << "filtered";
  LogLine{LogLevel::kInfo, "x", SimTime::zero()} << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "kept");
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  Log::set_level(LogLevel::kOff);
  LogLine{LogLevel::kInfo, "x", SimTime::zero()} << "no";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, EnabledMatchesLevel) {
  Log::set_level(LogLevel::kDebug);
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kTrace));
}

TEST_F(LoggingTest, ConcurrentWritersProduceWholeOrderedLines) {
  // Two threads emit through the shared Log; the sink (invoked under the
  // Log mutex) must see whole lines only, and per-thread order must hold.
  // Run under BGPSIM_SANITIZE=thread this doubles as the race check.
  constexpr int kPerThread = 200;
  const auto emit = [](const char* tag) {
    for (int i = 0; i < kPerThread; ++i) {
      LogLine{LogLevel::kInfo, tag, SimTime::seconds(i)} << tag << ':' << i;
    }
  };
  std::thread a{emit, "thrA"};
  std::thread b{emit, "thrB"};
  a.join();
  b.join();

  ASSERT_EQ(captured_.size(), 2u * kPerThread);
  std::map<std::string, int> next_index;  // per-component expected counter
  for (const Captured& c : captured_) {
    const int i = next_index[c.component]++;
    // A torn or interleaved line would break this exact-match.
    EXPECT_EQ(c.message, c.component + ":" + std::to_string(i));
    EXPECT_EQ(c.when, SimTime::seconds(i));
  }
  EXPECT_EQ(next_index["thrA"], kPerThread);
  EXPECT_EQ(next_index["thrB"], kPerThread);
}

TEST_F(LoggingTest, InstanceTagPrefixesEveryMessage) {
  // Campaign worker processes tag themselves so interleaved multi-process
  // logs stay attributable; the tag must reach custom sinks too.
  Log::set_instance_tag("w3");
  LogLine{LogLevel::kInfo, "bgp", SimTime::zero()} << "update sent";
  Log::set_instance_tag("");
  LogLine{LogLevel::kInfo, "bgp", SimTime::zero()} << "untagged again";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "[w3] update sent");
  EXPECT_EQ(captured_[1].message, "untagged again");
}

TEST_F(LoggingTest, MultipleLinesInOrder) {
  LogLine{LogLevel::kInfo, "a", SimTime::zero()} << "first";
  LogLine{LogLevel::kInfo, "b", SimTime::zero()} << "second";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "first");
  EXPECT_EQ(captured_[1].message, "second");
}

}  // namespace
}  // namespace bgpsim::sim
