#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace bgpsim::net {
namespace {

struct Delivery {
  NodeId from;
  NodeId to;
  std::string payload;
  sim::SimTime at;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : topo_{3}, transport_{sim_, topo_} {
    link01_ = topo_.add_link(0, 1, sim::SimTime::millis(2));
    link12_ = topo_.add_link(1, 2, sim::SimTime::millis(2));
    transport_.set_delivery_handler([this](const Envelope& env) {
      deliveries_.push_back(Delivery{env.from, env.to,
                                     env.payload.get<std::string>(),
                                     sim_.now()});
    });
    transport_.set_session_handler([this](NodeId self, NodeId peer, bool up) {
      sessions_.emplace_back(self, peer, up);
    });
  }

  sim::Simulator sim_;
  Topology topo_;
  Transport transport_;
  LinkId link01_ = 0;
  LinkId link12_ = 0;
  std::vector<Delivery> deliveries_;
  std::vector<std::tuple<NodeId, NodeId, bool>> sessions_;
};

TEST_F(TransportTest, DeliversAfterPropagationDelay) {
  transport_.send(0, 1, std::string{"hi"});
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].from, 0u);
  EXPECT_EQ(deliveries_[0].to, 1u);
  EXPECT_EQ(deliveries_[0].payload, "hi");
  EXPECT_EQ(deliveries_[0].at, sim::SimTime::millis(2));
}

TEST_F(TransportTest, NoLinkMeansDrop) {
  EXPECT_FALSE(transport_.send(0, 2, std::string{"x"}));
  sim_.run();
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(TransportTest, DownLinkMeansDrop) {
  transport_.fail_link(link01_);
  EXPECT_FALSE(transport_.send(0, 1, std::string{"x"}));
  sim_.run();
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(TransportTest, FifoOrderPerDirection) {
  for (int i = 0; i < 5; ++i) {
    transport_.send(0, 1, std::string(1, static_cast<char>('a' + i)));
  }
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(deliveries_[i].payload, std::string(1, static_cast<char>('a' + i)));
  }
}

TEST_F(TransportTest, FailLinkDropsInFlight) {
  transport_.send(0, 1, std::string{"lost"});
  // Fail the link before the 2 ms propagation completes.
  sim_.schedule_at(sim::SimTime::millis(1),
                   [this] { transport_.fail_link(link01_); });
  sim_.run();
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(transport_.messages_lost(), 1u);
}

TEST_F(TransportTest, FailLinkNotifiesBothEndpoints) {
  transport_.fail_link(link01_);
  ASSERT_EQ(sessions_.size(), 2u);
  EXPECT_EQ(sessions_[0], std::make_tuple(NodeId{0}, NodeId{1}, false));
  EXPECT_EQ(sessions_[1], std::make_tuple(NodeId{1}, NodeId{0}, false));
}

TEST_F(TransportTest, RestoreLinkNotifiesUp) {
  transport_.fail_link(link01_);
  sessions_.clear();
  transport_.restore_link(link01_);
  ASSERT_EQ(sessions_.size(), 2u);
  EXPECT_EQ(std::get<2>(sessions_[0]), true);
  EXPECT_TRUE(topo_.link_up(0, 1));
}

TEST_F(TransportTest, FailAlreadyDownIsNoop) {
  EXPECT_TRUE(transport_.fail_link(link01_));
  sessions_.clear();
  EXPECT_FALSE(transport_.fail_link(link01_));
  EXPECT_TRUE(sessions_.empty());
}

TEST_F(TransportTest, FailNodeTakesAllLinks) {
  transport_.fail_node(1);
  EXPECT_FALSE(topo_.link(link01_).up);
  EXPECT_FALSE(topo_.link(link12_).up);
  EXPECT_EQ(sessions_.size(), 4u);
}

TEST_F(TransportTest, OtherLinksUnaffectedByFailure) {
  transport_.send(1, 2, std::string{"ok"});
  transport_.fail_link(link01_);
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].payload, "ok");
}

TEST_F(TransportTest, CountersTrackOutcomes) {
  transport_.send(0, 1, std::string{"a"});
  transport_.send(1, 2, std::string{"b"});
  sim_.schedule_at(sim::SimTime::millis(1),
                   [this] { transport_.fail_link(link12_); });
  sim_.run();
  EXPECT_EQ(transport_.messages_sent(), 2u);
  EXPECT_EQ(transport_.messages_delivered(), 1u);
  EXPECT_EQ(transport_.messages_lost(), 1u);
}

TEST(TransportHeterogeneous, PerLinkDelaysRespected) {
  sim::Simulator sim;
  Topology topo{3};
  topo.add_link(0, 1, sim::SimTime::millis(2));
  topo.add_link(0, 2, sim::SimTime::millis(50));
  Transport transport{sim, topo};
  std::vector<std::pair<NodeId, sim::SimTime>> got;
  transport.set_delivery_handler([&](const Envelope& env) {
    got.emplace_back(env.to, sim.now());
  });
  transport.send(0, 2, std::string{"slow"});
  transport.send(0, 1, std::string{"fast"});
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  // The fast link's message, sent second, arrives first.
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, sim::SimTime::millis(2));
  EXPECT_EQ(got[1].first, 2u);
  EXPECT_EQ(got[1].second, sim::SimTime::millis(50));
}

TEST_F(TransportTest, SendAfterRestoreWorks) {
  transport_.fail_link(link01_);
  transport_.restore_link(link01_);
  EXPECT_TRUE(transport_.send(0, 1, std::string{"back"}));
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].payload, "back");
}

}  // namespace
}  // namespace bgpsim::net
