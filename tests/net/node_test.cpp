#include "net/node.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bgpsim::net {
namespace {

Envelope make_env(NodeId from, NodeId to, std::string payload) {
  return Envelope{from, to, std::move(payload)};
}

class ProcessingQueueTest : public ::testing::Test {
 protected:
  ProcessingQueueTest()
      : queue_{sim_, sim::Rng{7}, ProcessingDelay{sim::SimTime::millis(100),
                                                  sim::SimTime::millis(500)}} {
    queue_.set_message_handler([this](const Envelope& env) {
      messages_.emplace_back(env.payload.get<std::string>(),
                             sim_.now());
    });
    queue_.set_session_handler(
        [this](const ProcessingQueue::SessionEvent& ev) {
          sessions_.emplace_back(ev.peer, ev.up, sim_.now());
        });
  }

  sim::Simulator sim_;
  ProcessingQueue queue_;
  std::vector<std::pair<std::string, sim::SimTime>> messages_;
  std::vector<std::tuple<NodeId, bool, sim::SimTime>> sessions_;
};

TEST_F(ProcessingQueueTest, MessageDelayedWithinBounds) {
  queue_.accept(make_env(0, 1, "m"));
  sim_.run();
  ASSERT_EQ(messages_.size(), 1u);
  EXPECT_GE(messages_[0].second, sim::SimTime::millis(100));
  EXPECT_LT(messages_[0].second, sim::SimTime::millis(500));
}

TEST_F(ProcessingQueueTest, SerializesProcessing) {
  // Two messages arriving together: the second handler runs at least
  // min-delay after the first (it queues behind).
  queue_.accept(make_env(0, 1, "a"));
  queue_.accept(make_env(0, 1, "b"));
  sim_.run();
  ASSERT_EQ(messages_.size(), 2u);
  EXPECT_EQ(messages_[0].first, "a");
  EXPECT_EQ(messages_[1].first, "b");
  EXPECT_GE(messages_[1].second - messages_[0].second,
            sim::SimTime::millis(100));
}

TEST_F(ProcessingQueueTest, FifoAcrossKinds) {
  queue_.accept(make_env(0, 1, "first"));
  queue_.accept_session_event({5, false});
  queue_.accept(make_env(0, 1, "third"));
  sim_.run();
  ASSERT_EQ(messages_.size(), 2u);
  ASSERT_EQ(sessions_.size(), 1u);
  EXPECT_LT(messages_[0].second, std::get<2>(sessions_[0]));
  EXPECT_LT(std::get<2>(sessions_[0]), messages_[1].second);
}

TEST_F(ProcessingQueueTest, BacklogVisible) {
  queue_.accept(make_env(0, 1, "a"));
  queue_.accept(make_env(0, 1, "b"));
  queue_.accept(make_env(0, 1, "c"));
  EXPECT_EQ(queue_.backlog(), 3u);
  EXPECT_TRUE(queue_.busy());
  sim_.run();
  EXPECT_EQ(queue_.backlog(), 0u);
  EXPECT_FALSE(queue_.busy());
}

TEST_F(ProcessingQueueTest, SessionEventCarriesState) {
  queue_.accept_session_event({9, true});
  sim_.run();
  ASSERT_EQ(sessions_.size(), 1u);
  EXPECT_EQ(std::get<0>(sessions_[0]), 9u);
  EXPECT_TRUE(std::get<1>(sessions_[0]));
}

TEST(ProcessingQueueFixed, ZeroWidthDelayIsDeterministic) {
  sim::Simulator sim;
  ProcessingQueue q{sim, sim::Rng{1},
                    ProcessingDelay{sim::SimTime::millis(250),
                                    sim::SimTime::millis(250)}};
  sim::SimTime processed;
  q.set_message_handler([&](const Envelope&) { processed = sim.now(); });
  q.accept(Envelope{0, 1, std::string{"x"}});
  sim.run();
  EXPECT_EQ(processed, sim::SimTime::millis(250));
}

TEST(ProcessingQueueFixed, WorkArrivingDuringProcessingQueues) {
  sim::Simulator sim;
  ProcessingQueue q{sim, sim::Rng{1},
                    ProcessingDelay{sim::SimTime::millis(200),
                                    sim::SimTime::millis(200)}};
  std::vector<sim::SimTime> times;
  q.set_message_handler([&](const Envelope&) { times.push_back(sim.now()); });

  q.accept(Envelope{0, 1, std::string{"a"}});
  // Arrives while "a" is being processed.
  sim.schedule_at(sim::SimTime::millis(100), [&] {
    q.accept(Envelope{0, 1, std::string{"b"}});
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], sim::SimTime::millis(200));
  EXPECT_EQ(times[1], sim::SimTime::millis(400));
}

}  // namespace
}  // namespace bgpsim::net
