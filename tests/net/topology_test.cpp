#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace bgpsim::net {
namespace {

TEST(Topology, AddNodesAssignsDenseIds) {
  Topology t;
  EXPECT_EQ(t.add_node(), 0u);
  EXPECT_EQ(t.add_node(), 1u);
  t.add_nodes(3);
  EXPECT_EQ(t.node_count(), 5u);
}

TEST(Topology, AddLinkConnectsBothDirections) {
  Topology t{3};
  const LinkId id = t.add_link(0, 1);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.link(id).a, 0u);
  EXPECT_EQ(t.link(id).b, 1u);
  EXPECT_TRUE(t.link_between(0, 1).has_value());
  EXPECT_TRUE(t.link_between(1, 0).has_value());
  EXPECT_FALSE(t.link_between(0, 2).has_value());
}

TEST(Topology, LinkOther) {
  Topology t{2};
  const LinkId id = t.add_link(0, 1);
  EXPECT_EQ(t.link(id).other(0), 1u);
  EXPECT_EQ(t.link(id).other(1), 0u);
}

TEST(Topology, RejectsSelfLoop) {
  Topology t{2};
  EXPECT_THROW(t.add_link(1, 1), std::invalid_argument);
}

TEST(Topology, RejectsUnknownNode) {
  Topology t{2};
  EXPECT_THROW(t.add_link(0, 5), std::invalid_argument);
}

TEST(Topology, RejectsDuplicateLink) {
  Topology t{2};
  t.add_link(0, 1);
  EXPECT_THROW(t.add_link(1, 0), std::invalid_argument);
}

TEST(Topology, DegreeCountsAllLinks) {
  Topology t{4};
  t.add_link(0, 1);
  t.add_link(0, 2);
  t.add_link(0, 3);
  EXPECT_EQ(t.degree(0), 3u);
  EXPECT_EQ(t.degree(1), 1u);
}

TEST(Topology, LinkStateToggles) {
  Topology t{2};
  const LinkId id = t.add_link(0, 1);
  EXPECT_TRUE(t.link_up(0, 1));
  EXPECT_TRUE(t.set_link_state(id, false));
  EXPECT_FALSE(t.link_up(0, 1));
  EXPECT_FALSE(t.set_link_state(id, false));  // already down
  EXPECT_TRUE(t.set_link_state(id, true));
  EXPECT_TRUE(t.link_up(0, 1));
}

TEST(Topology, UpNeighborsSkipDownLinks) {
  Topology t{4};
  t.add_link(0, 1);
  const LinkId down = t.add_link(0, 2);
  t.add_link(0, 3);
  t.set_link_state(down, false);
  const auto up = t.up_neighbors(0);
  EXPECT_EQ(up, (std::vector<NodeId>{1, 3}));
}

TEST(Topology, LinksOf) {
  Topology t{3};
  const LinkId a = t.add_link(0, 1);
  const LinkId b = t.add_link(0, 2);
  const auto links = t.links_of(0);
  EXPECT_EQ(links, (std::vector<LinkId>{a, b}));
  EXPECT_EQ(t.links_of(1), (std::vector<LinkId>{a}));
}

TEST(Topology, BfsDistancesOnChain) {
  Topology t{4};
  t.add_link(0, 1);
  t.add_link(1, 2);
  t.add_link(2, 3);
  const auto d = t.bfs_distances(0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Topology, BfsRespectsDownLinks) {
  Topology t{3};
  t.add_link(0, 1);
  const LinkId cut = t.add_link(1, 2);
  t.set_link_state(cut, false);
  const auto d = t.bfs_distances(0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], std::numeric_limits<std::size_t>::max());
}

TEST(Topology, Connectivity) {
  Topology t{3};
  t.add_link(0, 1);
  EXPECT_FALSE(t.connected());
  const LinkId id = t.add_link(1, 2);
  EXPECT_TRUE(t.connected());
  t.set_link_state(id, false);
  EXPECT_FALSE(t.connected());
}

TEST(Topology, EmptyTopologyIsConnected) {
  Topology t;
  EXPECT_TRUE(t.connected());
}

TEST(Topology, SummaryMentionsCounts) {
  Topology t{3};
  t.add_link(0, 1);
  const LinkId id = t.add_link(1, 2);
  t.set_link_state(id, false);
  EXPECT_EQ(t.summary(), "n=3 links=2 (1 down)");
}

TEST(Topology, CustomLinkDelayStored) {
  Topology t{2};
  const LinkId id = t.add_link(0, 1, sim::SimTime::millis(10));
  EXPECT_EQ(t.link(id).delay, sim::SimTime::millis(10));
}

}  // namespace
}  // namespace bgpsim::net
