// End-to-end oracle tests: real experiment runs with the invariant oracle
// attached must come back clean AND non-vacuous, a planted always-fires
// invariant must be caught, and the DV baseline must satisfy the
// protocol-agnostic checks.
#include "check/oracle.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "check/invariants.hpp"
#include "core/dv_experiment.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace bgpsim::check {
namespace {

core::Scenario base_scenario(core::TopologyKind kind, std::size_t size,
                             core::EventKind event) {
  core::Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = 5;
  s.event = event;
  s.seed = 31;
  return s;
}

TEST(OracleEndToEnd, StandardInvariantsHoldAcrossEnhancements) {
  for (const bgp::Enhancement e : bgp::kAllEnhancements) {
    core::Scenario s =
        base_scenario(core::TopologyKind::kClique, 6, core::EventKind::kTdown);
    s.bgp = s.bgp.with(e);
    Oracle oracle = Oracle::standard();
    s.oracle = &oracle;
    (void)core::run_experiment(s);
    EXPECT_TRUE(oracle.ok()) << bgp::to_string(e) << "\n" << oracle.summary();
    EXPECT_GT(oracle.observations(), 0u) << bgp::to_string(e);
  }
}

TEST(OracleEndToEnd, StandardInvariantsHoldAcrossEvents) {
  for (const core::EventKind event :
       {core::EventKind::kTdown, core::EventKind::kTup,
        core::EventKind::kTlong, core::EventKind::kFlap}) {
    core::Scenario s =
        base_scenario(core::TopologyKind::kBClique, 4, event);
    Oracle oracle = Oracle::standard();
    s.oracle = &oracle;
    (void)core::run_experiment(s);
    EXPECT_TRUE(oracle.ok()) << to_string(event) << "\n" << oracle.summary();
    EXPECT_GT(oracle.observations(), 0u) << to_string(event);
  }
}

/// Fires on every installed route — a planted defect the oracle must catch
/// (the fuzzer's --canary mode uses the same trick).
class AlwaysFires final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "canary"; }
  void on_route_installed(net::NodeId node, net::Prefix,
                          const std::optional<bgp::AsPath>&,
                          sim::SimTime at) override {
    report(at, node, "canary");
  }
};

TEST(OracleEndToEnd, PlantedInvariantIsCaughtAndReported) {
  core::Scenario s =
      base_scenario(core::TopologyKind::kClique, 5, core::EventKind::kTdown);
  Oracle oracle;
  oracle.add(std::make_unique<AlwaysFires>());
  s.oracle = &oracle;
  (void)core::run_experiment(s);
  EXPECT_FALSE(oracle.ok());
  EXPECT_GT(oracle.violations_seen(), 0u);
  EXPECT_FALSE(oracle.violations().empty());
  EXPECT_NE(oracle.summary().find("canary"), std::string::npos);
  EXPECT_THROW(oracle.throw_if_violated(), std::runtime_error);
  // Stored details are capped; the total count is exact.
  EXPECT_LE(oracle.violations().size(), Oracle::kMaxStored);
  EXPECT_GE(oracle.violations_seen(), oracle.violations().size());
}

TEST(OracleEndToEnd, RearmingClearsPriorViolations) {
  core::Scenario s =
      base_scenario(core::TopologyKind::kClique, 4, core::EventKind::kTdown);
  Oracle oracle;
  oracle.add(std::make_unique<AlwaysFires>());
  s.oracle = &oracle;
  (void)core::run_experiment(s);
  ASSERT_FALSE(oracle.ok());

  // The driver re-arms at the start of the next run; the slate is clean.
  core::Scenario clean =
      base_scenario(core::TopologyKind::kClique, 4, core::EventKind::kTdown);
  Oracle standard = Oracle::standard();
  clean.oracle = &standard;
  (void)core::run_experiment(clean);
  EXPECT_TRUE(standard.ok());
}

/// Counts MRAI expiry callbacks — pins that the scheduler-level hook is
/// actually plumbed through the speaker into the oracle.
class MraiExpiryCounter final : public Invariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "mrai-counter";
  }
  void on_mrai_expired(net::NodeId, net::NodeId, net::Prefix, bool,
                       sim::SimTime) override {
    ++count;
  }
  std::uint64_t count = 0;
};

TEST(OracleEndToEnd, MraiExpiryHookReachesInvariants) {
  core::Scenario s =
      base_scenario(core::TopologyKind::kClique, 6, core::EventKind::kTdown);
  Oracle oracle;
  auto& counter =
      static_cast<MraiExpiryCounter&>(oracle.add(
          std::make_unique<MraiExpiryCounter>()));
  s.oracle = &oracle;
  (void)core::run_experiment(s);
  EXPECT_GT(counter.count, 0u);
}

TEST(OracleEndToEnd, DvBaselineSatisfiesReferenceInvariant) {
  // DV has no AS paths or MRAI timers, so only the protocol-agnostic
  // reference check applies (see DvScenario::oracle).
  for (const core::EventKind event :
       {core::EventKind::kTdown, core::EventKind::kTup}) {
    core::DvScenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = 5;
    s.topology.topo_seed = 5;
    s.event = event;
    s.seed = 31;
    Oracle oracle;
    oracle.add(std::make_unique<ConvergedReferenceInvariant>());
    s.oracle = &oracle;
    (void)core::run_dv_experiment(s);
    EXPECT_TRUE(oracle.ok()) << to_string(event) << "\n" << oracle.summary();
    EXPECT_GT(oracle.observations(), 0u) << to_string(event);
  }
}

TEST(OracleEndToEnd, DvBaselineRejectsFlap) {
  core::DvScenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 5;
  s.event = core::EventKind::kFlap;
  EXPECT_THROW((void)core::run_dv_experiment(s), std::invalid_argument);
}

}  // namespace
}  // namespace bgpsim::check
