// The offline reference must agree with hand-computed fixed points and
// flag every class of discrepancy the quiescence diff is meant to catch.
#include "check/reference.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "bgp/as_path.hpp"
#include "net/topology.hpp"
#include "topo/generators.hpp"

namespace bgpsim::check {
namespace {

net::Topology make_chain4() {
  net::Topology topo{4};
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  return topo;
}

TEST(ComputeReference, ChainDistancesAreHopCounts) {
  const net::Topology topo = make_chain4();
  const ReferenceRouting ref = compute_reference(topo, 0);
  ASSERT_EQ(ref.distance.size(), 4u);
  EXPECT_EQ(ref.distance[0], 0u);
  EXPECT_EQ(ref.distance[1], 1u);
  EXPECT_EQ(ref.distance[2], 2u);
  EXPECT_EQ(ref.distance[3], 3u);
  EXPECT_TRUE(ref.reachable(3));
  EXPECT_EQ(ref.expected_path_length(3), 4u);
}

TEST(ComputeReference, RespectsDownLinks) {
  net::Topology topo = make_chain4();
  const net::LinkId cut = *topo.link_between(1, 2);
  ASSERT_TRUE(topo.set_link_state(cut, false));
  const ReferenceRouting ref = compute_reference(topo, 0);
  EXPECT_TRUE(ref.reachable(1));
  EXPECT_FALSE(ref.reachable(2));
  EXPECT_FALSE(ref.reachable(3));
}

TEST(ForwardingCycles, AcyclicGraphHasNone) {
  // Everyone forwards down the chain toward 0; the origin has no hop.
  const auto next = [](net::NodeId n) -> std::optional<net::NodeId> {
    if (n == 0) return std::nullopt;
    return n - 1;
  };
  EXPECT_TRUE(forwarding_cycles(4, next).empty());
}

TEST(ForwardingCycles, FindsDisjointCycles) {
  // 0<->1 and 2->3->4->2; 5 dangles into the first cycle.
  const std::map<net::NodeId, net::NodeId> hops{
      {0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}, {5, 0}};
  const auto next = [&](net::NodeId n) -> std::optional<net::NodeId> {
    const auto it = hops.find(n);
    if (it == hops.end()) return std::nullopt;
    return it->second;
  };
  const auto cycles = forwarding_cycles(6, next);
  ASSERT_EQ(cycles.size(), 2u);
  std::size_t two = 0;
  std::size_t three = 0;
  for (const auto& cycle : cycles) {
    if (cycle.size() == 2) ++two;
    if (cycle.size() == 3) ++three;
  }
  EXPECT_EQ(two, 1u);
  EXPECT_EQ(three, 1u);
}

// ---- diff_against_reference ----------------------------------------------

/// A synthetic quiescent network: per-node Loc-RIB paths and FIB hops.
struct FakeNetwork {
  std::map<net::NodeId, bgp::AsPath> paths;
  std::map<net::NodeId, net::NodeId> hops;
  bool origin_up = true;

  [[nodiscard]] QuiescentView view() const {
    QuiescentView v;
    v.loc_path = [this](net::NodeId n) -> const bgp::AsPath* {
      const auto it = paths.find(n);
      return it == paths.end() ? nullptr : &it->second;
    };
    v.fib_next_hop = [this](net::NodeId n) -> std::optional<net::NodeId> {
      const auto it = hops.find(n);
      if (it == hops.end()) return std::nullopt;
      return it->second;
    };
    v.origin_up = origin_up;
    return v;
  }
};

/// The converged state of a 4-clique routing to destination 0.
FakeNetwork converged_clique4() {
  FakeNetwork net;
  net.paths[0] = bgp::AsPath{0};
  for (net::NodeId n = 1; n < 4; ++n) {
    net.paths[n] = bgp::AsPath{n, 0};
    net.hops[n] = 0;
  }
  return net;
}

class DiffReferenceTest : public ::testing::Test {
 protected:
  net::Topology topo_ = topo::make_clique(4);
  Context ctx_{&topo_, {}, 0, 0, false};
};

TEST_F(DiffReferenceTest, ConvergedCliqueIsClean) {
  const FakeNetwork net = converged_clique4();
  EXPECT_TRUE(
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero()).empty());
}

TEST_F(DiffReferenceTest, CatchesForwardingLoop) {
  FakeNetwork net = converged_clique4();
  net.hops[1] = 2;
  net.hops[2] = 1;  // 1 <-> 2
  const auto diffs =
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero());
  EXPECT_FALSE(diffs.empty());
}

TEST_F(DiffReferenceTest, CatchesNonShortestPath) {
  FakeNetwork net = converged_clique4();
  net.paths[3] = bgp::AsPath{3, 2, 0};  // length 3, shortest is 2
  net.hops[3] = 2;
  const auto diffs =
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero());
  EXPECT_FALSE(diffs.empty());
}

TEST_F(DiffReferenceTest, CatchesMissingRoute) {
  FakeNetwork net = converged_clique4();
  net.paths.erase(2);
  net.hops.erase(2);
  const auto diffs =
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero());
  EXPECT_FALSE(diffs.empty());
}

TEST_F(DiffReferenceTest, CatchesStaleRouteAfterTdown) {
  FakeNetwork net = converged_clique4();
  net.origin_up = false;  // destination withdrew; every route is stale
  const auto diffs =
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero());
  EXPECT_FALSE(diffs.empty());

  FakeNetwork empty;
  empty.origin_up = false;
  EXPECT_TRUE(
      diff_against_reference(ctx_, empty.view(), sim::SimTime::zero()).empty());
}

TEST_F(DiffReferenceTest, CatchesNonDecreasingNextHop) {
  FakeNetwork net = converged_clique4();
  // Path claims 3->0 but the FIB forwards to 2 (same distance as 3).
  net.hops[3] = 2;
  const auto diffs =
      diff_against_reference(ctx_, net.view(), sim::SimTime::zero());
  EXPECT_FALSE(diffs.empty());
}

TEST_F(DiffReferenceTest, PolicyRoutingChecksOnlyLoopFreedom) {
  Context policy_ctx = ctx_;
  policy_ctx.policy_routing = true;

  // A longer-than-shortest (valley-free-style) fixed point is acceptable...
  FakeNetwork longer = converged_clique4();
  longer.paths[3] = bgp::AsPath{3, 2, 0};
  longer.hops[3] = 2;
  EXPECT_TRUE(
      diff_against_reference(policy_ctx, longer.view(), sim::SimTime::zero())
          .empty());

  // ...but a forwarding loop never is.
  FakeNetwork looped = converged_clique4();
  looped.hops[1] = 2;
  looped.hops[2] = 1;
  EXPECT_FALSE(
      diff_against_reference(policy_ctx, looped.view(), sim::SimTime::zero())
          .empty());
}

TEST_F(DiffReferenceTest, EmptyLocPathSkipsPathChecksButKeepsFibChecks) {
  // A DV-style view: forwarding state only.
  FakeNetwork net = converged_clique4();
  net.paths.clear();
  QuiescentView v = net.view();
  v.loc_path = nullptr;
  EXPECT_TRUE(diff_against_reference(ctx_, v, sim::SimTime::zero()).empty());

  FakeNetwork looped = converged_clique4();
  looped.paths.clear();
  looped.hops[1] = 2;
  looped.hops[2] = 1;
  QuiescentView lv = looped.view();
  lv.loc_path = nullptr;
  EXPECT_FALSE(diff_against_reference(ctx_, lv, sim::SimTime::zero()).empty());
}

}  // namespace
}  // namespace bgpsim::check
