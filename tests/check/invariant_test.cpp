// Direct-dispatch unit tests: each invariant is fed hand-crafted callback
// sequences and must report exactly the states that contradict its claim.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/messages.hpp"
#include "net/topology.hpp"
#include "topo/generators.hpp"

namespace bgpsim::check {
namespace {

using sim::SimTime;

/// Harness: wires an invariant's report sink into a local vector and arms
/// it with a 4-clique context (destination 0, prefix 0).
template <typename Inv>
class Harness {
 public:
  Harness() { reset({}); }

  void reset(bgp::BgpConfig bgp) {
    violations_.clear();
    inv_.set_report_sink(
        [this](Violation v) { violations_.push_back(std::move(v)); });
    inv_.arm(Context{&topo_, bgp, 0, 0, false});
  }

  Inv& inv() { return inv_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  net::Topology topo_ = topo::make_clique(4);
  Inv inv_;
  std::vector<Violation> violations_;
};

// ---- PathSanityInvariant -------------------------------------------------

TEST(PathSanity, AcceptsProperPaths) {
  Harness<PathSanityInvariant> h;
  h.inv().on_route_installed(2, 0, bgp::AsPath{2, 1, 0}, SimTime::seconds(1));
  h.inv().on_route_installed(2, 0, std::nullopt, SimTime::seconds(2));
  h.inv().on_route_installed(0, 0, bgp::AsPath{0}, SimTime::seconds(3));
  EXPECT_TRUE(h.violations().empty());
}

TEST(PathSanity, RejectsRepeatedAs) {
  Harness<PathSanityInvariant> h;
  h.inv().on_route_installed(2, 0, bgp::AsPath{2, 1, 2, 0},
                             SimTime::seconds(1));
  ASSERT_EQ(h.violations().size(), 1u);
  EXPECT_NE(h.violations()[0].detail.find("poison-reverse"),
            std::string::npos);
}

TEST(PathSanity, RejectsPathNotStartingAtAdopter) {
  Harness<PathSanityInvariant> h;
  h.inv().on_route_installed(2, 0, bgp::AsPath{1, 0}, SimTime::seconds(1));
  EXPECT_EQ(h.violations().size(), 1u);
}

TEST(PathSanity, RejectsWrongOrigin) {
  Harness<PathSanityInvariant> h;
  h.inv().on_route_installed(2, 0, bgp::AsPath{2, 3, 1},
                             SimTime::seconds(1));
  EXPECT_EQ(h.violations().size(), 1u);
}

TEST(PathSanity, RejectsEmptyPath) {
  Harness<PathSanityInvariant> h;
  h.inv().on_route_installed(2, 0, bgp::AsPath{}, SimTime::seconds(1));
  EXPECT_EQ(h.violations().size(), 1u);
}

TEST(PathSanity, RejectsNonEdgeHop) {
  // Chain 0-1-2-3: the hop 3—1 does not exist.
  net::Topology topo{4};
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  PathSanityInvariant inv;
  std::vector<Violation> violations;
  inv.set_report_sink([&](Violation v) { violations.push_back(std::move(v)); });
  inv.arm(Context{&topo, {}, 0, 0, false});
  inv.on_route_installed(3, 0, bgp::AsPath{3, 1, 0}, SimTime::seconds(1));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("non-edge"), std::string::npos);
}

// ---- RibFibConsistencyInvariant ------------------------------------------

TEST(RibFib, ConsistentSequenceIsClean) {
  Harness<RibFibConsistencyInvariant> h;
  h.inv().on_fib_changed(1, 0, std::nullopt, 0, SimTime::seconds(1));
  h.inv().on_route_installed(1, 0, bgp::AsPath{1, 0}, SimTime::seconds(1));
  h.inv().on_fib_changed(1, 0, 0, std::nullopt, SimTime::seconds(2));
  h.inv().on_route_installed(1, 0, std::nullopt, SimTime::seconds(2));
  // The origin selects its own one-hop path with no FIB route at all.
  h.inv().on_route_installed(0, 0, bgp::AsPath{0}, SimTime::seconds(3));
  EXPECT_TRUE(h.violations().empty());
}

TEST(RibFib, CatchesFibLaggingTheRib) {
  Harness<RibFibConsistencyInvariant> h;
  h.inv().on_fib_changed(1, 0, std::nullopt, 3, SimTime::seconds(1));
  // Loc-RIB says the next hop is 2, but the FIB still forwards to 3.
  h.inv().on_route_installed(1, 0, bgp::AsPath{1, 2, 0}, SimTime::seconds(1));
  EXPECT_EQ(h.violations().size(), 1u);
}

TEST(RibFib, CatchesRouteWithoutFibEntry) {
  Harness<RibFibConsistencyInvariant> h;
  h.inv().on_route_installed(1, 0, bgp::AsPath{1, 0}, SimTime::seconds(1));
  EXPECT_EQ(h.violations().size(), 1u);
}

TEST(RibFib, CatchesInconsistentPreviousHop) {
  Harness<RibFibConsistencyInvariant> h;
  h.inv().on_fib_changed(1, 0, std::nullopt, 0, SimTime::seconds(1));
  // The FIB claims the previous hop was 2; observed history says 0.
  h.inv().on_fib_changed(1, 0, 2, 3, SimTime::seconds(2));
  EXPECT_EQ(h.violations().size(), 1u);
}

// ---- MraiLegalityInvariant -----------------------------------------------

class MraiLegalityTest : public ::testing::Test {
 protected:
  MraiLegalityTest() {
    bgp::BgpConfig bgp;
    bgp.mrai = SimTime::seconds(30);
    bgp.jitter_lo = 1.0;  // min legal gap: exactly 30 s
    bgp.jitter_hi = 1.0;
    h_.reset(bgp);
  }

  void announce(SimTime at) {
    h_.inv().on_update_sent(1, 2, bgp::UpdateMsg::announce(0, path_), at);
  }
  void withdraw(SimTime at) {
    h_.inv().on_update_sent(1, 2, bgp::UpdateMsg::withdraw(0), at);
  }

  Harness<MraiLegalityInvariant> h_;
  bgp::AsPath path_{1, 0};
};

TEST_F(MraiLegalityTest, SpacedAnnouncementsAreLegal) {
  announce(SimTime::seconds(1));
  announce(SimTime::seconds(32));
  EXPECT_TRUE(h_.violations().empty());
}

TEST_F(MraiLegalityTest, BackToBackAnnouncementsViolate) {
  announce(SimTime::seconds(1));
  announce(SimTime::seconds(10));
  EXPECT_EQ(h_.violations().size(), 1u);
}

TEST_F(MraiLegalityTest, WithdrawalsAreExemptWithoutWrate) {
  announce(SimTime::seconds(1));
  withdraw(SimTime::seconds(2));
  withdraw(SimTime::seconds(3));
  EXPECT_TRUE(h_.violations().empty());
}

TEST_F(MraiLegalityTest, WrateRateLimitsWithdrawalsToo) {
  bgp::BgpConfig bgp;
  bgp.mrai = SimTime::seconds(30);
  bgp.jitter_lo = 1.0;
  bgp.jitter_hi = 1.0;
  bgp.wrate = true;
  h_.reset(bgp);
  announce(SimTime::seconds(1));
  withdraw(SimTime::seconds(2));
  EXPECT_EQ(h_.violations().size(), 1u);
}

TEST_F(MraiLegalityTest, SessionResetRestartsTheClock) {
  announce(SimTime::seconds(1));
  h_.inv().on_session_changed(1, 2, false, SimTime::seconds(2));
  h_.inv().on_session_changed(1, 2, true, SimTime::seconds(3));
  announce(SimTime::seconds(4));  // fresh table exchange: legal
  EXPECT_TRUE(h_.violations().empty());
}

TEST_F(MraiLegalityTest, DistinctPeersHaveIndependentClocks) {
  announce(SimTime::seconds(1));
  h_.inv().on_update_sent(1, 3, bgp::UpdateMsg::announce(0, path_),
                          SimTime::seconds(2));
  EXPECT_TRUE(h_.violations().empty());
}

// ---- LoopDurationBoundInvariant ------------------------------------------

class LoopBoundInvariantTest : public ::testing::Test {
 protected:
  LoopBoundInvariantTest() {
    bgp::BgpConfig bgp;
    bgp.mrai = SimTime::seconds(30);
    bgp.jitter_lo = 1.0;
    bgp.jitter_hi = 1.0;
    h_.reset(bgp);
    // Two-node loop at t=10: bound is (2-1)×30 + 2×3 + 2 = 38 s.
    h_.inv().on_fib_changed(1, 0, std::nullopt, 2, SimTime::seconds(10));
    h_.inv().on_fib_changed(2, 0, std::nullopt, 1, SimTime::seconds(10));
  }

  Harness<LoopDurationBoundInvariant> h_;
};

TEST_F(LoopBoundInvariantTest, LoopWithinBoundIsClean) {
  h_.inv().on_fib_changed(1, 0, 2, 0, SimTime::seconds(20));  // resolved
  h_.inv().at_quiescence(QuiescentView{}, SimTime::seconds(500));
  EXPECT_TRUE(h_.violations().empty());
}

TEST_F(LoopBoundInvariantTest, OverlongLoopViolatesOnResolution) {
  h_.inv().on_fib_changed(1, 0, 2, 0, SimTime::seconds(200));
  ASSERT_EQ(h_.violations().size(), 1u);
  EXPECT_NE(h_.violations()[0].detail.find("MRAI bound"), std::string::npos);
}

TEST_F(LoopBoundInvariantTest, UnresolvedOverlongLoopCaughtAtQuiescence) {
  h_.inv().at_quiescence(QuiescentView{}, SimTime::seconds(200));
  EXPECT_EQ(h_.violations().size(), 1u);
}

}  // namespace
}  // namespace bgpsim::check
