// Direct-dispatch unit tests for the policy-era invariants: valley-free
// path checking and persistent-oscillation detection.
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "bgp/as_path.hpp"
#include "check/invariants.hpp"
#include "net/relationships.hpp"
#include "net/topology.hpp"

namespace bgpsim::check {
namespace {

using sim::SimTime;

constexpr net::Prefix kP = 0;

/// Three ASes: 0 and 1 both provide for 2 (links 0-2, 1-2). The path
/// 0 -> 2 -> 1 descends to the customer and climbs back out — the
/// canonical valley.
class ValleyFixture : public ::testing::Test {
 protected:
  ValleyFixture() {
    topo_.add_nodes(3);
    topo_.add_link(0, 2);
    topo_.add_link(1, 2);
    rel_.set_provider_customer(0, 2);
    rel_.set_provider_customer(1, 2);
  }

  Context ctx() {
    return Context{&topo_, bgp::BgpConfig{}, kP, 2, true, &rel_};
  }

  std::vector<Violation> violations_;
  net::Topology topo_;
  net::RelationshipTable rel_;

  template <typename Inv>
  void wire(Inv& inv, const Context& context) {
    inv.set_report_sink(
        [this](Violation v) { violations_.push_back(std::move(v)); });
    inv.arm(context);
  }
};

TEST_F(ValleyFixture, ValleyFreePathsAreClean) {
  ValleyFreeInvariant inv;
  wire(inv, ctx());
  inv.on_route_installed(0, kP, bgp::AsPath{0, 2}, SimTime::seconds(1));
  inv.on_route_installed(1, kP, bgp::AsPath{1, 2}, SimTime::seconds(1));
  inv.on_route_installed(0, kP, std::nullopt, SimTime::seconds(2));
  EXPECT_TRUE(violations_.empty());
}

TEST_F(ValleyFixture, ValleyPathIsReported) {
  ValleyFreeInvariant inv;
  wire(inv, ctx());
  inv.on_route_installed(0, kP, bgp::AsPath{0, 2, 1}, SimTime::seconds(1));
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].node, 0u);
  EXPECT_NE(violations_[0].detail.find("valley"), std::string::npos);
}

TEST_F(ValleyFixture, OtherPrefixesAreIgnored) {
  ValleyFreeInvariant inv;
  wire(inv, ctx());
  inv.on_route_installed(0, kP + 1, bgp::AsPath{0, 2, 1},
                         SimTime::seconds(1));
  EXPECT_TRUE(violations_.empty());
}

TEST_F(ValleyFixture, NoRelationshipTableMeansNoOp) {
  ValleyFreeInvariant inv;
  Context context = ctx();
  context.relationships = nullptr;
  wire(inv, context);
  inv.on_route_installed(0, kP, bgp::AsPath{0, 2, 1}, SimTime::seconds(1));
  EXPECT_TRUE(violations_.empty());
}

TEST_F(ValleyFixture, QuiescentSweepCatchesRestoredValley) {
  // A warm start restores Loc-RIBs without replaying installs; the
  // at_quiescence sweep must still see the valley.
  ValleyFreeInvariant inv;
  wire(inv, ctx());
  const bgp::AsPath valley{0, 2, 1};
  QuiescentView view;
  view.loc_path = [&](net::NodeId n) -> const bgp::AsPath* {
    return n == 0 ? &valley : nullptr;
  };
  inv.at_quiescence(view, SimTime::seconds(5));
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].node, 0u);
}

TEST_F(ValleyFixture, OscillationReportsOncePastBudget) {
  OscillationInvariant inv;
  wire(inv, ctx());
  inv.set_flip_budget(3);
  for (int i = 0; i < 6; ++i) {
    inv.on_route_installed(1, kP, bgp::AsPath{1, 2},
                           SimTime::seconds(1 + i));
  }
  // Flips 4, 5, and 6 all exceed the budget; only the first reports.
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].node, 1u);
  EXPECT_NE(violations_[0].detail.find("oscillation"), std::string::npos);
}

TEST_F(ValleyFixture, OscillationBudgetIsPerNode) {
  OscillationInvariant inv;
  wire(inv, ctx());
  inv.set_flip_budget(3);
  for (int i = 0; i < 3; ++i) {
    inv.on_route_installed(0, kP, bgp::AsPath{0, 2}, SimTime::seconds(i));
    inv.on_route_installed(1, kP, bgp::AsPath{1, 2}, SimTime::seconds(i));
    // Other prefixes are outside the armed run and never counted.
    inv.on_route_installed(0, kP + 1, bgp::AsPath{0, 2},
                           SimTime::seconds(i));
  }
  // Three flips each: nobody exceeded the budget of 3.
  EXPECT_TRUE(violations_.empty());
}

TEST_F(ValleyFixture, QuiescenceResetsTheFlipBudget) {
  OscillationInvariant inv;
  wire(inv, ctx());
  inv.set_flip_budget(2);
  for (int i = 0; i < 2; ++i) {
    inv.on_route_installed(0, kP, bgp::AsPath{0, 2}, SimTime::seconds(i));
  }
  inv.at_quiescence(QuiescentView{}, SimTime::seconds(10));
  // The event's own exploration gets a fresh window...
  for (int i = 0; i < 2; ++i) {
    inv.on_route_installed(0, kP, bgp::AsPath{0, 2},
                           SimTime::seconds(20 + i));
  }
  EXPECT_TRUE(violations_.empty());
  // ...and still reports when that window is blown too.
  inv.on_route_installed(0, kP, bgp::AsPath{0, 2}, SimTime::seconds(30));
  EXPECT_EQ(violations_.size(), 1u);
}

}  // namespace
}  // namespace bgpsim::check
