// svcd::Journal: round-trip replay, the torn-tail discipline (prefix
// tears recoverable only on opt-in, complete-but-wrong records never),
// and the hostile-journal battery — every corruption is a precise
// FormatError, never a partial resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "snap/codec.hpp"
#include "svc/protocol.hpp"
#include "svcd/journal.hpp"

namespace bgpsim::svcd {
namespace {

core::Scenario clique(std::size_t size) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = size;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

svc::CampaignSpec tiny_spec() {
  svc::CampaignSpec spec;
  spec.scenarios = {clique(4)};
  spec.run.trials = 2;
  spec.unit_trials = 1;
  return spec;
}

/// A real unit result for `unit_id` = trial index of the tiny spec.
svc::UnitResult real_result(const svc::CampaignSpec& spec,
                            std::uint64_t unit_id) {
  svc::UnitResult r;
  r.unit_id = unit_id;
  r.scenario_index = 0;
  r.trial_begin = unit_id;
  r.outcomes.push_back(core::run_single_trial(
      spec.scenarios[0], static_cast<std::size_t>(unit_id)));
  return r;
}

class SvcdJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "svcd_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jnl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::uint8_t> slurp() {
    std::ifstream in{path_, std::ios::binary};
    return {std::istreambuf_iterator<char>{in},
            std::istreambuf_iterator<char>{}};
  }

  void dump(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// Write header + campaign header + one completion, return the spec.
  svc::CampaignSpec write_partial_campaign() {
    const svc::CampaignSpec spec = tiny_spec();
    Journal j = Journal::create(path_);
    j.campaign_header(1, spec, 3);
    j.unit_dispatched(1, 0, 7);
    j.unit_dispatched(1, 1, 8);
    j.unit_completed(1, real_result(spec, 0));
    j.close();
    return spec;
  }

  std::string path_;
};

TEST_F(SvcdJournalTest, RoundTripRestoresCampaignState) {
  const svc::CampaignSpec spec = write_partial_campaign();
  const JournalReplay replay = replay_journal(path_);
  ASSERT_EQ(replay.campaigns.size(), 1u);
  const JournalCampaign& c = replay.campaigns[0];
  EXPECT_EQ(c.campaign_id, 1u);
  EXPECT_EQ(c.max_attempts, 3u);
  ASSERT_EQ(c.spec.scenarios.size(), spec.scenarios.size());
  EXPECT_EQ(c.spec.scenarios[0].topology.size, 4u);
  EXPECT_EQ(c.spec.run.trials, 2u);
  ASSERT_EQ(c.completed.size(), 1u);
  EXPECT_EQ(c.completed[0].unit_id, 0u);
  ASSERT_EQ(c.completed[0].outcomes.size(), 1u);
  // Unit 1 was dispatched but never completed: in flight at the crash.
  EXPECT_EQ(c.inflight_at_crash, (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(c.sealed);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, slurp().size());
}

TEST_F(SvcdJournalTest, SealedCampaignReplaysToItsDigest) {
  const svc::CampaignSpec spec = tiny_spec();
  {
    Journal j = Journal::create(path_);
    j.campaign_header(1, spec, 3);
    j.unit_completed(1, real_result(spec, 0));
    j.unit_completed(1, real_result(spec, 1));
    j.campaign_sealed(1, 0xdeadbeefULL, 2);
  }
  const JournalReplay replay = replay_journal(path_);
  ASSERT_EQ(replay.campaigns.size(), 1u);
  EXPECT_TRUE(replay.campaigns[0].sealed);
  EXPECT_EQ(replay.campaigns[0].sealed_digest, 0xdeadbeefULL);
  EXPECT_TRUE(replay.campaigns[0].inflight_at_crash.empty());
}

TEST_F(SvcdJournalTest, AppendToContinuesAValidJournal) {
  const svc::CampaignSpec spec = write_partial_campaign();
  const JournalReplay first = replay_journal(path_);
  {
    Journal j = Journal::append_to(path_, first.valid_bytes);
    j.unit_completed(1, real_result(spec, 1));
  }
  const JournalReplay second = replay_journal(path_);
  ASSERT_EQ(second.campaigns.size(), 1u);
  EXPECT_EQ(second.campaigns[0].completed.size(), 2u);
  EXPECT_TRUE(second.campaigns[0].inflight_at_crash.empty());
}

// ---- torn tail ----------------------------------------------------------

TEST_F(SvcdJournalTest, TornTailIsRejectedByDefault) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  const std::size_t whole = bytes.size();
  // Tear mid-record: drop the last 5 bytes (inside the final trailer).
  bytes.resize(whole - 5);
  dump(bytes);
  try {
    (void)replay_journal(path_);
    FAIL() << "torn tail must throw under kReject";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST_F(SvcdJournalTest, TornTailIsDiscardedOnOptIn) {
  const svc::CampaignSpec spec = write_partial_campaign();
  (void)spec;
  std::vector<std::uint8_t> bytes = slurp();
  const JournalReplay whole = replay_journal(path_);
  ASSERT_EQ(whole.campaigns[0].completed.size(), 1u);
  bytes.resize(bytes.size() - 5);
  dump(bytes);
  const JournalReplay replay = replay_journal(path_, TornTail::kRecover);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.campaigns.size(), 1u);
  // The torn record was the completion: the unit reverts to in-flight.
  EXPECT_TRUE(replay.campaigns[0].completed.empty());
  EXPECT_EQ(replay.campaigns[0].inflight_at_crash.size(), 2u);
  EXPECT_LT(replay.valid_bytes, bytes.size());
  // append_to() physically truncates the torn bytes.
  { Journal j = Journal::append_to(path_, replay.valid_bytes); }
  EXPECT_EQ(slurp().size(), replay.valid_bytes);
  EXPECT_FALSE(replay_journal(path_).torn_tail);
}

TEST_F(SvcdJournalTest, HeaderTearIsNeverRecoverable) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  bytes.resize(10);  // inside the 24-byte file header
  dump(bytes);
  for (const TornTail policy : {TornTail::kReject, TornTail::kRecover}) {
    try {
      (void)replay_journal(path_, policy);
      FAIL() << "header tear must throw";
    } catch (const snap::FormatError& e) {
      EXPECT_NE(std::string{e.what()}.find("truncated in header"),
                std::string::npos)
          << e.what();
    }
  }
}

// ---- hostile battery: complete-but-wrong is always corruption ----------

TEST_F(SvcdJournalTest, BadMagicIsRejected) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  bytes[0] ^= 0xFF;
  dump(bytes);
  try {
    (void)replay_journal(path_, TornTail::kRecover);
    FAIL() << "bad magic must throw";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("bad magic"), std::string::npos);
  }
}

TEST_F(SvcdJournalTest, StaleJournalFormatVersionIsRejected) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  bytes[8] = 99;  // u32 journal format version, little-endian low byte
  dump(bytes);
  try {
    (void)replay_journal(path_, TornTail::kRecover);
    FAIL() << "stale format version must throw";
  } catch (const snap::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported journal format version 99"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("this build writes 1"), std::string::npos) << what;
  }
}

TEST_F(SvcdJournalTest, CrossProtocolVersionJournalIsRejected) {
  // A journal written by a hypothetical future-protocol build must be
  // refused with the shared check_protocol_version message, not
  // half-parsed.
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  const std::uint8_t future = svc::kProtocolVersion + 1;
  bytes[12] = future;  // u32 svc protocol version field
  dump(bytes);
  try {
    (void)replay_journal(path_, TornTail::kRecover);
    FAIL() << "cross-version journal must throw";
  } catch (const snap::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported svc protocol version " +
                        std::to_string(future)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("journal header"), std::string::npos) << what;
  }
}

TEST_F(SvcdJournalTest, CorruptTrailerIsRejectedUnderBothPolicies) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  // Flip a payload byte of the final record: its trailer no longer
  // matches, and the record is complete, so this is corruption — not a
  // recoverable tear — under either policy.
  bytes[bytes.size() - 12] ^= 0xFF;
  dump(bytes);
  for (const TornTail policy : {TornTail::kReject, TornTail::kRecover}) {
    try {
      (void)replay_journal(path_, policy);
      FAIL() << "corrupt trailer must throw";
    } catch (const snap::FormatError& e) {
      EXPECT_NE(std::string{e.what()}.find("integrity trailer mismatch"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST_F(SvcdJournalTest, UnknownRecordTypeIsRejected) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  // Append a well-formed record (valid length + trailer) of unknown type.
  std::vector<std::uint8_t> rec;
  rec.push_back(9);  // no such RecordType
  for (int i = 0; i < 8; ++i) rec.push_back(0);  // payload length 0
  const std::uint64_t h = snap::fnv1a({rec.data(), rec.size()});
  for (int i = 0; i < 8; ++i) {
    rec.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
  }
  bytes.insert(bytes.end(), rec.begin(), rec.end());
  dump(bytes);
  for (const TornTail policy : {TornTail::kReject, TornTail::kRecover}) {
    try {
      (void)replay_journal(path_, policy);
      FAIL() << "unknown record type must throw";
    } catch (const snap::FormatError& e) {
      EXPECT_NE(std::string{e.what()}.find("record"), std::string::npos);
    }
  }
}

TEST_F(SvcdJournalTest, AbsurdRecordLengthIsRejected) {
  write_partial_campaign();
  std::vector<std::uint8_t> bytes = slurp();
  // A record claiming a payload far past kMaxPayload: corruption even
  // though the file ends right after (it can't be a mere tear).
  std::vector<std::uint8_t> rec;
  rec.push_back(static_cast<std::uint8_t>(RecordType::kUnitDispatched));
  const std::uint64_t absurd = svc::kMaxPayload + 1;
  for (int i = 0; i < 8; ++i) {
    rec.push_back(static_cast<std::uint8_t>(absurd >> (8 * i)));
  }
  bytes.insert(bytes.end(), rec.begin(), rec.end());
  dump(bytes);
  for (const TornTail policy : {TornTail::kReject, TornTail::kRecover}) {
    EXPECT_THROW((void)replay_journal(path_, policy), snap::FormatError);
  }
}

TEST_F(SvcdJournalTest, RecordForUnknownCampaignIsRejected) {
  const svc::CampaignSpec spec = tiny_spec();
  {
    Journal j = Journal::create(path_);
    j.campaign_header(1, spec, 3);
    j.unit_dispatched(7, 0, 1);  // campaign 7 has no header
  }
  EXPECT_THROW((void)replay_journal(path_, TornTail::kRecover),
               snap::FormatError);
}

}  // namespace
}  // namespace bgpsim::svcd
