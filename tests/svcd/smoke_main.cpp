// svcd_smoke: end-to-end drill of the real binaries, registered as one
// CTest entry (label svcd).
//
//   usage: svcd_smoke <path-to-bgpsimd> <path-to-run_campaign>
//
// Phase 1 — the daemon: start bgpsimd with a journal, an admin socket,
// two fork workers, and a streaming results file; SUBMIT a campaign over
// the admin socket; once the first streamed unit line lands, SIGKILL one
// worker (churn mid-run); wait for the daemon's clean exit-when-idle;
// then check every streamed line is a bgpsim-bench-1 JSON object and the
// sealed campaign digest equals the in-process serial digest.
//
// Phase 2 — the failure contract: run_campaign with a lease far shorter
// than the unit runtime must exit non-zero after the 3-attempt cap, with
// a per-unit "failed after 3 attempt(s)" line on stderr.
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/scenario_file.hpp"
#include "core/sweep.hpp"
#include "svc/coordinator.hpp"

namespace {

int g_failures = 0;

#define SMOKE_CHECK(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "svcd_smoke: FAIL %s (%s:%d)\n", (msg),  \
                   __FILE__, __LINE__);                             \
      ++g_failures;                                                 \
    }                                                               \
  } while (0)

constexpr const char* kScenarioText =
    "topology = clique\nsize = 9\nevent = tdown\nseed = 11\n";
constexpr std::size_t kTrials = 6;

std::string admin_roundtrip(const std::string& sock_path,
                            const std::string& command) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return {};
  }
  const std::string line = command + "\n";
  if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(line.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    const std::size_t last_nl = response.rfind('\n');
    if (last_nl == std::string::npos || last_nl == 0) continue;
    const std::size_t prev_nl = response.rfind('\n', last_nl - 1);
    const std::size_t begin = prev_nl == std::string::npos ? 0 : prev_nl + 1;
    const std::string last = response.substr(begin, last_nl - begin);
    if (last.rfind("OK", 0) == 0 || last.rfind("ERR", 0) == 0) break;
  }
  ::close(fd);
  return response;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

/// Wait for `pid` to exit, up to ~deadline_s; returns exit status or -1.
int wait_with_timeout(pid_t pid, int deadline_s) {
  for (int i = 0; i < deadline_s * 100; ++i) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    ::usleep(10'000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  return -1;
}

std::uint64_t serial_digest() {
  bgpsim::core::Scenario s =
      bgpsim::core::parse_scenario_string(kScenarioText);
  bgpsim::core::RunOptions run;
  run.trials = kTrials;
  std::vector<bgpsim::core::TrialSet> sets;
  sets.push_back(bgpsim::core::run_trials(s, run));
  return bgpsim::svc::campaign_digest(sets);
}

void phase1_daemon(const std::string& bgpsimd, const std::string& dir) {
  const std::string sock = dir + "/admin.sock";
  const std::string journal = dir + "/campaign.jnl";
  const std::string results = dir + "/results.jsonl";

  const pid_t daemon = ::fork();
  if (daemon == 0) {
    ::execl(bgpsimd.c_str(), bgpsimd.c_str(), "--journal", journal.c_str(),
            "--admin", sock.c_str(), "--workers", "2", "--results",
            results.c_str(), "--exit-when-idle", (char*)nullptr);
    std::perror("svcd_smoke: execl bgpsimd");
    ::_exit(127);
  }
  SMOKE_CHECK(daemon > 0, "fork for bgpsimd");

  // Wait for the admin socket to answer.
  std::string status;
  for (int i = 0; i < 500 && status.empty(); ++i) {
    ::usleep(10'000);
    status = admin_roundtrip(sock, "STATUS");
  }
  SMOKE_CHECK(!status.empty(), "daemon admin socket never came up");
  SMOKE_CHECK(status.find("workers 2") != std::string::npos,
              "STATUS reports both fork workers");

  // Submit over the admin socket, exactly as campaign_ctl would.
  const std::string submit = admin_roundtrip(
      sock,
      "SUBMIT trials=6; topology=clique; size=9; event=tdown; seed=11");
  SMOKE_CHECK(submit.find("OK id=1") != std::string::npos,
              "SUBMIT acknowledged with a campaign id");

  // Kill one worker as soon as the first streamed unit line lands.
  pid_t victim = -1;
  for (int i = 0; i < 1000 && victim < 0; ++i) {
    if (slurp(results).find("svcd_unit") == std::string::npos) {
      ::usleep(5'000);
      continue;
    }
    const std::string st = admin_roundtrip(sock, "STATUS");
    const std::size_t at = st.find(" pid=");
    if (at == std::string::npos) break;  // workers may already be gone
    victim = static_cast<pid_t>(std::atoi(st.c_str() + at + 5));
  }
  if (victim > 0) {
    ::kill(victim, SIGKILL);
  } else {
    // Campaign finished before a unit line was observed — digest check
    // below still validates the pipeline end to end.
    std::fprintf(stderr, "svcd_smoke: note: no worker killed (fast run)\n");
  }

  const int status_code = wait_with_timeout(daemon, 120);
  SMOKE_CHECK(status_code >= 0, "daemon exited before the timeout");
  SMOKE_CHECK(WIFEXITED(status_code) && WEXITSTATUS(status_code) == 0,
              "daemon exit-when-idle was clean");

  // Every streamed line parses as a bgpsim-bench-1 object; the campaign
  // line carries the serial digest.
  const std::string stream = slurp(results);
  std::size_t lines = 0;
  bool saw_campaign = false;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    std::size_t nl = stream.find('\n', pos);
    if (nl == std::string::npos) nl = stream.size();
    const std::string line = stream.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++lines;
    SMOKE_CHECK(line.rfind("{\"schema\": \"bgpsim-bench-1\"", 0) == 0,
                "streamed line is a bgpsim-bench-1 object");
    SMOKE_CHECK(line.back() == '}', "streamed line is a complete object");
    if (line.find("\"svcd_campaign\"") != std::string::npos) {
      saw_campaign = true;
      char expected_hex[32];
      std::snprintf(expected_hex, sizeof expected_hex, "%016llx",
                    static_cast<unsigned long long>(serial_digest()));
      SMOKE_CHECK(line.find(expected_hex) != std::string::npos,
                  "sealed campaign digest equals the serial digest");
    }
  }
  SMOKE_CHECK(lines == kTrials + 1,
              "one line per completed unit plus the campaign seal");
  SMOKE_CHECK(saw_campaign, "campaign seal line was streamed");
}

void phase2_failure_exit(const std::string& run_campaign,
                         const std::string& dir) {
  const std::string errfile = dir + "/failure.stderr";
  const pid_t child = ::fork();
  if (child == 0) {
    const int err = ::open(errfile.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                           0644);
    if (err >= 0) ::dup2(err, 2);
    ::execl(run_campaign.c_str(), run_campaign.c_str(), "--topo", "clique",
            "--size", "12", "--trials", "2", "--unit-trials", "2",
            "--workers", "3", "--fork", "--deadline-s", "0.02",
            (char*)nullptr);
    ::_exit(127);
  }
  SMOKE_CHECK(child > 0, "fork for run_campaign");
  const int status = wait_with_timeout(child, 120);
  SMOKE_CHECK(status >= 0, "run_campaign exited before the timeout");
  SMOKE_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 1,
              "permanent unit failure exits 1");
  const std::string err = slurp(errfile);
  SMOKE_CHECK(err.find("failed permanently") != std::string::npos,
              "stderr carries the failure headline");
  SMOKE_CHECK(err.find("failed after 3 attempt(s)") != std::string::npos,
              "stderr carries the per-unit attempt summary");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: svcd_smoke <bgpsimd-binary> <run_campaign-binary>\n");
    return 2;
  }
  char dir_template[] = "/tmp/svcd_smoke_XXXXXX";
  const char* dir_c = ::mkdtemp(dir_template);
  if (dir_c == nullptr) {
    std::perror("svcd_smoke: mkdtemp");
    return 2;
  }
  const std::string dir = dir_c;

  phase1_daemon(argv[1], dir);
  phase2_failure_exit(argv[2], dir);

  if (g_failures == 0) {
    std::printf("svcd_smoke: PASS\n");
  } else {
    std::printf("svcd_smoke: %d check(s) FAILED\n", g_failures);
  }
  return g_failures == 0 ? 0 : 1;
}
