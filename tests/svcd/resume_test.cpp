// Crash-resume determinism: a journaled campaign SIGKILLed at arbitrary
// points — daemon and workers alike, torn journal tail included — must
// resume to a digest bit-identical to the uninterrupted serial run, with
// completed units restored from the journal rather than re-run.
//
// The kill points are seed-derived (a small LCG over the iteration
// index), so the schedule is deterministic per build yet samples several
// distinct crash phases: before any unit completes, mid-campaign, and
// (when the delay overshoots the runtime) after the seal.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "svc/coordinator.hpp"
#include "svc/units.hpp"
#include "svcd/daemon.hpp"
#include "svcd/journal.hpp"

namespace bgpsim::svcd {
namespace {

core::Scenario clique(std::size_t size) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = size;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

svc::CampaignSpec resume_sweep() {
  svc::CampaignSpec spec;
  spec.scenarios = {clique(8), clique(9)};
  spec.run.trials = 3;
  spec.unit_trials = 1;  // 6 units: plenty of distinct crash points
  return spec;
}

std::uint64_t serial_digest(const svc::CampaignSpec& spec) {
  std::vector<core::TrialSet> sets;
  for (const core::Scenario& s : spec.scenarios) {
    sets.push_back(core::run_trials(s, spec.run));
  }
  return svc::campaign_digest(sets);
}

TEST(SvcdResumeTest, SigkillAtSeededPointsResumesToSerialDigest) {
  const svc::CampaignSpec spec = resume_sweep();
  const std::uint64_t expected = serial_digest(spec);

  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;  // kill-schedule seed
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string journal = ::testing::TempDir() + "svcd_resume_round" +
                                std::to_string(round) + ".jnl";
    std::remove(journal.c_str());

    // The victim runs the journaled campaign; we SIGKILL it after a
    // seed-derived delay. No graceful anything — exactly the crash the
    // journal exists for.
    const pid_t victim = ::fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
      JournaledRunOptions opts;
      opts.workers = 2;
      try {
        (void)run_journaled_campaign(spec, journal, opts);
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t delay_ms = 25 + (lcg >> 33) % 250;
    ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
    ::kill(victim, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);

    // Resume from whatever the crash left behind (torn tail included).
    JournaledRunOptions opts;
    opts.workers = 2;
    const svc::CampaignResult result = resume_journaled_campaign(journal, opts);
    EXPECT_EQ(result.digest, expected);

    // After the resume, the journal is sealed with exactly one completion
    // record per unit: restored units were not re-run and re-run units
    // were not double-counted.
    const JournalReplay replay = replay_journal(journal);
    ASSERT_EQ(replay.campaigns.size(), 1u);
    EXPECT_TRUE(replay.campaigns[0].sealed);
    EXPECT_EQ(replay.campaigns[0].sealed_digest, expected);
    EXPECT_EQ(replay.campaigns[0].completed.size(), 6u);
    // Resuming a now-sealed journal short-circuits: nothing dispatched.
    const svc::CampaignResult again = resume_journaled_campaign(journal, {});
    EXPECT_EQ(again.digest, expected);
    EXPECT_EQ(again.units_dispatched, 0u);
    std::remove(journal.c_str());
  }
}

TEST(SvcdResumeTest, ResumeOfEmptyJournalIsAPreciseError) {
  // A journal holding only the file header (crashed before the first
  // submit) has no campaign to resume: precise error, not a hang or an
  // empty success.
  const std::string journal = ::testing::TempDir() + "svcd_resume_empty.jnl";
  std::remove(journal.c_str());
  { Journal j = Journal::create(journal); }
  EXPECT_THROW((void)resume_journaled_campaign(journal, {}),
               snap::FormatError);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace bgpsim::svcd
