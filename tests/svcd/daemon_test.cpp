// svcd::Daemon end-to-end: journaled one-shot campaigns digest-identical
// to the serial runner, FIFO multi-campaign queueing, worker churn (fork
// workers killed mid-campaign, TCP workers joining mid-campaign, protocol
// violators), the admin socket, and the permanent-failure contract
// (CampaignError with precise per-unit records).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_file.hpp"
#include "core/sweep.hpp"
#include "svc/coordinator.hpp"
#include "svc/transport.hpp"
#include "svc/units.hpp"
#include "svc/worker.hpp"
#include "svcd/daemon.hpp"
#include "svcd/journal.hpp"

namespace bgpsim::svcd {
namespace {

core::Scenario clique(std::size_t size) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = size;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

svc::CampaignSpec small_sweep() {
  svc::CampaignSpec spec;
  spec.scenarios = {clique(5), clique(6)};
  spec.run.trials = 4;
  spec.unit_trials = 1;
  return spec;
}

std::uint64_t serial_digest(const svc::CampaignSpec& spec) {
  std::vector<core::TrialSet> sets;
  for (const core::Scenario& s : spec.scenarios) {
    sets.push_back(core::run_trials(s, spec.run));
  }
  return svc::campaign_digest(sets);
}

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "svcd_daemon_" + stem + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

TEST(SvcdDaemonTest, JournaledRunMatchesSerialAndResumesSealed) {
  const svc::CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);
  const std::string journal = temp_path("jnl");
  std::remove(journal.c_str());

  JournaledRunOptions opts;
  opts.workers = 3;
  const svc::CampaignResult result =
      run_journaled_campaign(spec, journal, opts);
  EXPECT_EQ(result.digest, expected);
  EXPECT_EQ(result.units_dispatched, 8u);

  // The journal holds every completion and the seal.
  const JournalReplay replay = replay_journal(journal);
  ASSERT_EQ(replay.campaigns.size(), 1u);
  EXPECT_TRUE(replay.campaigns[0].sealed);
  EXPECT_EQ(replay.campaigns[0].sealed_digest, expected);
  EXPECT_EQ(replay.campaigns[0].completed.size(), 8u);

  // Resuming a sealed journal re-runs nothing and returns the same bytes.
  const svc::CampaignResult resumed = resume_journaled_campaign(journal, {});
  EXPECT_EQ(resumed.digest, expected);
  EXPECT_EQ(resumed.units_dispatched, 0u);
  std::remove(journal.c_str());
}

TEST(SvcdDaemonTest, MultiCampaignFifoQueue) {
  const svc::CampaignSpec first = small_sweep();
  svc::CampaignSpec second;
  second.scenarios = {clique(7)};
  second.run.trials = 3;

  DaemonOptions options;
  options.exit_when_idle = true;
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();
  const std::uint64_t id1 = daemon.submit(first);
  const std::uint64_t id2 = daemon.submit(second);
  EXPECT_NE(id1, id2);
  daemon.run();

  const svc::CampaignResult r1 = daemon.take_result(id1);
  const svc::CampaignResult r2 = daemon.take_result(id2);
  EXPECT_EQ(r1.digest, serial_digest(first));
  EXPECT_EQ(r2.digest, serial_digest(second));
  for (const Daemon::CampaignStatus& s : daemon.status()) {
    EXPECT_EQ(s.state, Daemon::CampaignState::kDone);
    EXPECT_EQ(s.units_done, s.unit_count);
  }
}

TEST(SvcdDaemonTest, WorkerKilledMidCampaignStillMatchesSerial) {
  const svc::CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  DaemonOptions options;
  options.exit_when_idle = true;
  bool killed = false;
  options.on_unit_done = [&](Daemon& d, std::uint64_t, std::size_t) {
    if (killed) return;
    killed = true;
    const std::vector<pid_t> pids = d.worker_pids();
    ASSERT_FALSE(pids.empty());
    ::kill(pids[0], SIGKILL);
  };
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();
  const std::uint64_t id = daemon.submit(spec);
  daemon.run();

  EXPECT_TRUE(killed);
  EXPECT_EQ(daemon.take_result(id).digest, expected);
}

TEST(SvcdDaemonTest, TcpWorkerJoinsMidCampaign) {
  const svc::CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  DaemonOptions options;
  options.exit_when_idle = true;
  options.tcp_listen = true;
  pid_t joiner = -1;
  options.on_unit_done = [&](Daemon& d, std::uint64_t, std::size_t) {
    if (joiner != -1) return;
    const std::uint16_t port = d.tcp_port();
    joiner = ::fork();
    ASSERT_GE(joiner, 0);
    if (joiner == 0) {
      svc::Connection conn = svc::connect_localhost(port);
      ::_exit(svc::worker_loop(std::move(conn), 99));
    }
  };
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  const std::uint64_t id = daemon.submit(spec);
  daemon.run();

  ASSERT_GT(joiner, 0);
  // run() shut the joiner down with a kShutdown frame: clean exit 0.
  int status = 0;
  ASSERT_EQ(::waitpid(joiner, &status, 0), joiner);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(daemon.take_result(id).digest, expected);
}

TEST(SvcdDaemonTest, ProtocolViolatorIsFailedAndCampaignCompletes) {
  // An impostor joins over TCP and speaks a future protocol version. The
  // daemon must fail that connection with a precise protocol error,
  // requeue any unit it held, and finish the campaign on the real worker.
  const svc::CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  DaemonOptions options;
  options.exit_when_idle = true;
  options.tcp_listen = true;
  pid_t impostor = -1;
  options.on_unit_done = [&](Daemon& d, std::uint64_t, std::size_t) {
    if (impostor != -1) return;
    const std::uint16_t port = d.tcp_port();
    impostor = ::fork();
    ASSERT_GE(impostor, 0);
    if (impostor == 0) {
      svc::Connection conn = svc::connect_localhost(port);
      svc::Hello hello;
      hello.worker_id = 66;
      hello.pid = static_cast<std::uint64_t>(::getpid());
      // A well-formed Hello stamped with a future protocol version.
      const std::vector<std::uint8_t> bytes =
          svc::encode_frame(svc::encode_hello(hello),
                            svc::kProtocolVersion + 1);
      (void)!::write(conn.fd(), bytes.data(), bytes.size());
      // Linger until the daemon hangs up on us.
      (void)conn.recv_frame();
      ::_exit(0);
    }
  };
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  const std::uint64_t id = daemon.submit(spec);
  daemon.run();

  ASSERT_GT(impostor, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(impostor, &status, 0), impostor);
  EXPECT_EQ(daemon.take_result(id).digest, expected);
}

TEST(SvcdDaemonTest, DeterministicUnitFailureYieldsCampaignError) {
  svc::CampaignSpec spec;
  core::Scenario s = clique(8);
  s.max_sim_time = sim::SimTime::seconds(1);  // cannot converge in time
  spec.scenarios = {s};
  spec.run.trials = 2;
  spec.unit_trials = 2;

  DaemonOptions options;
  options.exit_when_idle = true;
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  const std::uint64_t id = daemon.submit(spec);
  daemon.run();

  ASSERT_EQ(daemon.status().size(), 1u);
  EXPECT_EQ(daemon.status()[0].state, Daemon::CampaignState::kFailed);
  try {
    (void)daemon.take_result(id);
    FAIL() << "take_result of a failed campaign must throw CampaignError";
  } catch (const svc::CampaignError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    const svc::UnitFailure& f = e.failures()[0];
    EXPECT_EQ(f.unit_id, 0u);
    EXPECT_EQ(f.trial_count, 2u);
    EXPECT_EQ(f.attempts, 1u);  // deterministic failures are not retried
    EXPECT_NE(f.last_error.find("reported"), std::string::npos)
        << f.last_error;
    EXPECT_NE(std::string{e.what()}.find("failed permanently"),
              std::string::npos)
        << e.what();
  }
}

TEST(SvcdDaemonTest, AttemptCapAbandonsUnitWithPreciseFailure) {
  // Satellite regression: a unit whose every attempt dies (here: a lease
  // far shorter than the unit's runtime kills each holder in turn) is
  // abandoned after max_attempts with a precise per-unit failure record —
  // not retried forever, not reported as a bare worker loss.
  svc::CampaignSpec spec;
  spec.scenarios = {clique(12)};
  spec.run.trials = 2;
  spec.unit_trials = 2;  // one unit holding both trials

  DaemonOptions options;
  options.exit_when_idle = true;
  options.deadline_s = 0.02;
  options.max_attempts = 3;
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();
  const std::uint64_t id = daemon.submit(spec);
  daemon.run();

  try {
    (void)daemon.take_result(id);
    FAIL() << "abandoned unit must fail the campaign";
  } catch (const svc::CampaignError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    const svc::UnitFailure& f = e.failures()[0];
    EXPECT_EQ(f.unit_id, 0u);
    EXPECT_EQ(f.attempts, 3u);
    EXPECT_NE(f.to_string().find("failed after 3 attempt(s)"),
              std::string::npos)
        << f.to_string();
    EXPECT_NE(f.last_error.find("lease"), std::string::npos) << f.last_error;
  }
}

TEST(SvcdDaemonTest, RunJournaledCampaignPropagatesCampaignError) {
  svc::CampaignSpec spec;
  core::Scenario s = clique(8);
  s.max_sim_time = sim::SimTime::seconds(1);
  spec.scenarios = {s};
  spec.run.trials = 2;
  const std::string journal = temp_path("failjnl");
  std::remove(journal.c_str());
  JournaledRunOptions opts;
  opts.workers = 2;
  EXPECT_THROW((void)run_journaled_campaign(spec, journal, opts),
               svc::CampaignError);
  std::remove(journal.c_str());
}

// ---- admin socket -------------------------------------------------------

/// Send one command line, read until the OK/ERR terminator line.
std::string admin_roundtrip(const std::string& sock_path,
                            const std::string& command) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0)
      << sock_path;
  const std::string line = command + "\n";
  EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    // Terminated once the last complete line starts with OK or ERR.
    const std::size_t last_nl = response.rfind('\n');
    if (last_nl == std::string::npos) continue;
    const std::size_t prev_nl = response.rfind('\n', last_nl - 1);
    const std::string last = response.substr(
        prev_nl == std::string::npos ? 0 : prev_nl + 1,
        last_nl - (prev_nl == std::string::npos ? 0 : prev_nl + 1));
    if (last.rfind("OK", 0) == 0 || last.rfind("ERR", 0) == 0) break;
  }
  ::close(fd);
  return response;
}

TEST(SvcdDaemonTest, AdminSocketStatusSubmitCancel) {
  const std::string sock = temp_path("sock");
  std::remove(sock.c_str());

  DaemonOptions options;
  options.exit_when_idle = true;
  options.admin_socket = sock;
  Daemon daemon{std::move(options)};
  daemon.spawn_fork_worker();
  daemon.spawn_fork_worker();

  std::string status_first;
  std::string submit1;
  std::string submit2;
  std::string cancel_bogus;
  std::string cancel2;
  std::thread client{[&] {
    status_first = admin_roundtrip(sock, "STATUS");
    submit1 = admin_roundtrip(
        sock, "SUBMIT trials=4; topology=clique; size=9; event=tdown; seed=11");
    submit2 = admin_roundtrip(
        sock, "SUBMIT trials=2; topology=clique; size=5; event=tdown; seed=11");
    cancel_bogus = admin_roundtrip(sock, "CANCEL 99");
    cancel2 = admin_roundtrip(sock, "CANCEL 2");
  }};
  daemon.run();
  client.join();

  EXPECT_NE(status_first.find("workers 2"), std::string::npos) << status_first;
  EXPECT_NE(status_first.find("version " +
                              std::to_string(svc::kProtocolVersion)),
            std::string::npos)
      << status_first;
  EXPECT_NE(submit1.find("OK id=1"), std::string::npos) << submit1;
  EXPECT_NE(submit2.find("OK id=2"), std::string::npos) << submit2;
  EXPECT_EQ(cancel_bogus.rfind("ERR", 0), 0u) << cancel_bogus;
  EXPECT_EQ(cancel2.rfind("OK", 0), 0u) << cancel2;

  // Campaign 1 ran to completion with the serial digest; 2 was cancelled.
  svc::CampaignSpec spec;
  spec.scenarios = {core::parse_scenario_string(
      "topology=clique\nsize=9\nevent=tdown\nseed=11\n")};
  spec.run.trials = 4;
  EXPECT_EQ(daemon.take_result(1).digest, serial_digest(spec));
  bool saw_cancelled = false;
  for (const Daemon::CampaignStatus& s : daemon.status()) {
    if (s.id == 2) {
      saw_cancelled = true;
      EXPECT_EQ(s.state, Daemon::CampaignState::kCancelled);
    }
  }
  EXPECT_TRUE(saw_cancelled);
  EXPECT_FALSE(daemon.cancel(1));  // terminal campaigns cannot be cancelled
  std::remove(sock.c_str());
}

}  // namespace
}  // namespace bgpsim::svcd
