// svcd::EventLoop: fd watches, timer multiplexing through one timerfd,
// and the reentrancy contract (callbacks may unwatch/cancel anything,
// including themselves, mid-batch).
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svcd/event_loop.hpp"

namespace bgpsim::svcd {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void poke() { EXPECT_EQ(::write(fds[1], "x", 1), 1); }
  void drain() const {
    char c = 0;
    EXPECT_EQ(::read(fds[0], &c, 1), 1);
  }
};

TEST(SvcdEventLoopTest, DeliversReadableEvents) {
  EventLoop loop;
  Pipe p;
  int hits = 0;
  loop.watch(p.fds[0], EPOLLIN, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    p.drain();
    if (++hits == 3) loop.stop();
    else p.poke();
  });
  p.poke();
  loop.run();
  EXPECT_EQ(hits, 3);
}

TEST(SvcdEventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.add_timer(30, [&] { order.push_back(3); loop.stop(); });
  loop.add_timer(1, [&] { order.push_back(1); });
  loop.add_timer(10, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SvcdEventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  bool cancelled_fired = false;
  const std::uint64_t victim =
      loop.add_timer(1, [&] { cancelled_fired = true; });
  loop.cancel_timer(victim);
  loop.add_timer(10, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(SvcdEventLoopTest, TimerCallbackMayAddAnotherTimer) {
  EventLoop loop;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain == 4) loop.stop();
    else loop.add_timer(1, step);
  };
  loop.add_timer(1, step);
  loop.run();
  EXPECT_EQ(chain, 4);
}

TEST(SvcdEventLoopTest, CallbackMayUnwatchItself) {
  EventLoop loop;
  Pipe p;
  int hits = 0;
  std::uint64_t token = 0;
  token = loop.watch(p.fds[0], EPOLLIN, [&](std::uint32_t) {
    ++hits;
    p.drain();
    loop.unwatch(token);
    loop.add_timer(20, [&] { loop.stop(); });
    p.poke();  // would re-fire if the watch survived
  });
  p.poke();
  loop.run();
  EXPECT_EQ(hits, 1);
}

TEST(SvcdEventLoopTest, CallbackMayUnwatchASiblingMidBatch) {
  // Two pipes readable in the same epoll batch; the first callback to run
  // unwatches the other. Exactly one callback may fire.
  EventLoop loop;
  Pipe a;
  Pipe b;
  int fired = 0;
  std::uint64_t tok_a = 0;
  std::uint64_t tok_b = 0;
  tok_a = loop.watch(a.fds[0], EPOLLIN, [&](std::uint32_t) {
    ++fired;
    a.drain();
    loop.unwatch(tok_b);
    loop.unwatch(tok_a);
  });
  tok_b = loop.watch(b.fds[0], EPOLLIN, [&](std::uint32_t) {
    ++fired;
    b.drain();
    loop.unwatch(tok_a);
    loop.unwatch(tok_b);
  });
  a.poke();
  b.poke();
  loop.add_timer(30, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(SvcdEventLoopTest, RunAgainAfterStop) {
  EventLoop loop;
  int rounds = 0;
  loop.add_timer(1, [&] { ++rounds; loop.stop(); });
  loop.run();
  loop.add_timer(1, [&] { ++rounds; loop.stop(); });
  loop.run();
  EXPECT_EQ(rounds, 2);
}

}  // namespace
}  // namespace bgpsim::svcd
