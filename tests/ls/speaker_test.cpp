// Unit tests for the link-state baseline speaker.
#include "ls/speaker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/generators.hpp"

namespace bgpsim::ls {
namespace {

constexpr net::Prefix kP = 0;

class LsSpeakerTest : public ::testing::Test {
 protected:
  LsSpeakerTest() : topo_{topo::make_star(4)}, transport_{sim_, topo_} {
    LsConfig c;
    c.spf_delay_lo = sim::SimTime::millis(100);  // deterministic
    c.spf_delay_hi = sim::SimTime::millis(100);
    speaker_.emplace(0, c, sim_, transport_, fib_, sim::Rng{1});
    speaker_->set_peers({1, 2, 3});
    speaker_->set_hooks(LsSpeaker::Hooks{
        .on_lsa_sent =
            [this](net::NodeId, net::NodeId to, const Lsa& lsa) {
              sent_.emplace_back(to, lsa);
            },
        .on_route_changed = nullptr,
    });
  }

  Lsa make_lsa(net::NodeId origin, std::uint64_t seq,
               std::vector<net::NodeId> nbrs,
               std::vector<net::Prefix> prefixes = {}) {
    Lsa lsa;
    lsa.origin = origin;
    lsa.seq = seq;
    lsa.neighbors = std::move(nbrs);
    lsa.prefixes = std::move(prefixes);
    return lsa;
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::Transport transport_;
  fwd::Fib fib_;
  std::optional<LsSpeaker> speaker_;
  std::vector<std::pair<net::NodeId, Lsa>> sent_;
};

TEST_F(LsSpeakerTest, StartFloodsSelfLsaToAllPeers) {
  speaker_->start();
  EXPECT_EQ(sent_.size(), 3u);
  for (const auto& [to, lsa] : sent_) {
    EXPECT_EQ(lsa.origin, 0u);
    EXPECT_EQ(lsa.seq, 1u);
    EXPECT_EQ(lsa.neighbors, (std::vector<net::NodeId>{1, 2, 3}));
  }
}

TEST_F(LsSpeakerTest, NewLsaIsStoredAndForwarded) {
  speaker_->start();
  sent_.clear();
  speaker_->handle_lsa(1, make_lsa(1, 1, {0, 9}));
  ASSERT_NE(speaker_->lsdb_entry(1), nullptr);
  EXPECT_EQ(speaker_->lsdb_entry(1)->seq, 1u);
  // Forwarded to everyone except the sender.
  EXPECT_EQ(sent_.size(), 2u);
  for (const auto& [to, lsa] : sent_) {
    EXPECT_NE(to, 1u);
    EXPECT_EQ(lsa.origin, 1u);
  }
}

TEST_F(LsSpeakerTest, StaleLsaIsIgnored) {
  speaker_->start();
  speaker_->handle_lsa(1, make_lsa(1, 5, {0}));
  sent_.clear();
  speaker_->handle_lsa(2, make_lsa(1, 3, {0, 9}));  // older seq
  EXPECT_TRUE(sent_.empty());
  EXPECT_EQ(speaker_->lsdb_entry(1)->seq, 5u);
  EXPECT_GT(speaker_->counters().lsas_ignored, 0u);
}

TEST_F(LsSpeakerTest, DuplicateLsaStopsFlooding) {
  speaker_->start();
  speaker_->handle_lsa(1, make_lsa(1, 5, {0}));
  sent_.clear();
  speaker_->handle_lsa(2, make_lsa(1, 5, {0}));  // same seq via other path
  EXPECT_TRUE(sent_.empty());
}

TEST_F(LsSpeakerTest, SpfInstallsRouteAfterDelay) {
  speaker_->start();
  // LSDB: 0-1 adjacency (two-way) and 1 hosts kP.
  speaker_->handle_lsa(1, make_lsa(1, 1, {0}, {kP}));
  EXPECT_TRUE(speaker_->spf_pending());
  EXPECT_FALSE(fib_.next_hop(kP).has_value());  // not yet: SPF delayed
  sim_.run();
  EXPECT_EQ(fib_.next_hop(kP), 1u);
  EXPECT_GT(speaker_->counters().spf_runs, 0u);
}

TEST_F(LsSpeakerTest, TwoWayCheckRejectsHalfAdjacency) {
  speaker_->start();
  // Node 2 claims adjacency with 9, but 9's LSA (also known) does not
  // list 2: the link must not be used.
  speaker_->handle_lsa(2, make_lsa(2, 1, {0, 9}));
  speaker_->handle_lsa(2, make_lsa(9, 1, {}, {kP}));
  sim_.run();
  EXPECT_FALSE(fib_.next_hop(kP).has_value());
}

TEST_F(LsSpeakerTest, MultiHopRouteUsesFirstHop) {
  speaker_->start();
  // 0-1, 1-9, 9 hosts kP.
  speaker_->handle_lsa(1, make_lsa(1, 1, {0, 9}));
  speaker_->handle_lsa(1, make_lsa(9, 1, {1}, {kP}));
  sim_.run();
  EXPECT_EQ(fib_.next_hop(kP), 1u);
}

TEST_F(LsSpeakerTest, WithdrawnPrefixClearsRoute) {
  speaker_->start();
  speaker_->handle_lsa(1, make_lsa(1, 1, {0}, {kP}));
  sim_.run();
  ASSERT_EQ(fib_.next_hop(kP), 1u);
  // New LSA from 1 without the prefix.
  speaker_->handle_lsa(1, make_lsa(1, 2, {0}));
  sim_.run();
  EXPECT_FALSE(fib_.next_hop(kP).has_value());
}

TEST_F(LsSpeakerTest, OwnPrefixDeliversLocally) {
  speaker_->originate(kP);
  sim_.run();
  EXPECT_FALSE(fib_.next_hop(kP).has_value());  // local delivery, no FIB
}

TEST_F(LsSpeakerTest, SessionDownReoriginates) {
  speaker_->start();
  sent_.clear();
  speaker_->handle_session(1, false);
  // New self-LSA with seq 2 flooded to remaining peers (2 and 3).
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[0].second.seq, 2u);
  EXPECT_EQ(sent_[0].second.neighbors, (std::vector<net::NodeId>{2, 3}));
}

TEST_F(LsSpeakerTest, SessionUpExchangesDatabase) {
  speaker_->start();
  speaker_->handle_lsa(2, make_lsa(9, 4, {2}));
  speaker_->handle_session(1, false);
  sent_.clear();
  speaker_->handle_session(1, true);
  // The new peer receives our whole LSDB (self + 9) plus the
  // re-originated self-LSA flood.
  std::size_t to_1 = 0;
  bool saw_9 = false;
  for (const auto& [to, lsa] : sent_) {
    if (to == 1) {
      ++to_1;
      if (lsa.origin == 9) saw_9 = true;
    }
  }
  EXPECT_GE(to_1, 2u);
  EXPECT_TRUE(saw_9);
}

TEST_F(LsSpeakerTest, SpfBatchesLsdbChanges) {
  speaker_->start();
  speaker_->handle_lsa(1, make_lsa(1, 1, {0}, {kP}));
  speaker_->handle_lsa(2, make_lsa(2, 1, {0}));
  const auto spf_before = speaker_->counters().spf_runs;
  sim_.run();
  // Both changes landed in one scheduled SPF (plus the one from start()).
  EXPECT_EQ(speaker_->counters().spf_runs, spf_before + 1);
}

}  // namespace
}  // namespace bgpsim::ls
