// Link-state extras: anycast (multiple hosts per prefix) and Tup.
#include <gtest/gtest.h>

#include "core/ls_experiment.hpp"
#include "ls/network.hpp"
#include "topo/generators.hpp"

namespace bgpsim::ls {
namespace {

constexpr net::Prefix kP = 0;

LsConfig quick_ls() {
  LsConfig c;
  c.spf_delay_lo = sim::SimTime::millis(100);
  c.spf_delay_hi = sim::SimTime::millis(100);
  return c;
}

TEST(LsAnycast, NearestHostWins) {
  // Chain 0-1-2-3-4 with the prefix hosted at both ends: node 1 routes to
  // 0, node 3 routes to 4, node 2 breaks the distance tie toward the
  // smaller host id (0).
  sim::Simulator sim;
  auto topo = topo::make_chain(5);
  LsNetwork network{sim, topo, quick_ls(),
                    net::ProcessingDelay{sim::SimTime::millis(1),
                                         sim::SimTime::millis(1)},
                    sim::Rng{2}};
  sim.schedule_at(sim::SimTime::zero(), [&] {
    network.start_all();
    network.originate(0, kP);
    network.originate(4, kP);
  });
  sim.run();
  ASSERT_FALSE(network.busy());
  EXPECT_EQ(network.fibs()[1].next_hop(kP), 0u);
  EXPECT_EQ(network.fibs()[3].next_hop(kP), 4u);
  EXPECT_EQ(network.fibs()[2].next_hop(kP), 1u);  // tie -> host 0
}

TEST(LsAnycast, SurvivesOneHostWithdrawing) {
  sim::Simulator sim;
  auto topo = topo::make_chain(5);
  LsNetwork network{sim, topo, quick_ls(),
                    net::ProcessingDelay{sim::SimTime::millis(1),
                                         sim::SimTime::millis(1)},
                    sim::Rng{2}};
  sim.schedule_at(sim::SimTime::zero(), [&] {
    network.start_all();
    network.originate(0, kP);
    network.originate(4, kP);
  });
  sim.run();
  sim.schedule_at(sim.now() + sim::SimTime::seconds(5),
                  [&] { network.inject_tdown(0, kP); });
  sim.run();
  // Everyone now routes toward the surviving host at node 4.
  for (net::NodeId v = 0; v < 4; ++v) {
    const auto nh = network.fibs()[v].next_hop(kP);
    ASSERT_TRUE(nh.has_value()) << "node " << v;
    EXPECT_EQ(*nh, v + 1) << "node " << v;
  }
}

TEST(LsExperimentExtra, TupAnnouncementIsLoopFree) {
  core::LsScenario s;
  s.topology.kind = core::TopologyKind::kBClique;
  s.topology.size = 6;
  s.event = core::EventKind::kTup;
  s.seed = 3;
  const auto out = core::run_ls_experiment(s);
  EXPECT_EQ(out.metrics.loops_formed, 0u);
  EXPECT_EQ(out.metrics.ttl_exhaustions, 0u);
  EXPECT_GT(out.metrics.packets_delivered, 0u);
}

}  // namespace
}  // namespace bgpsim::ls
