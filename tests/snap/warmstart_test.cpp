// Warm-start equivalence: a run forked from a converged-prelude snapshot
// must be bit-identical to the cold run that produced the snapshot — same
// metrics, same event totals — whether the snapshot travels through
// memory, the prelude cache, or a file on disk.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/dv_experiment.hpp"
#include "core/experiment.hpp"
#include "core/ls_experiment.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "snap/cache.hpp"
#include "snap/codec.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim {
namespace {

std::uint64_t outcome_digest(const core::ExperimentOutcome& out) {
  snap::Hasher h;
  h.mix(out.events_fired);
  h.mix(out.destination);
  h.mix(std::bit_cast<std::uint64_t>(out.initial_convergence_s));
  const metrics::RunMetrics& m = out.metrics;
  h.mix(std::bit_cast<std::uint64_t>(m.convergence_time_s));
  h.mix(std::bit_cast<std::uint64_t>(m.looping_duration_s));
  h.mix(m.ttl_exhaustions);
  h.mix(m.loops_formed);
  h.mix(std::bit_cast<std::uint64_t>(m.looping_ratio));
  h.mix(std::bit_cast<std::uint64_t>(m.max_loop_duration_s));
  h.mix(m.updates_sent_total);
  h.mix(m.packets_sent_total);
  h.mix(m.packets_delivered);
  return h.value();
}

core::Scenario bgp_scenario(core::EventKind event = core::EventKind::kTdown) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 6;
  s.event = event;
  s.bgp.mrai = sim::SimTime::seconds(5);
  s.seed = 17;
  return s;
}

TEST(WarmStart, BgpWarmRunReproducesColdRunBitForBit) {
  core::Scenario cold = bgp_scenario();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  const core::ExperimentOutcome cold_out = core::run_experiment(cold);

  ASSERT_FALSE(converged.empty());
  EXPECT_TRUE(converged.meta().quiescent);
  EXPECT_EQ(converged.meta().driver, snap::DriverKind::kBgp);

  core::Scenario warm = bgp_scenario();
  warm.warm_start = &converged;
  const core::ExperimentOutcome warm_out = core::run_experiment(warm);

  EXPECT_EQ(warm_out.events_fired, cold_out.events_fired);
  EXPECT_EQ(warm_out.initial_convergence_s, cold_out.initial_convergence_s);
  EXPECT_EQ(outcome_digest(warm_out), outcome_digest(cold_out));
}

TEST(WarmStart, BgpSnapshotSurvivesFileRoundTrip) {
  core::Scenario cold = bgp_scenario();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  const core::ExperimentOutcome cold_out = core::run_experiment(cold);

  const std::string path =
      testing::TempDir() + "/bgpsim_warmstart_test_state.snap";
  converged.save_file(path);
  const snap::Snapshot loaded = snap::Snapshot::load_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.content_hash(), converged.content_hash());

  core::Scenario warm = bgp_scenario();
  warm.warm_start = &loaded;
  const core::ExperimentOutcome warm_out = core::run_experiment(warm);
  EXPECT_EQ(outcome_digest(warm_out), outcome_digest(cold_out));
}

TEST(WarmStart, MismatchedSeedRejected) {
  core::Scenario cold = bgp_scenario();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  (void)core::run_experiment(cold);

  core::Scenario other = bgp_scenario();
  other.seed = 18;  // topology unchanged; only the root seed differs
  other.warm_start = &converged;
  try {
    (void)core::run_experiment(other);
    FAIL() << "warm start accepted a snapshot from a different seed";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("seed"), std::string::npos)
        << e.what();
  }
}

TEST(WarmStart, MismatchedPreludeConfigRejected) {
  core::Scenario cold = bgp_scenario();
  snap::Snapshot converged;
  cold.save_converged = &converged;
  (void)core::run_experiment(cold);

  core::Scenario other = bgp_scenario();
  other.bgp.mrai = sim::SimTime::seconds(10);  // prelude-shaping knob
  other.warm_start = &converged;
  EXPECT_THROW((void)core::run_experiment(other), std::invalid_argument);

  core::Scenario tup = bgp_scenario(core::EventKind::kTup);
  tup.warm_start = &converged;  // Tup prelude does not originate the prefix
  EXPECT_THROW((void)core::run_experiment(tup), std::invalid_argument);
}

TEST(WarmStart, CrossDriverSnapshotRejected) {
  core::DvScenario dv;
  dv.topology.kind = core::TopologyKind::kClique;
  dv.topology.size = 6;
  dv.dv.periodic = sim::SimTime::zero();  // triggered-only: checkpointable
  dv.seed = 17;
  snap::Snapshot converged;
  dv.save_converged = &converged;
  (void)core::run_dv_experiment(dv);
  ASSERT_EQ(converged.meta().driver, snap::DriverKind::kDv);

  core::LsScenario ls;
  ls.topology.kind = core::TopologyKind::kClique;
  ls.topology.size = 6;
  ls.event = core::EventKind::kTdown;
  ls.seed = 17;
  ls.warm_start = &converged;
  try {
    (void)core::run_ls_experiment(ls);
    FAIL() << "ls driver accepted a dv snapshot";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("driver"), std::string::npos)
        << e.what();
  }
}

TEST(WarmStart, DvTriggeredOnlyWarmStartWorksPeriodicRejected) {
  core::DvScenario cold;
  cold.topology.kind = core::TopologyKind::kClique;
  cold.topology.size = 6;
  cold.dv.periodic = sim::SimTime::zero();
  cold.seed = 17;
  snap::Snapshot converged;
  cold.save_converged = &converged;
  const core::ExperimentOutcome cold_out = core::run_dv_experiment(cold);

  core::DvScenario warm = cold;
  warm.save_converged = nullptr;
  warm.warm_start = &converged;
  const core::ExperimentOutcome warm_out = core::run_dv_experiment(warm);
  EXPECT_EQ(outcome_digest(warm_out), outcome_digest(cold_out));

  core::DvScenario periodic;
  periodic.topology.kind = core::TopologyKind::kClique;
  periodic.topology.size = 6;  // default dv.periodic = 30 s
  snap::Snapshot sink;
  periodic.save_converged = &sink;
  try {
    (void)core::run_dv_experiment(periodic);
    FAIL() << "periodic DV accepted a converged-prelude checkpoint hook";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("triggered-only"), std::string::npos)
        << e.what();
  }
}

TEST(WarmStart, LsWarmRunReproducesColdRun) {
  core::LsScenario cold;
  cold.topology.kind = core::TopologyKind::kRing;
  cold.topology.size = 6;
  cold.seed = 17;
  snap::Snapshot converged;
  cold.save_converged = &converged;
  const core::ExperimentOutcome cold_out = core::run_ls_experiment(cold);

  core::LsScenario warm = cold;
  warm.save_converged = nullptr;
  warm.warm_start = &converged;
  const core::ExperimentOutcome warm_out = core::run_ls_experiment(warm);
  EXPECT_EQ(warm_out.events_fired, cold_out.events_fired);
  EXPECT_EQ(outcome_digest(warm_out), outcome_digest(cold_out));
}

/// The prelude cache must be a pure wall-clock optimization: trial sets
/// computed with a cold cache, a warm cache, and a warm cache under the
/// parallel runner all agree bit-for-bit.
TEST(WarmStart, TrialSetsIdenticalAcrossCacheStatesAndRunners) {
  auto& cache = snap::PreludeCache::instance();
  cache.set_capacity(snap::PreludeCache::kDefaultCapacity);
  cache.clear();
  cache.reset_stats();

  const core::Scenario base = bgp_scenario();
  constexpr std::size_t kTrials = 3;

  const core::TrialSet cold =
      core::run_trials(base, core::RunOptions{.trials = kTrials, .jobs = 1});
  EXPECT_EQ(cache.misses(), kTrials);  // one deposit per trial seed

  const core::TrialSet warm_serial =
      core::run_trials(base, core::RunOptions{.trials = kTrials, .jobs = 1});
  EXPECT_EQ(cache.hits(), kTrials);  // second sweep forked every prelude

  const core::TrialSet warm_parallel =
      core::run_trials(base, core::RunOptions{.trials = kTrials, .jobs = 4});
  EXPECT_EQ(cache.hits(), 2 * kTrials);

  ASSERT_EQ(cold.runs.size(), kTrials);
  for (std::size_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(outcome_digest(warm_serial.runs[i]),
              outcome_digest(cold.runs[i]))
        << "trial " << i << " (serial, cache hit)";
    EXPECT_EQ(outcome_digest(warm_parallel.runs[i]),
              outcome_digest(cold.runs[i]))
        << "trial " << i << " (parallel, cache hit)";
  }
  EXPECT_EQ(warm_parallel.convergence_time_s.mean,
            cold.convergence_time_s.mean);
  EXPECT_EQ(warm_parallel.convergence_time_s.stddev,
            cold.convergence_time_s.stddev);
  EXPECT_EQ(warm_parallel.looping_ratio.mean, cold.looping_ratio.mean);
  EXPECT_EQ(warm_parallel.ttl_exhaustions.mean, cold.ttl_exhaustions.mean);

  cache.clear();
  cache.reset_stats();
}

}  // namespace
}  // namespace bgpsim
