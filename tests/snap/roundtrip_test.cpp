// Mid-run snapshot round-trip bit-equivalence.
//
// Every case runs one scenario twice: once with a no-op probe scheduled
// mid-run (SnapRoundtrip::kNoop) and once where that probe serializes the
// entire simulation, restores it in place, and re-serializes
// (SnapRoundtrip::kVerify — the driver itself throws if the re-encode
// differs byte-for-byte). Both passes must then finish with identical
// outcomes: a snapshot round-trip is invisible to the simulation.
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "bgp/config.hpp"
#include "check/oracle.hpp"
#include "core/dv_experiment.hpp"
#include "core/experiment.hpp"
#include "core/ls_experiment.hpp"
#include "core/scenario.hpp"
#include "snap/codec.hpp"

namespace bgpsim {
namespace {

std::uint64_t outcome_digest(const core::ExperimentOutcome& out) {
  snap::Hasher h;
  h.mix(out.events_fired);
  h.mix(out.destination);
  h.mix(std::bit_cast<std::uint64_t>(out.initial_convergence_s));
  const metrics::RunMetrics& m = out.metrics;
  h.mix(std::bit_cast<std::uint64_t>(m.convergence_time_s));
  h.mix(std::bit_cast<std::uint64_t>(m.looping_duration_s));
  h.mix(m.ttl_exhaustions);
  h.mix(m.loops_formed);
  h.mix(std::bit_cast<std::uint64_t>(m.looping_ratio));
  h.mix(std::bit_cast<std::uint64_t>(m.max_loop_duration_s));
  h.mix(m.updates_sent_total);
  h.mix(m.packets_sent_total);
  h.mix(m.packets_delivered);
  h.mix(m.packets_no_route);
  return h.value();
}

TEST(SnapRoundtrip, BgpEveryEnhancementEveryEvent) {
  for (const bgp::Enhancement enh : bgp::kAllEnhancements) {
    for (const core::EventKind event :
         {core::EventKind::kTdown, core::EventKind::kTlong,
          core::EventKind::kFlap}) {
      core::Scenario s;
      s.topology.kind = core::TopologyKind::kClique;
      s.topology.size = 6;
      s.event = event;
      s.bgp = s.bgp.with(enh);
      s.bgp.mrai = sim::SimTime::seconds(5);
      s.seed = 11;
      s.snap_roundtrip_after = sim::SimTime::seconds(2);

      s.snap_roundtrip = core::SnapRoundtrip::kNoop;
      check::Oracle baseline_oracle = check::Oracle::standard();
      s.oracle = &baseline_oracle;
      const core::ExperimentOutcome baseline = core::run_experiment(s);

      s.snap_roundtrip = core::SnapRoundtrip::kVerify;
      check::Oracle verify_oracle = check::Oracle::standard();
      s.oracle = &verify_oracle;
      const core::ExperimentOutcome verified = core::run_experiment(s);

      EXPECT_TRUE(verify_oracle.ok()) << s.label();
      EXPECT_EQ(outcome_digest(baseline), outcome_digest(verified))
          << s.label() << ": a mid-run save/restore changed the outcome";
    }
  }
}

TEST(SnapRoundtrip, DvTriggeredOnlyAndPeriodic) {
  struct Case {
    core::EventKind event;
    bool periodic;
  };
  for (const Case c : {Case{core::EventKind::kTdown, false},
                       Case{core::EventKind::kTlong, false},
                       Case{core::EventKind::kTdown, true}}) {
    core::DvScenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = 6;
    s.event = c.event;
    if (!c.periodic) s.dv.periodic = sim::SimTime::zero();
    s.seed = 11;
    s.snap_roundtrip_after = sim::SimTime::seconds(2);

    s.snap_roundtrip = core::SnapRoundtrip::kNoop;
    const core::ExperimentOutcome baseline = core::run_dv_experiment(s);

    s.snap_roundtrip = core::SnapRoundtrip::kVerify;
    const core::ExperimentOutcome verified = core::run_dv_experiment(s);

    EXPECT_EQ(outcome_digest(baseline), outcome_digest(verified))
        << "dv event " << static_cast<int>(c.event) << " periodic "
        << c.periodic;
  }
}

TEST(SnapRoundtrip, LsLinkAndRouteEvents) {
  for (const core::EventKind event :
       {core::EventKind::kTdown, core::EventKind::kTlong}) {
    core::LsScenario s;
    s.topology.kind = core::TopologyKind::kRing;
    s.topology.size = 6;
    s.event = event;
    s.seed = 11;
    s.snap_roundtrip_after = sim::SimTime::millis(500);

    s.snap_roundtrip = core::SnapRoundtrip::kNoop;
    const core::ExperimentOutcome baseline = core::run_ls_experiment(s);

    s.snap_roundtrip = core::SnapRoundtrip::kVerify;
    const core::ExperimentOutcome verified = core::run_ls_experiment(s);

    EXPECT_EQ(outcome_digest(baseline), outcome_digest(verified))
        << "ls event " << static_cast<int>(event);
  }
}

}  // namespace
}  // namespace bgpsim
