// Codec, snapshot container, and prelude-cache unit tests.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "snap/cache.hpp"
#include "snap/codec.hpp"
#include "snap/snapshot.hpp"

namespace bgpsim::snap {
namespace {

TEST(Codec, WriterReaderRoundTripAllTypes) {
  Writer w;
  w.u8(0xab);
  w.b(true);
  w.b(false);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.time(sim::SimTime::millis(1500));
  w.str("hello, checkpoint");

  const std::vector<std::uint8_t> bytes = std::move(w).take();
  Reader r{bytes};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.time(), sim::SimTime::millis(1500));
  EXPECT_EQ(r.str(), "hello, checkpoint");
  EXPECT_EQ(r.remaining(), 0U);
  EXPECT_NO_THROW(r.finish());
}

TEST(Codec, TruncationThrowsFormatError) {
  Writer w;
  w.u32(7);
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  Reader r{bytes};
  EXPECT_THROW(r.u64(), FormatError);  // only 4 bytes present
}

TEST(Codec, TrailingBytesRejectedByFinish) {
  Writer w;
  w.u32(7);
  w.u8(1);
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  Reader r{bytes};
  (void)r.u32();
  EXPECT_THROW(r.finish(), FormatError);
}

TEST(Codec, RngStateRoundTripContinuesIdentically) {
  sim::Rng a{123};
  (void)a.next_u64();
  (void)a.child("stream").next_u64();

  Writer w;
  write_rng(w, a);
  sim::Rng b{999};  // different seed, fully overwritten by restore
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  Reader r{bytes};
  read_rng(r, b);

  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.child("again", 4).next_u64(), b.child("again", 4).next_u64());
}

TEST(Codec, HasherIsOrderSensitiveAndDeterministic) {
  const std::uint64_t ab = Hasher{}.mix(1).mix(2).value();
  const std::uint64_t ba = Hasher{}.mix(2).mix(1).value();
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ab, Hasher{}.mix(1).mix(2).value());
}

SnapshotMeta sample_meta() {
  SnapshotMeta meta;
  meta.driver = DriverKind::kDv;
  meta.topology_hash = 111;
  meta.config_hash = 222;
  meta.seed = 333;
  meta.destination = 4;
  meta.originated = true;
  meta.quiescent = true;
  meta.sim_time = sim::SimTime::seconds(30);
  return meta;
}

std::vector<std::uint8_t> sample_payload() { return {1, 2, 3, 4, 5, 6, 7}; }

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const Snapshot original{sample_meta(), sample_payload()};
  const Snapshot decoded = Snapshot::decode(original.encode());

  EXPECT_EQ(decoded.meta().driver, DriverKind::kDv);
  EXPECT_EQ(decoded.meta().topology_hash, 111U);
  EXPECT_EQ(decoded.meta().config_hash, 222U);
  EXPECT_EQ(decoded.meta().seed, 333U);
  EXPECT_EQ(decoded.meta().destination, 4U);
  EXPECT_TRUE(decoded.meta().originated);
  EXPECT_TRUE(decoded.meta().quiescent);
  EXPECT_EQ(decoded.meta().sim_time, sim::SimTime::seconds(30));
  EXPECT_EQ(decoded.payload(), sample_payload());
  EXPECT_EQ(decoded.content_hash(), original.content_hash());
}

TEST(Snapshot, BadMagicRejected) {
  std::vector<std::uint8_t> blob = Snapshot{sample_meta(), sample_payload()}.encode();
  blob[0] ^= 0xff;
  try {
    (void)Snapshot::decode(blob);
    FAIL() << "decode accepted a corrupt magic";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("magic"), std::string::npos);
  }
}

TEST(Snapshot, FutureFormatVersionRejectedWithClearError) {
  std::vector<std::uint8_t> blob = Snapshot{sample_meta(), sample_payload()}.encode();
  // Bump the version field in place; the reader must identify the version
  // mismatch (not report garbage or an integrity failure) even though the
  // trailer no longer matches either.
  blob[kVersionOffset] = static_cast<std::uint8_t>(kFormatVersion + 1);
  try {
    (void)Snapshot::decode(blob);
    FAIL() << "decode accepted a future format version";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported snapshot format version"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(kFormatVersion + 1)), std::string::npos)
        << what;
  }
}

TEST(Snapshot, CorruptedPayloadFailsIntegrityCheck) {
  const Snapshot original{sample_meta(), sample_payload()};
  std::vector<std::uint8_t> blob = original.encode();
  blob[blob.size() - 12] ^= 0x01;  // inside the payload, before the trailer
  try {
    (void)Snapshot::decode(blob);
    FAIL() << "decode accepted a corrupt payload";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("integrity"), std::string::npos);
  }
}

TEST(Snapshot, TruncatedBlobRejected) {
  std::vector<std::uint8_t> blob = Snapshot{sample_meta(), sample_payload()}.encode();
  blob.resize(blob.size() - 3);
  EXPECT_THROW((void)Snapshot::decode(blob), FormatError);
  EXPECT_THROW((void)Snapshot::decode(std::vector<std::uint8_t>(4)),
               FormatError);
}

TEST(Snapshot, FileRoundTripAndMissingFile) {
  const std::string path =
      testing::TempDir() + "/bgpsim_codec_test_state.snap";
  const Snapshot original{sample_meta(), sample_payload()};
  original.save_file(path);
  const Snapshot loaded = Snapshot::load_file(path);
  EXPECT_EQ(loaded.content_hash(), original.content_hash());
  EXPECT_EQ(loaded.meta().seed, original.meta().seed);
  std::remove(path.c_str());

  EXPECT_THROW((void)Snapshot::load_file(path), std::runtime_error);
}

class PreludeCacheTest : public testing::Test {
 protected:
  void SetUp() override {
    auto& cache = PreludeCache::instance();
    cache.set_capacity(PreludeCache::kDefaultCapacity);
    cache.clear();
    cache.reset_stats();
  }
  void TearDown() override { SetUp(); }

  static std::shared_ptr<const Snapshot> snap(std::uint64_t seed) {
    SnapshotMeta meta = sample_meta();
    meta.seed = seed;
    return std::make_shared<const Snapshot>(meta, sample_payload());
  }
};

TEST_F(PreludeCacheTest, FindInsertAndStats) {
  auto& cache = PreludeCache::instance();
  EXPECT_EQ(cache.find(1), nullptr);
  cache.insert(1, snap(1));
  const auto hit = cache.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->meta().seed, 1U);
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST_F(PreludeCacheTest, FirstWriterWins) {
  auto& cache = PreludeCache::instance();
  cache.insert(1, snap(10));
  cache.insert(1, snap(20));  // concurrent duplicate: dropped
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.find(1)->meta().seed, 10U);
}

TEST_F(PreludeCacheTest, CapacityZeroDisablesEverything) {
  auto& cache = PreludeCache::instance();
  cache.set_capacity(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(1, snap(1));
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.find(1), nullptr);
}

TEST_F(PreludeCacheTest, EvictsOldestWhenFull) {
  auto& cache = PreludeCache::instance();
  cache.set_capacity(2);
  cache.insert(1, snap(1));
  cache.insert(2, snap(2));
  cache.insert(3, snap(3));  // evicts key 1
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
}

TEST_F(PreludeCacheTest, ShrinkingCapacityEvicts) {
  auto& cache = PreludeCache::instance();
  cache.insert(1, snap(1));
  cache.insert(2, snap(2));
  cache.insert(3, snap(3));
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_NE(cache.find(3), nullptr);  // newest survives
}

}  // namespace
}  // namespace bgpsim::snap
