// MRAI jitter bounds: every held advertisement goes out within
// [jitter_lo, jitter_hi] x MRAI of the previous one.
#include <gtest/gtest.h>

#include <vector>

#include "bgp/speaker.hpp"
#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

TEST(MraiJitter, HeldSendWithinJitterWindow) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulator sim;
    net::Topology topo = topo::make_star(3);
    net::Transport transport{sim, topo};
    fwd::Fib fib;
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    c.jitter_lo = 0.75;
    c.jitter_hi = 1.0;
    Speaker speaker{0, c, sim, transport, fib, sim::Rng{seed}};
    speaker.set_peers({1, 2});

    std::vector<std::pair<net::NodeId, sim::SimTime>> sends;
    speaker.set_hooks(Speaker::Hooks{
        .on_update_sent =
            [&](net::NodeId, net::NodeId to, const UpdateMsg& msg) {
              if (!msg.is_withdrawal()) sends.emplace_back(to, sim.now());
            },
        .on_best_changed = nullptr,
    });

    // First announce at t=0 starts the timers; an improvement at t=1 is
    // held and must go out within [0.75, 1.0] x 30 s of the first send.
    speaker.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
    sim.schedule_at(sim::SimTime::seconds(1), [&] {
      speaker.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
    });
    sim.run();

    // Per peer: exactly two announces; gap within the jitter window.
    for (const net::NodeId peer : {1u, 2u}) {
      std::vector<sim::SimTime> at;
      for (const auto& [to, when] : sends) {
        if (to == peer) at.push_back(when);
      }
      ASSERT_EQ(at.size(), 2u) << "peer " << peer << " seed " << seed;
      const double gap = (at[1] - at[0]).as_seconds();
      EXPECT_GE(gap, 0.75 * 30.0) << "seed " << seed;
      EXPECT_LE(gap, 1.0 * 30.0 + 1e-9) << "seed " << seed;
    }
  }
}

TEST(MraiJitter, TimersDifferAcrossPeers) {
  // Jitter is drawn per timer start, so the two peers' held sends land at
  // different times (for almost every seed; check one known-good seed).
  sim::Simulator sim;
  net::Topology topo = topo::make_star(3);
  net::Transport transport{sim, topo};
  fwd::Fib fib;
  BgpConfig c;
  c.mrai = sim::SimTime::seconds(30);
  Speaker speaker{0, c, sim, transport, fib, sim::Rng{4}};
  speaker.set_peers({1, 2});

  std::vector<std::pair<net::NodeId, sim::SimTime>> sends;
  speaker.set_hooks(Speaker::Hooks{
      .on_update_sent =
          [&](net::NodeId, net::NodeId to, const UpdateMsg&) {
            sends.emplace_back(to, sim.now());
          },
      .on_best_changed = nullptr,
  });
  speaker.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  sim.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  });
  sim.run();

  sim::SimTime held_1, held_2;
  for (const auto& [to, when] : sends) {
    if (when > sim::SimTime::seconds(1)) {
      (to == 1 ? held_1 : held_2) = when;
    }
  }
  EXPECT_NE(held_1, held_2);
}

}  // namespace
}  // namespace bgpsim::bgp
