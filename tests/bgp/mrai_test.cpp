#include "bgp/mrai.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgpsim::bgp {
namespace {

struct Expiry {
  net::NodeId peer;
  net::Prefix prefix;
  bool was_pending;
  sim::SimTime at;
};

class MraiTest : public ::testing::Test {
 protected:
  MraiTest() {
    timers_.set_expiry_handler(
        [this](net::NodeId peer, net::Prefix prefix, bool was_pending) {
          expiries_.push_back(Expiry{peer, prefix, was_pending, sim_.now()});
        });
  }

  sim::Simulator sim_;
  MraiTimers timers_;
  std::vector<Expiry> expiries_;
};

TEST_F(MraiTest, StartThenExpire) {
  timers_.start(3, 0, sim::SimTime::seconds(30), sim_);
  EXPECT_TRUE(timers_.running(3, 0));
  sim_.run();
  EXPECT_FALSE(timers_.running(3, 0));
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_EQ(expiries_[0].peer, 3u);
  EXPECT_EQ(expiries_[0].at, sim::SimTime::seconds(30));
  EXPECT_FALSE(expiries_[0].was_pending);
}

TEST_F(MraiTest, PendingFlagReportedAtExpiry) {
  timers_.start(3, 0, sim::SimTime::seconds(30), sim_);
  timers_.set_pending(3, 0, true);
  EXPECT_TRUE(timers_.pending(3, 0));
  sim_.run();
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_TRUE(expiries_[0].was_pending);
}

TEST_F(MraiTest, PendingCanBeOverwritten) {
  timers_.start(3, 0, sim::SimTime::seconds(30), sim_);
  timers_.set_pending(3, 0, true);
  timers_.set_pending(3, 0, false);
  sim_.run();
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_FALSE(expiries_[0].was_pending);
}

TEST_F(MraiTest, SetPendingOnIdleTimerIsNoop) {
  timers_.set_pending(3, 0, true);
  EXPECT_FALSE(timers_.pending(3, 0));
  EXPECT_FALSE(timers_.any_pending());
}

TEST_F(MraiTest, TimersAreKeyedPerPeerAndPrefix) {
  timers_.start(3, 0, sim::SimTime::seconds(10), sim_);
  timers_.start(3, 1, sim::SimTime::seconds(20), sim_);
  timers_.start(4, 0, sim::SimTime::seconds(30), sim_);
  EXPECT_EQ(timers_.running_count(), 3u);
  EXPECT_TRUE(timers_.running(3, 1));
  EXPECT_FALSE(timers_.running(4, 1));
  sim_.run();
  EXPECT_EQ(expiries_.size(), 3u);
  EXPECT_EQ(timers_.running_count(), 0u);
}

TEST_F(MraiTest, CancelPeerDropsOnlyThatPeer) {
  timers_.start(3, 0, sim::SimTime::seconds(10), sim_);
  timers_.start(3, 1, sim::SimTime::seconds(10), sim_);
  timers_.start(4, 0, sim::SimTime::seconds(10), sim_);
  timers_.cancel_peer(3, sim_);
  EXPECT_EQ(timers_.running_count(), 1u);
  sim_.run();
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_EQ(expiries_[0].peer, 4u);
}

TEST_F(MraiTest, AnyPendingReflectsHeldWork) {
  timers_.start(3, 0, sim::SimTime::seconds(10), sim_);
  EXPECT_FALSE(timers_.any_pending());
  timers_.set_pending(3, 0, true);
  EXPECT_TRUE(timers_.any_pending());
  sim_.run();
  EXPECT_FALSE(timers_.any_pending());
}

TEST_F(MraiTest, RestartAfterExpiryAllowed) {
  timers_.start(3, 0, sim::SimTime::seconds(10), sim_);
  sim_.run();
  timers_.start(3, 0, sim::SimTime::seconds(10), sim_);
  EXPECT_TRUE(timers_.running(3, 0));
  sim_.run();
  EXPECT_EQ(expiries_.size(), 2u);
  EXPECT_EQ(expiries_[1].at, sim::SimTime::seconds(20));
}

}  // namespace
}  // namespace bgpsim::bgp
