// Unit tests driving a single Speaker directly (no processing queues), with
// deterministic MRAI (jitter disabled) and a star topology around the
// speaker so transport delivery works.
#include "bgp/speaker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

struct Sent {
  net::NodeId to;
  UpdateMsg msg;
  sim::SimTime at;
};

class SpeakerTest : public ::testing::Test {
 protected:
  SpeakerTest()
      : topo_{topo::make_star(5)},  // center 0, spokes 1..4
        transport_{sim_, topo_},
        speaker_{0, make_config(), sim_, transport_, fib_, sim::Rng{1}} {
    speaker_.set_peers({1, 2, 3, 4});
    speaker_.set_hooks(Speaker::Hooks{
        .on_update_sent =
            [this](net::NodeId, net::NodeId to, const UpdateMsg& msg) {
              sent_.push_back(Sent{to, msg, sim_.now()});
            },
        .on_best_changed = nullptr,
    });
  }

  virtual BgpConfig make_config() {
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    c.jitter_lo = 1.0;  // deterministic timers
    c.jitter_hi = 1.0;
    return c;
  }

  /// All messages sent to `peer`, in order.
  std::vector<Sent> to(net::NodeId peer) const {
    std::vector<Sent> out;
    for (const auto& s : sent_) {
      if (s.to == peer) out.push_back(s);
    }
    return out;
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::Transport transport_;
  fwd::Fib fib_;
  Speaker speaker_;
  std::vector<Sent> sent_;
};

TEST_F(SpeakerTest, AdoptsAnnouncedRouteAndReadvertises) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  const AsPath* loc = speaker_.loc_rib().get(kP);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(*loc, (AsPath{0, 1, 9}));
  EXPECT_EQ(fib_.next_hop(kP), 1u);
  // Advertised to all four peers.
  EXPECT_EQ(sent_.size(), 4u);
  for (const auto& s : sent_) {
    ASSERT_FALSE(s.msg.is_withdrawal());
    EXPECT_EQ(*s.msg.path, (AsPath{0, 1, 9}));
  }
}

TEST_F(SpeakerTest, PoisonReverseDiscardsPathContainingSelf) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 0, 9}));
  EXPECT_EQ(speaker_.loc_rib().get(kP), nullptr);
  EXPECT_EQ(speaker_.adj_rib_in().get(kP, 1), nullptr);
  EXPECT_EQ(speaker_.counters().poison_reverse_discards, 1u);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(SpeakerTest, PoisonedAnnounceReplacesEarlierGoodRoute) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  // Peer 1 now reports a path through us: acts as an implicit withdrawal.
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 0, 9}));
  EXPECT_EQ(speaker_.loc_rib().get(kP), nullptr);
  // We must retract our previous advertisement (withdrawals bypass MRAI).
  ASSERT_FALSE(sent_.empty());
  for (const auto& s : sent_) EXPECT_TRUE(s.msg.is_withdrawal());
}

TEST_F(SpeakerTest, PicksBetterRouteAmongPeers) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  const AsPath* loc = speaker_.loc_rib().get(kP);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(*loc, (AsPath{0, 2, 9}));
  EXPECT_EQ(fib_.next_hop(kP), 2u);
}

TEST_F(SpeakerTest, FallsBackOnWithdrawal) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  speaker_.handle_update(1, UpdateMsg::withdraw(kP));
  const AsPath* loc = speaker_.loc_rib().get(kP);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(*loc, (AsPath{0, 2, 8, 9}));
}

TEST_F(SpeakerTest, MraiHoldsSecondAnnouncement) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  sent_.clear();
  // A better (shorter) route arrives 1 s later: its announcement must wait
  // for the 30 s MRAI timer started by the first one.
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(*msgs[0].msg.path, (AsPath{0, 2, 9}));
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(30));
}

TEST_F(SpeakerTest, IntermediateFlapsNeverTransmitted) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  sent_.clear();
  // Two changes inside the MRAI window; only the final state goes out.
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  });
  sim_.schedule_at(sim::SimTime::seconds(2), [&] {
    speaker_.handle_update(2, UpdateMsg::withdraw(kP));
  });
  sim_.run();
  // Back to the original (1 8 9) route: nothing new to say at expiry.
  EXPECT_TRUE(to(3).empty());
}

TEST_F(SpeakerTest, WithdrawalBypassesMraiByDefault) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_.handle_update(1, UpdateMsg::withdraw(kP));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(1));  // not delayed
}

TEST_F(SpeakerTest, TimerExpiryWithoutChangeSendsNothing) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  const auto before = sent_.size();
  sim_.run();  // all MRAI timers expire silently
  EXPECT_EQ(sent_.size(), before);
  EXPECT_TRUE(speaker_.quiescent());
  EXPECT_FALSE(speaker_.timers_running());
}

TEST_F(SpeakerTest, OriginationAnnouncesSelfPath) {
  speaker_.originate(kP);
  ASSERT_NE(speaker_.loc_rib().get(kP), nullptr);
  EXPECT_EQ(*speaker_.loc_rib().get(kP), (AsPath{0}));
  EXPECT_TRUE(speaker_.originates(kP));
  EXPECT_EQ(sent_.size(), 4u);
  EXPECT_FALSE(fib_.next_hop(kP).has_value());  // local delivery
}

TEST_F(SpeakerTest, OriginPrefersOwnRouteOverLearned) {
  speaker_.originate(kP);
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  EXPECT_EQ(*speaker_.loc_rib().get(kP), (AsPath{0}));
}

TEST_F(SpeakerTest, TdownWithdrawalGoesOutImmediately) {
  speaker_.originate(kP);
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_.withdraw_origin(kP);
  });
  sim_.run();
  const auto msgs = to(2);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(1));
  EXPECT_EQ(speaker_.loc_rib().get(kP), nullptr);
}

TEST_F(SpeakerTest, SessionDownDropsPeerRoutesAndReruns) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  sent_.clear();
  speaker_.handle_session(1, false);
  EXPECT_EQ(speaker_.adj_rib_in().get(kP, 1), nullptr);
  EXPECT_EQ(*speaker_.loc_rib().get(kP), (AsPath{0, 2, 8, 9}));
  EXPECT_FALSE(speaker_.peers().contains(1));
  // The replacement announce waits out the MRAI timers started by the
  // first advertisement, then goes to the remaining peers — never to 1.
  sim_.run();
  EXPECT_TRUE(to(1).empty());
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(*msgs[0].msg.path, (AsPath{0, 2, 8, 9}));
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(30));
}

TEST_F(SpeakerTest, SessionUpTriggersFullTable) {
  speaker_.handle_session(1, false);
  speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  sent_.clear();
  speaker_.handle_session(1, true);
  const auto msgs = to(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(*msgs[0].msg.path, (AsPath{0, 2, 9}));
}

TEST_F(SpeakerTest, StrayUpdateFromNonPeerIgnored) {
  speaker_.handle_session(1, false);
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  EXPECT_EQ(speaker_.loc_rib().get(kP), nullptr);
}

TEST_F(SpeakerTest, NeverRetractsWhatWasNeverAnnounced) {
  // A withdrawal arriving when we had nothing must not trigger outbound
  // withdrawals to peers that never heard an announcement from us.
  speaker_.handle_update(1, UpdateMsg::withdraw(kP));
  EXPECT_TRUE(sent_.empty());
}

TEST_F(SpeakerTest, CountersTrackActivity) {
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_.handle_update(1, UpdateMsg::withdraw(kP));
  const auto& c = speaker_.counters();
  EXPECT_EQ(c.updates_received, 2u);
  EXPECT_EQ(c.best_path_changes, 2u);
  EXPECT_GT(c.announcements_sent, 0u);
  EXPECT_GT(c.withdrawals_sent, 0u);
}

TEST_F(SpeakerTest, MraiRestartsAfterHeldSend) {
  // First announce at t=0 starts the timer; a change at t=1 is held and
  // sent at t=30, which must start a fresh timer: a change at t=31 is then
  // held until t=60.
  speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_.handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  });
  sim_.schedule_at(sim::SimTime::seconds(31), [&] {
    speaker_.handle_update(1, UpdateMsg::announce(kP, AsPath{1, 7}));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[1].at, sim::SimTime::seconds(30));
  EXPECT_EQ(msgs[2].at, sim::SimTime::seconds(60));
}

}  // namespace
}  // namespace bgpsim::bgp
