#include "bgp/policy.hpp"

#include <gtest/gtest.h>

#include "bgp/decision.hpp"

namespace bgpsim::bgp {
namespace {

using net::Relationship;
using net::RelationshipTable;

// A small hierarchy:
//     1 --- 2      (peers, the "core")
//    /|      \
//   3 4       5    (customers of the core)
//   |
//   6              (customer of 3: a chain)
RelationshipTable sample_table() {
  RelationshipTable rel;
  rel.set_peering(1, 2);
  rel.set_provider_customer(1, 3);
  rel.set_provider_customer(1, 4);
  rel.set_provider_customer(2, 5);
  rel.set_provider_customer(3, 6);
  return rel;
}

TEST(RelationshipTable, SymmetricViews) {
  const auto rel = sample_table();
  EXPECT_EQ(rel.relationship(1, 3), Relationship::kCustomer);
  EXPECT_EQ(rel.relationship(3, 1), Relationship::kProvider);
  EXPECT_EQ(rel.relationship(1, 2), Relationship::kPeer);
  EXPECT_EQ(rel.relationship(2, 1), Relationship::kPeer);
  EXPECT_FALSE(rel.relationship(3, 5).has_value());
}

TEST(RelationshipTable, LocalPrefOrdering) {
  EXPECT_GT(RelationshipTable::local_pref(Relationship::kCustomer),
            RelationshipTable::local_pref(Relationship::kPeer));
  EXPECT_GT(RelationshipTable::local_pref(Relationship::kPeer),
            RelationshipTable::local_pref(Relationship::kProvider));
}

TEST(PolicyLocalPref, PrefersCustomerRoutes) {
  const auto rel = sample_table();
  EXPECT_EQ(policy_local_pref(rel, 1, 3), 2);  // 3 is 1's customer
  EXPECT_EQ(policy_local_pref(rel, 1, 2), 1);  // peer
  EXPECT_EQ(policy_local_pref(rel, 3, 1), 0);  // provider
  EXPECT_EQ(policy_local_pref(rel, 3, 5), 1);  // unclassified -> peer-grade
}

TEST(PolicyExport, SelfOriginatedGoesEverywhere) {
  const auto rel = sample_table();
  const AsPath self_route{3};
  EXPECT_TRUE(policy_exportable(rel, 3, self_route, 1));  // to provider
  EXPECT_TRUE(policy_exportable(rel, 3, self_route, 6));  // to customer
}

TEST(PolicyExport, CustomerRoutesGoEverywhere) {
  const auto rel = sample_table();
  // Node 3's route learned from customer 6.
  const AsPath via_customer{3, 6};
  EXPECT_TRUE(policy_exportable(rel, 3, via_customer, 1));  // up to provider
}

TEST(PolicyExport, ProviderRoutesOnlyToCustomers) {
  const auto rel = sample_table();
  // Node 3's route learned from provider 1.
  const AsPath via_provider{3, 1, 4};
  EXPECT_TRUE(policy_exportable(rel, 3, via_provider, 6));   // down: ok
  EXPECT_FALSE(policy_exportable(rel, 3, via_provider, 1));  // back up: no
}

TEST(PolicyExport, PeerRoutesOnlyToCustomers) {
  const auto rel = sample_table();
  // Node 1's route learned from peer 2.
  const AsPath via_peer{1, 2, 5};
  EXPECT_TRUE(policy_exportable(rel, 1, via_peer, 3));   // to customer: ok
  EXPECT_FALSE(policy_exportable(rel, 1, via_peer, 2));  // to peer: no
}

TEST(ValleyFree, AcceptsUpPeerDown) {
  const auto rel = sample_table();
  // 6 -> 3 -> 1 -> 2 -> 5: climb, climb, peer, descend.
  EXPECT_TRUE(valley_free(rel, AsPath{6, 3, 1, 2, 5}));
  // Pure descent: 1 -> 3 -> 6.
  EXPECT_TRUE(valley_free(rel, AsPath{1, 3, 6}));
  // Pure climb: 6 -> 3 -> 1.
  EXPECT_TRUE(valley_free(rel, AsPath{6, 3, 1}));
}

TEST(ValleyFree, RejectsValleys) {
  const auto rel = sample_table();
  // 3 -> 1 -> 4: down after... wait, 3->1 climbs, 1->4 descends: fine.
  EXPECT_TRUE(valley_free(rel, AsPath{3, 1, 4}));
  // 4 -> 1 -> 3 -> 6 then back up 6 has no uplink; construct real valley:
  // 1 -> 3 (down) then 3 -> 1? contains duplicate; use: 4 -> 1 (up),
  // 1 -> 3 (down), 3 -> 6 (down) fine; a valley = down then up:
  // 1 -> 4 (down) then 4 -> ... no second provider. Add one:
  auto rel2 = rel;
  rel2.set_provider_customer(2, 4);  // 4 is multi-homed to 1 and 2
  // 3 -> 1 -> 4 -> 2: down to 4 then up to 2 — a valley (free transit).
  EXPECT_FALSE(valley_free(rel2, AsPath{3, 1, 4, 2}));
}

TEST(ValleyFree, RejectsDoublePeering) {
  auto rel = sample_table();
  rel.set_peering(3, 4);
  // 6 -> 3 (up) -> 4 (peer) ... -> via another peer edge 4 -> 1? 1 is 4's
  // provider (up after peer): invalid.
  EXPECT_FALSE(valley_free(rel, AsPath{6, 3, 4, 1}));
  // Two peer steps in a row: 5 -> 2 (up), 2 -> 1 (peer), 1 -> ... peer
  // again is impossible here; use 3 - 4 peering plus 1 - 2:
  // 3 -> 4 (peer) then 4 -> 1 (up) invalid already covered; construct
  // peer-peer: 1 -> 2 (peer) then 2 -> ... need second peer at 2.
  auto rel2 = rel;
  rel2.set_peering(2, 4);
  EXPECT_FALSE(valley_free(rel2, AsPath{1, 2, 4, 6}));
}

TEST(SelectBestWithPolicy, LocalPrefBeatsPathLength) {
  const auto rel = sample_table();
  AdjRibIn rib;
  // At node 1: a short route via peer 2 and a longer route via customer 3.
  rib.set(0, 2, AsPath{2, 9});
  rib.set(0, 3, AsPath{3, 6, 9});
  const auto best = select_best(rib, 0, 1, &rel);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first_hop(), 3u);  // customer wins despite longer path
  // Without policy, the shorter path wins.
  const auto shortest = select_best(rib, 0, 1, nullptr);
  ASSERT_TRUE(shortest.has_value());
  EXPECT_EQ(shortest->first_hop(), 2u);
}

TEST(SelectBestWithPolicy, EqualPrefFallsBackToLength) {
  const auto rel = sample_table();
  AdjRibIn rib;
  // At node 1: two customer routes (3 and 4).
  rib.set(0, 3, AsPath{3, 6, 9});
  rib.set(0, 4, AsPath{4, 9});
  const auto best = select_best(rib, 0, 1, &rel);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first_hop(), 4u);
}

TEST(SelectBestWithPolicy, PoisonReverseStillApplies) {
  const auto rel = sample_table();
  AdjRibIn rib;
  rib.set(0, 3, AsPath{3, 1, 9});  // contains node 1
  EXPECT_FALSE(select_best(rib, 0, 1, &rel).has_value());
}

}  // namespace
}  // namespace bgpsim::bgp
