// PathStore unit suite: node refcounting, intern hits/misses, structural
// sharing across prepended()/suffix_from(), scope nesting, codec bytes,
// and the pointer-equality fast path.
#include "bgp/path_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/as_path.hpp"
#include "snap/codec.hpp"

namespace bgpsim::bgp {
namespace {

TEST(PathNode, RefcountLifecycle) {
  const detail::PathNode* n = detail::cons(5, nullptr);
  EXPECT_EQ(n->refs.load(), 1u);
  detail::retain(n);
  EXPECT_EQ(n->refs.load(), 2u);
  detail::release(n);
  EXPECT_EQ(n->refs.load(), 1u);
  detail::release(n);  // frees
}

TEST(PathNode, ConsDenormalizesOriginAndLength) {
  const detail::PathNode* origin = detail::cons(0, nullptr);
  const detail::PathNode* mid = detail::cons(4, origin);
  const detail::PathNode* top = detail::cons(6, mid);
  EXPECT_EQ(top->head, 6u);
  EXPECT_EQ(top->origin, 0u);
  EXPECT_EQ(top->length, 3u);
  EXPECT_EQ(mid->length, 2u);
  // cons retains the parent: each inner node carries its child's reference
  // on top of the one this test holds.
  EXPECT_EQ(origin->refs.load(), 2u);
  detail::release(top);
  detail::release(mid);
  detail::release(origin);
}

TEST(PathStore, InterningReturnsTheSameNode) {
  PathStore store;
  PathStore::Scope scope{store};
  const detail::PathNode* a = detail::cons(7, nullptr);
  const detail::PathNode* b = detail::cons(7, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.hits(), 1u);
  // One reference held by the table, one per cons() return.
  EXPECT_EQ(a->refs.load(), 3u);
  detail::release(a);
  detail::release(b);
}

TEST(PathStore, WithoutAScopeConsDoesNotIntern) {
  ASSERT_EQ(PathStore::current(), nullptr);
  const detail::PathNode* a = detail::cons(7, nullptr);
  const detail::PathNode* b = detail::cons(7, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(a->refs.load(), 1u);
  detail::release(a);
  detail::release(b);
}

TEST(PathStore, ScopesNestAndRestore) {
  EXPECT_EQ(PathStore::current(), nullptr);
  PathStore outer;
  {
    PathStore::Scope outer_scope{outer};
    EXPECT_EQ(PathStore::current(), &outer);
    PathStore inner;
    {
      PathStore::Scope inner_scope{inner};
      EXPECT_EQ(PathStore::current(), &inner);
    }
    EXPECT_EQ(PathStore::current(), &outer);
  }
  EXPECT_EQ(PathStore::current(), nullptr);
}

TEST(PathStore, EqualPathsBuiltDifferentlyShareStorage) {
  PathStore store;
  PathStore::Scope scope{store};
  // (5 4 0) via a vector, via prepended(), via an initializer list: all
  // three must resolve to the same three interned nodes.
  const AsPath direct{std::vector<net::NodeId>{5, 4, 0}};
  const AsPath prepended = AsPath{4, 0}.prepended(5);
  const AsPath list{5, 4, 0};
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.misses(), 3u);
  EXPECT_GE(store.hits(), 4u);
  EXPECT_EQ(direct, prepended);
  EXPECT_EQ(prepended, list);
}

TEST(PathStore, SuffixFromSharesStorageWithoutConsing) {
  PathStore store;
  PathStore::Scope scope{store};
  const AsPath p{6, 4, 0};
  const std::uint64_t misses_before = store.misses();
  const AsPath suffix = p.suffix_from(4);
  EXPECT_EQ(store.misses(), misses_before);  // no new nodes
  EXPECT_EQ(suffix, (AsPath{4, 0}));
  EXPECT_TRUE(p.suffix_from(9).empty());
}

TEST(PathStore, ClearReleasesTableButLivePathsSurvive) {
  PathStore store;
  PathStore::Scope scope{store};
  AsPath p{6, 4, 0};
  ASSERT_EQ(store.size(), 3u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(p.to_string(), "(6 4 0)");
  EXPECT_EQ(p.origin(), 0u);
}

TEST(PathStore, PathsOutliveTheStoreThatInternedThem) {
  AsPath p;
  {
    PathStore store;
    PathStore::Scope scope{store};
    p = AsPath{6, 4, 0}.prepended(5);
  }  // store destroyed; p must keep its (un-interned) nodes alive
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.first_hop(), 5u);
  EXPECT_EQ(p.origin(), 0u);
}

TEST(PathStore, CodecBytesIdenticalWithAndWithoutInterning) {
  const auto encode = [](const AsPath& p) {
    snap::Writer w;
    p.save(w);
    return w.bytes();
  };
  std::vector<std::uint8_t> interned_bytes;
  {
    PathStore store;
    PathStore::Scope scope{store};
    interned_bytes = encode(AsPath{4, 0}.prepended(6));
  }
  const std::vector<std::uint8_t> plain_bytes = encode(AsPath{6, 4, 0});
  EXPECT_EQ(interned_bytes, plain_bytes);

  snap::Reader r{plain_bytes};
  const AsPath decoded = AsPath::load(r);
  r.finish();
  EXPECT_EQ(decoded, (AsPath{6, 4, 0}));
}

TEST(PathStore, EqualityFastAndSlowPathsAgree) {
  // Interned: structurally-equal paths are pointer-equal (the fast path).
  PathStore store;
  AsPath interned_a, interned_b;
  {
    PathStore::Scope scope{store};
    interned_a = AsPath{5, 4, 0};
    interned_b = AsPath{4, 0}.prepended(5);
  }
  EXPECT_EQ(interned_a, interned_b);
  // Un-interned copies of the same hops take the structural slow path and
  // must agree with the fast path's verdict — in both directions.
  const AsPath plain{5, 4, 0};
  EXPECT_EQ(interned_a, plain);
  EXPECT_NE(plain, (AsPath{5, 4, 1}));
  EXPECT_NE(plain, (AsPath{5, 4}));
}

}  // namespace
}  // namespace bgpsim::bgp
