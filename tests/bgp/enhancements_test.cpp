// Unit tests for the four convergence enhancements at the Speaker level.
#include <gtest/gtest.h>

#include <vector>

#include "bgp/speaker.hpp"
#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

struct Sent {
  net::NodeId to;
  UpdateMsg msg;
  sim::SimTime at;
};

class EnhancementTest : public ::testing::Test {
 protected:
  void build(Enhancement e) {
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    c.jitter_lo = 1.0;
    c.jitter_hi = 1.0;
    c = c.with(e);
    speaker_.emplace(0, c, sim_, transport_, fib_, sim::Rng{1});
    speaker_->set_peers({1, 2, 3, 4});
    speaker_->set_hooks(Speaker::Hooks{
        .on_update_sent =
            [this](net::NodeId, net::NodeId to, const UpdateMsg& msg) {
              sent_.push_back(Sent{to, msg, sim_.now()});
            },
        .on_best_changed = nullptr,
    });
  }

  std::vector<Sent> to(net::NodeId peer) const {
    std::vector<Sent> out;
    for (const auto& s : sent_) {
      if (s.to == peer) out.push_back(s);
    }
    return out;
  }

  sim::Simulator sim_;
  net::Topology topo_ = topo::make_star(5);
  net::Transport transport_{sim_, topo_};
  fwd::Fib fib_;
  std::optional<Speaker> speaker_;
  std::vector<Sent> sent_;
};

// ---------------- SSLD ----------------

TEST_F(EnhancementTest, SsldConvertsLoopingAnnounceToWithdrawal) {
  build(Enhancement::kSsld);
  // Establish an advertised route first (not through peer 1), and let the
  // MRAI timers drain.
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  sim_.run();
  sent_.clear();
  // Switch to a better path through peer 1. Peer 1 appears in our new path
  // (0 1 9): it would discard the announce, so SSLD retracts the old route
  // with a withdrawal instead...
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  const auto msgs1 = to(1);
  ASSERT_EQ(msgs1.size(), 1u);
  EXPECT_TRUE(msgs1[0].msg.is_withdrawal());
  EXPECT_EQ(speaker_->counters().ssld_conversions, 1u);
  // ...while other peers get the normal announcement.
  const auto msgs2 = to(2);
  ASSERT_EQ(msgs2.size(), 1u);
  EXPECT_FALSE(msgs2[0].msg.is_withdrawal());
}

TEST_F(EnhancementTest, SsldSkipsWithdrawalWhenNothingAdvertised) {
  build(Enhancement::kSsld);
  // Nothing was ever advertised to peer 1; adopting a path through peer 1
  // must not produce a spurious withdrawal to it.
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  EXPECT_TRUE(to(1).empty());
  const auto msgs2 = to(2);
  ASSERT_EQ(msgs2.size(), 1u);
  EXPECT_FALSE(msgs2[0].msg.is_withdrawal());
}

TEST_F(EnhancementTest, SsldWithdrawalIsNotMraiDelayed) {
  build(Enhancement::kSsld);
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  sent_.clear();
  // Switch to a path through peer 1 while peer 1's timer is running.
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(2, UpdateMsg::withdraw(kP));
  });
  sim_.schedule_at(sim::SimTime::seconds(2), [&] {
    speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  });
  sim_.run();
  // Peer 1 got a plain withdrawal at t=1 (no route); at t=2 the new path
  // contains peer 1, so SSLD keeps it withdrawn — no further message.
  const auto msgs = to(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(1));
}

TEST_F(EnhancementTest, StandardBgpSendsLoopingAnnounce) {
  build(Enhancement::kStandard);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  const auto msgs1 = to(1);
  ASSERT_EQ(msgs1.size(), 1u);
  EXPECT_FALSE(msgs1[0].msg.is_withdrawal());  // receiver will poison-reverse
}

// ---------------- WRATE ----------------

TEST_F(EnhancementTest, WrateDelaysWithdrawal) {
  build(Enhancement::kWrate);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(30));  // held by MRAI
}

TEST_F(EnhancementTest, WrateWithdrawalStartsTimer) {
  build(Enhancement::kWrate);
  // No prior announce: the withdrawal-side timer still spaces updates.
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sim_.schedule_at(sim::SimTime::seconds(40), [&] {  // timers expired
    speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  });
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(41), [&] {
    speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(40));
  // The follow-up announce waits for the timer the withdrawal started.
  EXPECT_FALSE(msgs[1].msg.is_withdrawal());
  EXPECT_EQ(msgs[1].at, sim::SimTime::seconds(70));
}

TEST_F(EnhancementTest, WrateSuppressesWithdrawAnnounceFlap) {
  build(Enhancement::kWrate);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  // Lose the route and regain an identical one within the MRAI window:
  // nothing is ever sent.
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  });
  sim_.schedule_at(sim::SimTime::seconds(2), [&] {
    speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  });
  sim_.run();
  EXPECT_TRUE(to(3).empty());
}

// ---------------- Ghost Flushing ----------------

TEST_F(EnhancementTest, GhostFlushOnPathWorsening) {
  build(Enhancement::kGhostFlushing);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  // The path worsens ((0 1 9) -> (0 2 8 9)) while announce timers run:
  // an immediate withdrawal must flush the ghost, and the (longer) new
  // path follows at MRAI expiry.
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
    speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  });
  sim_.run();
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_TRUE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(1));
  EXPECT_FALSE(msgs[1].msg.is_withdrawal());
  EXPECT_EQ(*msgs[1].msg.path, (AsPath{0, 2, 8, 9}));
  EXPECT_EQ(msgs[1].at, sim::SimTime::seconds(30));
  EXPECT_GT(speaker_->counters().ghost_flushes, 0u);
}

TEST_F(EnhancementTest, NoGhostFlushOnImprovement) {
  build(Enhancement::kGhostFlushing);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 9}));
  });
  sim_.run();
  // Improvement: no flush; just the held announce at expiry.
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_FALSE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(speaker_->counters().ghost_flushes, 0u);
}

TEST_F(EnhancementTest, NoGhostFlushWhenTimerIdle) {
  build(Enhancement::kGhostFlushing);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sim_.run();  // let all timers expire
  sent_.clear();
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 8, 9}));
  // Timer idle: the longer path is announced immediately; no flush needed.
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_FALSE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(speaker_->counters().ghost_flushes, 0u);
}

TEST_F(EnhancementTest, StandardBgpDoesNotFlush) {
  build(Enhancement::kStandard);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sent_.clear();
  sim_.schedule_at(sim::SimTime::seconds(1), [&] {
    speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
    speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  });
  sim_.run();
  // Standard BGP: peers keep the ghost (0 1 9) until the held announce at
  // t=30. Exactly one message, no early withdrawal.
  const auto msgs = to(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_FALSE(msgs[0].msg.is_withdrawal());
  EXPECT_EQ(msgs[0].at, sim::SimTime::seconds(30));
}

// ---------------- backup caution (§3.3 future work) ----------------

TEST_F(EnhancementTest, CautionDefersWorseBackup) {
  BgpConfig c;
  c.mrai = sim::SimTime::seconds(30);
  c.jitter_lo = 1.0;
  c.jitter_hi = 1.0;
  c.backup_caution = sim::SimTime::seconds(10);
  speaker_.emplace(0, c, sim_, transport_, fib_, sim::Rng{1});
  speaker_->set_peers({1, 2, 3, 4});

  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  ASSERT_EQ(*speaker_->loc_rib().get(kP), (AsPath{0, 1, 9}));

  // The good path dies at t=0; the longer backup is NOT adopted yet.
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  EXPECT_EQ(speaker_->loc_rib().get(kP), nullptr);
  EXPECT_FALSE(fib_.next_hop(kP).has_value());
  EXPECT_EQ(speaker_->counters().caution_holds, 1u);

  // After the caution window it is adopted.
  sim_.run_until(sim::SimTime::seconds(10));
  ASSERT_NE(speaker_->loc_rib().get(kP), nullptr);
  EXPECT_EQ(*speaker_->loc_rib().get(kP), (AsPath{0, 2, 8, 9}));
}

TEST_F(EnhancementTest, CautionAcceptsEqualOrBetterReplacementImmediately) {
  BgpConfig c;
  c.mrai = sim::SimTime::seconds(30);
  c.jitter_lo = 1.0;
  c.jitter_hi = 1.0;
  c.backup_caution = sim::SimTime::seconds(10);
  speaker_.emplace(0, c, sim_, transport_, fib_, sim::Rng{1});
  speaker_->set_peers({1, 2, 3, 4});

  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  EXPECT_EQ(speaker_->loc_rib().get(kP), nullptr);  // holding

  // A same-length replacement arrives mid-window: adopted at once.
  sim_.schedule_at(sim::SimTime::seconds(2), [&] {
    speaker_->handle_update(3, UpdateMsg::announce(kP, AsPath{3, 9}));
  });
  sim_.run_until(sim::SimTime::seconds(2));
  ASSERT_NE(speaker_->loc_rib().get(kP), nullptr);
  EXPECT_EQ(*speaker_->loc_rib().get(kP), (AsPath{0, 3, 9}));
}

TEST_F(EnhancementTest, ZeroCautionSwitchesImmediately) {
  build(Enhancement::kStandard);  // backup_caution defaults to zero
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  ASSERT_NE(speaker_->loc_rib().get(kP), nullptr);
  EXPECT_EQ(*speaker_->loc_rib().get(kP), (AsPath{0, 2, 8, 9}));
  EXPECT_EQ(speaker_->counters().caution_holds, 0u);
}

// ---------------- combined flags ----------------

TEST_F(EnhancementTest, CombinedFlagsCoexist) {
  // The config is flag-based, so combinations (e.g. the modern BGP draft's
  // WRATE together with SSLD) must behave sanely even though the paper
  // evaluates them separately.
  BgpConfig c;
  c.mrai = sim::SimTime::seconds(30);
  c.jitter_lo = 1.0;
  c.jitter_hi = 1.0;
  c.ssld = true;
  c.wrate = true;
  speaker_.emplace(0, c, sim_, transport_, fib_, sim::Rng{1});
  speaker_->set_peers({1, 2, 3, 4});
  speaker_->set_hooks(Speaker::Hooks{
      .on_update_sent =
          [this](net::NodeId, net::NodeId to, const UpdateMsg& msg) {
            sent_.push_back(Sent{to, msg, sim_.now()});
          },
      .on_best_changed = nullptr,
  });

  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 8, 9}));
  sim_.run();
  sent_.clear();
  // Switch to a path through peer 1: SSLD converts the announce to a
  // withdrawal, and WRATE rate-limits that withdrawal like any update.
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  const auto now_msgs = to(1);
  ASSERT_EQ(now_msgs.size(), 1u);
  EXPECT_TRUE(now_msgs[0].msg.is_withdrawal());  // timers idle: sent now
  sent_.clear();
  // A second change within the window is held even though it is a
  // withdrawal (WRATE) — and resolves to nothing once the route returns.
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  sim_.run();
  EXPECT_TRUE(to(1).empty());
}

// ---------------- Assertion ----------------

TEST_F(EnhancementTest, AssertionPrunesOnWithdrawal) {
  build(Enhancement::kAssertion);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 1, 9}));
  // Withdrawal from 1 invalidates 2's path through 1: no backup remains.
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  EXPECT_EQ(speaker_->loc_rib().get(kP), nullptr);
  EXPECT_EQ(speaker_->adj_rib_in().get(kP, 2), nullptr);
  EXPECT_GT(speaker_->counters().assertion_removals, 0u);
}

TEST_F(EnhancementTest, StandardBgpPicksObsoleteBackup) {
  build(Enhancement::kStandard);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 1, 9}));
  speaker_->handle_update(1, UpdateMsg::withdraw(kP));
  // Standard BGP happily selects the obsolete (2 1 9) — the paper's loop
  // formation mechanism.
  const AsPath* loc = speaker_->loc_rib().get(kP);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(*loc, (AsPath{0, 2, 1, 9}));
}

TEST_F(EnhancementTest, AssertionPrunesInconsistentAnnounce) {
  build(Enhancement::kAssertion);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 1, 9}));
  // Peer 1 moves to a different (longer) route: 2's entry contradicts it.
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 3, 9}));
  EXPECT_EQ(speaker_->adj_rib_in().get(kP, 2), nullptr);
  const AsPath* loc = speaker_->loc_rib().get(kP);
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(*loc, (AsPath{0, 1, 3, 9}));
}

TEST_F(EnhancementTest, AssertionKeepsConsistentEntries) {
  build(Enhancement::kAssertion);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 1, 9}));
  // Re-announcing the same route prunes nothing.
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  EXPECT_NE(speaker_->adj_rib_in().get(kP, 2), nullptr);
}

TEST_F(EnhancementTest, AssertionAppliesOnSessionDown) {
  build(Enhancement::kAssertion);
  speaker_->handle_update(1, UpdateMsg::announce(kP, AsPath{1, 9}));
  speaker_->handle_update(2, UpdateMsg::announce(kP, AsPath{2, 1, 9}));
  speaker_->handle_session(1, false);
  EXPECT_EQ(speaker_->adj_rib_in().get(kP, 2), nullptr);
  EXPECT_EQ(speaker_->loc_rib().get(kP), nullptr);
}

}  // namespace
}  // namespace bgpsim::bgp
