#include "bgp/messages.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(UpdateMsg, AnnounceFactory) {
  const auto msg = UpdateMsg::announce(3, AsPath{5, 4, 0});
  EXPECT_EQ(msg.prefix, 3u);
  EXPECT_FALSE(msg.is_withdrawal());
  ASSERT_TRUE(msg.path.has_value());
  EXPECT_EQ(*msg.path, (AsPath{5, 4, 0}));
}

TEST(UpdateMsg, WithdrawFactory) {
  const auto msg = UpdateMsg::withdraw(7);
  EXPECT_EQ(msg.prefix, 7u);
  EXPECT_TRUE(msg.is_withdrawal());
  EXPECT_FALSE(msg.path.has_value());
}

TEST(UpdateMsg, ToStringForms) {
  EXPECT_EQ(UpdateMsg::announce(0, AsPath{6, 4, 0}).to_string(),
            "announce p0 (6 4 0)");
  EXPECT_EQ(UpdateMsg::withdraw(2).to_string(), "withdraw p2");
}

}  // namespace
}  // namespace bgpsim::bgp
