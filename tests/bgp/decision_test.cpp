#include "bgp/decision.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(Preference, ShorterPathWins) {
  EXPECT_TRUE(preferred(AsPath{4, 0}, AsPath{5, 4, 0}));
  EXPECT_FALSE(preferred(AsPath{5, 4, 0}, AsPath{4, 0}));
}

TEST(Preference, EqualLengthSmallerNextHopWins) {
  // The paper: "the smaller node ID is used for tie-breaking between equal
  // length paths."
  EXPECT_TRUE(preferred(AsPath{3, 0}, AsPath{7, 0}));
  EXPECT_FALSE(preferred(AsPath{7, 0}, AsPath{3, 0}));
}

TEST(Preference, FullLexicographicFallback) {
  EXPECT_TRUE(preferred(AsPath{3, 1, 0}, AsPath{3, 2, 0}));
  EXPECT_FALSE(preferred(AsPath{3, 2, 0}, AsPath{3, 1, 0}));
}

TEST(Preference, IsAStrictOrder) {
  const AsPath p{3, 1, 0};
  EXPECT_FALSE(preferred(p, p));
}

TEST(SelectBest, EmptyRibYieldsNothing) {
  AdjRibIn rib;
  EXPECT_FALSE(select_best(rib, 0, 5).has_value());
}

TEST(SelectBest, PicksShortest) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(0, 6, AsPath{6, 4, 0});
  const auto best = select_best(rib, 0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (AsPath{4, 0}));
}

TEST(SelectBest, PoisonReverseSkipsSelf) {
  // Node 4 must not adopt (6 4 0) or (5 4 0): they contain node 4.
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  rib.set(0, 5, AsPath{5, 4, 0});
  EXPECT_FALSE(select_best(rib, 0, 4).has_value());
}

TEST(SelectBest, PoisonReverseDetectsArbitrarilyLongLoops) {
  AdjRibIn rib;
  rib.set(0, 9, AsPath{9, 8, 7, 6, 5, 4, 3, 0});
  EXPECT_FALSE(select_best(rib, 0, 4).has_value());
  EXPECT_TRUE(select_best(rib, 0, 2).has_value());
}

TEST(SelectBest, SkipsPoisonedButKeepsOthers) {
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 5, 0});  // contains 5 -> unusable for node 5
  rib.set(0, 7, AsPath{7, 3, 0});
  const auto best = select_best(rib, 0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (AsPath{7, 3, 0}));
}

TEST(SelectBest, TieBreakAcrossNeighbors) {
  AdjRibIn rib;
  rib.set(0, 7, AsPath{7, 0});
  rib.set(0, 3, AsPath{3, 0});
  const auto best = select_best(rib, 0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first_hop(), 3u);
}

TEST(SelectBest, PrefixIsolation) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(1, 6, AsPath{6, 1});
  const auto best0 = select_best(rib, 0, 5);
  const auto best1 = select_best(rib, 1, 5);
  ASSERT_TRUE(best0 && best1);
  EXPECT_EQ(best0->origin(), 0u);
  EXPECT_EQ(best1->origin(), 1u);
}

TEST(SelectBest, Figure1aSelection) {
  // Figure 1(a): node 5 knows (4 0) from 4 and (6 4 0) from 6; best is via
  // node 4.
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(0, 6, AsPath{6, 4, 0});
  const auto best = select_best(rib, 0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first_hop(), 4u);
}

TEST(SelectBest, Figure1bBackupAfterWithdrawal) {
  // After node 4's withdrawal, node 5's only remaining entry is the
  // (obsolete) (6 4 0) from node 6 — exactly the loop-forming pick.
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  const auto best = select_best(rib, 0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (AsPath{6, 4, 0}));
}

}  // namespace
}  // namespace bgpsim::bgp
