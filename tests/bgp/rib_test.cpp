#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(AdjRibIn, SetAndGet) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  const AsPath* p = rib.get(0, 4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (AsPath{4, 0}));
  EXPECT_EQ(rib.get(0, 5), nullptr);
  EXPECT_EQ(rib.get(1, 4), nullptr);
}

TEST(AdjRibIn, SetReplacesPreviousEntry) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(0, 4, AsPath{4, 3, 0});
  EXPECT_EQ(*rib.get(0, 4), (AsPath{4, 3, 0}));
  EXPECT_EQ(rib.entries(0).size(), 1u);
}

TEST(AdjRibIn, Withdraw) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  EXPECT_TRUE(rib.withdraw(0, 4));
  EXPECT_EQ(rib.get(0, 4), nullptr);
  EXPECT_FALSE(rib.withdraw(0, 4));  // already gone
  EXPECT_FALSE(rib.withdraw(3, 4));  // unknown prefix
}

TEST(AdjRibIn, DropPeerRemovesAllPrefixes) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(1, 4, AsPath{4, 1});
  rib.set(0, 5, AsPath{5, 0});
  const auto affected = rib.drop_peer(4);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_EQ(rib.get(0, 4), nullptr);
  EXPECT_EQ(rib.get(1, 4), nullptr);
  EXPECT_NE(rib.get(0, 5), nullptr);
}

TEST(AdjRibIn, EntriesIterateInPeerOrder) {
  AdjRibIn rib;
  rib.set(0, 9, AsPath{9, 0});
  rib.set(0, 2, AsPath{2, 0});
  rib.set(0, 5, AsPath{5, 0});
  std::vector<net::NodeId> peers;
  for (const auto& [peer, path] : rib.entries(0)) peers.push_back(peer);
  EXPECT_EQ(peers, (std::vector<net::NodeId>{2, 5, 9}));
}

TEST(AdjRibIn, EntriesForUnknownPrefixIsEmpty) {
  AdjRibIn rib;
  EXPECT_TRUE(rib.entries(7).empty());
}

TEST(AdjRibIn, PrefixesSkipEmptied) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(1, 4, AsPath{4, 1});
  rib.withdraw(1, 4);
  const auto prefixes = rib.prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0], 0u);
}

TEST(AdjRibIn, EraseIfSelectsByPredicate) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  rib.set(0, 5, AsPath{5, 4, 0});
  rib.set(0, 6, AsPath{6, 0});
  const auto erased = rib.erase_if(0, [](net::NodeId, const AsPath& p) {
    return p.contains(4);
  });
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(rib.entries(0).size(), 1u);
  EXPECT_NE(rib.get(0, 6), nullptr);
}

TEST(LocRib, SetAndGet) {
  LocRib rib;
  EXPECT_EQ(rib.get(0), nullptr);
  EXPECT_TRUE(rib.set(0, AsPath{5, 4, 0}));
  ASSERT_NE(rib.get(0), nullptr);
  EXPECT_EQ(*rib.get(0), (AsPath{5, 4, 0}));
}

TEST(LocRib, SetSamePathReportsNoChange) {
  LocRib rib;
  rib.set(0, AsPath{5, 0});
  EXPECT_FALSE(rib.set(0, AsPath{5, 0}));
  EXPECT_TRUE(rib.set(0, AsPath{5, 4, 0}));
}

TEST(LocRib, Disengage) {
  LocRib rib;
  rib.set(0, AsPath{5, 0});
  EXPECT_TRUE(rib.set(0, std::nullopt));
  EXPECT_EQ(rib.get(0), nullptr);
  EXPECT_FALSE(rib.set(0, std::nullopt));  // already unset
}

TEST(LocRib, PrefixesListsEngagedOnly) {
  LocRib rib;
  rib.set(0, AsPath{1, 0});
  rib.set(2, AsPath{1, 2});
  rib.set(0, std::nullopt);
  const auto prefixes = rib.prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0], 2u);
}

}  // namespace
}  // namespace bgpsim::bgp
