#include "bgp/as_path.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(AsPath, DefaultIsEmpty) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
}

TEST(AsPath, InitializerListOrder) {
  const AsPath p{6, 4, 0};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.first_hop(), 6u);
  EXPECT_EQ(p.origin(), 0u);
}

TEST(AsPath, Contains) {
  const AsPath p{6, 4, 0};
  EXPECT_TRUE(p.contains(6));
  EXPECT_TRUE(p.contains(4));
  EXPECT_TRUE(p.contains(0));
  EXPECT_FALSE(p.contains(5));
}

TEST(AsPath, PrependedBuildsPaperNotation) {
  // Node 5 adopting (6 4 0) holds (5 6 4 0).
  const AsPath adopted = AsPath{6, 4, 0}.prepended(5);
  EXPECT_EQ(adopted, (AsPath{5, 6, 4, 0}));
  EXPECT_EQ(adopted.first_hop(), 5u);
}

TEST(AsPath, PrependedDoesNotMutateOriginal) {
  const AsPath p{4, 0};
  (void)p.prepended(5);
  EXPECT_EQ(p, (AsPath{4, 0}));
}

TEST(AsPath, SuffixFromFindsSubPath) {
  const AsPath p{5, 6, 4, 0};
  EXPECT_EQ(p.suffix_from(6), (AsPath{6, 4, 0}));
  EXPECT_EQ(p.suffix_from(5), p);
  EXPECT_EQ(p.suffix_from(0), (AsPath{0}));
}

TEST(AsPath, SuffixFromAbsentNodeIsEmpty) {
  const AsPath p{5, 6, 4, 0};
  EXPECT_TRUE(p.suffix_from(9).empty());
}

TEST(AsPath, EqualityAndOrdering) {
  EXPECT_EQ((AsPath{1, 2}), (AsPath{1, 2}));
  EXPECT_NE((AsPath{1, 2}), (AsPath{2, 1}));
  EXPECT_LT((AsPath{1, 2}), (AsPath{1, 3}));
  EXPECT_LT((AsPath{1}), (AsPath{1, 0}));  // prefix orders first
}

TEST(AsPath, ToStringPaperNotation) {
  EXPECT_EQ((AsPath{6, 4, 0}).to_string(), "(6 4 0)");
  EXPECT_EQ(AsPath{}.to_string(), "()");
  EXPECT_EQ((AsPath{7}).to_string(), "(7)");
}

TEST(AsPath, HopsSpanExposesSequence) {
  const AsPath p{3, 1, 0};
  const auto hops = p.hops();
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0], 3u);
  EXPECT_EQ(hops[2], 0u);
}

}  // namespace
}  // namespace bgpsim::bgp
