#include "bgp/assertion.hpp"

#include <gtest/gtest.h>

namespace bgpsim::bgp {
namespace {

TEST(AssertOnWithdraw, RemovesPathsThroughWithdrawingPeer) {
  // The paper's §5 example: node 5 receives a withdrawal from node 4 and
  // must also remove backup (5's stored) path (6 4 0) from node 6, since it
  // goes through node 4.
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  rib.set(0, 7, AsPath{7, 3, 0});
  const auto removed = assert_on_withdraw(rib, 0, 4);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(rib.get(0, 6), nullptr);
  EXPECT_NE(rib.get(0, 7), nullptr);
}

TEST(AssertOnWithdraw, OriginWithdrawalFlushesEverything) {
  // Clique Tdown: every backup (j 0) traverses the origin 0, so the
  // origin's withdrawal invalidates all of them at once — the paper's
  // "immediate convergence after receiving the withdrawal from node 0".
  AdjRibIn rib;
  rib.set(0, 2, AsPath{2, 0});
  rib.set(0, 3, AsPath{3, 0});
  rib.set(0, 4, AsPath{4, 2, 0});
  const auto removed = assert_on_withdraw(rib, 0, 0);
  EXPECT_EQ(removed, 3u);
  EXPECT_TRUE(rib.entries(0).empty());
}

TEST(AssertOnWithdraw, DoesNotTouchOtherPrefixes) {
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  rib.set(1, 6, AsPath{6, 4, 1});
  assert_on_withdraw(rib, 0, 4);
  EXPECT_EQ(rib.get(0, 6), nullptr);
  EXPECT_NE(rib.get(1, 6), nullptr);
}

TEST(AssertOnWithdraw, KeepsEntryFromTheWithdrawingPeerItself) {
  // The withdrawing peer's own entry is handled by the caller (it was just
  // withdrawn); the assertion only prunes *other* peers' entries.
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 0});
  const auto removed = assert_on_withdraw(rib, 0, 4);
  EXPECT_EQ(removed, 0u);
  EXPECT_NE(rib.get(0, 4), nullptr);
}

TEST(AssertOnAnnounce, RemovesInconsistentSubPaths) {
  // Peer 4 announces (4 3 0); peer 6's stored (6 4 0) claims 4 reaches 0
  // directly — suffix (4 0) != (4 3 0), so it is provably obsolete.
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 3, 0});
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(rib.get(0, 6), nullptr);
}

TEST(AssertOnAnnounce, KeepsConsistentSubPaths) {
  // Peer 4 announces (4 0); peer 6's (6 4 0) agrees with it.
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 0});
  EXPECT_EQ(removed, 0u);
  EXPECT_NE(rib.get(0, 6), nullptr);
}

TEST(AssertOnAnnounce, IgnoresPathsNotThroughAnnouncer) {
  AdjRibIn rib;
  rib.set(0, 7, AsPath{7, 3, 0});
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 9, 0});
  EXPECT_EQ(removed, 0u);
  EXPECT_NE(rib.get(0, 7), nullptr);
}

TEST(AssertOnAnnounce, NeverRemovesTheAnnouncersOwnEntry) {
  AdjRibIn rib;
  rib.set(0, 4, AsPath{4, 9, 0});
  // Even if the stored entry from 4 differs from the new announcement
  // (caller updates it), assertion must not erase it.
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 0});
  EXPECT_EQ(removed, 0u);
}

TEST(AssertOnAnnounce, RemovesDeepInconsistencies) {
  // (8 7 4 9 0) traverses 4 with suffix (4 9 0); 4 now announces (4 0).
  AdjRibIn rib;
  rib.set(0, 8, AsPath{8, 7, 4, 9, 0});
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 0});
  EXPECT_EQ(removed, 1u);
}

TEST(AssertOnAnnounce, MultipleEntriesPruned) {
  AdjRibIn rib;
  rib.set(0, 6, AsPath{6, 4, 0});
  rib.set(0, 7, AsPath{7, 4, 0});
  rib.set(0, 8, AsPath{8, 4, 2, 0});
  const auto removed = assert_on_announce(rib, 0, 4, AsPath{4, 2, 0});
  // 6's and 7's suffix (4 0) disagrees; 8's suffix (4 2 0) agrees.
  EXPECT_EQ(removed, 2u);
  EXPECT_NE(rib.get(0, 8), nullptr);
}

}  // namespace
}  // namespace bgpsim::bgp
