#include "metrics/loop_stats.hpp"

#include <gtest/gtest.h>

namespace bgpsim::metrics {
namespace {

using sim::SimTime;

LoopRecord loop(std::vector<net::NodeId> members, double formed,
                double resolved) {
  return LoopRecord{std::move(members), SimTime::seconds(formed),
                    SimTime::seconds(resolved)};
}

TEST(LoopStats, EmptyInput) {
  const auto s = analyze_loops({}, SimTime::seconds(100));
  EXPECT_EQ(s.total_loops, 0u);
  EXPECT_EQ(s.active_time_s, 0.0);
  EXPECT_EQ(s.max_concurrent, 0u);
}

TEST(LoopStats, BasicAggregates) {
  const std::vector<LoopRecord> loops{
      loop({1, 2}, 0, 10),
      loop({3, 4}, 20, 25),
      loop({5, 6, 7}, 30, 60),
  };
  const auto s = analyze_loops(loops, SimTime::seconds(100));
  EXPECT_EQ(s.total_loops, 3u);
  EXPECT_EQ(s.max_size, 3u);
  EXPECT_NEAR(s.mean_size, 7.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.two_node_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(s.distinct_sizes, 2u);
  EXPECT_DOUBLE_EQ(s.duration_s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.duration_s.min, 5.0);
}

TEST(LoopStats, PerSizeBuckets) {
  const std::vector<LoopRecord> loops{
      loop({1, 2}, 0, 10),
      loop({3, 4}, 0, 20),
      loop({5, 6, 7, 8}, 0, 30),
  };
  const auto s = analyze_loops(loops, SimTime::seconds(100));
  ASSERT_EQ(s.by_size.size(), 2u);
  EXPECT_EQ(s.by_size[0].size, 2u);
  EXPECT_EQ(s.by_size[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.by_size[0].duration_s.max, 20.0);
  EXPECT_DOUBLE_EQ(s.by_size[0].worst_per_hop_s, 20.0);  // m-1 = 1
  EXPECT_EQ(s.by_size[1].size, 4u);
  EXPECT_DOUBLE_EQ(s.by_size[1].worst_per_hop_s, 10.0);  // 30 / 3
}

TEST(LoopStats, UnresolvedClosedAtFallback) {
  const std::vector<LoopRecord> loops{
      LoopRecord{{1, 2}, SimTime::seconds(90), std::nullopt},
  };
  const auto s = analyze_loops(loops, SimTime::seconds(100));
  EXPECT_DOUBLE_EQ(s.duration_s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.active_time_s, 10.0);
}

TEST(LoopStats, ActiveTimeIsUnionOfIntervals) {
  const std::vector<LoopRecord> loops{
      loop({1, 2}, 0, 10),
      loop({3, 4}, 5, 15),   // overlaps the first
      loop({5, 6}, 50, 60),  // disjoint
  };
  const auto s = analyze_loops(loops, SimTime::seconds(100));
  EXPECT_DOUBLE_EQ(s.active_time_s, 25.0);  // [0,15] + [50,60]
  EXPECT_EQ(s.max_concurrent, 2u);
}

TEST(LoopStats, BackToBackIntervalsDoNotOvercount) {
  const std::vector<LoopRecord> loops{
      loop({1, 2}, 0, 10),
      loop({3, 4}, 10, 20),  // starts exactly when the first ends
  };
  const auto s = analyze_loops(loops, SimTime::seconds(100));
  EXPECT_DOUBLE_EQ(s.active_time_s, 20.0);
  EXPECT_EQ(s.max_concurrent, 1u);
}

TEST(LoopStats, ConcurrencyDepth) {
  const std::vector<LoopRecord> loops{
      loop({1, 2}, 0, 100),
      loop({3, 4}, 10, 90),
      loop({5, 6}, 20, 80),
  };
  const auto s = analyze_loops(loops, SimTime::seconds(200));
  EXPECT_EQ(s.max_concurrent, 3u);
  EXPECT_DOUBLE_EQ(s.active_time_s, 100.0);
}

}  // namespace
}  // namespace bgpsim::metrics
