#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bgpsim::metrics {
namespace {

TEST(Summarize, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({7.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  // Sample stddev with n-1 = sqrt(32/7).
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{9, 1, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Percentile, OutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(FitLine, PerfectLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLine, NoisyLineHasHighR2) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2.1, 3.9, 6.2, 7.8, 10.1};
  const LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitLine, ConstantYIsExactFit) {
  const LinearFit f = fit_line({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLine, TooFewPointsIsZero) {
  const LinearFit f = fit_line({1}, {2});
  EXPECT_EQ(f.slope, 0.0);
  EXPECT_EQ(f.r2, 0.0);
}

TEST(FitLine, SizeMismatchThrows) {
  EXPECT_THROW(fit_line({1, 2}, {1}), std::invalid_argument);
}

TEST(MeanPm, Formats) {
  Summary s;
  s.mean = 12.34;
  s.stddev = 4.5;
  EXPECT_EQ(mean_pm(s, 1), "12.3 ±4.5");
  EXPECT_EQ(mean_pm(s, 2), "12.34 ±4.50");
}

}  // namespace
}  // namespace bgpsim::metrics
