#include "metrics/collector.hpp"

#include <gtest/gtest.h>

namespace bgpsim::metrics {
namespace {

using sim::SimTime;

fwd::Packet dummy_packet() { return fwd::Packet{}; }

TEST(Collector, StartsEmpty) {
  Collector c;
  EXPECT_EQ(c.updates_sent_total(), 0u);
  EXPECT_EQ(c.packets_sent_total(), 0u);
  EXPECT_FALSE(c.last_update_at(SimTime::zero()).has_value());
  EXPECT_FALSE(c.first_exhaustion(SimTime::zero()).has_value());
}

TEST(Collector, LastUpdateRespectsWindow) {
  Collector c;
  c.note_update_sent(SimTime::seconds(1), false);
  c.note_update_sent(SimTime::seconds(5), true);
  EXPECT_EQ(c.last_update_at(SimTime::zero()), SimTime::seconds(5));
  EXPECT_EQ(c.last_update_at(SimTime::seconds(5)), SimTime::seconds(5));
  EXPECT_FALSE(c.last_update_at(SimTime::seconds(6)).has_value());
  EXPECT_EQ(c.withdrawals_sent_total(), 1u);
}

TEST(Collector, UpdatesSentSince) {
  Collector c;
  for (int t = 1; t <= 10; ++t) c.note_update_sent(SimTime::seconds(t), false);
  EXPECT_EQ(c.updates_sent_since(SimTime::seconds(6)), 5u);
  EXPECT_EQ(c.updates_sent_since(SimTime::zero()), 10u);
  EXPECT_EQ(c.updates_sent_since(SimTime::seconds(11)), 0u);
}

TEST(Collector, PacketsSentInClosedWindow) {
  Collector c;
  for (int t = 1; t <= 10; ++t) c.note_packet_sent(SimTime::seconds(t));
  EXPECT_EQ(c.packets_sent_in(SimTime::seconds(3), SimTime::seconds(7)), 5u);
  EXPECT_EQ(c.packets_sent_in(SimTime::seconds(0), SimTime::seconds(100)), 10u);
  EXPECT_EQ(c.packets_sent_in(SimTime::seconds(11), SimTime::seconds(20)), 0u);
}

TEST(Collector, FateCountersByKind) {
  Collector c;
  c.note_fate(dummy_packet(), fwd::PacketFate::kDelivered, 0, SimTime::seconds(1));
  c.note_fate(dummy_packet(), fwd::PacketFate::kDelivered, 0, SimTime::seconds(2));
  c.note_fate(dummy_packet(), fwd::PacketFate::kNoRoute, 3, SimTime::seconds(2));
  c.note_fate(dummy_packet(), fwd::PacketFate::kLinkDown, 4, SimTime::seconds(2));
  c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 5,
              SimTime::seconds(3));
  EXPECT_EQ(c.delivered_total(), 2u);
  EXPECT_EQ(c.no_route_total(), 1u);
  EXPECT_EQ(c.link_down_total(), 1u);
  EXPECT_EQ(c.exhaustions_since(SimTime::zero()), 1u);
}

TEST(Collector, ExhaustionWindowQueries) {
  Collector c;
  for (int t : {2, 4, 6, 8}) {
    c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 1,
                SimTime::seconds(t));
  }
  EXPECT_EQ(c.exhaustions_since(SimTime::seconds(5)), 2u);
  EXPECT_EQ(c.first_exhaustion(SimTime::seconds(3)), SimTime::seconds(4));
  EXPECT_EQ(c.last_exhaustion(SimTime::seconds(3)), SimTime::seconds(8));
  EXPECT_FALSE(c.first_exhaustion(SimTime::seconds(9)).has_value());
  EXPECT_FALSE(c.last_exhaustion(SimTime::seconds(9)).has_value());
}

TEST(Collector, UpdateActivityBuckets) {
  Collector c;
  for (int t : {1, 2, 2, 3, 9}) c.note_update_sent(SimTime::seconds(t), false);
  const auto bins =
      c.update_activity(SimTime::zero(), SimTime::seconds(10),
                        SimTime::seconds(2));
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0], 1u);  // [0,2): t=1
  EXPECT_EQ(bins[1], 3u);  // [2,4): t=2,2,3
  EXPECT_EQ(bins[2], 0u);
  EXPECT_EQ(bins[4], 1u);  // [8,10): t=9
}

TEST(Collector, ActivityWindowClipsAndRoundsUp) {
  Collector c;
  c.note_update_sent(SimTime::seconds(1), false);
  c.note_update_sent(SimTime::seconds(50), false);
  // Window [0, 5) with width 2 -> 3 bins (last one partial).
  const auto bins = c.update_activity(SimTime::zero(), SimTime::seconds(5),
                                      SimTime::seconds(2));
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[2], 0u);  // the t=50 event is outside the window
}

TEST(Collector, ActivityDegenerateWindows) {
  Collector c;
  c.note_update_sent(SimTime::seconds(1), false);
  EXPECT_TRUE(c.update_activity(SimTime::seconds(5), SimTime::seconds(5),
                                SimTime::seconds(1))
                  .empty());
  EXPECT_TRUE(c.update_activity(SimTime::zero(), SimTime::seconds(5),
                                SimTime::zero())
                  .empty());
}

TEST(Collector, ExhaustionActivity) {
  Collector c;
  c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 1,
              SimTime::seconds(3));
  const auto bins = c.exhaustion_activity(SimTime::zero(),
                                          SimTime::seconds(10),
                                          SimTime::seconds(5));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[1], 0u);
}

TEST(Collector, LoopingWindowMatchesPaperDefinition) {
  // Overall looping duration: first to last TTL exhaustion after the event.
  Collector c;
  // Pre-event exhaustion must not count.
  c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 1,
              SimTime::seconds(1));
  c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 1,
              SimTime::seconds(10));
  c.note_fate(dummy_packet(), fwd::PacketFate::kTtlExhausted, 1,
              SimTime::seconds(42));
  const auto event = SimTime::seconds(5);
  const auto first = c.first_exhaustion(event);
  const auto last = c.last_exhaustion(event);
  ASSERT_TRUE(first && last);
  EXPECT_DOUBLE_EQ((*last - *first).as_seconds(), 32.0);
}

}  // namespace
}  // namespace bgpsim::metrics
