#include "metrics/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace bgpsim::metrics {
namespace {

TraceEvent make(double t, TraceEventKind kind, net::NodeId node = 1,
                net::NodeId peer = 2, const std::string& detail = "d") {
  return TraceEvent{sim::SimTime::seconds(t), kind, node, peer, 0, detail};
}

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder t;
  EXPECT_TRUE(t.empty());
  t.record(make(1, TraceEventKind::kUpdateSent));
  t.record(make(2, TraceEventKind::kBestChanged));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[0].kind, TraceEventKind::kUpdateSent);
  EXPECT_EQ(t.events()[1].kind, TraceEventKind::kBestChanged);
}

TEST(TraceRecorder, OfKindFilters) {
  TraceRecorder t;
  t.record(make(1, TraceEventKind::kUpdateSent));
  t.record(make(2, TraceEventKind::kLoopFormed));
  t.record(make(3, TraceEventKind::kUpdateSent));
  EXPECT_EQ(t.of_kind(TraceEventKind::kUpdateSent).size(), 2u);
  EXPECT_EQ(t.of_kind(TraceEventKind::kLoopResolved).size(), 0u);
}

TEST(TraceRecorder, CountsHistogram) {
  TraceRecorder t;
  t.record(make(1, TraceEventKind::kUpdateSent));
  t.record(make(2, TraceEventKind::kUpdateSent));
  t.record(make(3, TraceEventKind::kLoopFormed));
  const auto counts = t.counts();
  EXPECT_EQ(counts.at(TraceEventKind::kUpdateSent), 2u);
  EXPECT_EQ(counts.at(TraceEventKind::kLoopFormed), 1u);
}

TEST(TraceRecorder, CsvFormat) {
  TraceRecorder t;
  t.record(make(1.5, TraceEventKind::kUpdateSent, 3, 4, "announce p0 (3 0)"));
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_s,kind,node,peer,prefix,detail\n"
            "1.5,update_sent,3,4,0,\"announce p0 (3 0)\"\n");
}

TEST(TraceRecorder, CsvEscapesQuotes) {
  TraceRecorder t;
  t.record(make(1, TraceEventKind::kBestChanged, 3, net::kInvalidNode,
                "say \"hi\""));
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_NE(out.str().find("\"say \"\"hi\"\"\""), std::string::npos);
  // Invalid peer renders as an empty cell.
  EXPECT_NE(out.str().find(",3,,0,"), std::string::npos);
}

TEST(TraceRecorder, JsonlFormat) {
  TraceRecorder t;
  t.record(make(2.0, TraceEventKind::kLoopFormed, net::kInvalidNode,
                net::kInvalidNode, "{5 6}"));
  std::ostringstream out;
  t.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"t\":2,\"kind\":\"loop_formed\",\"prefix\":0,"
            "\"detail\":\"{5 6}\"}\n");
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder t;
  t.record(make(1, TraceEventKind::kUpdateSent));
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(TraceIntegration, ExperimentPopulatesTrace) {
  TraceRecorder trace;
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 6;
  s.event = core::EventKind::kTdown;
  s.seed = 1;
  s.trace = &trace;
  const auto out = core::run_experiment(s);

  const auto counts = trace.counts();
  EXPECT_EQ(counts.at(TraceEventKind::kEventInjected), 1u);
  EXPECT_GT(counts.at(TraceEventKind::kUpdateSent), 0u);
  EXPECT_GT(counts.at(TraceEventKind::kBestChanged), 0u);
  // Loop events in the trace match the run's loop records (each loop
  // forms once; resolutions may be closed by finalize instead).
  EXPECT_EQ(counts.at(TraceEventKind::kLoopFormed), out.metrics.loops_formed);

  // Trace timestamps are nondecreasing.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_GE(trace.events()[i].at, trace.events()[i - 1].at);
  }
}

TEST(TraceIntegration, UpdateCountMatchesCollector) {
  TraceRecorder trace;
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 5;
  s.event = core::EventKind::kTdown;
  s.seed = 2;
  s.trace = &trace;
  const auto out = core::run_experiment(s);
  EXPECT_EQ(trace.of_kind(TraceEventKind::kUpdateSent).size(),
            out.metrics.updates_sent_total);
}

}  // namespace
}  // namespace bgpsim::metrics
